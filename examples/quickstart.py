#!/usr/bin/env python3
"""Quickstart: your first self-modifying RDMA program.

Builds the paper's Fig 4 conditional on a simulated ConnectX-5: a CAS
verb compares a 48-bit operand embedded in a disarmed (NOOP) WRITE's
id field and, on a match, rewrites its opcode so the WRITE fires.
Everything — the compare, the rewrite, the conditional WRITE — executes
on the NIC; the host only posts the program.

Run:  python examples/quickstart.py
"""

from repro.bench import Testbed
from repro.ibv import wr_write
from repro.redn import ProgramBuilder, RednContext


def run_conditional(x: int, y: int) -> bytes:
    """if (x == y): copy 8 marker bytes. Returns the destination."""
    bed = Testbed(num_clients=0)
    process = bed.server.spawn_process("quickstart")
    ctx = RednContext(bed.server.nic, process.create_pd(),
                      process=process)
    builder = ProgramBuilder(ctx, name="quickstart")

    # Data: a source marker and an empty destination, registered for
    # RDMA so the NIC may touch them.
    src, _src_mr = ctx.alloc_registered(8)
    dst, dst_mr = ctx.alloc_registered(8)
    ctx.memory.write(src.addr, b"MATCHED!")

    # Queues: a control queue for the WAIT/ENABLE skeleton, a managed
    # worker queue for the CAS, a managed branch queue for the target.
    ctl = builder.control_queue(name="ctl")
    worker = builder.worker_queue(name="worker")
    branches = builder.worker_queue(name="branches")

    # The branch: a WRITE posted *disarmed* (opcode NOOP), its id field
    # holding operand x. It will only ever run if the CAS arms it.
    live = wr_write(src.addr, 8, dst.addr, dst_mr.rkey)
    live.wr_id = x
    branch = builder.template(branches, live, tag="if.branch")

    # The conditional: Table 2's 1C + 1A + 3E.
    builder.emit_if(ctl, worker, branch, compare_id=y, tag="if")
    print(f"  posted if-construct: {builder.cost('if')}")

    # Let the NIC run and read the outcome.
    bed.sim.run(until=1_000_000)
    return ctx.memory.read(dst.addr, 8)


def main():
    print("if (x == y) executed on the NIC:")
    taken = run_conditional(x=0x1234, y=0x1234)
    print(f"  x == y -> destination = {taken!r}")
    not_taken = run_conditional(x=0x1234, y=0x9999)
    print(f"  x != y -> destination = {not_taken!r}")
    assert taken == b"MATCHED!"
    assert not_taken == bytes(8)
    print("ok: conditional branching with commodity RDMA verbs.")


if __name__ == "__main__":
    main()
