#!/usr/bin/env python3
"""Surviving process crashes with the empty-hull trick (paper §5.6).

Two Memcached instances, both serving gets through the NIC offload.
One owns its RDMA resources directly; the other parks them in an empty
hull parent. Both serving processes are killed mid-run — only the
hulled instance keeps answering.

Run:  python examples/failover_demo.py
"""

from repro.apps import MemcachedServer
from repro.bench import Testbed
from repro.redn.offload import OffloadClient

KEY = 0x42


def crash_experiment(hull_parent: bool):
    bed = Testbed(num_clients=1)
    store = MemcachedServer(bed.server, hull_parent=hull_parent,
                            name="hulled" if hull_parent else "plain")
    store.set(KEY, b"survivor")
    offload, conn = store.attach_get_offload(
        bed.clients[0].nic, bed.client_pd(0), max_instances=8)
    offload.post_instances(6)
    client = OffloadClient(conn, bed.client_verbs(0))

    def run():
        before = yield from client.call(offload.payload_for(KEY),
                                        timeout_ns=2_000_000)
        store.crash()          # the OS reclaims what the process owned
        yield bed.sim.timeout(100_000)
        after = yield from client.call(offload.payload_for(KEY),
                                       timeout_ns=2_000_000)
        return before.ok, after.ok, store.rdma_resources_alive

    return bed.run(run())


def main():
    for hull in (False, True):
        label = "hull-parented" if hull else "plain process"
        before, after, resources = crash_experiment(hull)
        status = "still serving" if after else "dead"
        print(f"{label:>14}: before-crash get ok={before}; "
              f"after crash -> offload {status} "
              f"(RDMA resources alive: {resources})")
    print("\nok: parking RDMA resources in an empty parent keeps the")
    print("NIC program serving across application crashes (Fig 16).")


if __name__ == "__main__":
    main()
