#!/usr/bin/env python3
"""A Turing machine whose every step runs as RDMA verbs (Appendix A).

Compiles three classical machines into mov-machine memory (pre-scaled
symbols, state rows as pointers, FETCH_ADD head moves) and runs them on
the simulated RNIC, checking each against a pure-Python oracle.

Run:  python examples/turing_machine.py
"""

from repro.bench import Testbed
from repro.redn import RednContext
from repro.redn.turing import (
    BINARY_INCREMENT,
    BUSY_BEAVER_3,
    PARITY_MACHINE,
    NicTuringMachine,
    run_reference,
)

CASES = [
    (BINARY_INCREMENT, ["1", "1", "0", "1"]),   # 11 -> 12 (LSB-first)
    (PARITY_MACHINE, ["1", "0", "1", "1", "1"]),
    (BUSY_BEAVER_3, []),
]


def main():
    bed = Testbed(num_clients=0)
    process = bed.server.spawn_process("turing")
    for index, (spec, tape) in enumerate(CASES):
        ctx = RednContext(bed.server.nic, process.create_pd(),
                          process=process, name=f"tm{index}")
        machine = NicTuringMachine(ctx, spec, name=f"tm{index}")
        machine.load_tape(tape)
        wr_before = bed.server.nic.stats.get("total_wrs", 0)
        steps = bed.run(machine.run(max_steps=300))
        wrs = bed.server.nic.stats.get("total_wrs", 0) - wr_before

        reference, ref_steps, halted = run_reference(spec, tape)
        nic_tape = machine.read_tape(-6, max(len(reference), 8) + 12)
        assert halted and machine.halted
        assert steps == ref_steps

        print(f"{spec.name}:")
        print(f"  input tape : {tape or ['(blank)']}")
        print(f"  steps      : {steps} (oracle: {ref_steps})")
        print(f"  verbs used : {wrs} RDMA WRs, zero host computation")
        print(f"  final tape : {[s for s in nic_tape if s != '_']}")
        print(f"  oracle says: {[s for s in reference if s != '_']}")
        print()
    print("ok: RDMA is Turing complete — we just did not know it yet.")


if __name__ == "__main__":
    main()
