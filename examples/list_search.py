#!/usr/bin/env python3
"""Remote linked-list search on the NIC, with and without break.

Builds the Fig 12 pointer-chasing program: each iteration's READ lands
the node's `next` pointer directly inside the following iteration's
READ WQE, a WRITE fans the client's compare word into the iteration's
CAS, and the CAS either arms a response (plain) or a break WRITE that
stops the loop (Fig 6).

Run:  python examples/list_search.py
"""

from repro.bench import Testbed, render_table
from repro.datastructs import LinkedList, SlabStore
from repro.offloads.list_traversal import ListTraversalOffload
from repro.redn import RednContext
from repro.redn.offload import OffloadClient, OffloadConnection

KEYS = [0x10 * (i + 1) for i in range(8)]   # 8-node list


def build(use_break: bool):
    bed = Testbed(num_clients=1)
    process = bed.server.spawn_process("list-server")
    pd = process.create_pd()
    slab_alloc = process.alloc(1 << 20, label="slab")
    node_alloc = process.alloc(1 << 16, label="nodes")
    data_mr = pd.register(node_alloc)
    slab = SlabStore(bed.server.memory, slab_alloc)
    lst = LinkedList(bed.server.memory, node_alloc, slab)
    for key in KEYS:
        lst.append(key, f"value-{key:#x}".encode())

    ctx = RednContext(bed.server.nic, pd, process=process)
    conn = OffloadConnection(ctx, bed.clients[0].nic, bed.client_pd(0),
                             name="list")
    offload = ListTraversalOffload(ctx, lst, data_mr, conn,
                                   max_nodes=len(KEYS),
                                   use_break=use_break)
    client = OffloadClient(conn, bed.client_verbs(0))
    return bed, offload, client


def search_all(use_break: bool):
    bed, offload, client = build(use_break)
    rows = []

    def run():
        for index, key in enumerate(KEYS):
            offload.post_instances(1)
            wr_before = bed.server.nic.stats.get("total_wrs", 0)
            result = yield from client.call(offload.payload_for(key),
                                            timeout_ns=60_000_000)
            assert result.ok
            wrs = bed.server.nic.stats.get("total_wrs", 0) - wr_before
            rows.append((index + 1, result.latency_ns / 1000.0, wrs))
            if use_break:
                offload.finish_request(index)
            yield bed.sim.timeout(60_000)
        return rows

    return bed.run(run())


def main():
    plain = search_all(use_break=False)
    broken = search_all(use_break=True)
    rows = [(pos, f"{p_lat:.2f}", f"{b_lat:.2f}", b_wrs)
            for (pos, p_lat, _pw), (_pos, b_lat, b_wrs)
            in zip(plain, broken)]
    print(render_table(
        ["list position", "plain us", "break us", "break WRs"],
        rows, title="NIC-side list traversal (8-node list)"))
    print("\nok: the break stops the chain at the hit — deeper keys")
    print("cost more verbs, found keys stop the loop (Fig 6/13).")


if __name__ == "__main__":
    main()
