#!/usr/bin/env python3
"""Key-value gets served entirely by the server's NIC (paper §5.2/§5.4).

Builds a Memcached-style cuckoo-hash store on a simulated server,
attaches the Fig 9 hash-lookup offload for a remote client, and
compares NIC-served gets against the two classical designs:

* one-sided (FaRM-style): two dependent READs from the client,
* two-sided RPC: the server CPU parses, looks up, responds.

Run:  python examples/kv_offload.py
"""

from repro.apps import (
    MemcachedServer,
    OneSidedKvServer,
    RpcServer,
    STATUS_OK,
)
from repro.bench import Testbed, render_table
from repro.redn.offload import OffloadClient

KEYS = {0x101: b"alpha", 0x202: b"bravo" * 40, 0x303: b"charlie" * 400}


def redn_gets():
    bed = Testbed(num_clients=1)
    store = MemcachedServer(bed.server)
    for key, value in KEYS.items():
        store.set(key, value)
    offload, conn = store.attach_get_offload(
        bed.clients[0].nic, bed.client_pd(0), max_instances=16)
    offload.post_instances(len(KEYS) + 2)
    client = OffloadClient(conn, bed.client_verbs(0))

    def run():
        out = []
        for key, expected in KEYS.items():
            result = yield from client.call(offload.payload_for(key))
            assert result.ok and result.data == expected
            out.append((key, result.latency_ns / 1000.0))
        # A miss: no conditional fires, the client times out.
        miss = yield from client.call(offload.payload_for(0x999),
                                      timeout_ns=300_000)
        assert not miss.ok
        return out

    return bed.run(run())


def one_sided_gets():
    bed = Testbed(num_clients=1)
    server = OneSidedKvServer(bed.server)
    for key, value in KEYS.items():
        server.set(key, value)
    client = server.connect(bed.clients[0].nic, bed.client_pd(0))

    def run():
        out = []
        for key, expected in KEYS.items():
            value, latency, rtts = yield from client.get(key)
            assert value == expected and rtts == 2
            out.append((key, latency / 1000.0))
        return out

    return bed.run(run())


def two_sided_gets():
    bed = Testbed(num_clients=1)
    store = MemcachedServer(bed.server)
    for key, value in KEYS.items():
        store.set(key, value)
    server = RpcServer(store, mode="polling", workers=1)
    client = server.connect(bed.clients[0].nic, bed.client_pd(0))
    server.start()

    def run():
        out = []
        for key, expected in KEYS.items():
            status, value, latency = yield from client.get(key)
            assert status == STATUS_OK and value == expected
            out.append((key, latency / 1000.0))
        return out

    return bed.run(run())


def main():
    redn = dict(redn_gets())
    one_sided = dict(one_sided_gets())
    two_sided = dict(two_sided_gets())
    rows = [(hex(key), len(KEYS[key]),
             f"{redn[key]:.2f}", f"{one_sided[key]:.2f}",
             f"{two_sided[key]:.2f}")
            for key in KEYS]
    print(render_table(
        ["key", "value bytes", "RedN us", "one-sided us",
         "two-sided us"], rows,
        title="KV get latency: NIC offload vs baselines"))
    print("\nok: gets served with zero server CPU on the request path.")


if __name__ == "__main__":
    main()
