"""Tests for the RedN IR pipeline: builder -> IR -> passes -> linker.

Three pillars:

* **Differential lowering** — constructs built through the IR pipeline
  must land byte-identical WQE rings to the pre-refactor direct
  assembly, hand-replicated here as the golden reference. (The offload
  programs are covered end-to-end by ``tools/perf_smoke.py --check``'s
  result fingerprints.)
* **Table 2 costs** — the cost pass must reproduce the paper's C/A/E
  rows exactly: ``1C + 1A + 3E`` for if, ``3C + 2A + 4E`` for the
  recycled while (with both the response and trigger rearms).
* **Verifier failure modes** — seeded-invalid chains must be rejected
  with a typed :class:`ChainLintError` naming the offending WR.
"""

import pytest

from repro.ibv import wr_cas, wr_enable, wr_noop, wr_wait, wr_write
from repro.memory import HostMemory, ProtectionDomain
from repro.nic import Opcode, RNIC, Wqe, ctrl_word
from repro.nic.wqe import Sge, WQE_SLOT_SIZE
from repro.redn import ProgramBuilder, RecycledLoop, RednContext
from repro.redn.ir import (
    ArmCasOp,
    ArmWord,
    ChainLintError,
    ChainProgram,
    EnableOp,
    FieldRef,
    RawOp,
    RestoreOp,
    TemplateOp,
)
from repro.redn.linker import link, link_op
from repro.redn.movmachine import MovLoad, MovMachine
from repro.redn.passes import (
    chain_cost,
    eliminate_dead_templates,
    fuse_noop_runs,
    optimize,
    plan_ordering,
    verify,
    verify_or_raise,
)
from repro.sim import Simulator


def fresh_ctx(name="world"):
    """A fresh deterministic one-NIC world (its own simulator)."""
    sim = Simulator()
    memory = HostMemory(name=f"{name}-mem")
    nic = RNIC(sim, memory, name=f"{name}-nic")
    pd = ProtectionDomain(memory, name=f"{name}-pd")
    return RednContext(nic, pd, owner=name)


def ring_bytes(queue):
    """The raw WQE ring contents of a chain queue."""
    ring = queue.wq.ring
    return queue.memory.read(ring.addr, ring.size)


# ---------------------------------------------------------------------------
# Differential lowering: IR pipeline vs hand assembly
# ---------------------------------------------------------------------------


class TestDifferentialLowering:
    X, Y = 0x42, 0x77

    def _setup(self, name):
        """Identical allocations/queues for both lowering paths."""
        ctx = fresh_ctx(name)
        builder = ProgramBuilder(ctx, name="if")
        src, _ = ctx.alloc_registered(8, label="src")
        dst, dst_mr = ctx.alloc_registered(8, label="dst")
        ctl = builder.control_queue(name="ctl")
        worker = builder.worker_queue(name="wrk")
        branches = builder.worker_queue(name="brn")
        live = wr_write(src.addr, 8, dst.addr, dst_mr.rkey)
        live.wr_id = self.X
        return builder, ctl, worker, branches, live

    def test_if_construct_rings_byte_identical(self):
        # Path A: the IR pipeline (builder -> linker -> WQE bytes).
        b_ir, ctl_a, wrk_a, brn_a, live_a = self._setup("ir")
        branch = b_ir.template(brn_a, live_a, tag="if.branch")
        b_ir.emit_if(ctl_a, wrk_a, branch, compare_id=self.Y, tag="if")

        # Path B: the pre-refactor direct assembly, by hand. This is
        # the golden reference the IR pipeline must reproduce.
        b_ref, ctl_b, wrk_b, brn_b, live_b = self._setup("ref")
        tmpl = Wqe(opcode=Opcode.NOOP, wr_id=live_b.wr_id,
                   laddr=live_b.laddr, length=live_b.length,
                   raddr=live_b.raddr, flags=live_b.flags,
                   operand0=live_b.operand0, operand1=live_b.operand1,
                   wqe_count=live_b.wqe_count, target=live_b.target,
                   lkey=live_b.lkey, rkey=live_b.rkey,
                   sges=live_b.sges)
        branch_b = brn_b.post(tmpl)
        cas_b = wrk_b.post(wr_cas(
            branch_b.field_addr("ctrl"), brn_b.rkey,
            compare=ctrl_word(Opcode.NOOP, self.Y),
            swap=ctrl_word(live_b.opcode, self.Y),
            result_laddr=b_ref._scratch.addr, signaled=True))
        ctl_b.post(wr_enable(wrk_b.wq_num, cas_b.wr_index + 1))
        ctl_b.post(wr_wait(wrk_b.cq_num, wrk_b.signaled_posted))
        ctl_b.post(wr_enable(brn_b.wq_num, branch_b.wr_index + 1))

        for queue_a, queue_b in ((ctl_a, ctl_b), (wrk_a, wrk_b),
                                 (brn_a, brn_b)):
            assert ring_bytes(queue_a) == ring_bytes(queue_b), \
                queue_a.name

    def test_mov_load_ring_byte_identical(self):
        # Path A: MovLoad compiled through the IR (InjectWriteOp + aim).
        machine_a = MovMachine(fresh_ctx("ir"), name="mov")
        gen = machine_a.execute([MovLoad(0, 1)])
        next(gen)   # compile + post; never run the completion wait

        # Path B: the direct two-WRITE assembly with a raw raddr poke.
        machine_b = MovMachine(fresh_ctx("ref"), name="mov")
        queue = machine_b.queue
        w1 = queue.post(wr_write(machine_b.reg_addr(1), 8, 0,
                                 queue.rkey, signaled=False))
        w2 = queue.post(wr_write(0, 8, machine_b.reg_addr(0),
                                 machine_b.ram_mr.rkey, signaled=True))
        w1.poke("raddr", w2.field_addr("laddr"))
        queue.doorbell()

        assert ring_bytes(machine_a.queue) == ring_bytes(queue)


# ---------------------------------------------------------------------------
# Table 2 costs from the IR
# ---------------------------------------------------------------------------


class TestTable2Costs:
    def test_if_cost_is_1c_1a_3e(self):
        ctx = fresh_ctx("cost-if")
        builder = ProgramBuilder(ctx, name="if")
        src, _ = ctx.alloc_registered(8)
        dst, dst_mr = ctx.alloc_registered(8)
        ctl = builder.control_queue(name="ctl")
        worker = builder.worker_queue(name="wrk")
        branches = builder.worker_queue(name="brn")
        branch = builder.template(
            branches, wr_write(src.addr, 8, dst.addr, dst_mr.rkey),
            tag="if.branch")
        builder.emit_if(ctl, worker, branch, compare_id=5, tag="if")

        cost = builder.cost("if")
        assert (cost.copies, cost.atomics, cost.ordering) == (1, 1, 3)
        assert str(cost) == "1C + 1A + 3E"

    def test_recycled_while_cost_is_3c_2a_4e(self):
        """The full while shape: response template + CAS body + split
        restores + counter ADD + WAIT + both rearms + wrap."""
        ctx = fresh_ctx("cost-while")
        builder = ProgramBuilder(ctx, name="while")
        dummy, dummy_mr = ctx.alloc_registered(64, label="dummy")
        client = builder.worker_queue(name="client")
        trigger = builder.worker_queue(name="trig")
        resp = builder.template(
            client, wr_write(dummy.addr, 8, dummy.addr + 8,
                             dummy_mr.rkey), tag="while.resp")

        loop = RecycledLoop(builder, trigger.cq, name="srv")
        loop.body(wr_cas(resp.field_addr("ctrl"), client.rkey,
                         compare=0, swap=0, signaled=True),
                  tag="while.cas")
        loop.restore(resp, offset=0, length=8)
        loop.restore(resp, offset=8, length=56)
        loop.rearm(client)     # release the response template per lap
        loop.rearm(trigger)    # re-arm the trigger ring per lap
        loop.build()

        # WAIT does not count toward Table 2's E column here: the wrap
        # ENABLE + 2 rearm ENABLEs + the head WAIT are 4 E-verbs total.
        cost = builder.cost("while")
        assert (cost.copies, cost.atomics, cost.ordering) == (3, 2, 4)
        assert str(cost) == "3C + 2A + 4E"


# ---------------------------------------------------------------------------
# Verifier failure modes (seeded-invalid chains)
# ---------------------------------------------------------------------------


def _arm_target_world(target_queue_kind):
    """A template on ``target_queue_kind`` and a worker queue to arm
    it from; returns (builder, template_ref, worker)."""
    ctx = fresh_ctx("bad")
    builder = ProgramBuilder(ctx, name="bad")
    src, _ = ctx.alloc_registered(8)
    dst, dst_mr = ctx.alloc_registered(8)
    if target_queue_kind == "control":
        tq = builder.control_queue(name="tq")
    else:
        tq = builder.worker_queue(name="tq")
    worker = builder.worker_queue(name="wrk")
    branch = builder.template(
        tq, wr_write(src.addr, 8, dst.addr, dst_mr.rkey), tag="branch")
    return builder, branch, worker


class TestVerifierRejects:
    def test_upstream_cas_target(self):
        """A CAS aimed at a WR already fetched in doorbell order (the
        target sits at or before the CAS on the same queue)."""
        ctx = fresh_ctx("up")
        builder = ProgramBuilder(ctx, name="up")
        src, _ = ctx.alloc_registered(8)
        dst, dst_mr = ctx.alloc_registered(8)
        worker = builder.worker_queue(name="wrk")
        branch = builder.template(
            worker, wr_write(src.addr, 8, dst.addr, dst_mr.rkey),
            tag="up.branch")
        builder.link(ArmCasOp(worker, FieldRef(branch, "ctrl"),
                              compare=0, swap=ArmWord(branch),
                              signaled=True, tag="up.cas"))

        with pytest.raises(ChainLintError) as excinfo:
            verify_or_raise(builder.program)
        assert excinfo.value.check == "upstream-target"
        assert "up.branch" in str(excinfo.value)

    def test_enable_count_exceeds_produced(self):
        """ENABLE releasing further than the producer ever posted."""
        builder, branch, worker = _arm_target_world("worker")
        ctl = builder.control_queue(name="ctl")
        builder.link(EnableOp(ctl, branch.ir_op.queue, 5,
                              tag="bad.enable"))

        with pytest.raises(ChainLintError) as excinfo:
            verify_or_raise(builder.program)
        assert excinfo.value.check == "enable-mismatch"

    def test_swap_into_prefetched_window(self):
        """Arming a template on a *normal* (prefetching) queue: the
        NIC may have fetched the stale bytes already (§3.1)."""
        builder, branch, worker = _arm_target_world("control")
        builder.link(ArmCasOp(worker, FieldRef(branch, "ctrl"),
                              compare=0, swap=ArmWord(branch),
                              signaled=True, tag="bad.cas"))

        hazards = verify(builder.program)
        checks = {hazard.check for hazard in hazards}
        assert "prefetch-window" in checks
        with pytest.raises(ChainLintError):
            verify_or_raise(builder.program)

    def test_restore_shorter_than_image(self):
        """A full-slot restore of a multi-slot (SGE-carrying) WR would
        leave the tail slots corrupted after the first lap."""
        ctx = fresh_ctx("shadow")
        builder = ProgramBuilder(ctx, name="shadow")
        data, data_mr = ctx.alloc_registered(64)
        shadow, shadow_mr = ctx.alloc_registered(2 * WQE_SLOT_SIZE)
        worker = builder.worker_queue(name="wrk")
        wqe = wr_write(data.addr, 8, data.addr + 8, data_mr.rkey)
        wqe.sges = [Sge(data.addr + 16, 8)]
        wide = builder.emit(worker, wqe, tag="wide")

        with pytest.raises(ChainLintError) as excinfo:
            RestoreOp(worker, wide, 0, WQE_SLOT_SIZE, shadow.addr,
                      shadow_mr.rkey, tag="bad.restore")
        assert excinfo.value.check == "restore-truncated"

    def test_restore_overruns_image(self):
        ctx = fresh_ctx("overrun")
        builder = ProgramBuilder(ctx, name="overrun")
        data, data_mr = ctx.alloc_registered(64)
        shadow, shadow_mr = ctx.alloc_registered(2 * WQE_SLOT_SIZE)
        worker = builder.worker_queue(name="wrk")
        wr = builder.emit(worker, wr_write(data.addr, 8, data.addr + 8,
                                           data_mr.rkey), tag="one")

        with pytest.raises(ChainLintError) as excinfo:
            RestoreOp(worker, wr, 32, WQE_SLOT_SIZE, shadow.addr,
                      shadow_mr.rkey, tag="bad.restore")
        assert excinfo.value.check == "restore-overrun"


# ---------------------------------------------------------------------------
# Optimization passes (deferred programs)
# ---------------------------------------------------------------------------


class TestOptimizerPasses:
    def _deferred(self):
        """A deferred (built-but-unlinked) program: one live CAS, one
        referenced template, one dead template, a NOOP run."""
        ctx = fresh_ctx("opt")
        builder = ProgramBuilder(ctx, name="opt")
        src, _ = ctx.alloc_registered(8)
        dst, dst_mr = ctx.alloc_registered(8)
        worker = builder.worker_queue(name="wrk")
        branches = builder.worker_queue(name="brn")

        program = ChainProgram("opt")
        live = wr_write(src.addr, 8, dst.addr, dst_mr.rkey)
        used = TemplateOp(branches, live, tag="used")
        dead = TemplateOp(branches,
                          wr_write(src.addr, 8, dst.addr, dst_mr.rkey,
                                   signaled=False), tag="dead")
        for _ in range(3):
            program.append(RawOp(worker, wr_noop(), tag="pad"))
        program.append(used)
        program.append(dead)
        program.append(ArmCasOp(worker, FieldRef(used, "ctrl"),
                                compare=0, swap=ArmWord(used),
                                signaled=True, tag="cas"))
        return program

    def test_dead_template_elimination(self):
        program = self._deferred()
        removed = eliminate_dead_templates(program)
        assert removed == 1
        tags = [op.tag for op in program.ops]
        assert "dead" not in tags and "used" in tags
        assert [op.index for op in program.ops] == list(
            range(len(program.ops)))

    def test_noop_fusion(self):
        program = self._deferred()
        fused = fuse_noop_runs(program)
        assert fused == 2   # three adjacent pads fuse into one
        assert sum(1 for op in program.ops if op.tag == "pad") == 1

    def test_optimize_bundle_then_link(self):
        program = self._deferred()
        report = optimize(program)
        assert report["dead_templates_removed"] == 1
        assert report["noops_fused"] == 2
        link(program)
        assert verify(program) == []

    def test_passes_refuse_linked_programs(self):
        ctx = fresh_ctx("linked")
        builder = ProgramBuilder(ctx, name="linked")
        worker = builder.worker_queue(name="wrk")
        builder.emit(worker, wr_noop(), tag="nop")

        with pytest.raises(ChainLintError) as excinfo:
            eliminate_dead_templates(builder.program)
        assert excinfo.value.check == "already-linked"

    def test_plan_ordering_flags_static_managed_queue(self):
        """A managed queue with no modification targets and no
        ENABLE-gating burns fetch holds for nothing: the planner must
        recommend normal (batched) ordering with a saving estimate."""
        ctx = fresh_ctx("plan")
        builder = ProgramBuilder(ctx, name="plan")
        data, data_mr = ctx.alloc_registered(64)
        worker = builder.worker_queue(name="wrk")
        for index in range(4):
            builder.emit(worker, wr_write(data.addr, 8,
                                          data.addr + 8 * index,
                                          data_mr.rkey), tag="w")

        plans = plan_ordering(builder.program)
        [plan] = [p for p in plans if p["queue"] == "wrk"]
        assert plan["current"] == "doorbell"
        assert plan["recommended"] == "normal"
        assert plan["est_saving_ns"] > 0
