"""Tests for repro.obs.critpath: phase attribution, causal path, CLI.

The exactness contract under test: for any request window, the
per-phase nanosecond attributions partition the window — they sum to
the end-to-end latency with no double counting and no unattributed
gaps — and the measured synchronisation-verb tallies (``sync_counts``)
agree with the static ``chain_cost`` E-term for every built-in
offload.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.ibv import wr_noop, wr_write
from repro.obs import (
    PHASES,
    Tracer,
    profile_trace,
    profile_tracer,
    sync_counts,
)
from repro.obs.critpath import (
    NormalizedEvent,
    _attribute,
    events_from_tracer,
    profile_events,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def ev(ph, cat, name, ts, dur=0, track="nic/t", args=None):
    return NormalizedEvent(ph, cat, name, track, ts, dur, args)


def span(start, end, phase, detail="d"):
    return (start, end, phase, detail)


# -- phase attribution (synthetic) -----------------------------------------


class TestAttribution:
    def test_empty_window_all_queueing(self):
        phases, details = _attribute([], 0, 100)
        assert phases["queueing"] == 100
        assert sum(phases.values()) == 100
        assert details[("queueing", "idle")] == 100

    def test_partition_is_exact_with_overlaps(self):
        spans = [
            span(10, 20, "fetch"),
            span(15, 40, "pu_exec"),     # wins over fetch on [15,20)
            span(35, 50, "dma"),         # loses to pu_exec on [35,40)
            span(45, 70, "wire"),        # loses to dma on [45,50)
            span(90, 95, "cqe"),
        ]
        phases, _ = _attribute(spans, 0, 100)
        assert phases == {"pu_exec": 25, "dma": 10, "wire": 20,
                          "fetch": 5, "cqe": 5, "wait_blocked": 0,
                          "queueing": 35}
        assert sum(phases.values()) == 100

    def test_priority_order_matches_taxonomy(self):
        # Fully overlapping spans: the attribution must follow PHASES
        # order, with every lower-priority phase getting zero.
        for index, phase in enumerate(PHASES[:-1]):
            spans = [span(0, 10, lower) for lower in PHASES[index:-1]]
            phases, _ = _attribute(spans, 0, 10)
            assert phases[phase] == 10, phase
            assert sum(phases.values()) == 10

    def test_wait_blocked_covered_by_execute(self):
        # A WAIT blocked while a PU executes is not the bottleneck.
        spans = [span(0, 100, "wait_blocked", "WAIT(cq3)"),
                 span(40, 60, "pu_exec", "SEND")]
        phases, details = _attribute(spans, 0, 100)
        assert phases["wait_blocked"] == 80
        assert phases["pu_exec"] == 20
        assert details[("wait_blocked", "WAIT(cq3)")] == 80

    def test_spans_outside_window_ignored_by_profile(self):
        events = [
            ev("X", "request", "req", 100, 50),
            ev("X", "fetch", "fetch[64B]", 0, 30),     # before window
            ev("X", "fetch", "fetch[64B]", 90, 20),    # clipped to 10
            ev("X", "dma", "dma[64B]", 140, 40),       # clipped to 10
        ]
        profile = profile_events(events)
        (request,) = profile.requests
        assert request.phases["fetch"] == 10
        assert request.phases["dma"] == 10
        assert request.phases["queueing"] == 30
        assert sum(request.phases.values()) == request.total_ns == 50

    def test_deterministic_tie_break(self):
        # Same-priority overlapping spans: latest-started wins, and the
        # outcome is identical across repeated runs.
        spans = [span(0, 10, "dma", "a"), span(5, 10, "dma", "b")]
        results = {tuple(sorted(_attribute(list(spans), 0, 10)[1].items()))
                   for _ in range(5)}
        assert len(results) == 1
        _, details = _attribute(spans, 0, 10)
        assert details[("dma", "a")] == 5
        assert details[("dma", "b")] == 5


# -- live traces -----------------------------------------------------------


def drive_marked_writes(lo, tracer, count=3):
    """WRITE chain with one request_span per verb call."""
    src, _ = lo.buffer(64)
    dst, dst_mr = lo.buffer(64)

    def run():
        for index in range(count):
            start = lo.sim.now
            yield from lo.verbs.execute_sync_checked(
                lo.qp_a, wr_write(src.addr, 64, dst.addr, dst_mr.rkey,
                                  signaled=True))
            tracer.request_span(f"write:{index}", start)
        yield lo.sim.timeout(10_000)

    lo.run(run())


class TestLiveProfile:
    @pytest.fixture
    def traced(self, lo):
        tracer = Tracer(lo.sim, name="test")
        tracer.attach_nic(lo.nic)
        yield lo, tracer
        tracer.close()

    def test_requests_sum_exactly(self, traced):
        lo, tracer = traced
        drive_marked_writes(lo, tracer, count=3)
        profile = profile_tracer(tracer)
        assert [request.label for request in profile.requests] == \
            ["write:0", "write:1", "write:2"]
        for request in profile.requests:
            assert sum(request.phases.values()) == request.total_ns
            assert request.total_ns > 0
            assert request.phases["pu_exec"] > 0
            assert request.phases["fetch"] > 0

    def test_critical_path_is_causal(self, traced):
        lo, tracer = traced
        drive_marked_writes(lo, tracer, count=1)
        profile = profile_tracer(tracer)
        (request,) = profile.requests
        assert request.path, "no critical path reconstructed"
        # Hops are time-ordered and contributions partition the span
        # from the window start to the last traced event (the remainder
        # is host-side completion observation with no traced event).
        ends = [hop["end_ns"] for hop in request.path]
        assert ends == sorted(ends)
        contrib = sum(hop["contrib_ns"] for hop in request.path)
        assert contrib == request.path[-1]["end_ns"] - request.start
        assert contrib <= request.total_ns
        names = [hop["name"] for hop in request.path]
        # The walk roots at the request's trigger: the post or (when
        # both instants share a timestamp) the doorbell it rang.
        assert names[0].startswith("post:") or names[0] == "doorbell"
        assert any(name.startswith("op:WRITE") for name in names)

    def test_synthetic_window_without_requests(self, traced):
        lo, tracer = traced
        src, _ = lo.buffer(64)
        dst, dst_mr = lo.buffer(64)
        lo.run(lo.verbs.execute_sync_checked(
            lo.qp_a, wr_write(src.addr, 64, dst.addr, dst_mr.rkey,
                              signaled=True)))
        profile = profile_tracer(tracer)
        (request,) = profile.requests
        assert request.label == "trace"
        assert sum(request.phases.values()) == request.total_ns

    def test_sync_counts_zero_for_plain_chain(self, traced):
        lo, tracer = traced
        drive_marked_writes(lo, tracer, count=2)
        counts = sync_counts(events_from_tracer(tracer))
        assert counts["E"] == counts["WAIT"] == counts["ENABLE"] == 0
        assert counts["ops"]["WRITE"] == 2

    def test_folded_lines_format(self, traced):
        lo, tracer = traced
        drive_marked_writes(lo, tracer, count=2)
        profile = profile_tracer(tracer)
        lines = profile.folded_lines()
        assert lines
        total = 0
        for line in lines:
            stack, ns = line.rsplit(" ", 1)
            label, phase, _detail = stack.split(";")
            assert label.startswith("write:")
            assert phase in PHASES
            total += int(ns)
        assert total == profile.total_ns

    def test_trace_roundtrip_matches_live(self, traced, tmp_path):
        """Chrome JSON (float us) reproduces the live integer-ns
        attribution exactly."""
        lo, tracer = traced
        drive_marked_writes(lo, tracer, count=2)
        live = profile_tracer(tracer)
        path = tmp_path / "trace.json"
        tracer.export_chrome(path)
        loaded = profile_trace(str(path))
        assert loaded.to_dict() == live.to_dict()

    def test_record_metrics_histograms(self, traced):
        lo, tracer = traced
        drive_marked_writes(lo, tracer, count=3)
        profile = profile_tracer(tracer)
        profile.record_metrics(lo.sim.metrics)
        snap = lo.sim.metrics.snapshot()["histograms"]
        assert snap["obs.critpath.request_ns"]["count"] == 3
        for phase in PHASES:
            assert snap[f"obs.critpath.{phase}_ns"]["count"] == 3
        assert snap["obs.critpath.request_ns"]["sum"] == live_total(profile)


def live_total(profile):
    return sum(request.total_ns for request in profile.requests)


# -- E-count cross-check against chain_cost (built-in offloads) ------------


class TestOffloadSelfcheck:
    """``--selfcheck`` asserts, per built-in offload: exact phase sums
    for every request AND the measured E tally's relation to the static
    ``chain_cost`` ordering term (exact / at-most / laps x per-lap)."""

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable,
             str(REPO_ROOT / "tools" / "latency_profile.py"), *argv],
            capture_output=True, text=True)

    @pytest.mark.parametrize("offload", [
        "hash-lookup", "hash-lookup-par", "list-traversal",
        "list-traversal-break", "recycled-get"])
    def test_selfcheck_passes(self, offload):
        result = self._run("--offload", offload, "--calls", "2",
                           "--selfcheck", "--json")
        assert result.returncode == 0, result.stderr
        assert "selfcheck ok" in result.stderr
        payload = json.loads(result.stdout)
        assert len(payload["requests"]) == 2
        for request in payload["requests"]:
            assert sum(request["phases"].values()) == request["total_ns"]
        assert payload["counts"]["E"] > 0


# -- CLI -------------------------------------------------------------------


class TestCli:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable,
             str(REPO_ROOT / "tools" / "latency_profile.py"), *argv],
            capture_output=True, text=True)

    def test_breakdown_and_flame_on_trace_file(self, lo, tmp_path):
        tracer = Tracer(lo.sim, name="test")
        tracer.attach_nic(lo.nic)
        try:
            drive_marked_writes(lo, tracer, count=2)
            trace = tmp_path / "trace.json"
            tracer.export_chrome(trace)
        finally:
            tracer.close()
        folded = tmp_path / "stacks.folded"
        result = self._run(str(trace), "--flame", str(folded),
                           "--breakdown", "--top", "1")
        assert result.returncode == 0, result.stderr
        assert "write:" in result.stdout
        assert "queueing" in result.stdout
        lines = folded.read_text().splitlines()
        assert lines and all(";" in line for line in lines)

    def test_fail_if_phase_gate(self, tmp_path):
        flame = tmp_path / "s.folded"
        ok = self._run("--offload", "hash-lookup", "--calls", "2",
                       "--fail-if-phase", "wait_blocked>100000000",
                       "--flame", str(flame))
        assert ok.returncode == 0, ok.stderr
        assert flame.exists()
        bad = self._run("--offload", "hash-lookup", "--calls", "2",
                        "--fail-if-phase", "wait_blocked>1")
        assert bad.returncode == 1
        assert "wait_blocked" in bad.stderr

    def test_bad_phase_bound_rejected(self):
        result = self._run("--offload", "hash-lookup",
                           "--fail-if-phase", "nonsense>10")
        assert result.returncode != 0

    def test_requires_exactly_one_source(self):
        assert self._run().returncode != 0
