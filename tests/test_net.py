"""Unit tests for hosts, CPU scheduling, fabric, and failure injection."""

import pytest

from repro.net import (
    CpuScheduler,
    CrashInjector,
    Fabric,
    FabricError,
    Host,
    RestartPolicy,
    TABLE6_COMPONENTS,
    availability_from_mttf,
    offload_availability,
)
from repro.sim import Simulator


class TestCpuScheduler:
    def test_uncontended_run_takes_exact_time(self, sim):
        cpu = CpuScheduler(sim, num_cores=2)

        def work():
            yield from cpu.run(10_000)
            return sim.now

        assert sim.run_process(work()) == 10_000

    def test_contended_runs_queue(self, sim):
        cpu = CpuScheduler(sim, num_cores=1, time_slice_ns=1_000,
                           context_switch_ns=100)
        finish_times = []

        def work(name):
            yield from cpu.run(5_000)
            finish_times.append((name, sim.now))

        for name in ("a", "b"):
            sim.process(work(name))
        sim.run()
        # Both finish; the second cannot finish before ~2x the work.
        assert len(finish_times) == 2
        assert max(t for _n, t in finish_times) >= 10_000

    def test_time_slicing_interleaves(self, sim):
        """Under contention neither thread monopolizes the core."""
        cpu = CpuScheduler(sim, num_cores=1, time_slice_ns=1_000,
                           context_switch_ns=0)
        finished = []

        def work(name):
            yield from cpu.run(3_000)
            finished.append((sim.now, name))

        sim.process(work("a"))
        sim.process(work("b"))
        sim.run()
        times = sorted(t for t, _n in finished)
        # With slicing, completions are close together (interleaved),
        # not strictly serialized (3000 then 6000 would be FIFO-run).
        assert times[1] - times[0] <= 2_000

    def test_block_on_pays_wakeup(self, sim):
        cpu = CpuScheduler(sim, num_cores=2, wakeup_ns=4_000)
        event = sim.event()

        def sleeper():
            yield from cpu.block_on(event)
            return sim.now

        def waker():
            yield sim.timeout(1_000)
            event.trigger(None)

        sim.process(waker())
        finished = sim.run_process(sleeper())
        assert finished >= 1_000 + 4_000

    def test_halt_stops_progress(self, sim):
        cpu = CpuScheduler(sim, num_cores=1)
        progress = []

        def work():
            while True:
                yield from cpu.run(1_000)
                progress.append(sim.now)

        sim.process(work())
        sim.run(until=5_500)
        cpu.halt()
        count_at_halt = len(progress)
        sim.run(until=50_000)
        assert len(progress) <= count_at_halt + 1

    def test_pinned_core_reduces_capacity(self, sim):
        cpu = CpuScheduler(sim, num_cores=1)

        def pinner():
            grant = yield cpu.acquire_core()
            yield sim.timeout(10_000)
            cpu.release_core(grant)

        def worker():
            yield from cpu.run(100)
            return sim.now

        sim.process(pinner())
        proc = sim.process(worker())
        sim.run()
        assert proc.value >= 10_000   # had to wait for the pinner


class TestFabric:
    def test_latency_lookup(self, sim):
        from repro.memory import HostMemory
        from repro.nic import RNIC
        nic_a = RNIC(sim, HostMemory(), name="a")
        nic_b = RNIC(sim, HostMemory(), name="b")
        fabric = Fabric(sim)
        fabric.connect(nic_a, nic_b, one_way_ns=500)
        assert nic_a.link_latency_to(nic_b) == 500
        assert nic_b.link_latency_to(nic_a) == 500

    def test_unlinked_nics_rejected(self, sim):
        from repro.memory import HostMemory
        from repro.nic import RNIC
        nic_a = RNIC(sim, HostMemory(), name="a")
        nic_b = RNIC(sim, HostMemory(), name="b")
        nic_c = RNIC(sim, HostMemory(), name="c")
        fabric = Fabric(sim)
        fabric.connect(nic_a, nic_b)
        with pytest.raises(FabricError):
            nic_a.link_latency_to(nic_c)

    def test_self_link_rejected(self, sim):
        from repro.memory import HostMemory
        from repro.nic import RNIC
        nic = RNIC(sim, HostMemory())
        with pytest.raises(FabricError):
            Fabric(sim).connect(nic, nic)

    def test_loopback_latency_is_zero(self, sim):
        from repro.memory import HostMemory
        from repro.nic import RNIC
        nic = RNIC(sim, HostMemory())
        assert nic.link_latency_to(nic) == 0


class TestHostProcesses:
    def test_crash_reclaims_memory(self, sim):
        host = Host(sim, "h")
        proc = host.spawn_process("victim")
        allocation = proc.alloc(64)
        host.crash_process(proc)
        assert allocation.freed

    def test_hull_transfer_survives_crash(self, sim):
        host = Host(sim, "h")
        hull = host.spawn_process("hull")
        child = host.spawn_process("child", parent=hull)
        allocation = child.alloc(64)
        child.transfer_rdma_resources_to(hull)
        host.crash_process(child)
        assert not allocation.freed

    def test_crash_destroys_queues(self, sim):
        host = Host(sim, "h")
        proc = host.spawn_process("victim")
        pd = proc.create_pd()
        qp = proc.create_qp(pd)
        host.crash_process(proc)
        assert qp.send_wq.destroyed
        assert qp.recv_wq.destroyed

    def test_crash_interrupts_threads(self, sim):
        host = Host(sim, "h")
        proc = host.spawn_process("victim")

        def loop():
            while True:
                yield sim.timeout(1_000)

        thread = proc.start_thread(loop())
        host.crash_process(proc)
        sim.run(until=10_000)
        assert thread.triggered

    def test_double_crash_is_noop(self, sim):
        host = Host(sim, "h")
        proc = host.spawn_process("victim")
        host.crash_process(proc)
        host.crash_process(proc)   # no double-free

    def test_kernel_panic_halts_cpu_not_nic(self, sim):
        host = Host(sim, "h")
        host.kernel_panic()
        assert not host.os_alive
        assert not host.cpu.running
        assert host.nic.alive


class TestFailureMath:
    def test_table6_constants(self):
        assert TABLE6_COMPONENTS["OS"].afr_percent == 41.9
        assert TABLE6_COMPONENTS["NIC"].mttf_hours == 876_000

    def test_availability_monotone_in_mttf(self):
        low = availability_from_mttf(1_000)
        high = availability_from_mttf(1_000_000)
        assert high > low

    def test_bad_mttf_rejected(self):
        with pytest.raises(ValueError):
            availability_from_mttf(0)

    def test_offload_availability_beats_cpu_path(self):
        assert offload_availability(False) > offload_availability(True)


class TestCrashInjector:
    def test_scheduled_kill_and_restart(self, sim):
        host = Host(sim, "h")
        proc = host.spawn_process("svc")
        restarted = []
        injector = CrashInjector(sim, host)
        injector.kill_process_at(
            1_000_000, proc, on_restart=lambda: restarted.append(sim.now),
            restart=RestartPolicy(detect_ns=1_000, bootstrap_ns=2_000,
                                  rebuild_ns=3_000))
        sim.run()
        assert not proc.alive
        assert restarted == [1_006_000]
        kinds = [kind for _t, kind, _n in injector.events]
        assert kinds == ["crash", "restarted"]

    def test_panic_at(self, sim):
        host = Host(sim, "h")
        injector = CrashInjector(sim, host)
        injector.panic_at(500_000)
        sim.run()
        assert not host.os_alive

    def test_restart_policy_totals(self):
        policy = RestartPolicy()
        # The paper's ~1s bootstrap + ~1.25s rebuild dominates.
        assert policy.total_outage_ns >= 2_250_000_000
