"""Unit tests: workload generation and the timing model's knobs."""

import pytest

from repro.apps import ClosedLoopClient, WorkloadMix, populate
from repro.nic import CONNECTX5_TIMING, Opcode
from repro.sim import Simulator


class TestWorkloadMix:
    def test_pure_gets(self):
        mix = WorkloadMix(1.0)
        assert all(mix.next_is_get() for _ in range(50))

    def test_pure_sets(self):
        mix = WorkloadMix(0.0)
        assert not any(mix.next_is_get() for _ in range(50))

    def test_ratio_converges(self):
        mix = WorkloadMix(0.75)
        gets = sum(mix.next_is_get() for _ in range(1000))
        assert 700 <= gets <= 800

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMix(1.5)


class TestClosedLoopClient:
    def _client(self, sim, latency_ns=1_000, ok=True, **kwargs):
        def get_fn(key):
            yield sim.timeout(latency_ns)
            return ok

        return ClosedLoopClient(sim, "c", [1, 2, 3], 64, get_fn,
                                **kwargs)

    def test_run_counts_ops_and_latency(self):
        sim = Simulator()
        client = self._client(sim, latency_ns=2_000)
        sim.run_process(client.run(10))
        assert client.operations == 10
        assert len(client.get_latencies) == 10
        assert client.get_latencies.avg_us == 2.0

    def test_keys_cycle_sequentially(self):
        sim = Simulator()
        seen = []

        def get_fn(key):
            seen.append(key)
            yield sim.timeout(10)
            return True

        client = ClosedLoopClient(sim, "c", [7, 8], 64, get_fn)
        sim.run_process(client.run(5))
        assert seen == [7, 8, 7, 8, 7]

    def test_failures_counted(self):
        sim = Simulator()
        client = self._client(sim, ok=False)
        sim.run_process(client.run(4))
        assert client.failures == 4

    def test_think_time_paces(self):
        sim = Simulator()
        client = self._client(sim, latency_ns=100,
                              think_time_ns=10_000)
        sim.run_process(client.run(5))
        assert sim.now >= 5 * 10_100

    def test_run_until_deadline(self):
        sim = Simulator()
        client = self._client(sim, latency_ns=1_000)
        sim.run_process(client.run_until(10_500))
        assert 10 <= client.operations <= 11

    def test_run_until_clamps_final_think_at_deadline(self):
        """The last think sleep must not overshoot the deadline: the
        generator returns at the deadline, not a full think later."""
        sim = Simulator()
        client = self._client(sim, latency_ns=1_000,
                              think_time_ns=10_000)
        sim.run_process(client.run_until(5_500))
        assert client.operations == 1
        assert sim.now == 5_500      # clamped; was 11_000 pre-clamp

    def test_run_until_overshoot_is_only_the_inflight_op(self):
        """A deadline passing mid-operation lets the op complete (no
        preemption) but skips the post-op think entirely."""
        sim = Simulator()
        client = self._client(sim, latency_ns=1_000,
                              think_time_ns=10_000)
        sim.run_process(client.run_until(500))
        assert client.operations == 1
        assert sim.now == 1_000      # op completion, zero think

    def test_mix_drives_sets(self):
        sim = Simulator()
        sets = []

        def get_fn(key):
            yield sim.timeout(10)
            return True

        def set_fn(key, value):
            sets.append((key, len(value)))
            yield sim.timeout(10)
            return True

        client = ClosedLoopClient(sim, "c", [1], 32, get_fn, set_fn,
                                  mix=WorkloadMix(0.5))
        sim.run_process(client.run(10))
        assert len(sets) == 5
        assert all(size == 32 for _k, size in sets)

    def test_populate(self):
        class Store:
            def __init__(self):
                self.data = {}

            def set(self, key, value):
                self.data[key] = value

        store = Store()
        populate(store, [1, 2], 16)
        assert store.data[1] == bytes([1]) * 16


class TestTimingModel:
    def test_with_overrides_is_a_copy(self):
        altered = CONNECTX5_TIMING.with_overrides(doorbell_ns=999)
        assert altered.doorbell_ns == 999
        assert CONNECTX5_TIMING.doorbell_ns != 999

    def test_payload_costs_scale_linearly(self):
        t = CONNECTX5_TIMING
        assert t.payload_wire_ns(0) == 0
        assert t.payload_wire_ns(65536) > 50 * t.payload_wire_ns(1024)
        assert t.payload_pcie_ns(65536) == int(
            65536 / t.pcie_bytes_per_ns)

    def test_occupancy_lookup(self):
        t = CONNECTX5_TIMING
        assert t.occupancy(Opcode.WRITE) == 127
        assert t.occupancy(Opcode.WAIT) == 20
        assert t.occupancy(0xFFFF) > 0   # unknown verbs get a default

    def test_atomic_unit_implies_table3_rate(self):
        # 1 / atomic_unit_ns ~ 8.4 M CAS/s (Table 3's calibration).
        rate = 1e9 / CONNECTX5_TIMING.atomic_unit_ns / 1e6
        assert 8.0 <= rate <= 8.8

    def test_wire_rate_is_ib_goodput(self):
        # ~92 Gb/s effective (Table 4's single-port 64KB ceiling).
        gbps = CONNECTX5_TIMING.wire_bytes_per_ns * 8
        assert 85 <= gbps <= 100

    def test_doorbell_batch_pricing(self):
        """A coalesced N-WQE ring write costs one doorbell plus a
        per-entry increment — strictly cheaper than N doorbells."""
        t = CONNECTX5_TIMING
        assert t.doorbell_batch_ns(0) == t.doorbell_ns
        assert t.doorbell_batch_ns(1) == t.doorbell_ns
        assert t.doorbell_batch_ns(8) == (
            t.doorbell_ns + 7 * t.doorbell_batch_entry_ns)
        assert t.doorbell_batch_ns(8) < 8 * t.doorbell_ns
