"""End-to-end tests: the Fig 9 hash-get offload across two hosts."""

import pytest

from repro.datastructs import BUCKET_SIZE, CuckooTable, SlabStore
from repro.ibv import VerbsContext
from repro.memory import HostMemory, ProtectionDomain
from repro.net import Fabric
from repro.nic import RNIC
from repro.offloads.hash_lookup import HashGetOffload, hash_get_payload
from repro.redn import RednContext
from repro.redn.offload import OffloadClient, OffloadConnection
from repro.sim import Simulator


class HashRig:
    """Server (table + offload) and client on separate hosts."""

    def __init__(self, parallel=False, buckets=2, num_buckets=256):
        self.sim = Simulator()
        self.server_mem = HostMemory(name="srv", size=64 * 1024 * 1024)
        self.client_mem = HostMemory(name="cli")
        self.server_nic = RNIC(self.sim, self.server_mem, name="snic")
        self.client_nic = RNIC(self.sim, self.client_mem, name="cnic")
        Fabric(self.sim).connect(self.server_nic, self.client_nic)
        self.server_pd = ProtectionDomain(self.server_mem, name="spd")
        self.client_pd = ProtectionDomain(self.client_mem, name="cpd")
        self.ctx = RednContext(self.server_nic, self.server_pd,
                               owner="kv-server")

        slab_alloc = self.ctx.alloc(8 * 1024 * 1024, label="slab")
        table_alloc = self.ctx.alloc(num_buckets * BUCKET_SIZE,
                                     label="table")
        # One region covering table + slab simplifies rkey plumbing.
        self.data_mr = self.server_pd.register(slab_alloc)
        self.table_mr = self.server_pd.register(table_alloc)
        self.slab = SlabStore(self.server_mem, slab_alloc)
        self.table = CuckooTable(self.server_mem, table_alloc,
                                 num_buckets, self.slab)

        self.conn = OffloadConnection(
            self.ctx, self.client_nic, self.client_pd,
            num_lanes=buckets if parallel else 1, name="kv")
        # READs touch the table region; responses gather from the slab.
        # Register one umbrella region over all server DRAM the program
        # touches (table + slab) for the offload's rkey.
        self.offload = HashGetOffload(
            self.ctx, self.table, self.table_mr, self.conn,
            parallel=parallel, buckets=buckets)
        self.verbs = VerbsContext(self.sim, name="cli-verbs")
        self.client = OffloadClient(self.conn, self.verbs)

    def get(self, key, timeout_ns=2_000_000):
        def run():
            result = yield from self.client.call(
                self.offload.payload_for(key), timeout_ns=timeout_ns)
            return result
        return self.sim.run_process(run())


def test_hit_returns_value():
    rig = HashRig()
    rig.table.insert(0xAB, b"value-for-ab")
    rig.offload.post_instances(1)
    result = rig.get(0xAB)
    assert result.ok
    assert result.data == b"value-for-ab"


def test_miss_times_out():
    rig = HashRig()
    rig.table.insert(0xAB, b"present")
    rig.offload.post_instances(1)
    result = rig.get(0xCD)
    assert not result.ok


def test_second_bucket_hit_sequential():
    rig = HashRig()
    rig.table.insert(0x77, b"second-bucket", force_bucket=1)
    rig.offload.post_instances(1)
    result = rig.get(0x77)
    assert result.ok
    assert result.data == b"second-bucket"


def test_second_bucket_hit_parallel():
    rig = HashRig(parallel=True)
    rig.table.insert(0x77, b"parallel-hit", force_bucket=1)
    rig.offload.post_instances(1)
    result = rig.get(0x77)
    assert result.ok
    assert result.data == b"parallel-hit"


def test_parallel_faster_on_second_bucket():
    """Fig 11: RedN-Parallel hides the second-bucket probe latency."""
    seq = HashRig(parallel=False)
    par = HashRig(parallel=True)
    for rig in (seq, par):
        rig.table.insert(0x55, b"x" * 64, force_bucket=1)
        rig.offload.post_instances(1)
    seq_lat = seq.get(0x55).latency_ns
    par_lat = par.get(0x55).latency_ns
    assert par_lat < seq_lat
    # The paper reports >= ~3 us of extra latency for sequential.
    assert seq_lat - par_lat >= 1_000


def test_many_sequential_requests():
    rig = HashRig()
    keys = list(range(1, 21))
    for key in keys:
        rig.table.insert(key, f"value-{key}".encode())
    rig.offload.post_instances(len(keys))
    for key in keys:
        result = rig.get(key)
        assert result.ok, f"key {key} failed"
        assert result.data == f"value-{key}".encode()


def test_dynamic_value_sizes():
    rig = HashRig()
    sizes = [1, 64, 1024, 4096]
    for index, size in enumerate(sizes, start=1):
        rig.table.insert(index, bytes([index]) * size)
    rig.offload.post_instances(len(sizes))
    for index, size in enumerate(sizes, start=1):
        result = rig.get(index)
        assert result.ok
        assert result.data == bytes([index]) * size


def test_latency_matches_table5():
    """64B hash get ~5.7 us median (paper Table 5)."""
    rig = HashRig()
    rig.table.insert(0x10, b"z" * 64, force_bucket=0)
    rig.offload.post_instances(3)
    latencies = [rig.get(0x10).latency_ns for _ in range(3)]
    median = sorted(latencies)[1]
    assert 4_000 <= median <= 7_500, f"median {median}ns"


def test_no_cpu_on_request_path():
    """The server never runs host code between trigger and response."""
    rig = HashRig()
    rig.table.insert(0x99, b"cpu-free")
    rig.offload.post_instances(1)
    # No server-side process exists in this rig beyond setup: success
    # itself demonstrates the NIC served the request.
    result = rig.get(0x99)
    assert result.ok and result.data == b"cpu-free"


def test_payload_layout():
    rig = HashRig()
    payload = hash_get_payload(rig.table, 0x1234, buckets=2)
    assert len(payload) == 32
    from repro.nic import Opcode, split_ctrl
    word = int.from_bytes(payload[0:8], "big")
    assert split_ctrl(word) == (Opcode.NOOP, 0x1234)
    addr1 = int.from_bytes(payload[16:24], "big")
    assert addr1 in rig.table.candidate_addrs(0x1234)
