"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Resource,
    SimulationError,
    Simulator,
    Store,
    TokenBucket,
    quantize_delay,
)


class TestEvents:
    def test_timeout_advances_clock(self, sim):
        def proc():
            yield sim.timeout(100)
            return sim.now

        assert sim.run_process(proc()) == 100

    def test_zero_timeout_is_legal(self, sim):
        def proc():
            yield sim.timeout(0)
            return sim.now

        assert sim.run_process(proc()) == 0

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1)

    def test_event_carries_value(self, sim):
        event = sim.event()

        def producer():
            yield sim.timeout(10)
            event.trigger("payload")

        def consumer():
            value = yield event
            return value

        sim.process(producer())
        assert sim.run_process(consumer()) == "payload"

    def test_event_double_trigger_is_error(self, sim):
        event = sim.event()
        event.trigger(1)
        with pytest.raises(SimulationError):
            event.trigger(2)

    def test_failed_event_raises_in_waiter(self, sim):
        event = sim.event()

        def failer():
            yield sim.timeout(5)
            event.fail(RuntimeError("boom"))

        def waiter():
            yield event

        sim.process(failer())
        proc = sim.process(waiter())
        sim.run()
        assert isinstance(proc.exception, RuntimeError)

    def test_callback_on_already_triggered_event_runs(self, sim):
        event = sim.event()
        event.trigger(42)
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == [42]


class TestProcesses:
    def test_process_return_value(self, sim):
        def proc():
            yield sim.timeout(1)
            return "done"

        assert sim.run_process(proc()) == "done"

    def test_process_waits_on_process(self, sim):
        def inner():
            yield sim.timeout(50)
            return 7

        def outer():
            value = yield sim.process(inner())
            return (value, sim.now)

        assert sim.run_process(outer()) == (7, 50)

    def test_interrupt_wakes_process(self, sim):
        def sleeper():
            try:
                yield sim.timeout(1000)
            except Interrupt as intr:
                return ("interrupted", intr.cause, sim.now)

        proc = sim.process(sleeper())

        def killer():
            yield sim.timeout(10)
            proc.interrupt("reason")

        sim.process(killer())
        sim.run()
        assert proc.value == ("interrupted", "reason", 10)

    def test_unhandled_interrupt_terminates_cleanly(self, sim):
        def sleeper():
            yield sim.timeout(1000)

        proc = sim.process(sleeper())

        def killer():
            yield sim.timeout(5)
            proc.interrupt()

        sim.process(killer())
        sim.run()
        assert proc.triggered
        assert proc.exception is None

    def test_interrupt_of_finished_process_is_noop(self, sim):
        def quick():
            yield sim.timeout(1)

        proc = sim.process(quick())
        sim.run()
        proc.interrupt()  # must not raise
        sim.run()

    def test_yielding_non_event_is_error(self, sim):
        def bad():
            yield "42ns"

        proc = sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()
            if proc.exception:
                raise proc.exception


class TestConditions:
    def test_any_of_returns_first(self, sim):
        def proc():
            first = yield sim.any_of([sim.timeout(30, "slow"),
                                      sim.timeout(10, "fast")])
            return (first.value, sim.now)

        assert sim.run_process(proc()) == ("fast", 10)

    def test_all_of_waits_for_all(self, sim):
        def proc():
            values = yield sim.all_of([sim.timeout(30, "a"),
                                       sim.timeout(10, "b")])
            return (sorted(values), sim.now)

        assert sim.run_process(proc()) == (["a", "b"], 30)

    def test_all_of_empty_triggers_immediately(self, sim):
        def proc():
            values = yield sim.all_of([])
            return values

        assert sim.run_process(proc()) == []


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def trace():
            sim = Simulator()
            log = []

            def worker(name, delay):
                yield sim.timeout(delay)
                log.append((sim.now, name))

            for index in range(10):
                sim.process(worker(f"w{index}", (index * 37) % 5))
            sim.run()
            return log

        assert trace() == trace()

    def test_ties_broken_by_insertion_order(self, sim):
        log = []

        def worker(name):
            yield sim.timeout(10)
            log.append(name)

        for name in ("first", "second", "third"):
            sim.process(worker(name))
        sim.run()
        assert log == ["first", "second", "third"]

    def test_run_until_stops_clock(self, sim):
        def proc():
            yield sim.timeout(1000)

        sim.process(proc())
        sim.run(until=100)
        assert sim.now == 100

    def test_max_events_guard(self, sim):
        def forever():
            while True:
                yield sim.timeout(1)

        sim.process(forever())
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestResource:
    def test_serializes_beyond_capacity(self, sim):
        res = Resource(sim, capacity=1)
        log = []

        def worker(name):
            yield from res.use(10)
            log.append((sim.now, name))

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert log == [(10, "a"), (20, "b")]

    def test_capacity_two_runs_in_parallel(self, sim):
        res = Resource(sim, capacity=2)
        log = []

        def worker(name):
            yield from res.use(10)
            log.append((sim.now, name))

        for name in ("a", "b", "c"):
            sim.process(worker(name))
        sim.run()
        assert log == [(10, "a"), (10, "b"), (20, "c")]

    def test_double_release_detected(self, sim):
        res = Resource(sim, capacity=1)

        def worker():
            grant = yield res.acquire()
            res.release(grant)
            res.release(grant)

        proc = sim.process(worker())
        sim.run()
        assert isinstance(proc.exception, ValueError)

    def test_fifo_ordering_of_waiters(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def worker(name, start):
            yield sim.timeout(start)
            yield from res.use(100)
            order.append(name)

        sim.process(worker("a", 0))
        sim.process(worker("b", 1))
        sim.process(worker("c", 2))
        sim.run()
        assert order == ["a", "b", "c"]


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")

        def getter():
            value = yield store.get()
            return value

        assert sim.run_process(getter()) == "x"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def getter():
            value = yield store.get()
            return (value, sim.now)

        def putter():
            yield sim.timeout(25)
            store.put("y")

        sim.process(putter())
        assert sim.run_process(getter()) == ("y", 25)

    def test_try_get_nonblocking(self, sim):
        store = Store(sim)
        assert store.try_get() is None
        store.put(1)
        assert store.try_get() == 1

    def test_fifo_order(self, sim):
        store = Store(sim)
        for item in (1, 2, 3):
            store.put(item)
        assert [store.try_get() for _ in range(3)] == [1, 2, 3]


class TestTokenBucket:
    def test_burst_allows_immediate_ops(self, sim):
        bucket = TokenBucket(sim, rate_per_sec=1000, burst=5)

        def worker():
            for _ in range(5):
                yield from bucket.throttle()
            return sim.now

        assert sim.run_process(worker()) == 0

    def test_rate_enforced_after_burst(self, sim):
        # 1000 ops/s -> 1 ms per token after the burst drains.
        bucket = TokenBucket(sim, rate_per_sec=1000, burst=1)

        def worker():
            times = []
            for _ in range(3):
                yield from bucket.throttle()
                times.append(sim.now)
            return times

        times = sim.run_process(worker())
        assert times[0] == 0
        assert 900_000 <= times[1] <= 1_100_000
        assert 1_900_000 <= times[2] <= 2_100_000

    def test_cost_larger_than_burst_rejected(self, sim):
        bucket = TokenBucket(sim, rate_per_sec=10, burst=2)

        def worker():
            yield from bucket.throttle(5)

        proc = sim.process(worker())
        sim.run()
        assert isinstance(proc.exception, ValueError)


class TestDelayQuantization:
    def test_fractional_delay_rejected(self, sim):
        with pytest.raises(ValueError, match="quantize_delay"):
            sim.timeout(1.5)

    def test_integral_float_accepted(self, sim):
        def proc():
            yield sim.timeout(5.0)
            return sim.now

        assert sim.run_process(proc()) == 5

    def test_bool_and_intlike_accepted(self, sim):
        def proc():
            yield sim.timeout(True)
            return sim.now

        assert sim.run_process(proc()) == 1

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError, match="negative timeout"):
            sim.timeout(-1)

    def test_quantize_delay_rounds_half_up(self):
        assert quantize_delay(1.4) == 1
        assert quantize_delay(1.5) == 2
        assert quantize_delay(2.5) == 3
        assert quantize_delay(0.0) == 0
        assert quantize_delay(7) == 7


class TestSimulatorStats:
    def test_counters_track_activity(self, sim):
        def child():
            yield sim.timeout(5)

        def parent():
            yield sim.timeout(10)
            yield sim.process(child())

        sim.run_process(parent())
        stats = sim.stats
        assert stats["processes_started"] == 2
        assert stats["events_executed"] > 0
        assert stats["heap_peak"] >= 1

    def test_stats_are_deterministic(self):
        def scenario():
            sim = Simulator()
            resource = Resource(sim, capacity=2)

            def worker(duration):
                yield from resource.use(duration)
                yield sim.timeout(duration)

            for index in range(8):
                sim.process(worker(10 + index))
            sim.run()
            return (sim.now, sim.stats)

        assert scenario() == scenario()


class TestBareDelaySleep:
    """``yield <int ns>`` — the zero-allocation sleep."""

    def test_int_yield_advances_clock(self, sim):
        def proc():
            yield 100
            return sim.now

        assert sim.run_process(proc()) == 100

    def test_zero_delay_yield_is_legal(self, sim):
        def proc():
            yield 0
            return sim.now

        assert sim.run_process(proc()) == 0

    def test_integral_float_yield_accepted(self, sim):
        def proc():
            yield 25.0
            return sim.now

        assert sim.run_process(proc()) == 25

    def test_fractional_float_yield_rejected(self, sim):
        def proc():
            yield 1.5

        proc = sim.process(proc())
        sim.run()
        assert isinstance(proc.exception, SimulationError)

    def test_negative_yield_fails_process(self, sim):
        def proc():
            yield -5

        proc = sim.process(proc())
        sim.run()
        assert isinstance(proc.exception, SimulationError)
        assert sim.failed_processes == [proc]

    def test_schedule_identical_to_timeout(self):
        """Int-yield and Timeout sleeps interleave bit-identically."""

        def scenario(use_int):
            sim = Simulator()
            order = []

            def worker(tag, delay):
                for _ in range(3):
                    if use_int:
                        yield delay
                    else:
                        yield sim.timeout(delay)
                    order.append((tag, sim.now))

            for index in range(4):
                sim.process(worker(index, 10 + index))
            sim.run()
            return (order, sim.now, sim.stats)

        assert scenario(True) == scenario(False)

    def test_interrupt_during_int_sleep(self, sim):
        def sleeper():
            try:
                yield 1_000
            except Interrupt as exc:
                return ("interrupted", exc.cause, sim.now)
            return ("slept", None, sim.now)

        def poker(target):
            yield 40
            target.interrupt("wake")

        proc = sim.process(sleeper())
        sim.process(poker(proc))
        sim.run()
        assert proc.value == ("interrupted", "wake", 40)
        # The stale sleep entry still fires at t=1000 but must not
        # resume the (already finished) process.
        assert sim.now == 1_000
        assert not sim.failed_processes

    def test_stale_sleep_does_not_double_resume(self, sim):
        resumes = []

        def sleeper():
            try:
                yield 1_000
            except Interrupt:
                pass
            yield 2_000  # new sleep; the abandoned one fires at t=1000
            resumes.append(sim.now)

        def poker(target):
            yield 40
            target.interrupt()

        proc = sim.process(sleeper())
        sim.process(poker(proc))
        sim.run()
        assert resumes == [2_040]
        assert proc.triggered

    def test_stale_sleep_vs_event_wait(self, sim):
        """A pending sleep abandoned for an event wait stays dead."""
        event = sim.event()
        woke = []

        def sleeper():
            try:
                yield 5_000
            except Interrupt:
                pass
            value = yield event
            woke.append((value, sim.now))

        def driver(target):
            yield 40
            target.interrupt()
            yield 10_000  # past the abandoned sleep's t=5000 expiry
            event.trigger("go")

        proc = sim.process(sleeper())
        sim.process(driver(proc))
        sim.run()
        assert woke == [("go", 10_040)]
        assert proc.triggered


class TestStaleWaiterPruning:
    """S1: abandoned events must not queue dead callbacks."""

    def test_interrupt_prunes_abandoned_event(self, sim):
        event = sim.event()

        def waiter():
            try:
                yield event
            except Interrupt:
                pass
            yield 10_000

        def driver(target):
            yield 40
            target.interrupt()
            yield 10  # let the interrupt land first
            event.trigger("late")

        proc = sim.process(waiter())
        sim.process(driver(proc))
        sim.run()
        assert proc.triggered
        # The waiter callback was pruned at interrupt time, so the late
        # trigger must find no callbacks at all.
        assert event._callbacks is None

    def test_events_executed_unchanged_by_late_trigger(self):
        """Regression: the late trigger of an abandoned event used to
        queue a useless immediate, inflating events_executed."""

        def scenario(trigger_late):
            sim = Simulator()
            event = sim.event()

            def waiter():
                try:
                    yield event
                except Interrupt:
                    pass
                yield 100

            def driver(target):
                yield 40
                target.interrupt()
                yield 10
                if trigger_late:
                    event.trigger("late")

            proc = sim.process(waiter())
            sim.process(driver(proc))
            sim.run()
            assert proc.triggered
            return sim.stats["events_executed"]

        # Whether the abandoned event ever triggers must not change the
        # number of callbacks the loop runs.
        assert scenario(True) == scenario(False)

    def test_shared_event_other_waiters_unaffected(self, sim):
        event = sim.event()
        woke = []

        def waiter(tag):
            try:
                value = yield event
                woke.append((tag, value))
            except Interrupt:
                pass

        first = sim.process(waiter("a"))
        sim.process(waiter("b"))

        def driver():
            yield 40
            first.interrupt()
            yield 10
            event.trigger("go")

        sim.process(driver())
        sim.run()
        assert woke == [("b", "go")]


class TestAnyOfDetach:
    """S2: AnyOf detaches from losing children once decided."""

    def test_losers_detached_after_winner(self, sim):
        slow = sim.event()
        fast = sim.event()

        def racer():
            first = yield sim.any_of([slow, fast])
            return first.value

        def driver():
            yield 10
            fast.trigger("fast")

        proc = sim.process(racer())
        sim.process(driver())
        sim.run()
        assert proc.value == "fast"
        assert slow._callbacks is None  # detached, not just ignored

    def test_losing_trigger_queues_no_callback(self):
        def scenario(trigger_loser):
            sim = Simulator()
            slow = sim.event()
            fast = sim.event()

            def racer():
                yield sim.any_of([slow, fast])

            def driver():
                yield 10
                fast.trigger("fast")
                yield 10
                if trigger_loser:
                    slow.trigger("slow")

            sim.process(racer())
            sim.process(driver())
            sim.run()
            return sim.stats["events_executed"]

        assert scenario(True) == scenario(False)

    def test_any_of_timeout_losers_still_fire_harmlessly(self, sim):
        def proc():
            first = yield sim.any_of([sim.timeout(30, "slow"),
                                      sim.timeout(10, "fast")])
            return (first.value, sim.now)

        assert sim.run_process(proc()) == ("fast", 10)
        assert sim.now == 30  # loser still drains from the heap
