"""Integration tests for the sharded KV fleet (repro.bench.fleet).

Small configurations of the fleet_simspeed scenario: dual-drive
bit-identity, doorbell batching on/off determinism and ring-count
deltas, consistent-hash routing, pooled-connection accounting, and
telemetry stream identity.
"""

import json

import pytest

from repro.bench.fleet import FleetScenario, build_fleet


def _small(batch=True, **kwargs):
    config = dict(num_shards=3, clients_per_shard=4,
                  requests_per_client=2, pool_qps=2,
                  batch_doorbells=batch, gateway_workers=2)
    config.update(kwargs)
    return build_fleet(**config)


class TestFleetIdentity:
    def test_sharded_and_serial_drives_are_bit_identical(self):
        fp_sharded, m_sharded = _small().run()
        fp_serial, m_serial = _small().run(serial=True)
        assert fp_sharded == fp_serial
        # Driver observables legitimately differ; the simulated system
        # must not.
        assert m_sharded["rounds"] != m_serial["rounds"] or True
        assert fp_sharded["requests"] == 3 * 4 * 2

    def test_rerun_is_deterministic(self):
        assert _small().run()[0] == _small().run()[0]

    def test_runs_exactly_once(self):
        scenario = _small()
        scenario.run()
        with pytest.raises(RuntimeError):
            scenario.run()

    def test_telemetry_stream_is_drive_independent(self, tmp_path):
        paths = []
        for mode, serial in (("sharded", False), ("serial", True)):
            path = tmp_path / f"{mode}.jsonl"
            scenario = _small(telemetry_path=str(path))
            scenario.run(serial=serial)
            paths.append(path)
        a, b = (p.read_bytes() for p in paths)
        assert a == b
        records = [json.loads(line)
                   for line in a.decode().splitlines()]
        assert records and all("doorbells" in r for r in records)

    def test_telemetry_attachment_leaves_fingerprint_unchanged(
            self, tmp_path):
        bare, _ = _small().run()
        traced = _small(telemetry_path=str(tmp_path / "t.jsonl"))
        fp, measures = traced.run()
        assert fp == bare
        assert measures["telemetry_records"] > 0


class TestDoorbellBatching:
    def test_both_modes_deterministic_and_rings_differ(self):
        fp_on = _small(batch=True).run()[0]
        fp_on2 = _small(batch=True).run(serial=True)[0]
        fp_off = _small(batch=False).run()[0]
        fp_off2 = _small(batch=False).run(serial=True)[0]
        assert fp_on == fp_on2
        assert fp_off == fp_off2
        # Batching coalesces the two bucket READs of each pooled get
        # into one ring write: 2 rings/get vs 3. Same completions
        # either way, measurably fewer doorbells.
        assert fp_on["doorbell_rings"] < fp_off["doorbell_rings"]
        assert fp_on["requests"] == fp_off["requests"]
        assert fp_on["pool"]["routed_cqes"] == fp_off["pool"]["routed_cqes"]

    def test_batching_is_timing_visible(self):
        """The coalesced ring write pays the per-entry price, so the
        latency surface shifts — while staying deterministic."""
        fp_on = _small(batch=True).run()[0]
        fp_off = _small(batch=False).run()[0]
        assert fp_on["latency_sum_ns"] != fp_off["latency_sum_ns"]

    def test_telemetry_shows_fewer_doorbells_when_batched(self, tmp_path):
        totals = {}
        for label, batch in (("on", True), ("off", False)):
            path = tmp_path / f"{label}.jsonl"
            _small(batch=batch, telemetry_path=str(path)).run()
            totals[label] = sum(
                json.loads(line)["doorbells"]
                for line in path.read_text().splitlines())
        assert totals["on"] < totals["off"]


class TestFleetBehavior:
    def test_pooled_connections_exceed_qps(self):
        """Many logical connections multiplex few QPs: leases_granted
        far above capacity, recycling active, nothing stale."""
        scenario = _small()
        assert scenario.logical_connections == 12
        fp, _ = scenario.run()
        pool = fp["pool"]
        assert pool["capacity"] == 3 * 2          # pool_qps per shard
        assert pool["leases_granted"] > pool["capacity"]
        assert pool["recycles"] > 0
        assert pool["stale_cqes"] == 0
        assert pool["exhausted_hits"] == 0

    def test_requests_route_by_hash_ring(self):
        scenario = _small()
        ring = scenario.ring
        fp, measures = scenario.run()
        executed = {row["shard"]: row["executed"]
                    for row in measures["per_shard"]}
        assert sum(executed.values()) == fp["requests"]
        # Every shard owns keys and serves work at this scale.
        for row in measures["per_shard"]:
            assert row["keys_owned"] > 0
            assert row["executed"] > 0
        # Remote fraction matches the ring: a client's key lands on a
        # remote shard whenever the owner is not its home shard.
        assert 0 < fp["remote_ops"] < fp["requests"]
        assert ring.owner(1) in range(3)

    def test_hot_key_serves_via_offload(self):
        fp, measures = _small().run()
        assert fp["offload_ops"] > 0
        hot_keys = [row["hot_key"] for row in measures["per_shard"]]
        assert all(k is not None for k in hot_keys)
        # Key 1 is the global zipf hot key; its owner serves it on the
        # NIC offload path, not the pooled host path.
        assert 1 in hot_keys

    def test_latency_percentiles_reported(self):
        fp, _ = _small().run()
        assert fp["p99_ns"] >= 1
        assert fp["p999_ns"] >= fp["p99_ns"]

    def test_gateway_worker_count_is_timing_visible(self):
        """Fewer gateway workers serialize remote gets — a different,
        still deterministic, schedule."""
        one = _small(gateway_workers=1).run()[0]
        two = _small(gateway_workers=2).run()[0]
        assert one["requests"] == two["requests"]
        assert one["latency_sum_ns"] != two["latency_sum_ns"]

    def test_single_shard_fleet_has_no_remote_ops(self):
        fp, _ = _small(num_shards=1, clients_per_shard=4).run()
        assert fp["remote_ops"] == 0
        assert fp["requests"] == 8

    def test_scenario_construction_validates(self):
        with pytest.raises(Exception):
            FleetScenario(num_shards=0, clients_per_shard=1,
                          requests_per_client=1, pool_qps=1,
                          batch_doorbells=False, gateway_workers=1,
                          link_ns=1000)
