"""Unit tests for simulated DRAM, layouts, and registration."""

import pytest

from repro.memory import (
    AccessFlags,
    HostMemory,
    MemoryError_,
    ProtectionDomain,
    ProtectionError,
    Struct,
    mask,
    pack_uint,
    unpack_uint,
)


class TestLayoutPrimitives:
    def test_pack_unpack_roundtrip(self):
        for width in (1, 2, 4, 6, 8):
            value = (1 << (8 * width)) - 1
            assert unpack_uint(pack_uint(value, width)) == value

    def test_pack_is_big_endian(self):
        assert pack_uint(0x0102, 2) == b"\x01\x02"

    def test_pack_range_check(self):
        with pytest.raises(ValueError):
            pack_uint(256, 1)
        with pytest.raises(ValueError):
            pack_uint(-1, 4)

    def test_mask(self):
        assert mask(48) == 0xFFFFFFFFFFFF


class TestStruct:
    def test_pack_and_unpack(self):
        record = Struct("r", 16, [("a", 0, 4), ("b", 4, 8), ("c", 12, 2)])
        buf = record.pack(a=1, b=0xDEADBEEF, c=7)
        assert record.unpack(buf) == {"a": 1, "b": 0xDEADBEEF, "c": 7}

    def test_gaps_are_zero(self):
        record = Struct("r", 8, [("a", 0, 2)])
        buf = record.pack(a=0xFFFF)
        assert bytes(buf[2:]) == bytes(6)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            Struct("bad", 8, [("a", 0, 4), ("b", 2, 4)])

    def test_field_past_end_rejected(self):
        with pytest.raises(ValueError):
            Struct("bad", 4, [("a", 0, 8)])

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError):
            Struct("bad", 8, [("a", 0, 2), ("a", 2, 2)])

    def test_field_offset_lookup(self):
        record = Struct("r", 8, [("a", 0, 2), ("b", 4, 4)])
        assert record.field_offset("b") == 4
        assert record.field_width("b") == 4

    def test_pack_into_existing_buffer(self):
        record = Struct("r", 8, [("x", 0, 4)])
        buf = bytearray(16)
        record.pack_into(buf, 8, "x", 0xAABBCCDD)
        assert buf[8:12] == b"\xaa\xbb\xcc\xdd"


class TestHostMemory:
    def test_alloc_read_write(self):
        memory = HostMemory(size=1 << 20)
        allocation = memory.alloc(64)
        memory.write(allocation.addr, b"abc")
        assert memory.read(allocation.addr, 3) == b"abc"

    def test_alloc_alignment(self):
        memory = HostMemory(size=1 << 20)
        memory.alloc(3)
        aligned = memory.alloc(64, align=64)
        assert aligned.addr % 64 == 0

    def test_null_region_is_protected(self):
        memory = HostMemory(size=1 << 20)
        with pytest.raises(MemoryError_):
            memory.read(0, 8)

    def test_out_of_memory(self):
        memory = HostMemory(size=8192)
        with pytest.raises(MemoryError_):
            memory.alloc(1 << 20)

    def test_negative_length_rejected(self):
        memory = HostMemory(size=1 << 20)
        allocation = memory.alloc(64)
        with pytest.raises(MemoryError_, match="negative access length"):
            memory.read(allocation.addr, -1)
        with pytest.raises(MemoryError_, match="negative access length"):
            memory.view(allocation.addr, -8)

    def test_zero_copy_view_aliases_dram(self):
        memory = HostMemory(size=1 << 20)
        allocation = memory.alloc(64)
        memory.write(allocation.addr, b"redn")
        view = memory.view(allocation.addr, 4)
        assert bytes(view) == b"redn"
        # The view aliases the backing store: later writes show through.
        memory.write(allocation.addr, b"RDMA")
        assert bytes(view) == b"RDMA"

    def test_generation_range_tracks_writes(self):
        memory = HostMemory(size=1 << 20)
        allocation = memory.alloc(256)
        gen_range = memory.register_generation_range(
            allocation.addr, 256, granularity=64)
        assert gen_range.gens == [0, 0, 0, 0]

        # A one-slot write bumps exactly the chunk it touches.
        memory.write(allocation.addr + 64, b"\xff" * 64)
        assert gen_range.gens == [0, 1, 0, 0]

        # write_u64 straddling a chunk boundary bumps both neighbours.
        memory.write_u64(allocation.addr + 124, 7)
        assert gen_range.gens == [0, 2, 1, 0]

        # fill() bumps every chunk it overlaps.
        memory.fill(allocation.addr, 256)
        assert gen_range.gens == [1, 3, 2, 1]

        # Writes outside the registered range leave it untouched.
        other = memory.alloc(64)
        memory.write(other.addr, b"x")
        assert gen_range.gens == [1, 3, 2, 1]

    def test_u64_roundtrip_big_endian(self):
        memory = HostMemory(size=1 << 20)
        allocation = memory.alloc(8)
        memory.write_u64(allocation.addr, 0x0102030405060708)
        assert memory.read(allocation.addr, 8) == bytes(range(1, 9))
        assert memory.read_u64(allocation.addr) == 0x0102030405060708

    def test_cas_success_and_failure(self):
        memory = HostMemory(size=1 << 20)
        allocation = memory.alloc(8)
        memory.write_u64(allocation.addr, 10)
        assert memory.compare_and_swap_u64(allocation.addr, 10, 99) == 10
        assert memory.read_u64(allocation.addr) == 99
        assert memory.compare_and_swap_u64(allocation.addr, 10, 7) == 99
        assert memory.read_u64(allocation.addr) == 99  # unchanged

    def test_fetch_add_wraps(self):
        memory = HostMemory(size=1 << 20)
        allocation = memory.alloc(8)
        memory.write_u64(allocation.addr, (1 << 64) - 1)
        assert memory.fetch_add_u64(allocation.addr, 2) == (1 << 64) - 1
        assert memory.read_u64(allocation.addr) == 1

    def test_free_poisons(self):
        memory = HostMemory(size=1 << 20)
        allocation = memory.alloc(16)
        memory.write(allocation.addr, b"\x00" * 16)
        memory.free(allocation)
        assert memory.read(allocation.addr, 16) == b"\xde" * 16

    def test_double_free_rejected(self):
        memory = HostMemory(size=1 << 20)
        allocation = memory.alloc(16)
        memory.free(allocation)
        with pytest.raises(MemoryError_):
            memory.free(allocation)

    def test_owner_reclaim(self):
        memory = HostMemory(size=1 << 20)
        a1 = memory.alloc(16, owner="proc1")
        a2 = memory.alloc(16, owner="proc2")
        reclaimed = memory.reclaim_owner("proc1")
        assert reclaimed == [a1]
        assert a1.freed and not a2.freed

    def test_ownership_transfer_shields_from_reclaim(self):
        memory = HostMemory(size=1 << 20)
        allocation = memory.alloc(16, owner="child")
        memory.transfer_ownership(allocation, "hull-parent")
        assert memory.reclaim_owner("child") == []
        assert not allocation.freed


class TestProtection:
    def _pd(self):
        memory = HostMemory(size=1 << 20)
        return memory, ProtectionDomain(memory)

    def test_register_and_validate(self):
        memory, pd = self._pd()
        allocation = memory.alloc(64)
        region = pd.register(allocation)
        found = pd.validate_remote(region.rkey, allocation.addr, 64,
                                   AccessFlags.REMOTE_WRITE)
        assert found is region

    def test_unknown_rkey_rejected(self):
        memory, pd = self._pd()
        with pytest.raises(ProtectionError):
            pd.lookup_rkey(0xBAD)

    def test_out_of_bounds_rejected(self):
        memory, pd = self._pd()
        allocation = memory.alloc(64)
        region = pd.register(allocation)
        with pytest.raises(ProtectionError):
            pd.validate_remote(region.rkey, allocation.addr + 32, 64,
                               AccessFlags.REMOTE_READ)

    def test_missing_permission_rejected(self):
        memory, pd = self._pd()
        allocation = memory.alloc(64)
        region = pd.register(allocation, access=AccessFlags.REMOTE_READ)
        with pytest.raises(ProtectionError):
            pd.validate_remote(region.rkey, allocation.addr, 8,
                               AccessFlags.REMOTE_WRITE)

    def test_deregistered_region_rejected(self):
        memory, pd = self._pd()
        allocation = memory.alloc(64)
        region = pd.register(allocation)
        pd.deregister(region)
        with pytest.raises(ProtectionError):
            pd.validate_remote(region.rkey, allocation.addr, 8,
                               AccessFlags.REMOTE_READ)

    def test_freed_allocation_invalidates_region(self):
        memory, pd = self._pd()
        allocation = memory.alloc(64)
        region = pd.register(allocation)
        memory.free(allocation)
        with pytest.raises(ProtectionError):
            region.check(allocation.addr, 8, AccessFlags.REMOTE_READ)

    def test_invalidate_all(self):
        memory, pd = self._pd()
        regions = [pd.register(memory.alloc(32)) for _ in range(3)]
        pd.invalidate_all()
        for region in regions:
            assert region.invalidated
