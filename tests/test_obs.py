"""Tests for repro.obs: metrics registry, tracer, race inspector, CLI."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.ibv import wr_fetch_add, wr_noop, wr_wait, wr_write
from repro.obs import (
    Histogram,
    MetricsRegistry,
    Tracer,
    load_trace,
    parse_openmetrics,
    race_report,
    summarize_trace,
    track_summary,
    wq_timeline,
)
from repro.obs.inspect import render_track_summary
from repro.redn import ProgramBuilder, RecycledLoop, RednContext

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def traced(lo):
    """LoopbackRig with a tracer attached (detached at teardown)."""
    tracer = Tracer(lo.sim, name="test")
    tracer.attach_nic(lo.nic)
    yield lo, tracer
    tracer.close()


def drive_recycled_loop(lo, laps: int = 4):
    """The ticker construct: each trigger completion drives one lap,
    and the loop's ADD rewrites the head WAIT's wqe_count in ring
    memory — RedN self-modification in its smallest form."""
    ctx = RednContext(lo.nic, lo.pd, owner="test-obs", name="obsctx")
    builder = ProgramBuilder(ctx, name="loop-test")
    counter, counter_mr = ctx.alloc_registered(8, label="ctr")

    trigger_qp = lo.qp_a
    loop = RecycledLoop(builder, trigger_qp.send_wq.cq,
                        trigger_delta=1, name="ticker")
    loop.body(wr_fetch_add(counter.addr, counter_mr.rkey, 1,
                           signaled=True), tag="while.body")
    loop.build()
    loop.start()

    def run():
        for _ in range(laps):
            yield from lo.verbs.execute_sync_checked(
                trigger_qp, wr_noop(signaled=True))
            yield lo.sim.timeout(30_000)
        return ctx.memory.read_u64(counter.addr)

    return lo.run(run())


def drive_write_chain(lo, count: int = 6):
    """Straight-line WRITEs into a data buffer: no queue memory is
    ever touched after post, so the inspector must stay silent."""
    src, _ = lo.buffer(64)
    dst, dst_mr = lo.buffer(64)

    def run():
        for index in range(count):
            yield from lo.verbs.execute_sync_checked(
                lo.qp_a, wr_write(src.addr, 64, dst.addr, dst_mr.rkey,
                                  signaled=True))
        return index

    return lo.run(run())


def drive_stale_prefetch(lo):
    """§3.1 incoherence on a normal queue: park a prefetched batch
    behind a WAIT, rewrite the parked WQE's ring bytes, release."""
    wq_a = lo.qp_a.send_wq
    scq_b = lo.qp_b.send_wq.cq
    wq_a.post(wr_wait(scq_b.cq_num, 1))
    wq_a.post(wr_noop(signaled=True))

    def run():
        yield lo.sim.timeout(5_000)      # prefetch batch has landed
        lo.memory.write_u64(wq_a.slot_addr(1) + 32, 0xDEAD)  # operand0
        yield from lo.verbs.execute_sync_checked(
            lo.qp_b, wr_noop(signaled=True))
        yield lo.sim.timeout(30_000)

    lo.run(run())


# -- metrics ---------------------------------------------------------------


class TestHistogram:
    def test_observe_and_stats(self):
        histogram = Histogram("h")
        for value in (0, 1, 5, 100, 100):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.total == 206
        assert (histogram.min, histogram.max) == (0, 100)

    def test_quantile_bucket_bounds(self):
        histogram = Histogram("h")
        for value in (3, 3, 3, 200):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 3   # bucket [2,4) -> upper 3
        assert histogram.quantile(1.0) == 255  # bucket [128,256)

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").observe(-1)

    def test_snapshot_only_nonempty_buckets(self):
        histogram = Histogram("h")
        histogram.observe(9)
        snap = histogram.snapshot()
        assert snap["buckets"] == {"le_15": 1}

    def test_quantile_fraction_bounds(self):
        histogram = Histogram("h")
        histogram.observe(1)
        for fraction in (0, -0.5, 1.5):
            with pytest.raises(ValueError):
                histogram.quantile(fraction)
        assert histogram.quantile(1.0) == 1

    def test_quantile_all_zeros(self):
        histogram = Histogram("h")
        for _ in range(3):
            histogram.observe(0)
        assert histogram.quantile(0.5) == 0
        assert histogram.quantile(1.0) == 0

    def test_empty_snapshot(self):
        assert Histogram("h").snapshot() == {
            "count": 0, "sum": 0, "min": None, "max": None,
            "buckets": {}}


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter["x"] += 2
        assert registry.counter("a.b") is counter
        assert registry.snapshot()["counters"]["a.b"] == {"x": 2}

    def test_gauge_sampled_at_snapshot(self):
        registry = MetricsRegistry()
        box = {"v": 1}
        registry.gauge("g", lambda: box["v"])
        assert registry.snapshot()["gauges"]["g"] == 1
        box["v"] = 7
        assert registry.snapshot()["gauges"]["g"] == 7

    def test_snapshot_is_json_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z")["k"] += 1
        registry.counter("a")["k"] += 1
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        json.dumps(snap)

    def test_sim_owns_lazy_registry(self, lo):
        snap = lo.sim.metrics.snapshot()
        assert "sim.events_executed" in snap["gauges"]
        assert snap["gauges"]["sim.now"] == lo.sim.now

    def test_nic_and_driver_counters_unified(self, lo):
        """One snapshot carries the NIC opcode counts and the driver
        fetch counts; the driver no longer keeps a drifting duplicate
        of the per-opcode tallies."""
        drive_write_chain(lo, count=4)
        snap = lo.sim.metrics.snapshot()["counters"]
        nic_wrs = snap["nic.nic.wrs"]
        assert nic_wrs["WRITE"] == 4
        assert nic_wrs["total_wrs"] == lo.nic.stats["total_wrs"]
        fetch_keys = [key for key in snap if key.endswith(".fetch")]
        assert fetch_keys, snap.keys()
        driver_stats = {}
        for key in fetch_keys:
            driver_stats.update(snap[key])
        assert "WRITE" not in driver_stats
        assert sum(snap[key].get("fetch_prefetched", 0)
                   + snap[key].get("fetch_managed", 0)
                   for key in fetch_keys) >= 4


class TestOpenMetrics:
    def _registry(self):
        registry = MetricsRegistry()
        wrs = registry.counter("nic.a.wrs")
        wrs["WRITE"] += 3
        wrs['odd"key\\'] += 1
        registry.gauge("sim.now", lambda: 42)
        registry.gauge("sim.label", lambda: "not-numeric")
        histogram = registry.histogram("lat.ns")
        for value in (0, 3, 3, 900):
            histogram.observe(value)
        return registry

    def test_round_trip_matches_snapshot(self):
        registry = self._registry()
        parsed = parse_openmetrics(registry.to_openmetrics())
        snapshot = registry.snapshot()
        assert parsed["counters"]["nic_a_wrs"] == \
            snapshot["counters"]["nic.a.wrs"]
        assert parsed["gauges"] == {"sim_now": 42}
        hist = parsed["histograms"]["lat_ns"]
        reference = snapshot["histograms"]["lat.ns"]
        assert hist["count"] == reference["count"]
        assert hist["sum"] == reference["sum"]
        assert hist["buckets"] == reference["buckets"]

    def test_text_format_conventions(self):
        text = self._registry().to_openmetrics()
        assert text.endswith("# EOF\n")
        assert "# TYPE nic_a_wrs counter" in text
        assert '\nnic_a_wrs_total{key="WRITE"} 3\n' in text
        assert '\nlat_ns_bucket{le="+Inf"} 4\n' in text
        assert "not-numeric" not in text
        # Buckets are cumulative: zeros bucket (1) then [2,4) adds 2.
        assert '\nlat_ns_bucket{le="0"} 1\n' in text
        assert '\nlat_ns_bucket{le="3"} 3\n' in text

    def test_live_registry_exports(self, lo):
        drive_write_chain(lo, count=2)
        parsed = parse_openmetrics(lo.sim.metrics.to_openmetrics())
        assert parsed["counters"]["nic_nic_wrs"]["WRITE"] == 2
        assert parsed["gauges"]["sim_now"] == lo.sim.now


# -- tracer ----------------------------------------------------------------


class TestTracerLifecycle:
    def test_enabled_flag_tracks_attachment(self, lo):
        assert obs.enabled is False
        tracer = Tracer(lo.sim)
        assert obs.enabled is True
        tracer.close()
        assert obs.enabled is False
        assert lo.sim.tracer is None

    def test_second_tracer_rejected(self, lo):
        tracer = Tracer(lo.sim)
        try:
            with pytest.raises(ValueError):
                Tracer(lo.sim)
        finally:
            tracer.close()

    def test_close_idempotent(self, lo):
        tracer = Tracer(lo.sim)
        tracer.close()
        tracer.close()
        assert obs.enabled is False


class TestTracerEvents:
    def test_chrome_json_valid_with_pu_tracks(self, traced, tmp_path):
        lo, tracer = traced
        drive_write_chain(lo)
        out = tmp_path / "trace.json"
        count = tracer.export_chrome(out)
        assert count == len(tracer.events) > 0
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        threads = {event["args"]["name"] for event in events
                   if event.get("ph") == "M"
                   and event.get("name") == "thread_name"}
        assert any(name.startswith("port0/pu") for name in threads)
        assert any(name.startswith("wq:") for name in threads)
        pu_tids = {(event["pid"], event["tid"]) for event in events
                   if event.get("ph") == "M"
                   and event.get("name") == "thread_name"
                   and event["args"]["name"].startswith("port0/pu")}
        pu_spans = [event for event in events
                    if event.get("ph") == "X"
                    and (event["pid"], event["tid"]) in pu_tids]
        assert pu_spans, "no execute spans on any PU track"

    def test_span_categories_present(self, traced):
        lo, tracer = traced
        drive_write_chain(lo)
        summary = summarize_trace(load_trace(tracer.to_json()))
        for category in ("queue", "fetch", "exec", "cqe", "dma"):
            assert summary["categories"].get(category, 0) > 0, category

    def test_ring_stores_traced_for_annotated_regions(self, traced):
        lo, tracer = traced
        drive_recycled_loop(lo, laps=2)
        summary = summarize_trace(load_trace(tracer.to_json()))
        assert summary["categories"].get("mem", 0) > 0

    def test_wait_and_enable_events(self, traced):
        lo, tracer = traced
        drive_recycled_loop(lo, laps=2)
        names = {event[2] for event in tracer.events}
        assert "WAIT" in names
        assert "WAIT.wake" in names
        assert "ENABLE" in names

    def test_atomics_recorded(self, traced):
        lo, tracer = traced
        drive_recycled_loop(lo, laps=2)
        atomics = [event for event in tracer.events if event[1] == "atomic"]
        assert atomics
        assert any(event[2] == "FETCH_ADD" for event in atomics)


class TestWaitEnableSpanEdges:
    """Satellite: WAIT/ENABLE span edge semantics in the tracer."""

    @pytest.fixture
    def traced(self, lo):
        tracer = Tracer(lo.sim, name="test")
        tracer.attach_nic(lo.nic)
        yield lo, tracer
        tracer.close()

    def _drive_wait(self, lo, presatisfied: bool):
        wq_a = lo.qp_a.send_wq
        scq_b = lo.qp_b.send_wq.cq

        def run():
            if presatisfied:
                yield from lo.verbs.execute_sync_checked(
                    lo.qp_b, wr_noop(signaled=True))
            wq_a.post(wr_wait(scq_b.cq_num, 1))
            wq_a.post(wr_noop(signaled=True))
            if not presatisfied:
                yield lo.sim.timeout(5_000)
                yield from lo.verbs.execute_sync_checked(
                    lo.qp_b, wr_noop(signaled=True))
            yield lo.sim.timeout(30_000)

        lo.run(run())

    def _wait_spans(self, tracer):
        return [event for event in tracer.events
                if event[0] == "X" and event[2] == "WAIT"]

    def test_wait_satisfied_at_post_is_bookkeeping_only(self, traced):
        """A WAIT whose threshold is already met when it executes spans
        exactly the wait_check bookkeeping time — no blocked interval."""
        lo, tracer = traced
        self._drive_wait(lo, presatisfied=True)
        (span,) = self._wait_spans(tracer)
        assert span[6] == lo.nic.timing.wait_check_ns
        assert span[7]["count"] == 1

    def test_wait_blocked_spans_the_blocked_interval(self, traced):
        lo, tracer = traced
        self._drive_wait(lo, presatisfied=False)
        (span,) = self._wait_spans(tracer)
        # Blocked from execute until the trigger's CQE ~5us later.
        assert span[6] > 4_000
        wakes = [event for event in tracer.events
                 if event[2] == "WAIT.wake"]
        assert len(wakes) == 1
        assert wakes[0][5] == span[5] + span[6]  # wake at span end

    def test_rearmed_wait_counts_increase(self, traced):
        """The recycled loop's ADD re-arms the head WAIT with a bumped
        threshold each lap: spans record the rewritten wqe_count."""
        lo, tracer = traced
        laps = 3
        drive_recycled_loop(lo, laps=laps)
        spans = self._wait_spans(tracer)
        head_track = spans[0][3], spans[0][4]
        counts = [span[7]["count"] for span in spans
                  if (span[3], span[4]) == head_track]
        assert counts == list(range(1, len(counts) + 1))
        assert len(counts) >= laps

    def test_enable_records_target_queue_name(self, traced):
        lo, tracer = traced
        drive_recycled_loop(lo, laps=2)
        enables = [event for event in tracer.events
                   if event[2] == "ENABLE"]
        assert enables
        for event in enables:
            assert isinstance(event[7]["target_name"], str)
            assert event[7]["target_name"]


class TestDataPathSpans:
    """cqe_dma / dma-transaction / wire spans feeding the profiler."""

    def test_cqe_dma_span_on_signaled_completion(self, lo):
        tracer = Tracer(lo.sim, name="test")
        tracer.attach_nic(lo.nic)
        try:
            drive_write_chain(lo, count=1)
            spans = [event for event in tracer.events
                     if event[2] == "cqe_dma"]
            assert spans
            assert all(event[6] == lo.nic.timing.cqe_dma_ns
                       for event in spans)
        finally:
            tracer.close()

    def test_dma_txn_and_wire_spans_remote(self, rig):
        tracer = Tracer(rig.sim, name="test")
        tracer.attach_nic(rig.nic_a)
        tracer.attach_nic(rig.nic_b)
        try:
            src, _ = rig.buffer("a", 64)
            dst, dst_mr = rig.buffer("b", 64)
            rig.run(rig.verbs.execute_sync_checked(
                rig.qp_a, wr_write(src.addr, 64, dst.addr, dst_mr.rkey,
                                   signaled=True)))
            names = {event[2] for event in tracer.events}
            assert "dma:posted" in names
            wires = [event for event in tracer.events
                     if event[1] == "wire"]
            assert wires
            # Request carries the 64B payload; the ack is header-only.
            assert any(event[7]["bytes"] == 64 for event in wires)
            assert all(event[6] > 0 for event in wires)
        finally:
            tracer.close()

    def test_no_wire_spans_on_loopback(self, lo):
        tracer = Tracer(lo.sim, name="test")
        tracer.attach_nic(lo.nic)
        try:
            drive_write_chain(lo, count=2)
            assert not [event for event in tracer.events
                        if event[1] == "wire"]
        finally:
            tracer.close()


# -- race inspector --------------------------------------------------------


class TestRaceInspector:
    def test_straight_line_chain_has_no_races(self, traced):
        lo, tracer = traced
        drive_write_chain(lo)
        assert tracer.self_mod_count == 0
        assert tracer.stale_count == 0

    def test_recycled_loop_flags_self_modification(self, traced):
        lo, tracer = traced
        laps = 4
        assert drive_recycled_loop(lo, laps=laps) == laps
        # Exactly one self_mod per lap: the ADD bumping the head WAIT's
        # wqe_count. The restore READs rewrite byte-identical template
        # content and must NOT be flagged.
        assert tracer.self_mod_count == laps
        report = race_report(load_trace(tracer.to_json()))
        kinds = {entry["kind"] for entry in report}
        assert kinds == {"self_mod"}
        for entry in report:
            assert any(change.startswith("wqe_count:")
                       for change in entry["changed"]), entry

    def test_stale_prefetch_flagged(self, traced):
        lo, tracer = traced
        drive_stale_prefetch(lo)
        assert tracer.stale_count == 1
        (entry,) = [item for item in
                    race_report(load_trace(tracer.to_json()))
                    if item["kind"] == "stale_wqe"]
        assert entry["window_ns"] > 0
        assert any("operand0" in change for change in entry["changed"])

    def test_managed_fetch_sees_fresh_bytes(self, traced):
        """On a managed (doorbell-ordered) queue the same rewrite is a
        self-modification, not a stale fetch: the fetch happens after
        the write, so executed bytes match DRAM."""
        lo, tracer = traced
        drive_recycled_loop(lo, laps=3)
        assert tracer.stale_count == 0


# -- inspector library & CLI -----------------------------------------------


class TestInspector:
    def test_load_trace_from_dict_str_and_path(self, traced, tmp_path):
        lo, tracer = traced
        drive_write_chain(lo, count=2)
        text = tracer.to_json()
        path = tmp_path / "t.json"
        path.write_text(text)
        for source in (json.loads(text), text, str(path)):
            data = load_trace(source)
            assert summarize_trace(data)["events"] > 0

    def test_rejects_non_trace(self):
        with pytest.raises(ValueError):
            load_trace({"not": "a trace"})

    def test_wq_timeline_filters_one_queue(self, traced):
        lo, tracer = traced
        drive_write_chain(lo, count=3)
        data = load_trace(tracer.to_json())
        wq_name = lo.qp_a.send_wq.name
        timeline = wq_timeline(data, wq_name)
        assert timeline
        timestamps = [event.get("ts", 0) for event in timeline]
        assert timestamps == sorted(timestamps)
        other = wq_timeline(data, "no-such-queue")
        assert other == []

    def test_summary_span_covers_run(self, traced):
        lo, tracer = traced
        drive_write_chain(lo, count=2)
        summary = summarize_trace(load_trace(tracer.to_json()))
        assert summary["span_us"] > 0
        assert summary["races"] == {"self_mod": 0, "stale_wqe": 0}

    def test_track_summary_counts_and_order(self, traced):
        lo, tracer = traced
        drive_write_chain(lo, count=3)
        data = load_trace(tracer.to_json())
        rows = track_summary(data)
        assert rows
        assert any("wq:" in row["track"] for row in rows)
        for row in rows:
            assert row["events"] == sum(row["names"].values()) > 0
            assert row["first_us"] <= row["last_us"]
        # Sorted by track name; totals cover every timed event.
        assert [row["track"] for row in rows] == \
            sorted(row["track"] for row in rows)
        rendered = render_track_summary(data)
        assert "events" in rendered
        for row in rows:
            assert row["track"] in rendered


class TestCli:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "trace_inspect.py"),
             *argv],
            capture_output=True, text=True)

    def _export(self, traced, tmp_path, scenario):
        lo, tracer = traced
        scenario(lo)
        path = tmp_path / "trace.json"
        tracer.export_chrome(path)
        return path

    def test_summary_and_races(self, traced, tmp_path):
        path = self._export(traced, tmp_path,
                            lambda lo: drive_recycled_loop(lo, laps=2))
        result = self._run(str(path))
        assert result.returncode == 0, result.stderr
        assert "self-modification events: 2" in result.stdout
        races = self._run(str(path), "--races", "--json")
        assert races.returncode == 0
        report = json.loads(races.stdout)
        assert len(report) == 2

    def test_fail_on_race_ignores_self_mod(self, traced, tmp_path):
        path = self._export(traced, tmp_path,
                            lambda lo: drive_recycled_loop(lo, laps=2))
        result = self._run(str(path), "--fail-on-race")
        assert result.returncode == 0

    def test_fail_on_race_trips_on_stale(self, traced, tmp_path):
        path = self._export(traced, tmp_path, drive_stale_prefetch)
        result = self._run(str(path), "--fail-on-race")
        assert result.returncode == 1
        assert "stale-fetch" in result.stderr

    def test_timeline(self, traced, tmp_path):
        lo, tracer = traced
        wq_name = lo.qp_a.send_wq.name
        path = self._export(traced, tmp_path,
                            lambda rig: drive_write_chain(rig, count=2))
        result = self._run(str(path), "--timeline", wq_name)
        assert result.returncode == 0
        assert wq_name in result.stdout

    def test_summary_flag(self, traced, tmp_path):
        path = self._export(traced, tmp_path,
                            lambda lo: drive_write_chain(lo, count=2))
        result = self._run(str(path), "--summary")
        assert result.returncode == 0, result.stderr
        assert "wq:" in result.stdout
        as_json = self._run(str(path), "--summary", "--json")
        assert as_json.returncode == 0
        rows = json.loads(as_json.stdout)
        assert rows and all("track" in row and "events" in row
                            for row in rows)


class TestMetricsExportCli:
    def test_export_parses_back(self):
        result = subprocess.run(
            [sys.executable,
             str(REPO_ROOT / "tools" / "metrics_export.py"),
             "--offload", "hash-lookup", "--calls", "2"],
            capture_output=True, text=True)
        assert result.returncode == 0, result.stderr
        assert result.stdout.endswith("# EOF\n")
        parsed = parse_openmetrics(result.stdout)
        assert parsed["histograms"]["obs_critpath_request_ns"]["count"] == 2
        assert parsed["counters"]["nic_server_nic_wrs"]["total_wrs"] > 0
