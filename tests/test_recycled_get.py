"""Tests: the fully CPU-free recycled hash-get server (§3.4 + §5.6)."""

import pytest

from repro.apps import MemcachedServer
from repro.bench import Testbed
from repro.offloads.recycled_get import (
    RECYCLED_CONN_KWARGS,
    RecycledHashGetOffload,
)
from repro.redn import ProgramError
from repro.redn.offload import OffloadClient, OffloadConnection


def make_rig(hull_parent=False):
    bed = Testbed(num_clients=1)
    store = MemcachedServer(bed.server, hull_parent=hull_parent)
    conn = OffloadConnection(store.ctx, bed.clients[0].nic,
                             bed.client_pd(0), name="rg",
                             **RECYCLED_CONN_KWARGS)
    offload = RecycledHashGetOffload(store.ctx, store.table,
                                     store.table_mr, conn)
    offload.start()
    client = OffloadClient(conn, bed.client_verbs(0))
    return bed, store, offload, client


def serial_gets(bed, offload, client, keys, timeout_ns=3_000_000):
    def run():
        results = []
        for key in keys:
            result = yield from client.call(offload.payload_for(key),
                                            timeout_ns=timeout_ns)
            results.append(result)
        return results
    return bed.run(run())


class TestRecycledGet:
    def test_serves_one_request(self):
        bed, store, offload, client = make_rig()
        store.set(5, b"recycled-value", force_bucket=0)
        [result] = serial_gets(bed, offload, client, [5])
        assert result.ok and result.data == b"recycled-value"

    def test_serves_many_more_requests_than_posted_wrs(self):
        """The point of recycling: one posted chain, unbounded serving."""
        bed, store, offload, client = make_rig()
        keys = list(range(1, 31))
        for key in keys:
            store.set(key, f"v{key}".encode(), force_bucket=0)
        results = serial_gets(bed, offload, client, keys)
        for key, result in zip(keys, results):
            assert result.ok, key
            assert result.data == f"v{key}".encode()
        assert offload.laps >= len(keys)
        # Only 10 ring WRs were ever posted on the loop queue.
        assert offload.worker.wq.posted_count == 10

    def test_miss_then_hit_keeps_recycling(self):
        bed, store, offload, client = make_rig()
        store.set(7, b"present", force_bucket=0)
        results = serial_gets(bed, offload, client, [99, 7, 98, 7],
                              timeout_ns=1_000_000)
        assert [r.ok for r in results] == [False, True, False, True]
        assert results[1].data == b"present"

    def test_sees_host_side_updates(self):
        bed, store, offload, client = make_rig()
        store.set(3, b"old", force_bucket=0)
        [first] = serial_gets(bed, offload, client, [3])
        store.set(3, b"new!")
        [second] = serial_gets(bed, offload, client, [3])
        assert first.data == b"old"
        assert second.data == b"new!"

    def test_survives_process_crash_with_hull(self):
        """§5.6 in its strongest form: the chain keeps serving fresh
        requests after the serving process died — no pre-posted
        instances, pure NIC-side recycling."""
        bed, store, offload, client = make_rig(hull_parent=True)
        for key in range(1, 21):
            store.set(key, f"v{key}".encode(), force_bucket=0)

        before = serial_gets(bed, offload, client, [1, 2, 3])
        assert all(r.ok for r in before)
        store.crash()
        after = serial_gets(bed, offload, client,
                            list(range(4, 16)))
        assert all(r.ok for r in after)
        assert [r.data for r in after][:3] == [b"v4", b"v5", b"v6"]

    def test_dies_without_hull(self):
        bed, store, offload, client = make_rig(hull_parent=False)
        store.set(1, b"x", force_bucket=0)
        [ok] = serial_gets(bed, offload, client, [1])
        assert ok.ok
        store.crash()
        [dead] = serial_gets(bed, offload, client, [1],
                             timeout_ns=1_000_000)
        assert not dead.ok

    def test_wrongly_sized_connection_rejected(self):
        bed = Testbed(num_clients=1)
        store = MemcachedServer(bed.server)
        conn = OffloadConnection(store.ctx, bed.clients[0].nic,
                                 bed.client_pd(0), name="bad")
        with pytest.raises(ProgramError):
            RecycledHashGetOffload(store.ctx, store.table,
                                   store.table_mr, conn)
