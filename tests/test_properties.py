"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings, strategies as st

from repro.memory import HostMemory, Struct, pack_uint, unpack_uint
from repro.nic import (
    MAX_SGE,
    Opcode,
    Sge,
    WQE_SLOT_SIZE,
    Wqe,
    ctrl_word,
    split_ctrl,
    wqe_slots_needed,
)

u16 = st.integers(min_value=0, max_value=(1 << 16) - 1)
u32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
u48 = st.integers(min_value=0, max_value=(1 << 48) - 1)
u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
addr = st.integers(min_value=0x1000, max_value=(1 << 48) - 1)


class TestCtrlWordProperties:
    @given(u16, u48)
    @settings(max_examples=200, deadline=None)
    def test_split_inverts_pack(self, opcode, wr_id):
        assert split_ctrl(ctrl_word(opcode, wr_id)) == (opcode, wr_id)

    @given(u16, u48, u16, u48)
    @settings(max_examples=100, deadline=None)
    def test_injective(self, op1, id1, op2, id2):
        if (op1, id1) != (op2, id2):
            assert ctrl_word(op1, id1) != ctrl_word(op2, id2)


class TestPackUintProperties:
    @given(st.integers(min_value=1, max_value=8), st.data())
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, width, data):
        value = data.draw(st.integers(
            min_value=0, max_value=(1 << (8 * width)) - 1))
        assert unpack_uint(pack_uint(value, width)) == value

    @given(st.integers(min_value=1, max_value=8), st.data())
    @settings(max_examples=100, deadline=None)
    def test_order_preserving(self, width, data):
        bound = (1 << (8 * width)) - 1
        a = data.draw(st.integers(min_value=0, max_value=bound))
        b = data.draw(st.integers(min_value=0, max_value=bound))
        # Big-endian encodings compare like the integers themselves —
        # the property RedN's CAS-on-bytes comparisons rely on.
        assert (pack_uint(a, width) <= pack_uint(b, width)) == (a <= b)


class TestWqeCodecProperties:
    @given(opcode=st.sampled_from([Opcode.NOOP, Opcode.WRITE,
                                   Opcode.READ, Opcode.CAS,
                                   Opcode.WAIT, Opcode.ENABLE]),
           wr_id=u48, laddr=u64, length=u32, raddr=u64,
           flags=u32, operand0=u64, operand1=u64, wqe_count=u32,
           target=u16,
           num_sge=st.integers(min_value=0, max_value=MAX_SGE))
    @settings(max_examples=100, deadline=None)
    def test_encode_decode_roundtrip(self, opcode, wr_id, laddr, length,
                                     raddr, flags, operand0, operand1,
                                     wqe_count, target, num_sge):
        sges = [Sge(0x1000 + 64 * index, 8 + index, lkey=index)
                for index in range(num_sge)]
        wqe = Wqe(opcode=opcode, wr_id=wr_id, laddr=laddr,
                  length=length, raddr=raddr, flags=flags,
                  operand0=operand0, operand1=operand1,
                  wqe_count=wqe_count, target=target, sges=sges)
        decoded = Wqe.decode(bytes(wqe.encode()))
        for attr in ("opcode", "wr_id", "laddr", "length", "raddr",
                     "flags", "operand0", "operand1", "wqe_count",
                     "target"):
            assert getattr(decoded, attr) == getattr(wqe, attr), attr
        assert decoded.sges == sges

    @given(st.integers(min_value=0, max_value=MAX_SGE))
    @settings(max_examples=30, deadline=None)
    def test_encoded_size_matches_slot_accounting(self, num_sge):
        sges = [Sge(0x1000, 8)] * num_sge
        wqe = Wqe(opcode=Opcode.RECV, sges=sges)
        assert len(wqe.encode()) == wqe_slots_needed(num_sge) \
            * WQE_SLOT_SIZE

    @given(opcode=st.sampled_from([Opcode.NOOP, Opcode.WRITE,
                                   Opcode.READ, Opcode.CAS,
                                   Opcode.WAIT, Opcode.ENABLE]),
           wr_id=u48, laddr=u64, length=u32, raddr=u64,
           flags=u32, operand0=u64, operand1=u64, wqe_count=u32,
           target=u16,
           num_sge=st.integers(min_value=0, max_value=MAX_SGE))
    @settings(max_examples=100, deadline=None)
    def test_compiled_codec_matches_legacy(self, opcode, wr_id, laddr,
                                           length, raddr, flags,
                                           operand0, operand1,
                                           wqe_count, target, num_sge):
        # Differential check: the struct-compiled fast paths must be
        # byte-for-byte and field-for-field identical to the original
        # field-table codec they replaced.
        sges = [Sge(0x2000 + 32 * index, 4 + index, lkey=index * 3)
                for index in range(num_sge)]
        wqe = Wqe(opcode=opcode, wr_id=wr_id, laddr=laddr,
                  length=length, raddr=raddr, flags=flags,
                  operand0=operand0, operand1=operand1,
                  wqe_count=wqe_count, target=target, sges=sges)
        fast_bytes = bytes(wqe.encode())
        assert fast_bytes == bytes(wqe._encode_checked())

        fast = Wqe.decode(fast_bytes)
        legacy = Wqe._decode_legacy(fast_bytes)
        Struct.use_compiled = False
        try:
            legacy_struct = Wqe._decode_legacy(fast_bytes)
        finally:
            Struct.use_compiled = True
        for attr in ("opcode", "wr_id", "laddr", "length", "raddr",
                     "flags", "operand0", "operand1", "wqe_count",
                     "target", "sges"):
            value = getattr(fast, attr)
            assert value == getattr(legacy, attr), attr
            assert value == getattr(legacy_struct, attr), attr


class TestMemoryProperties:
    @given(st.binary(min_size=1, max_size=256), addr)
    @settings(max_examples=60, deadline=None)
    def test_write_read_roundtrip(self, payload, location):
        memory = HostMemory(size=1 << 20)
        location = memory.BASE_ADDR + (location % (1 << 18))
        memory.write(location, payload)
        assert memory.read(location, len(payload)) == payload

    @given(u64, u64, u64)
    @settings(max_examples=80, deadline=None)
    def test_cas_semantics(self, initial, expected, desired):
        memory = HostMemory(size=1 << 16)
        cell = memory.alloc(8)
        memory.write_u64(cell.addr, initial)
        original = memory.compare_and_swap_u64(cell.addr, expected,
                                               desired)
        assert original == initial
        final = memory.read_u64(cell.addr)
        assert final == (desired if initial == expected else initial)

    @given(u64, u64)
    @settings(max_examples=80, deadline=None)
    def test_fetch_add_mod_2_64(self, initial, delta):
        memory = HostMemory(size=1 << 16)
        cell = memory.alloc(8)
        memory.write_u64(cell.addr, initial)
        original = memory.fetch_add_u64(cell.addr, delta)
        assert original == initial
        assert memory.read_u64(cell.addr) == (initial + delta) % (1 << 64)


class TestRingArithmetic:
    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_slot_addr_wraps_into_ring(self, slots, cursor):
        """Monotonic cursors always map inside the ring allocation."""
        from repro.nic.queue import WorkQueue
        from repro.sim import Simulator
        sim = Simulator()
        memory = HostMemory(size=1 << 20)
        from repro.nic.queue import CompletionQueue
        cq = CompletionQueue(sim, 1)
        wq = WorkQueue(sim, memory, 1, "send", slots, cq)
        location = wq.slot_addr(cursor)
        assert wq.ring.addr <= location < wq.ring.end
        assert (location - wq.ring.addr) % WQE_SLOT_SIZE == 0

    @given(st.lists(st.integers(min_value=0, max_value=MAX_SGE),
                    min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_sequential_posts_never_overlap(self, sge_counts):
        """Posted WQEs occupy disjoint, contiguous slot ranges."""
        from repro.nic.queue import CompletionQueue, QueueError, WorkQueue
        from repro.sim import Simulator
        sim = Simulator()
        memory = HostMemory(size=1 << 22)
        cq = CompletionQueue(sim, 1)
        total_slots = sum(wqe_slots_needed(n) for n in sge_counts)
        wq = WorkQueue(sim, memory, 1, "send", total_slots, cq,
                       managed=True)
        cursor = 0
        for count in sge_counts:
            sges = [Sge(0x1000, 8)] * count
            before = wq._post_slot_cursor
            wq.post(Wqe(opcode=Opcode.RECV, sges=sges))
            assert before == cursor
            cursor += wqe_slots_needed(count)
        assert wq._post_slot_cursor == total_slots
