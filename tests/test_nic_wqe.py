"""Unit tests for the WQE byte format — the self-modification surface."""

import pytest

from repro.nic import (
    MAX_SGE,
    Opcode,
    Sge,
    WQE_HEADER,
    WQE_SLOT_SIZE,
    Wqe,
    WrFlags,
    ctrl_word,
    field_location,
    split_ctrl,
    wqe_slots_needed,
)


class TestCtrlWord:
    def test_pack_layout(self):
        # opcode in the high 16 bits, 48-bit id below (Fig 4's trick).
        word = ctrl_word(Opcode.WRITE, 0xABCDEF012345)
        assert word == (Opcode.WRITE << 48) | 0xABCDEF012345

    def test_split_roundtrip(self):
        word = ctrl_word(Opcode.CAS, 42)
        assert split_ctrl(word) == (Opcode.CAS, 42)

    def test_id_limited_to_48_bits(self):
        # The paper's Table 2 operand limit comes from here.
        with pytest.raises(ValueError):
            ctrl_word(Opcode.NOOP, 1 << 48)

    def test_noop_with_zero_id_is_all_zero(self):
        # Zero-filled ring memory must decode as harmless NOOPs.
        assert ctrl_word(Opcode.NOOP, 0) == 0


class TestFieldLayout:
    def test_id_follows_opcode(self):
        offset, width = field_location("id")
        assert (offset, width) == (2, 6)

    def test_laddr_adjacent_to_ctrl(self):
        # A contiguous READ landing [key|ptr|len] must hit id, laddr,
        # length back-to-back (Fig 9).
        assert WQE_HEADER.field_offset("laddr") == 8
        assert WQE_HEADER.field_offset("length") == 16

    def test_bucket_record_alignment(self):
        # 18-byte record written at base+2 covers exactly id+laddr+length.
        id_off, id_w = field_location("id")
        assert id_off == 2
        assert id_w + 8 + 4 == 18
        assert WQE_HEADER.field_offset("length") + 4 == 20

    def test_wqe_count_field_addressable(self):
        # WQ recycling ADDs must be able to aim at wqe_count (§3.4).
        offset, width = field_location("wqe_count")
        assert width == 4
        assert offset + width <= WQE_SLOT_SIZE


class TestCodec:
    def test_roundtrip_simple(self):
        wqe = Wqe(opcode=Opcode.WRITE, wr_id=7, laddr=0x1000, length=64,
                  raddr=0x2000, flags=WrFlags.SIGNALED, lkey=3, rkey=9)
        decoded = Wqe.decode(bytes(wqe.encode()))
        for attr in ("opcode", "wr_id", "laddr", "length", "raddr",
                     "flags", "lkey", "rkey"):
            assert getattr(decoded, attr) == getattr(wqe, attr)

    def test_roundtrip_atomic_operands(self):
        wqe = Wqe(opcode=Opcode.CAS, raddr=0x3000, operand0=(1 << 63) | 5,
                  operand1=0xFFFFFFFFFFFFFFFF)
        decoded = Wqe.decode(bytes(wqe.encode()))
        assert decoded.operand0 == wqe.operand0
        assert decoded.operand1 == wqe.operand1

    def test_roundtrip_ordering_fields(self):
        wqe = Wqe(opcode=Opcode.WAIT, wqe_count=12345, target=7)
        decoded = Wqe.decode(bytes(wqe.encode()))
        assert decoded.wqe_count == 12345
        assert decoded.target == 7

    def test_sge_slots(self):
        sges = [Sge(0x1000 + i * 64, 16, lkey=i) for i in range(5)]
        wqe = Wqe(opcode=Opcode.RECV, sges=sges)
        assert wqe.num_slots == 1 + 2  # 4 SGEs/slot -> 2 extra slots
        decoded = Wqe.decode(bytes(wqe.encode()))
        assert decoded.sges == sges

    def test_max_sge_enforced(self):
        # "RECVs can only perform 16 scatters" (§5.3).
        sges = [Sge(0x1000, 8)] * (MAX_SGE + 1)
        with pytest.raises(ValueError):
            Wqe(opcode=Opcode.RECV, sges=sges)

    def test_slots_needed(self):
        assert wqe_slots_needed(0) == 1
        assert wqe_slots_needed(1) == 2
        assert wqe_slots_needed(4) == 2
        assert wqe_slots_needed(5) == 3
        assert wqe_slots_needed(16) == 5

    def test_zero_bytes_decode_to_noop(self):
        decoded = Wqe.decode(bytes(WQE_SLOT_SIZE))
        assert decoded.opcode == Opcode.NOOP
        assert not decoded.signaled

    def test_signaled_property(self):
        assert Wqe(flags=WrFlags.SIGNALED).signaled
        assert not Wqe(flags=WrFlags.FENCE).signaled
