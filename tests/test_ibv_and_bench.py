"""Unit tests: host verbs API, WR builders, bench utilities, models."""

import pytest

from repro.bench import (
    LatencyRecorder,
    Testbed,
    percentile,
    render_series,
    render_table,
    summarize,
)
from repro.ibv import (
    VerbsContext,
    VerbsError,
    wr_calc,
    wr_cas,
    wr_enable,
    wr_noop,
    wr_recv,
    wr_send,
    wr_wait,
    wr_write,
)
from repro.nic import (
    ALL_MODELS,
    CONNECTX3,
    CONNECTX5,
    CONNECTX6,
    INTEL_E810,
    Opcode,
    WrFlags,
)


class TestWrBuilders:
    def test_write_fields(self):
        wqe = wr_write(0x10, 64, 0x20, 0x99, wr_id=5)
        assert (wqe.opcode, wqe.laddr, wqe.length, wqe.raddr,
                wqe.rkey, wqe.wr_id) == (Opcode.WRITE, 0x10, 64, 0x20,
                                         0x99, 5)
        assert wqe.signaled

    def test_unsignaled_flag(self):
        assert not wr_write(0, 8, 0, 0, signaled=False).signaled

    def test_cas_operands(self):
        wqe = wr_cas(0x30, 0x77, compare=1, swap=2, result_laddr=0x40)
        assert (wqe.operand0, wqe.operand1, wqe.laddr) == (1, 2, 0x40)
        assert wqe.length == 8

    def test_calc_requires_calc_opcode(self):
        with pytest.raises(ValueError):
            wr_calc(Opcode.WRITE, 0, 0, 1)

    def test_wait_enable_targets(self):
        wait = wr_wait(7, 12)
        assert (wait.target, wait.wqe_count) == (7, 12)
        enable = wr_enable(9, 3, relative=True)
        assert enable.flags & WrFlags.ENABLE_RELATIVE

    def test_recv_scatter(self):
        from repro.nic import Sge
        wqe = wr_recv(sges=[Sge(1 << 12, 8), Sge(1 << 13, 16)])
        assert len(wqe.sges) == 2


class TestVerbsContext:
    def test_execute_sync_checked_raises_on_error(self, rig):
        src, _ = rig.buffer("a", 8)

        def run():
            yield from rig.verbs.execute_sync_checked(
                rig.qp_a, wr_write(src.addr, 8, 0x5000, 0xBAD))

        proc = rig.sim.process(run())
        rig.sim.run()
        assert isinstance(proc.exception, VerbsError)

    def test_poll_blocking_requires_cpu(self, rig):
        verbs = VerbsContext(rig.sim, cpu=None)

        def run():
            yield from verbs.poll_blocking(rig.qp_a.send_wq.cq)

        proc = rig.sim.process(run())
        rig.sim.run()
        assert isinstance(proc.exception, VerbsError)

    def test_post_overhead_charged(self, rig):
        def run():
            start = rig.sim.now
            yield from rig.verbs.post_send(rig.qp_a,
                                           wr_noop(signaled=False))
            return rig.sim.now - start

        assert rig.run(run()) == rig.verbs.post_overhead_ns


class TestStats:
    def test_percentile_nearest_rank(self):
        samples = list(range(1, 101))
        assert percentile(samples, 0.50) == 50
        assert percentile(samples, 0.99) == 99
        assert percentile(samples, 1.0) == 100

    def test_percentile_single_sample(self):
        assert percentile([42], 0.99) == 42

    def test_percentile_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_summarize(self):
        stats = summarize([1000, 2000, 3000])
        assert stats["count"] == 3
        assert stats["avg"] == 2000
        assert stats["min"] == 1000 and stats["max"] == 3000

    def test_recorder_units(self):
        recorder = LatencyRecorder("r")
        for value in (1000, 2000, 3000):
            recorder.record(value)
        assert recorder.avg_us == 2.0
        assert recorder.p50_us == 2.0
        assert len(recorder) == 3


class TestTables:
    def test_render_table_aligns(self):
        text = render_table(["a", "long-header"],
                            [[1, 2], ["xx", "yyyy"]])
        lines = text.splitlines()
        assert "a" in lines[0] and "long-header" in lines[0]
        assert len({len(line) for line in lines if line}) <= 3

    def test_render_series(self):
        text = render_series("s", [1, 2], [1.5, 2.5])
        assert "1:1.50" in text and "2:2.50" in text


class TestDeviceModels:
    def test_generations_scale(self):
        assert CONNECTX3.pus_per_port < CONNECTX5.pus_per_port \
            < CONNECTX6.pus_per_port

    def test_cx3_lacks_calc_verbs(self):
        assert not CONNECTX3.supports_calc_verbs
        assert CONNECTX5.supports_calc_verbs

    def test_intel_lacks_wait_enable(self):
        assert not INTEL_E810.supports_wait_enable

    def test_redn_rejects_intel(self):
        """§6: no WAIT equivalent -> RedN programs cannot deploy."""
        from repro.memory import HostMemory, ProtectionDomain
        from repro.nic import RNIC
        from repro.redn import ProgramError, RednContext
        from repro.sim import Simulator
        sim = Simulator()
        memory = HostMemory()
        nic = RNIC(sim, memory, model=INTEL_E810)
        with pytest.raises(ProgramError):
            RednContext(nic, ProtectionDomain(memory))

    def test_all_models_have_positive_occupancies(self):
        for model in ALL_MODELS:
            for occupancy in model.timing.pu_occupancy_ns.values():
                assert occupancy >= 1


class TestTestbed:
    def test_topology(self):
        bed = Testbed(num_clients=2)
        assert bed.fabric.linked(bed.server.nic, bed.clients[0].nic)
        assert bed.fabric.linked(bed.server.nic, bed.clients[1].nic)
        assert not bed.fabric.linked(bed.clients[0].nic,
                                     bed.clients[1].nic)

    def test_seeded_streams_shared(self):
        bed = Testbed(seed=7)
        stream_a = bed.streams.stream("x")
        stream_b = Testbed(seed=7).streams.stream("x")
        assert [stream_a.random() for _ in range(3)] == \
            [stream_b.random() for _ in range(3)]

    def test_dual_port_server(self):
        bed = Testbed(nic_ports=2)
        assert len(bed.server.nic.ports) == 2
