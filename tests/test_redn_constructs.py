"""Tests for RedN constructs: if, recycled while, break images."""

import pytest

from repro.ibv import wr_noop, wr_send, wr_write
from repro.nic import Opcode, WrFlags, Wqe, ctrl_word
from repro.redn import (
    BreakImage,
    ProgramBuilder,
    ProgramError,
    RecycledLoop,
    RednContext,
)


def make_ctx(lo):
    return RednContext(lo.nic, lo.pd, owner="test-redn")


class TestIfConstruct:
    def _build_if(self, lo, x, y):
        """if (x == y): write marker bytes to dst. Returns dst bytes."""
        ctx = make_ctx(lo)
        builder = ProgramBuilder(ctx, name="if-test")
        src, _ = ctx.alloc_registered(8, label="src")
        dst, dst_mr = ctx.alloc_registered(8, label="dst")
        ctx.memory.write(src.addr, b"MATCHED!")

        ctl = builder.control_queue(name="ctl")
        worker = builder.worker_queue(name="wrk")
        branches = builder.worker_queue(name="brn")

        # Branch: disarmed WRITE whose id field holds x.
        live = wr_write(src.addr, 8, dst.addr, dst_mr.rkey)
        live.wr_id = x
        branch = builder.template(branches, live, tag="if.branch")

        refs = builder.emit_if(ctl, worker, branch, compare_id=y,
                               tag="if")
        ctl.doorbell()

        def run():
            yield lo.sim.timeout(50_000)
            return ctx.memory.read(dst.addr, 8)

        return lo.run(run()), builder

    def test_taken_branch_executes(self, lo):
        result, _ = self._build_if(lo, x=0x42, y=0x42)
        assert result == b"MATCHED!"

    def test_not_taken_branch_is_noop(self, lo):
        result, _ = self._build_if(lo, x=0x42, y=0x43)
        assert result == bytes(8)

    def test_cost_matches_table2(self, lo):
        """if = 1C + 1A + 3E (paper Table 2)."""
        _, builder = self._build_if(lo, x=1, y=1)
        cost = builder.cost("if")
        assert (cost.copies, cost.atomics, cost.ordering) == (1, 1, 3)

    def test_48bit_operands(self, lo):
        big = (1 << 48) - 1
        result, _ = self._build_if(lo, x=big, y=big)
        assert result == b"MATCHED!"

    def test_operand_above_48_bits_rejected(self):
        with pytest.raises(ValueError):
            ctrl_word(Opcode.NOOP, 1 << 48)


class TestRecycledLoop:
    def test_loop_runs_without_cpu(self, lo):
        """Each trigger completion drives one lap; counter increments
        prove the ring re-executes with zero host involvement."""
        ctx = make_ctx(lo)
        builder = ProgramBuilder(ctx, name="loop-test")
        counter, counter_mr = ctx.alloc_registered(8, label="ctr")
        one, _ = ctx.alloc_registered(8, label="one")
        ctx.memory.write_u64(one.addr, 1)

        trigger_qp = lo.qp_a

        loop = RecycledLoop(builder, trigger_qp.send_wq.cq,
                            trigger_delta=1, name="ticker")
        # Body: FETCH_ADD counter += 1 via a plain WQE.
        from repro.ibv import wr_fetch_add
        loop.body(wr_fetch_add(counter.addr, counter_mr.rkey, 1,
                               signaled=True), tag="while.body")
        loop.build()
        loop.start()

        def run():
            values = []
            for _ in range(4):
                yield from lo.verbs.execute_sync_checked(
                    trigger_qp, wr_noop(signaled=True))
                yield lo.sim.timeout(30_000)
                values.append(ctx.memory.read_u64(counter.addr))
            return values

        assert lo.run(run()) == [1, 2, 3, 4]

    def test_cost_matches_table2_overhead(self, lo):
        """Recycling adds 2 READs + 1 ADD + 1 ENABLE over unrolled."""
        ctx = make_ctx(lo)
        builder = ProgramBuilder(ctx, name="cost-test")
        dummy, dummy_mr = ctx.alloc_registered(64, label="dummy")

        from repro.ibv import wr_cas, wr_fetch_add
        client = builder.worker_queue(name="client")
        resp = builder.template(
            client, wr_write(dummy.addr, 8, dummy.addr + 8,
                             dummy_mr.rkey), tag="while.resp")

        loop = RecycledLoop(builder, client.cq, name="srv")
        loop.body(wr_cas(resp.field_addr("ctrl"), client.rkey,
                         compare=0, swap=0, signaled=True),
                  tag="while.cas")
        loop.restore(resp, offset=0, length=8)    # response re-template
        loop.restore(resp, offset=8, length=56)   # patched fields
        loop.rearm(client)
        loop.build()

        cost = builder.cost("while")
        # 3C (resp template + 2 restore READs), 2A (CAS + ADD),
        # 4E (head WAIT + rearm ENABLE + wrap ENABLE + ...).
        assert cost.copies == 3
        assert cost.atomics == 2
        assert cost.ordering >= 3

    def test_ring_exactly_filled(self, lo):
        ctx = make_ctx(lo)
        builder = ProgramBuilder(ctx, name="fill-test")
        loop = RecycledLoop(builder, lo.qp_a.send_wq.cq)
        loop.body(wr_noop(signaled=True))
        loop.build()
        assert loop.ring.wq.num_slots == loop.ring_wrs
        assert loop.ring.wq.posted_count == loop.ring_wrs

    def test_double_build_rejected(self, lo):
        ctx = make_ctx(lo)
        builder = ProgramBuilder(ctx, name="dbl")
        loop = RecycledLoop(builder, lo.qp_a.send_wq.cq)
        loop.body(wr_noop(signaled=True))
        loop.build()
        with pytest.raises(ProgramError):
            loop.build()

    def test_wqe_count_add_delta_encoding(self):
        from repro.redn import WQE_COUNT_ADD_DELTA
        assert WQE_COUNT_ADD_DELTA(1) == 1 << 32
        assert WQE_COUNT_ADD_DELTA(7) == 7 << 32


class TestBreakImage:
    def test_break_arms_response_and_kills_gate(self, lo):
        """The armed break WRITE flips the response live and clears the
        gate's SIGNALED bit in one contiguous write (Fig 6)."""
        ctx = make_ctx(lo)
        builder = ProgramBuilder(ctx, name="brk")
        src, _ = ctx.alloc_registered(8, label="src")
        dst, dst_mr = ctx.alloc_registered(8, label="dst")
        ctx.memory.write(src.addr, b"RESPONSE")

        target_queue = builder.worker_queue(name="tq")
        resp = builder.template(
            target_queue, wr_write(src.addr, 8, dst.addr, dst_mr.rkey,
                                   signaled=False), tag="resp")
        gate = builder.emit(target_queue, wr_noop(signaled=True),
                            tag="gate")

        image = BreakImage(builder, resp, gate)
        break_queue = builder.worker_queue(name="bq")
        brk = image.emit_break_write(break_queue)

        # Arm the break by hand (normally a CAS does this), run it.
        brk.poke("ctrl", ctrl_word(Opcode.WRITE, 0))
        break_queue.doorbell()

        def run():
            yield lo.sim.timeout(30_000)
            # Now release the (rewritten) response + gate.
            target_queue.doorbell()
            yield lo.sim.timeout(30_000)
            return (ctx.memory.read(dst.addr, 8),
                    target_queue.cq.count)

        written, gate_completions = lo.run(run())
        assert written == b"RESPONSE"   # response armed and executed
        assert gate_completions == 0    # gate no longer signals

    def test_unarmed_break_leaves_templates(self, lo):
        ctx = make_ctx(lo)
        builder = ProgramBuilder(ctx, name="brk2")
        src, _ = ctx.alloc_registered(8, label="src")
        dst, dst_mr = ctx.alloc_registered(8, label="dst")

        target_queue = builder.worker_queue(name="tq")
        resp = builder.template(
            target_queue, wr_write(src.addr, 8, dst.addr, dst_mr.rkey,
                                   signaled=False), tag="resp")
        gate = builder.emit(target_queue, wr_noop(signaled=True),
                            tag="gate")
        image = BreakImage(builder, resp, gate)
        break_queue = builder.worker_queue(name="bq")
        image.emit_break_write(break_queue)
        break_queue.doorbell()   # break runs as NOOP (not armed)

        def run():
            yield lo.sim.timeout(30_000)
            target_queue.doorbell()
            yield lo.sim.timeout(30_000)
            return (ctx.memory.read(dst.addr, 8), target_queue.cq.count)

        untouched, gate_completions = lo.run(run())
        assert untouched == bytes(8)    # response stayed NOOP
        assert gate_completions == 1    # gate still signals

    def test_nonadjacent_gate_rejected(self, lo):
        ctx = make_ctx(lo)
        builder = ProgramBuilder(ctx, name="brk3")
        src, _ = ctx.alloc_registered(8, label="s")
        dst, dst_mr = ctx.alloc_registered(8, label="d")
        queue = builder.worker_queue(name="q")
        resp = builder.template(
            queue, wr_write(src.addr, 8, dst.addr, dst_mr.rkey),
            tag="r")
        builder.emit(queue, wr_noop(), tag="spacer")
        gate = builder.emit(queue, wr_noop(signaled=True), tag="g")
        with pytest.raises(ProgramError):
            BreakImage(builder, resp, gate)
