"""Tracing determinism: byte-identical traces, schedule-neutral tracer.

Two guarantees hold the observability layer to the simulator's
determinism discipline:

* the same scenario traced twice produces **byte-identical** Chrome
  trace JSON (every name in the trace is derived from explicit names,
  never from process-global ids);
* attaching a tracer never changes what the simulation computes — the
  run fingerprint (final simulated time, kernel progress counters, NIC
  opcode counts, payload bytes) is bit-identical with tracing on, off,
  or toggled between runs.

The flight recorder (``repro.obs.recorder``) is held to the same bar:
off / traced / recorded runs must agree bit-for-bit, and two recorded
runs must dump byte-identical journals.
"""

import pytest

from repro.ibv import VerbsContext, wr_fetch_add, wr_noop, wr_write
from repro.memory import HostMemory, ProtectionDomain
from repro.nic import RNIC
from repro.obs import FleetTelemetry, FlightRecorder, Tracer
from repro.redn import ProgramBuilder, RecycledLoop, RednContext
from repro.sim import Simulator


def build_rig():
    """A LoopbackRig equivalent with every name pinned explicitly, so
    repeated builds inside one process are name-identical."""
    sim = Simulator()
    memory = HostMemory(name="mem")
    nic = RNIC(sim, memory, name="nic")
    pd = ProtectionDomain(memory, name="pd")
    qp_a, qp_b = nic.create_loopback_pair(pd, name="lo")
    verbs = VerbsContext(sim, name="lo-verbs")
    return sim, memory, nic, pd, qp_a, qp_b, verbs


def run_scenario(trace: bool, record: bool = False,
                 telemetry: bool = False):
    """A mixed workload: recycled self-modifying loop + WRITE chain.

    Returns (trace_json_or_None, fingerprint) — or, with ``record``
    (``telemetry``), the journal (telemetry) JSONL instead.
    """
    sim, memory, nic, pd, qp_a, qp_b, verbs = build_rig()
    tracer = None
    recorder = None
    fleet = None
    if trace:
        tracer = Tracer(sim, name="det")
        tracer.attach_nic(nic)
    if record:
        recorder = FlightRecorder(sim, name="det",
                                  checkpoint_interval=16)
        recorder.attach_nic(nic)
    if telemetry:
        fleet = FleetTelemetry(window_ns=10_000)
        fleet.attach(sim, bed="det")

    ctx = RednContext(nic, pd, owner="det", name="detctx")
    builder = ProgramBuilder(ctx, name="det-loop")
    counter, counter_mr = ctx.alloc_registered(8, label="ctr")
    loop = RecycledLoop(builder, qp_a.send_wq.cq, trigger_delta=1,
                        name="ticker")
    loop.body(wr_fetch_add(counter.addr, counter_mr.rkey, 1,
                           signaled=True), tag="while.body")
    loop.build()
    loop.start()

    src = memory.alloc(64, label="src")
    dst = memory.alloc(64, label="dst")
    dst_mr = pd.register(dst)
    memory.write(src.addr, bytes(range(64)))

    def run():
        for _ in range(3):
            yield from verbs.execute_sync_checked(
                qp_a, wr_noop(signaled=True))
            yield sim.timeout(30_000)
        for _ in range(4):
            yield from verbs.execute_sync_checked(
                qp_b, wr_write(src.addr, 64, dst.addr, dst_mr.rkey,
                               signaled=True))
        return memory.read_u64(counter.addr)

    laps = sim.run_process(run())
    fingerprint = (
        laps,
        sim.now,
        dict(sim.stats),
        tuple(sorted(nic.stats.items())),
        memory.read(dst.addr, 64),
    )
    text = None
    if tracer is not None:
        text = tracer.to_json()
        tracer.close()
    if recorder is not None:
        text = recorder.to_jsonl()
        assert recorder.violations == []
        recorder.close()
    if fleet is not None:
        fleet.finalize()
        text = fleet.to_jsonl()
        fleet.close()
    return text, fingerprint


def test_double_run_traces_byte_identical():
    first, fp_first = run_scenario(trace=True)
    second, fp_second = run_scenario(trace=True)
    assert fp_first == fp_second
    assert first == second


def test_tracing_off_leaves_fingerprint_bit_identical():
    _, untraced = run_scenario(trace=False)
    _, traced = run_scenario(trace=True)
    _, untraced_again = run_scenario(trace=False)
    assert untraced == traced
    assert untraced == untraced_again


def test_recorder_off_traced_recorded_triple_identical():
    """The zero-cost flag audit: off / traced / recorded runs agree."""
    _, off = run_scenario(trace=False)
    _, traced = run_scenario(trace=True)
    _, recorded = run_scenario(trace=False, record=True)
    _, both = run_scenario(trace=True, record=True)
    _, off_again = run_scenario(trace=False)
    assert off == traced == recorded == both == off_again


def test_telemetry_off_traced_telemetry_triple_identical():
    """Same audit for the telemetry plane: the off/traced/telemetry
    fingerprint triple stays bit-identical, and two telemetry runs
    dump byte-identical window streams."""
    _, off = run_scenario(trace=False)
    first, with_telemetry = run_scenario(trace=False, telemetry=True)
    _, traced = run_scenario(trace=True)
    second, again = run_scenario(trace=False, telemetry=True)
    _, all_three = run_scenario(trace=True, record=True, telemetry=True)
    assert off == traced == with_telemetry == again == all_three
    assert first == second
    assert first  # the stream actually carries window records


def test_double_run_journals_byte_identical():
    first, fp_first = run_scenario(trace=False, record=True)
    second, fp_second = run_scenario(trace=False, record=True)
    assert fp_first == fp_second
    assert first == second


def test_trace_records_expected_race_count():
    text, _ = run_scenario(trace=True)
    # 3 loop laps -> 3 wqe_count self-modifications, embedded in the
    # serialized trace itself (the double-run test compares bytes, so
    # pin down that the bytes carry the interesting content too).
    assert text.count('"self_mod"') == 3
    assert text.count('"stale_wqe"') == 0
