"""Double-run determinism tests: same build -> bit-identical execution.

The perf fast paths (drain-at-advance kernel loop, synchronous resource
claims, compiled WQE codecs, the decode cache) are only admissible
because they preserve the simulator's deterministic schedule. These
tests build full-stack scenarios twice from scratch and require the two
runs to agree on final simulation time, the exact CQE sequence (queue,
wr_id, opcode, status, timestamp), and the kernel's executed-event
count — any fast path that reorders work trips at least one of them.
"""

from repro.bench import Testbed
from repro.datastructs import LinkedList, SlabStore
from repro.offloads.list_traversal import ListTraversalOffload
from repro.redn import RednContext
from repro.redn.offload import OffloadClient, OffloadConnection
from repro.redn.turing import BINARY_INCREMENT, NicTuringMachine


def _record_cqes(nic, log):
    """Tap every CQ on ``nic``, appending one tuple per completion."""
    for cq in nic.cqs.values():
        original = cq.post_completion

        def tapped(cqe, host_delay_ns=0, _orig=original, _cq=cq):
            log.append((_cq.cq_num, cqe.wr_id, cqe.opcode, cqe.status,
                        cqe.timestamp))
            _orig(cqe, host_delay_ns=host_delay_ns)

        cq.post_completion = tapped


def _run_turing_machine():
    bed = Testbed(num_clients=0)
    process = bed.server.spawn_process("turing")
    ctx = RednContext(bed.server.nic, process.create_pd(),
                      process=process, name="tmdet")
    machine = NicTuringMachine(ctx, BINARY_INCREMENT, name="tmdet")
    machine.load_tape(["1", "1", "0", "1"])
    cqes = []
    _record_cqes(bed.server.nic, cqes)
    steps = bed.run(machine.run(max_steps=300))
    return {
        "steps": steps,
        "tape": machine.read_tape(-2, 10),
        "sim_now": bed.sim.now,
        "events": bed.sim.stats["events_executed"],
        "cqes": tuple(cqes),
    }


def _run_list_traversal(calls=12, list_size=6):
    bed = Testbed(num_clients=1)
    proc = bed.server.spawn_process("list-server")
    pd = proc.create_pd()
    slab_alloc = proc.alloc(1 << 20, label="slab")
    node_alloc = proc.alloc(64 * 1024, label="nodes")
    data_mr = pd.register(node_alloc)
    pd.register(slab_alloc)
    slab = SlabStore(bed.server.memory, slab_alloc)
    lst = LinkedList(bed.server.memory, node_alloc, slab)
    keys = [0x100 + index for index in range(list_size)]
    for key in keys:
        lst.append(key, bytes([key & 0xFF]) * 64)
    ctx = RednContext(bed.server.nic, pd, process=proc)
    conn = OffloadConnection(ctx, bed.clients[0].nic, bed.client_pd(0),
                             name="det13")
    offload = ListTraversalOffload(ctx, lst, data_mr, conn,
                                   max_nodes=list_size, use_break=False)
    client = OffloadClient(conn, bed.client_verbs(0))
    cqes = []
    _record_cqes(bed.server.nic, cqes)
    _record_cqes(bed.clients[0].nic, cqes)

    def scenario():
        latencies = []
        for index in range(calls):
            if index % 8 == 0:
                offload.post_instances(min(8, calls - index))
            key = keys[index % list_size]
            result = yield from client.call(offload.payload_for(key),
                                            timeout_ns=60_000_000)
            assert result.ok
            latencies.append(result.latency_ns)
            yield bed.sim.timeout(60_000)
        return latencies

    latencies = bed.run(scenario())
    return {
        "latencies": tuple(latencies),
        "sim_now": bed.sim.now,
        "events": bed.sim.stats["events_executed"],
        "cqes": tuple(cqes),
    }


class TestDoubleRunDeterminism:
    def test_turing_machine_replays_identically(self):
        first = _run_turing_machine()
        second = _run_turing_machine()
        assert first == second
        assert first["steps"] > 0
        assert first["cqes"], "scenario produced no completions to compare"

    def test_list_traversal_offload_replays_identically(self):
        first = _run_list_traversal()
        second = _run_list_traversal()
        assert first == second
        assert len(first["latencies"]) == 12
        assert first["cqes"], "scenario produced no completions to compare"
