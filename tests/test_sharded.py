"""Tests for the sharded conservative synchronizer.

The load-bearing claim of :mod:`repro.sim.sharded` is bit-identity:
driving the same multi-bed scenario with lookahead-wide windows
(:meth:`ShardedSimulation.run`) or with degenerate one-timestamp
windows (:meth:`ShardedSimulation.run_serial` — a time-ordered global
merge) must produce the same per-shard clocks, event counts and
simulated results. Everything else — typed lookahead errors, the
strict window horizon, quiescent-shard wakeups, the single-shard
fallback — exists to keep that claim safe.
"""

import pytest

from repro.bench.cluster import ClusterScenario
from repro.sim import LookaheadError, ShardedSimulation, Simulator
from repro.sim.core import SimulationError
from repro.sim.sharded import DEFAULT_SHARD_LINK_NS, ShardFabric


def _ping_pong(sharded, rounds=5, latency=100):
    """Two shards exchanging a counter; returns the client processes."""
    a, b = sharded.add_shard("a"), sharded.add_shard("b")
    a_to_b, b_to_a = sharded.link(a, b, one_way_ns=latency)

    def pinger():
        inbox = a.mailbox("ball")
        log = []
        for n in range(rounds):
            a_to_b.send("ball", n)
            log.append((a.sim.now, (yield inbox.get())))
            yield 7
        return log

    def ponger():
        inbox = b.mailbox("ball")
        while True:
            n = yield inbox.get()
            yield 13
            b_to_a.send("ball", n * 2)

    ping = a.sim.process(pinger(), name="ping")
    b.sim.process(ponger(), name="pong")
    return ping


class TestTopologyErrors:
    def test_zero_latency_link_rejected(self):
        sharded = ShardedSimulation()
        a, b = sharded.add_shard("a"), sharded.add_shard("b")
        with pytest.raises(LookaheadError):
            sharded.connect(a, b, one_way_ns=0)

    def test_negative_latency_link_rejected(self):
        sharded = ShardedSimulation()
        a, b = sharded.add_shard("a"), sharded.add_shard("b")
        with pytest.raises(LookaheadError):
            sharded.connect(a, b, one_way_ns=-5)

    def test_non_int_latency_rejected(self):
        sharded = ShardedSimulation()
        a, b = sharded.add_shard("a"), sharded.add_shard("b")
        with pytest.raises(LookaheadError):
            sharded.connect(a, b, one_way_ns=99.5)

    def test_lookahead_error_is_a_simulation_error(self):
        # Callers that guard on the kernel's error type must catch
        # topology misuse too.
        assert issubclass(LookaheadError, SimulationError)

    def test_self_link_rejected(self):
        sharded = ShardedSimulation()
        a = sharded.add_shard("a")
        with pytest.raises(SimulationError):
            sharded.connect(a, a, one_way_ns=100)

    def test_duplicate_link_rejected(self):
        sharded = ShardedSimulation()
        a, b = sharded.add_shard("a"), sharded.add_shard("b")
        sharded.connect(a, b, one_way_ns=100)
        with pytest.raises(SimulationError):
            sharded.connect(a, b, one_way_ns=200)

    def test_same_simulator_cannot_back_two_shards(self):
        sharded = ShardedSimulation()
        sim = Simulator()
        sharded.add_shard("a", sim=sim)
        with pytest.raises(SimulationError):
            sharded.add_shard("b", sim=sim)

    def test_default_link_latency_is_positive(self):
        assert DEFAULT_SHARD_LINK_NS > 0

    def test_reexported_from_net_fabric(self):
        # Cross-shard sends route through repro.net.fabric's namespace.
        from repro.net import fabric

        assert fabric.ShardFabric is ShardFabric
        assert fabric.LookaheadError is LookaheadError


class TestWindowProtocol:
    def test_ping_pong_sharded_matches_serial(self):
        results = {}
        for mode in ("sharded", "serial"):
            sharded = ShardedSimulation()
            ping = _ping_pong(sharded)
            if mode == "serial":
                sharded.run_serial()
            else:
                sharded.run()
            assert not sharded.failed_processes()
            results[mode] = (ping.value, sharded.stats(), sharded.now)
        assert results["sharded"] == results["serial"]

    def test_serial_uses_one_timestamp_windows(self):
        sharded = ShardedSimulation()
        _ping_pong(sharded)
        sharded.run_serial()
        serial_rounds = sharded.rounds
        sharded2 = ShardedSimulation()
        _ping_pong(sharded2)
        sharded2.run()
        # The wide-window driver must genuinely batch: strictly fewer
        # synchronizer rounds than the per-timestamp merge.
        assert sharded2.rounds < serial_rounds

    def test_quiescent_shard_woken_by_message(self):
        # Shard b has no local events at all; only the in-flight
        # message keeps the cluster alive, and it must still arrive.
        sharded = ShardedSimulation()
        a, b = sharded.add_shard("a"), sharded.add_shard("b")
        chan = sharded.connect(a, b, one_way_ns=250)
        got = []

        def receiver():
            got.append((yield b.mailbox("in").get()))

        b.sim.process(receiver(), name="rx")
        chan.send("in", "wake")   # sent at t=0 from outside any process
        sharded.run()
        assert got == ["wake"]
        assert b.sim.now == 250

    def test_message_at_exact_horizon_waits_for_next_round(self):
        # pop_due owns [start, before_ts): an arrival exactly at the
        # horizon must stay queued — delivering it would race with
        # local events the shard has not generated yet.
        fabric = ShardFabric()
        src = fabric.register(Simulator())
        dst = fabric.register(Simulator())
        chan = fabric.connect(src, dst, one_way_ns=100)
        arrival = chan.send("m", "payload")
        assert arrival == 100
        assert fabric.pop_due(dst, before_ts=100) == []
        assert fabric.pending_floor(dst) == 100
        due = fabric.pop_due(dst, before_ts=101)
        assert [entry[0] for entry in due] == [100]

    def test_exact_horizon_message_still_delivered_by_driver(self):
        sharded = ShardedSimulation()
        a, b = sharded.add_shard("a"), sharded.add_shard("b")
        chan = sharded.connect(a, b, one_way_ns=100)
        got = []

        def sender():
            yield 50
            chan.send("in", "edge")   # arrives at exactly 50 + 100

        def receiver():
            got.append((yield b.mailbox("in").get()))

        a.sim.process(sender(), name="tx")
        b.sim.process(receiver(), name="rx")
        sharded.run()
        assert got == ["edge"]
        assert b.sim.now == 150

    def test_canonical_order_breaks_arrival_ties_by_src_then_seq(self):
        fabric = ShardFabric()
        src0 = fabric.register(Simulator())
        src1 = fabric.register(Simulator())
        dst = fabric.register(Simulator())
        chan0 = fabric.connect(src0, dst, one_way_ns=100)
        chan1 = fabric.connect(src1, dst, one_way_ns=100)
        chan1.send("m", "from1")
        chan0.send("m", "first0")
        chan0.send("m", "second0")
        due = fabric.pop_due(dst, before_ts=None)
        assert [entry[4] for entry in due] == \
            ["first0", "second0", "from1"]

    def test_run_until_caps_every_shard(self):
        sharded = ShardedSimulation()
        _ping_pong(sharded, rounds=50)
        sharded.run(until=500)
        assert all(s.sim.now <= 500 for s in sharded.shards)
        in_flight_at_cap = sharded.fabric.in_flight()
        sharded.run()   # drain the rest
        assert sharded.fabric.in_flight() == 0
        assert in_flight_at_cap >= 0

    def test_empty_cluster_rejected(self):
        with pytest.raises(SimulationError):
            ShardedSimulation().run()


class TestSingleShardFallback:
    @staticmethod
    def _workload(sim):
        def worker():
            total = 0
            for n in range(10):
                yield 5 + n
                total += sim.now
            return total

        return sim.process(worker(), name="w")

    def test_degenerates_to_plain_simulator_run(self):
        plain = Simulator()
        plain_proc = self._workload(plain)
        plain.run()

        sharded = ShardedSimulation()
        shard = sharded.add_shard("only")
        shard_proc = self._workload(shard.sim)
        sharded.run()

        assert sharded.rounds == 1
        assert shard_proc.value == plain_proc.value
        assert shard.sim.now == plain.now
        assert dict(shard.sim.stats) == dict(plain.stats)

    def test_until_passes_through(self):
        sharded = ShardedSimulation()
        shard = sharded.add_shard("only")
        self._workload(shard.sim)
        sharded.run(until=20)
        assert shard.sim.now <= 20


class TestClusterBitIdentity:
    """Full-stack identity: real testbeds with RDMA traffic per shard."""

    CONFIG = dict(num_beds=3, clients_per_bed=1,
                  requests_per_client=3, link_ns=500)

    def _drive(self, serial):
        scenario = ClusterScenario(**self.CONFIG)
        fingerprint, measures = scenario.run(serial=serial)
        return fingerprint, measures, scenario.sharded.stats()

    def test_sharded_and_serial_are_bit_identical(self):
        fp_sharded, m_sharded, stats_sharded = self._drive(serial=False)
        fp_serial, m_serial, stats_serial = self._drive(serial=True)
        assert fp_sharded == fp_serial
        # The identity goes beyond the headline numbers: every shard's
        # kernel counters and clock must agree too.
        assert stats_sharded == stats_serial
        # Same simulated communication either way...
        assert m_sharded["messages"] == m_serial["messages"]
        # ...but the drivers batch differently — that is the speedup.
        assert m_sharded["rounds"] < m_serial["rounds"]

    def test_sharded_drive_is_deterministic_across_runs(self):
        first = self._drive(serial=False)
        second = self._drive(serial=False)
        assert first == second

    def test_scenario_runs_exactly_once(self):
        scenario = ClusterScenario(**self.CONFIG)
        scenario.run()
        with pytest.raises(RuntimeError):
            scenario.run()

    def test_fingerprint_shape(self):
        fingerprint, _, _ = self._drive(serial=False)
        config = self.CONFIG
        assert fingerprint["requests"] == (
            config["num_beds"] * config["clients_per_bed"]
            * config["requests_per_client"])
        assert fingerprint["latency_sum_ns"] > 0
        assert len(fingerprint["per_bed_events"]) == config["num_beds"]
        assert all(count > 0 for count in fingerprint["per_bed_events"])
