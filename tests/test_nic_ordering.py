"""Ordering and self-modification semantics (paper §3.1–§3.4).

These tests pin down the device behaviours that make RedN possible:
prefetch incoherence on normal queues, managed-mode fetch gating with
ENABLE, completion gating with WAIT, monotonic counters, and WQ
recycling.
"""

import pytest

from repro.ibv import (
    wr_cas,
    wr_enable,
    wr_noop,
    wr_send,
    wr_recv,
    wr_wait,
    wr_write,
)
from repro.nic import Opcode, WQE_HEADER, Wqe, WrFlags, ctrl_word


def make_write_template(src_addr, length, dst_addr, rkey, signaled=True):
    """A NOOP carrying full WRITE attributes: the Fig 4 branch target."""
    wqe = wr_write(src_addr, length, dst_addr, rkey, signaled=signaled)
    wqe.opcode = Opcode.NOOP
    return wqe


class TestPrefetchIncoherence:
    def test_modification_after_prefetch_is_ignored(self, lo):
        """Normal queues prefetch snapshots: late edits don't execute."""
        src, _ = lo.buffer(16)
        dst, dst_mr = lo.buffer(16)
        lo.memory.write(src.addr, b"X" * 16)

        qp = lo.qp_a
        # Post a NOOP template followed by a signaled NOOP; both get
        # prefetched in one batch.
        template = make_write_template(src.addr, 16, dst.addr, dst_mr.rkey,
                                       signaled=False)
        qp.post_send(template)
        qp.post_send(wr_noop(signaled=True))

        def meddle():
            # After the fetch (350 ns post-doorbell) but before the
            # second WQE would retire, rewrite WQE 0 into a WRITE.
            yield lo.sim.timeout(700)
            base = qp.send_wq.slot_addr(0)
            lo.memory.write_u64(base, ctrl_word(Opcode.WRITE, 0))

        def check():
            yield lo.sim.timeout(50_000)
            return lo.memory.read(dst.addr, 16)

        lo.sim.process(meddle())
        result = lo.run(check())
        # The stale (NOOP) snapshot executed: no bytes moved.
        assert result == bytes(16)

    def test_modification_before_doorbell_takes_effect(self, lo):
        """Managed queues fetch on ENABLE/doorbell: edits are honoured."""
        src, _ = lo.buffer(16)
        dst, dst_mr = lo.buffer(16)
        lo.memory.write(src.addr, b"Y" * 16)

        pd = lo.pd
        qp = lo.nic.create_qp(pd, managed_send=True, name="managed")
        qp.connect(lo.nic.create_qp(pd, name="managed-peer"))

        template = make_write_template(src.addr, 16, dst.addr, dst_mr.rkey)
        qp.post_send(template)  # managed: no doorbell

        def run():
            yield lo.sim.timeout(2_000)
            base = qp.send_wq.slot_addr(0)
            lo.memory.write_u64(base, ctrl_word(Opcode.WRITE, 0))
            qp.send_wq.doorbell()
            yield lo.sim.timeout(50_000)
            return lo.memory.read(dst.addr, 16)

        assert lo.run(run()) == b"Y" * 16


class TestWait:
    def test_wait_blocks_until_completion_count(self, lo):
        """WAIT(cq, n) releases only at the n-th completion (Fig 2a)."""
        dst, dst_mr = lo.buffer(8)
        src, _ = lo.buffer(8)
        lo.memory.write(src.addr, b"A" * 8)

        chain_qp, _ = lo.nic.create_loopback_pair(lo.pd, name="chain")
        trigger_qp = lo.qp_a

        # Chain: WAIT for 1 completion on the trigger QP's send CQ,
        # then WRITE.
        trigger_cq = trigger_qp.send_wq.cq
        chain_qp.post_send(wr_wait(trigger_cq.cq_num, 1))
        chain_qp.post_send(
            wr_write(src.addr, 8, dst.addr, dst_mr.rkey))

        def run():
            yield lo.sim.timeout(20_000)
            before = lo.memory.read(dst.addr, 8)
            # Now complete a signaled NOOP on the trigger QP.
            yield from lo.verbs.execute_sync_checked(
                trigger_qp, wr_noop(signaled=True))
            yield lo.sim.timeout(20_000)
            after = lo.memory.read(dst.addr, 8)
            return before, after

        before, after = lo.run(run())
        assert before == bytes(8)
        assert after == b"A" * 8

    def test_wait_count_already_met_passes_through(self, lo):
        dst, dst_mr = lo.buffer(8)
        src, _ = lo.buffer(8)
        lo.memory.write(src.addr, b"B" * 8)
        chain_qp, _ = lo.nic.create_loopback_pair(lo.pd, name="chain")

        def run():
            yield from lo.verbs.execute_sync_checked(
                lo.qp_a, wr_noop(signaled=True))
            # Completion already happened; WAIT(…, 1) must not block.
            chain_qp.post_send(wr_wait(lo.qp_a.send_wq.cq.cq_num, 1))
            chain_qp.post_send(wr_write(src.addr, 8, dst.addr, dst_mr.rkey))
            yield lo.sim.timeout(20_000)
            return lo.memory.read(dst.addr, 8)

        assert lo.run(run()) == b"B" * 8

    def test_unsignaled_wr_does_not_satisfy_wait(self, lo):
        """Clearing SIGNALED starves the next WAIT — the break trick."""
        dst, dst_mr = lo.buffer(8)
        src, _ = lo.buffer(8)
        lo.memory.write(src.addr, b"C" * 8)
        chain_qp, _ = lo.nic.create_loopback_pair(lo.pd, name="chain")

        chain_qp.post_send(wr_wait(lo.qp_a.send_wq.cq.cq_num, 1))
        chain_qp.post_send(wr_write(src.addr, 8, dst.addr, dst_mr.rkey))

        def run():
            # Unsignaled NOOP completes without a CQE.
            yield from lo.verbs.post_send(lo.qp_a, wr_noop(signaled=False))
            yield lo.sim.timeout(50_000)
            return lo.memory.read(dst.addr, 8)

        assert lo.run(run()) == bytes(8)


class TestEnable:
    def _managed_chain(self, lo):
        qp = lo.nic.create_qp(lo.pd, managed_send=True, name="m")
        peer = lo.nic.create_qp(lo.pd, name="m-peer")
        qp.connect(peer)
        return qp

    def test_enable_releases_managed_wrs(self, lo):
        dst, dst_mr = lo.buffer(8)
        src, _ = lo.buffer(8)
        lo.memory.write(src.addr, b"D" * 8)
        managed = self._managed_chain(lo)
        control, _ = lo.nic.create_loopback_pair(lo.pd, name="ctl")

        managed.post_send(wr_write(src.addr, 8, dst.addr, dst_mr.rkey))

        def run():
            yield lo.sim.timeout(10_000)
            stalled = lo.memory.read(dst.addr, 8)
            control.post_send(
                wr_enable(managed.send_wq.wq_num, 1))
            yield lo.sim.timeout(20_000)
            released = lo.memory.read(dst.addr, 8)
            return stalled, released

        stalled, released = lo.run(run())
        assert stalled == bytes(8)
        assert released == b"D" * 8

    def test_enable_relative_advances_by_delta(self, lo):
        dst, dst_mr = lo.buffer(16)
        src, _ = lo.buffer(16)
        lo.memory.write(src.addr, b"E" * 16)
        managed = self._managed_chain(lo)
        control, _ = lo.nic.create_loopback_pair(lo.pd, name="ctl")

        managed.post_send(wr_write(src.addr, 8, dst.addr, dst_mr.rkey))
        managed.post_send(
            wr_write(src.addr, 8, dst.addr + 8, dst_mr.rkey))

        def run():
            control.post_send(
                wr_enable(managed.send_wq.wq_num, 1, relative=True))
            yield lo.sim.timeout(20_000)
            first_only = lo.memory.read(dst.addr, 16)
            control.post_send(
                wr_enable(managed.send_wq.wq_num, 1, relative=True))
            yield lo.sim.timeout(20_000)
            both = lo.memory.read(dst.addr, 16)
            return first_only, both

        first_only, both = lo.run(run())
        assert first_only == b"E" * 8 + bytes(8)
        assert both == b"E" * 16

    def test_enable_is_monotonic(self, lo):
        """A lower absolute ENABLE never rolls the limit back."""
        managed = self._managed_chain(lo)
        wq = managed.send_wq
        wq.enable(5)
        wq.enable(3)
        assert wq.enabled_count == 5


class TestRecycling:
    def test_ring_re_executes_without_reposting(self, lo):
        """WQ recycling (§3.4): ENABLE past posted_count wraps the ring.

        A 1-WQE ring holding a signaled WRITE is enabled 3 times: the
        NIC executes the same bytes 3 times with no CPU re-post.
        """
        counter, counter_mr = lo.buffer(8)
        src, _ = lo.buffer(8)
        lo.memory.write(src.addr, b"\x01" + bytes(7))

        qp = lo.nic.create_qp(lo.pd, managed_send=True, send_slots=1,
                              name="rec")
        peer = lo.nic.create_qp(lo.pd, name="rec-peer")
        qp.connect(peer)
        control, _ = lo.nic.create_loopback_pair(lo.pd, name="ctl")

        # Each pass overwrites one successive byte of the counter buf.
        qp.post_send(wr_write(src.addr, 1, counter.addr, counter_mr.rkey))

        def run():
            for index in range(3):
                control.post_send(
                    wr_enable(qp.send_wq.wq_num, 1, relative=True))
                yield lo.sim.timeout(20_000)
            return (qp.send_wq.executed_count if False else
                    qp.send_wq.fetched_count,
                    qp.send_wq.posted_count,
                    qp.send_wq.cq.count)

        fetched, posted, completions = lo.run(run())
        assert posted == 1
        assert fetched == 3
        assert completions == 3

    def test_monotonic_wait_counts_force_adds(self, lo):
        """CQ counts never reset: a WAIT re-armed for a second loop pass
        must target a *higher* absolute count (why recycling needs ADD
        verbs on wqe_count, §3.4)."""
        cq = lo.qp_a.send_wq.cq

        def run():
            yield from lo.verbs.execute_sync_checked(
                lo.qp_a, wr_noop(signaled=True))
            yield from lo.verbs.execute_sync_checked(
                lo.qp_a, wr_noop(signaled=True))
            return cq.count

        assert lo.run(run()) == 2
        # And a watcher for the old threshold fires immediately.
        event = cq.wait_for_count(1)
        assert event.triggered


class TestSelfModifyingCas:
    def test_cas_conditionally_flips_opcode(self, lo):
        """The Fig 4 conditional, raw: CAS on a WQE ctrl word converts a
        NOOP template into a live WRITE only when operands match."""
        src, _ = lo.buffer(8)
        dst, dst_mr = lo.buffer(8)
        lo.memory.write(src.addr, b"T" * 8)

        pd = lo.pd
        # Managed target queue holding the NOOP template (id = x).
        target_qp = lo.nic.create_qp(pd, managed_send=True, name="tgt")
        target_qp.connect(lo.nic.create_qp(pd, name="tgt-peer"))
        code_mr = pd.register(target_qp.send_wq.ring)

        x = 0x1234
        cas_qp, _ = lo.nic.create_loopback_pair(pd, name="cas")

        def attempt(y):
            # Each attempt posts a fresh NOOP template (new ring slot),
            # CASes it against y, then releases it with a doorbell.
            template = make_write_template(src.addr, 8, dst.addr,
                                           dst_mr.rkey)
            template.wr_id = x
            lo.memory.fill(dst.addr, 8, 0)
            wr_index = target_qp.post_send(template)
            ctrl_addr = target_qp.send_wq.slot_addr(wr_index)

            def run():
                yield from lo.verbs.execute_sync_checked(
                    cas_qp, wr_cas(
                        ctrl_addr, code_mr.rkey,
                        compare=ctrl_word(Opcode.NOOP, y),
                        swap=ctrl_word(Opcode.WRITE, y)))
                target_qp.send_wq.doorbell()
                yield lo.sim.timeout(20_000)
                return lo.memory.read(dst.addr, 8)
            return lo.run(run())

        # x != y: CAS fails, template stays NOOP, nothing written.
        assert attempt(0x9999) == bytes(8)
        # x == y: CAS succeeds, NOOP becomes WRITE, bytes move.
        assert attempt(x) == b"T" * 8


class TestCompletionOrdering:
    def test_cqes_delivered_in_wr_order(self, rig):
        src, _ = rig.buffer("a", 8)
        dst, dst_mr = rig.buffer("b", 64)

        def run():
            for index in range(4):
                yield from rig.verbs.post_send(
                    rig.qp_a,
                    wr_write(src.addr, 8, dst.addr + 8 * index,
                             dst_mr.rkey, wr_id=index, signaled=True))
            ids = []
            for _ in range(4):
                cqe = yield from rig.verbs.poll(rig.qp_a.send_wq.cq)
                ids.append(cqe.wr_id)
            return ids

        assert rig.run(run()) == [0, 1, 2, 3]


class TestRateLimiter:
    def test_wq_rate_limit_paces_execution(self, lo):
        """§3.5 isolation: a rate-limited WQ cannot exceed its budget."""
        qp = lo.qp_a
        qp.send_wq.set_rate_limit(ops_per_sec=100_000, burst=1)

        def run():
            times = []
            for _ in range(3):
                yield from lo.verbs.execute_sync_checked(
                    qp, wr_noop(signaled=True))
                times.append(lo.sim.now)
            return times

        times = lo.run(run())
        # 100 K ops/s -> >= ~10 us between ops after the burst.
        assert times[1] - times[0] >= 9_000
        assert times[2] - times[1] >= 9_000
