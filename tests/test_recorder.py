"""Flight recorder: journaling, checkpoints, replay, invariants.

Covers the edge cases the recorder must get right for record-and-replay
debugging to be trustworthy: ring-buffer eviction at capacity,
checkpoint byte-identity across identical runs, replay landing exactly
on a requested event, typed errors on truncated/corrupt journals, and
— the end-to-end guarantee — journal-suffix byte-identity when
replaying every built-in offload program.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.ibv import wr_write
from repro.obs import (
    FlightRecorder,
    InvariantMonitor,
    JournalCorruptError,
    JournalTruncatedError,
    ReplayDivergence,
    load_journal,
    replay_journal,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOLS = str(REPO_ROOT / "tools")
if TOOLS not in sys.path:
    sys.path.append(TOOLS)


def drive_writes(lo, recorder, writes: int = 6):
    """Post ``writes`` signaled WRITEs over the loopback QP."""
    recorder.attach_nic(lo.nic)
    src, _ = lo.buffer(64)
    dst, dst_mr = lo.buffer(64)
    lo.memory.write(src.addr, bytes(range(64)))
    for index in range(writes):
        lo.qp_a.post_send(wr_write(src.addr, 64, dst.addr, dst_mr.rkey,
                                   signaled=True, wr_id=index))

    def run():
        yield lo.sim.timeout(300_000)

    lo.run(run())
    return dst


class TestRecorderLifecycle:
    def test_one_recorder_per_sim(self, lo):
        recorder = FlightRecorder(lo.sim)
        with pytest.raises(ValueError):
            FlightRecorder(lo.sim)
        recorder.close()
        FlightRecorder(lo.sim).close()

    def test_close_detaches_and_clears_flag(self, lo):
        import repro.obs as obs
        recorder = FlightRecorder(lo.sim)
        drive_writes(lo, recorder, writes=1)
        assert obs.enabled
        before = recorder.seq
        recorder.close()
        assert not obs.enabled
        assert lo.sim.recorder is None
        # Detached: further traffic emits nothing.
        lo.qp_a.post_send(wr_write(0, 0, 0, 0))
        assert recorder.seq == before


class TestRingEviction:
    def test_eviction_at_capacity(self, lo):
        recorder = FlightRecorder(lo.sim, capacity=16,
                                  checkpoint_interval=8)
        drive_writes(lo, recorder)
        assert recorder.seq > 16
        assert len(recorder.records) == 16
        assert recorder.evicted == recorder.seq - 16
        # The retained window is the contiguous tail of the run.
        seqs = [record["seq"] for record in recorder.records]
        assert seqs == list(range(recorder.evicted, recorder.seq))
        recorder.close()

    def test_evicted_journal_dumps_loadable_suffix(self, lo, tmp_path):
        recorder = FlightRecorder(lo.sim, capacity=16,
                                  checkpoint_interval=8)
        drive_writes(lo, recorder)
        path = tmp_path / "ring.jsonl"
        recorder.dump(path)
        recorder.close()
        journal = load_journal(path)
        assert len(journal.records) == 16
        assert journal.first_seq == journal.meta["first_seq"] > 0
        # Checkpoints from before the retained window were dropped too.
        assert all(cp["seq"] >= journal.first_seq
                   for cp in journal.checkpoints)


class TestCheckpoints:
    def test_checkpoint_cadence(self, lo):
        recorder = FlightRecorder(lo.sim, checkpoint_interval=8)
        drive_writes(lo, recorder)
        assert recorder.checkpoints
        assert all(cp["seq"] % 8 == 0 for cp in recorder.checkpoints)
        recorder.close()

    def test_identical_runs_checkpoint_byte_identical(self, tmp_path):
        from conftest import LoopbackRig

        def capture():
            lo = LoopbackRig()
            recorder = FlightRecorder(lo.sim, checkpoint_interval=8)
            drive_writes(lo, recorder)
            state = recorder.capture_state()
            checkpoints = list(recorder.checkpoints)
            recorder.close()
            return state, checkpoints

        state_a, cps_a = capture()
        state_b, cps_b = capture()
        assert state_a == state_b
        assert cps_a == cps_b
        # Digest-for-digest identity survives a JSON round-trip (the
        # journal stores checkpoints as JSONL lines).
        assert json.loads(json.dumps(state_a, sort_keys=True)) == state_b

    def test_checkpoint_covers_queue_and_memory_state(self, lo):
        recorder = FlightRecorder(lo.sim)
        drive_writes(lo, recorder)
        state = recorder.capture_state()
        send_wq = lo.qp_a.send_wq
        wq_state = state["wq"][f"nic/{send_wq.name}"]
        assert wq_state["posted"] == send_wq.posted_count
        assert wq_state["fetched"] == send_wq.fetched_count
        assert f"ring:{send_wq.name}" in state["mem"]["mem"]
        cq_key = f"nic/{send_wq.cq.name}"
        assert state["cq"][cq_key] == send_wq.cq.count
        recorder.close()


class TestJournalErrors:
    def test_empty_journal_raises_truncated(self):
        with pytest.raises(JournalTruncatedError):
            load_journal([])

    def test_missing_meta_raises_truncated(self):
        line = json.dumps({"kind": "post", "seq": 0, "ts": 0})
        with pytest.raises(JournalTruncatedError):
            load_journal([line])

    def test_bad_json_raises_corrupt(self):
        meta = json.dumps({"kind": "meta", "schema": 1})
        with pytest.raises(JournalCorruptError):
            load_journal([meta, "{not json"])

    def test_unknown_schema_raises_corrupt(self):
        with pytest.raises(JournalCorruptError):
            load_journal([json.dumps({"kind": "meta", "schema": 99})])

    def test_seq_hole_raises_corrupt(self):
        lines = [json.dumps({"kind": "meta", "schema": 1}),
                 json.dumps({"kind": "post", "seq": 0, "ts": 0}),
                 json.dumps({"kind": "post", "seq": 2, "ts": 0})]
        with pytest.raises(JournalCorruptError):
            load_journal(lines)

    def test_truncated_dump_raises_typed_error(self, lo, tmp_path):
        recorder = FlightRecorder(lo.sim)
        drive_writes(lo, recorder)
        path = tmp_path / "full.jsonl"
        recorder.dump(path)
        recorder.close()
        lines = path.read_text().splitlines()
        # Drop a middle record: the seq chain must catch it.
        with pytest.raises(JournalCorruptError):
            load_journal(lines[:5] + lines[6:])


class TestReplay:
    def _journal(self, tmp_path, writes=6):
        from conftest import LoopbackRig

        lo = LoopbackRig()
        recorder = FlightRecorder(lo.sim, checkpoint_interval=8)
        drive_writes(lo, recorder, writes=writes)
        path = tmp_path / "run.jsonl"
        recorder.dump(path)
        recorder.close()
        return load_journal(path)

    def _runner(self, writes=6):
        from conftest import LoopbackRig

        def runner(make_recorder):
            lo = LoopbackRig()
            drive_writes(lo, make_recorder(lo.sim), writes=writes)

        return runner

    def test_full_replay_verifies_every_record(self, tmp_path):
        journal = self._journal(tmp_path)
        result = replay_journal(journal, self._runner())
        assert result.ok
        assert result.verified == len(journal.records)
        assert result.divergence is None
        result.raise_on_divergence()

    def test_replay_lands_exactly_on_requested_event(self, tmp_path):
        journal = self._journal(tmp_path)
        target = journal.find({"kind": "fetch", "wr": 3})
        assert target is not None
        result = replay_journal(
            journal, self._runner(),
            to_event={"kind": "fetch", "wq": target["wq"], "wr": 3})
        assert result.ok
        assert result.landed["wr"] == 3
        assert result.landed["kind"] == "fetch"
        # Recording stopped at the landing: nothing past it was
        # emitted, so the landed record is the recorder's last.
        assert result.recorder.records[-1] == result.landed

    def test_perturbed_replay_reports_divergence(self, tmp_path):
        journal = self._journal(tmp_path, writes=6)
        result = replay_journal(journal, self._runner(writes=5))
        assert not result.ok
        with pytest.raises(ReplayDivergence):
            result.raise_on_divergence()

    def test_replay_from_nearest_checkpoint_after_eviction(self,
                                                           tmp_path):
        from conftest import LoopbackRig

        lo = LoopbackRig()
        recorder = FlightRecorder(lo.sim, capacity=16,
                                  checkpoint_interval=8)
        drive_writes(lo, recorder)
        path = tmp_path / "ring.jsonl"
        recorder.dump(path)
        recorder.close()
        journal = load_journal(path)
        assert journal.first_seq > 0
        assert journal.nearest_checkpoint(journal.first_seq + 8)
        # Replay re-executes from scratch and fast-forwards to the
        # retained suffix; every surviving record must verify.
        result = replay_journal(journal, self._runner())
        assert result.ok
        assert result.verified == len(journal.records)


@pytest.mark.parametrize("offload", ["hash-lookup", "hash-lookup-par",
                                     "list-traversal",
                                     "list-traversal-break",
                                     "recycled-get"])
def test_offload_replay_suffix_byte_identical(offload, tmp_path):
    """Record+replay round-trips for all five built-in offloads."""
    from _offload_runners import run_offload

    calls = 2

    def record_instrument(bed, label):
        recorder = FlightRecorder(bed.sim, name=label, capacity=4096,
                                  checkpoint_interval=256)
        recorder.attach_nic(bed.server.nic)
        for client in bed.clients:
            recorder.attach_nic(client.nic)
        return recorder

    run = run_offload(offload, calls, instrument=record_instrument)
    recorder = run["instrument"]
    assert recorder.violations == []
    path = tmp_path / f"{offload}.jsonl"
    recorder.dump(path)
    recorder.close()
    journal = load_journal(path)
    assert journal.records

    def runner(make_recorder):
        def replay_instrument(bed, label):
            replay_recorder = make_recorder(bed.sim)
            replay_recorder.attach_nic(bed.server.nic)
            for client in bed.clients:
                replay_recorder.attach_nic(client.nic)
            return replay_recorder

        run_offload(offload, calls, instrument=replay_instrument)

    result = replay_journal(journal, runner)
    assert result.ok, f"divergence: {result.divergence}"
    assert result.verified == len(journal.records)


class TestInvariantMonitor:
    """Fed synthetic records, so each invariant is exercised alone."""

    def test_fetch_monotonicity_violation(self):
        monitor = InvariantMonitor()
        monitor.observe({"kind": "fetch", "wq": "sq", "wq_num": 1,
                         "wr": 0, "seq": 0, "ts": 0})
        monitor.observe({"kind": "fetch", "wq": "sq", "wq_num": 1,
                         "wr": 2, "seq": 1, "ts": 10})
        assert [v["name"] for v in monitor.violations] == \
            ["wqe_count_monotonic"]

    def test_wait_threshold_violation(self):
        monitor = InvariantMonitor()
        monitor.observe({"kind": "wait", "wq": "ctl", "wq_num": 1,
                         "wr": 0, "cq": 3, "threshold": 5, "count": 4,
                         "signaled": False, "seq": 0, "ts": 0})
        assert [v["name"] for v in monitor.violations] == \
            ["wait_threshold"]

    def test_wait_threshold_regression_per_cq(self):
        monitor = InvariantMonitor()
        base = {"kind": "wait", "wq": "ctl", "wq_num": 1,
                "signaled": False}
        monitor.observe(dict(base, wr=0, cq=3, threshold=5, count=5,
                             seq=0, ts=0))
        # A different CQ with a lower threshold is fine...
        monitor.observe(dict(base, wr=2, cq=4, threshold=1, count=1,
                             seq=1, ts=1))
        assert monitor.violations == []
        # ...the same CQ regressing is not.
        monitor.observe(dict(base, wr=4, cq=3, threshold=4, count=6,
                             seq=2, ts=2))
        assert [v["name"] for v in monitor.violations] == \
            ["wqe_count_monotonic"]

    def test_cqe_count_jump_violation(self):
        monitor = InvariantMonitor()
        monitor.observe({"kind": "cqe", "cq": "scq", "cq_num": 1,
                         "count": 1, "op": "WRITE", "wr_id": 0,
                         "status": "OK", "wq_num": 9, "seq": 0, "ts": 0})
        monitor.observe({"kind": "cqe", "cq": "scq", "cq_num": 1,
                         "count": 3, "op": "WRITE", "wr_id": 1,
                         "status": "OK", "wq_num": 9, "seq": 1, "ts": 1})
        assert [v["name"] for v in monitor.violations] == \
            ["cqe_conservation"]

    def test_unjustified_cqe_violation(self):
        monitor = InvariantMonitor()
        monitor.observe({"kind": "fetch", "wq": "sq", "wq_num": 7,
                         "wr": 0, "seq": 0, "ts": 0})
        # A completion without any signaled done/wait/enable backing it.
        monitor.observe({"kind": "cqe", "cq": "scq", "cq_num": 1,
                         "count": 1, "op": "WRITE", "wr_id": 0,
                         "status": "OK", "wq_num": 7, "seq": 1, "ts": 1})
        assert [v["name"] for v in monitor.violations] == \
            ["cqe_conservation"]

    def test_dma_byte_conservation_violation(self):
        monitor = InvariantMonitor()
        monitor.observe({"kind": "exec", "wq": "sq", "wq_num": 1,
                         "wr": 0, "op": "WRITE", "len": 64,
                         "seq": 0, "ts": 0})
        monitor.observe({"kind": "done", "wq": "sq", "wq_num": 1,
                         "wr": 0, "op": "WRITE", "status": "OK",
                         "len": 32, "signaled": True, "seq": 1, "ts": 1})
        assert [v["name"] for v in monitor.violations] == ["dma_bytes"]

    def test_read_may_scatter_less(self):
        monitor = InvariantMonitor()
        monitor.observe({"kind": "exec", "wq": "sq", "wq_num": 1,
                         "wr": 0, "op": "READ", "len": 64,
                         "seq": 0, "ts": 0})
        monitor.observe({"kind": "done", "wq": "sq", "wq_num": 1,
                         "wr": 0, "op": "READ", "status": "OK",
                         "len": 32, "signaled": True, "seq": 1, "ts": 1})
        assert monitor.violations == []

    def test_clean_write_sequence_passes(self):
        monitor = InvariantMonitor()
        records = [
            {"kind": "fetch", "wq": "sq", "wq_num": 1, "wr": 0},
            {"kind": "exec", "wq": "sq", "wq_num": 1, "wr": 0,
             "op": "WRITE", "len": 64},
            {"kind": "done", "wq": "sq", "wq_num": 1, "wr": 0,
             "op": "WRITE", "status": "OK", "len": 64,
             "signaled": True},
            {"kind": "cqe", "cq": "scq", "cq_num": 1, "count": 1,
             "op": "WRITE", "wr_id": 0, "status": "OK", "wq_num": 1},
        ]
        for seq, record in enumerate(records):
            monitor.observe(dict(record, seq=seq, ts=seq * 10))
        assert monitor.violations == []

    def test_recorder_exports_invariant_metrics(self, lo):
        recorder = FlightRecorder(lo.sim)
        drive_writes(lo, recorder, writes=2)
        counters = lo.sim.metrics.snapshot()["counters"]
        assert counters["obs.invariants"]["checks"] == recorder.seq
        assert not any(key.startswith("violation:")
                       for key in counters["obs.invariants"])
        recorder.close()
