"""Edge cases for repro.bench.stats: empty recorders, bad fractions."""

import pytest

from repro.bench.stats import LatencyRecorder, percentile, summarize


class TestPercentile:
    def test_empty_raises_value_error(self):
        with pytest.raises(ValueError, match="empty sample set"):
            percentile([], 0.5)

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_fraction_out_of_range_rejected(self, fraction):
        with pytest.raises(ValueError, match="outside"):
            percentile([1, 2, 3], fraction)

    def test_single_sample_every_fraction(self):
        for fraction in (0.01, 0.5, 0.99, 1.0):
            assert percentile([7], fraction) == 7

    def test_nearest_rank(self):
        samples = [10, 20, 30, 40]
        assert percentile(samples, 0.25) == 10
        assert percentile(samples, 0.5) == 20
        assert percentile(samples, 1.0) == 40

    def test_unsorted_input(self):
        assert percentile([30, 10, 20], 0.5) == 20


class TestSummarize:
    def test_empty_is_count_zero(self):
        assert summarize([]) == {"count": 0}

    def test_full_summary(self):
        stats = summarize([1, 2, 3, 4])
        assert stats["count"] == 4
        assert stats["avg"] == 2.5
        assert (stats["min"], stats["max"]) == (1, 4)


class TestLatencyRecorder:
    def test_empty_avg_raises_value_error(self):
        recorder = LatencyRecorder("empty")
        with pytest.raises(ValueError, match="'empty' has no samples"):
            recorder.avg_us

    def test_empty_percentiles_raise_value_error(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.p50_us
        with pytest.raises(ValueError):
            recorder.p99_us

    def test_empty_summary_is_count_zero(self):
        assert LatencyRecorder().summary_us() == {"count": 0}

    def test_units_are_microseconds(self):
        recorder = LatencyRecorder("lat")
        recorder.record(1_000)
        recorder.record(3_000)
        assert len(recorder) == 2
        assert recorder.avg_us == 2.0
        assert recorder.p50_us == 1.0
        assert recorder.summary_us()["max"] == 3.0

    def test_single_sample(self):
        recorder = LatencyRecorder()
        recorder.record(500)
        assert recorder.avg_us == 0.5
        assert recorder.p50_us == recorder.p99_us == 0.5
