"""Incident triage plane: detectors, incidents, fault scenarios.

Four pillars:

* **Detector semantics on synthetic streams** — each anomaly detector
  must fire at the violating window's *end* timestamp, stay silent
  through the warmup windows, and stay silent on streams that merely
  look like startup ramp or drain.
* **Incident grouping** — time-correlated anomalies merge into one
  incident under ``merge_gap``; a later, unrelated anomaly opens a
  second incident.
* **Fault scenarios end to end** — the storm must produce exactly one
  incident whose top cause names the contended shard's PU, the
  failover must name the killed shard, the clean run must stay silent,
  and every report must be **byte-identical** between the sharded and
  serial drives and across repeat runs.
* **Typed failure surfaces** — :class:`FleetError` names the
  implicated beds and dead processes, and
  :meth:`HashRing.without` preserves surviving shards' ownership.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.bench.faults import FAILOVER_SWITCH_NS, STORM_START_NS, run_triage
from repro.bench.fleet import FleetError, build_fleet
from repro.net.conn import ConnError, HashRing
from repro.obs.sentry import DETECTORS, FleetSentry, triage_verdict

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOLS = str(REPO_ROOT / "tools")
if TOOLS not in sys.path:
    sys.path.append(TOOLS)

W = 1000  # synthetic window width (ns)


def _rec(window, shard=0, requests=10, sq_growth=0, rq_depth=0,
         util=0.2, p99=8191, stale=None, pool_p99=None):
    """One synthetic sealed telemetry window record."""
    record = {
        "window": window, "shard": shard, "bed": f"shard{shard}",
        "start_ns": window * W, "end_ns": (window + 1) * W,
        "requests": requests, "util": util,
        "queues": {"sq_growth": sq_growth, "rq_depth_max": rq_depth,
                   "sq_hot": f"shard{shard}-sq",
                   "cq_hot": f"shard{shard}-cq"},
        "latency": {"buckets": {}, "p50": p99, "p99": p99, "p999": p99},
    }
    if stale is not None:
        record["stale_cqes"] = stale
    if pool_p99 is not None:
        record["pool_wait"] = {"buckets": {}, "p99": pool_p99}
    return record


def _feed(sentry, records):
    for record in records:
        sentry.observe(record)
    return sentry


def _fired(sentry, detector):
    return [a for a in sentry.anomalies if a.detector == detector]


# -- detector semantics on synthetic streams ------------------------------


def test_detector_table_is_total():
    for detector, (tier, phase) in DETECTORS.items():
        assert isinstance(tier, int) and isinstance(phase, str), detector


def test_tail_step_fires_at_violating_window_end():
    sentry = FleetSentry(W)
    _feed(sentry, [_rec(w) for w in range(10)])
    sentry.observe(_rec(10, p99=65535))
    steps = _fired(sentry, "tail_step")
    assert len(steps) == 1
    anomaly = steps[0]
    assert anomaly.at_ns == 11 * W       # END of the violating window
    assert anomaly.metric == "p99_ns"
    assert anomaly.value == 65535 and anomaly.baseline == 8191
    assert anomaly.phase == "tail"


def test_warmup_windows_never_fire():
    sentry = FleetSentry(W)
    _feed(sentry, [_rec(w) for w in range(4)])
    # Window 4 is past min_baseline but inside the warmup exemption:
    # startup ramp must not read as a regression.
    sentry.observe(_rec(4, p99=2 ** 20, sq_growth=500, util=1.0))
    assert sentry.anomalies == []


def test_tail_step_needs_enough_requests():
    sentry = FleetSentry(W)
    _feed(sentry, [_rec(w) for w in range(10)])
    # A huge p99 over 2 requests is sampling noise, not a step.
    sentry.observe(_rec(10, p99=2 ** 20, requests=2))
    assert _fired(sentry, "tail_step") == []


def test_queue_growth_names_hot_queue():
    sentry = FleetSentry(W)
    _feed(sentry, [_rec(w) for w in range(8)])
    sentry.observe(_rec(8, sq_growth=64))
    growth = _fired(sentry, "queue_growth")
    assert len(growth) == 1
    assert growth[0].queue == "shard0-sq"
    assert growth[0].phase == "queueing"


def test_pu_pool_and_stale_detectors():
    sentry = FleetSentry(W)
    _feed(sentry, [_rec(w, pool_p99=500) for w in range(8)])
    sentry.observe(_rec(8, util=0.9, pool_p99=9000, stale=2))
    assert [a.detector for a in sentry.anomalies] == \
        ["pu_saturation", "pool_pressure", "stale_cqe"]
    assert all(a.at_ns == 9 * W for a in sentry.anomalies)
    assert _fired(sentry, "stale_cqe")[0].queue == "shard0-cq"


def test_flatline_fires_once_while_fleet_stays_busy():
    sentry = FleetSentry(W)
    for w in range(8):
        sentry.observe(_rec(w, shard=0, requests=15))
        sentry.observe(_rec(w, shard=1, requests=10))
    # Shard 1 goes dark; the fleet (shard 0) keeps serving.
    _feed(sentry, [_rec(w, shard=0, requests=15) for w in range(8, 15)])
    flat = _fired(sentry, "flatline")
    assert len(flat) == 1                # once per shard, not per window
    assert flat[0].shard == 1
    # last_seen window 7 + flatline_gap 3 = completed window 10.
    assert flat[0].window == 10 and flat[0].at_ns == 11 * W


def test_flatline_silent_when_whole_fleet_idles():
    sentry = FleetSentry(W)
    for w in range(8):
        sentry.observe(_rec(w, shard=0))
        sentry.observe(_rec(w, shard=1))
    # Both shards idle (ramp-down): single sparse straggler windows
    # below skew_min_total must not read as a shard death.
    _feed(sentry, [_rec(w, shard=0, requests=1) for w in range(8, 15)])
    assert _fired(sentry, "flatline") == []


def test_skew_shift_on_rehomed_shard():
    sentry = FleetSentry(W)
    for w in range(10):
        sentry.observe(_rec(w, shard=0))
        sentry.observe(_rec(w, shard=1))
    # Shard 1's share collapses (re-homed load) but it stays alive,
    # while shard 0 absorbs the traffic.
    for w in range(10, 16):
        sentry.observe(_rec(w, shard=0, requests=20))
        sentry.observe(_rec(w, shard=1, requests=1))
    skew = _fired(sentry, "skew_shift")
    assert skew and skew[0].shard == 1
    assert skew[0].phase == "skew"
    assert _fired(sentry, "flatline") == []


def test_throughput_collapse_attribution_and_recovery():
    sentry = FleetSentry(W)
    for w in range(10):
        sentry.observe(_rec(w, shard=0))
        sentry.observe(_rec(w, shard=1))
    for w in range(10, 14):
        sentry.observe(_rec(w, shard=0, requests=1))
        sentry.observe(_rec(w, shard=1, requests=1))
    for w in range(14, 20):
        sentry.observe(_rec(w, shard=0))
        sentry.observe(_rec(w, shard=1))
    collapses = _fired(sentry, "throughput_collapse")
    # One per collapsed window (the non-absorbing baseline keeps the
    # trailing mean healthy), attributed to the busiest shard.
    assert [a.window for a in collapses] == [10, 11, 12, 13]
    assert all(a.shard == 0 for a in collapses)
    # Recovery windows are clean — the baseline was not dragged down.
    assert all(a.window < 14 for a in sentry.anomalies)


def test_incidents_merge_within_gap_and_split_beyond():
    sentry = FleetSentry(W)
    for w in range(10):
        sentry.observe(_rec(w, shard=0))
        sentry.observe(_rec(w, shard=1))
    for w in range(10, 14):                  # collapse: windows 10..13
        sentry.observe(_rec(w, shard=0, requests=1))
        sentry.observe(_rec(w, shard=1, requests=1))
    for w in range(14, 22):                  # quiet > merge_gap
        sentry.observe(_rec(w, shard=0))
        sentry.observe(_rec(w, shard=1))
    sentry.observe(_rec(22, shard=1, sq_growth=64))   # unrelated spike
    sentry.observe(_rec(23, shard=0))
    report = sentry.report()
    assert [i["id"] for i in report["incidents"]] == [1, 2]
    first, second = report["incidents"]
    assert first["first_window"] == 10 and first["last_window"] == 13
    assert second["shards"] == [1]
    assert report["anomalies_total"] == len(sentry.anomalies)


def test_report_is_deterministic_and_finalize_idempotent():
    def build():
        sentry = FleetSentry(W)
        for w in range(12):
            sentry.observe(_rec(w, shard=0))
            sentry.observe(_rec(w, shard=1))
        sentry.observe(_rec(12, shard=0, util=0.95))
        sentry.observe(_rec(13, shard=0))
        return sentry

    one, two = build(), build()
    assert one.report_json() == two.report_json()
    one.finalize()
    one.finalize()                      # second finalize is a no-op
    assert one.report()["incidents"] == two.report()["incidents"]


# -- fault scenarios end to end -------------------------------------------


@pytest.fixture(scope="module")
def storm_runs():
    return (run_triage("storm", capture=False),
            run_triage("storm", capture=False),
            run_triage("storm", serial=True, capture=False))


def test_storm_single_incident_blames_contended_pu(storm_runs):
    run = storm_runs[0]
    verdict = run.verdict
    assert verdict["incidents"] == 1
    assert verdict["false_positives"] == [] and verdict["missed"] == []
    assert verdict["mean_detection_ns"] == 20_000
    top = run.report["incidents"][0]["top_cause"]
    fault = run.faults[0]
    assert fault["t_inject_ns"] == STORM_START_NS
    assert top["shard"] == fault["shard"]
    assert top["phase"] in fault["expect_phases"]
    assert top["detector"] == "pu_saturation"


def test_storm_report_byte_identical_across_drives_and_runs(storm_runs):
    first, second, serial = storm_runs
    assert first.report_json == second.report_json   # repeat run
    assert first.report_json == serial.report_json   # drive mode
    assert first.fingerprint == serial.fingerprint


def test_storm_detects_across_window_widths(storm_runs):
    wide = run_triage("storm", window_ns=40_000, capture=False)
    for run in (storm_runs[0], wide):
        incidents = run.report["incidents"]
        assert len(incidents) == 1
        assert run.faults[0]["shard"] in incidents[0]["shards"]
    # And the wide-window report is itself reproducible.
    again = run_triage("storm", window_ns=40_000, capture=False)
    assert wide.report_json == again.report_json


def test_failover_names_killed_shard_and_ring_movement():
    run = run_triage("failover", capture=False)
    serial = run_triage("failover", serial=True, capture=False)
    assert run.report_json == serial.report_json
    verdict = run.verdict
    assert verdict["incidents"] == 1
    assert verdict["false_positives"] == [] and verdict["missed"] == []
    fault = run.faults[0]
    assert fault["t_inject_ns"] == FAILOVER_SWITCH_NS
    assert fault["detail"]["keys_moved"] > 0
    assert fault["shard"] not in fault["detail"]["inheritors"]
    top = run.report["incidents"][0]["top_cause"]
    assert top["detector"] == "flatline" and top["shard"] == fault["shard"]


def test_clean_run_raises_zero_incidents():
    run = run_triage("clean", capture=False)
    assert run.report["anomalies_total"] == 0
    assert run.report["incidents"] == []
    assert run.verdict["false_positives"] == []
    assert run.verdict["mean_detection_ns"] is None


def test_storm_capture_slices_the_implicated_bed():
    run = run_triage("storm")
    incident = run.report["incidents"][0]
    capture = incident["capture"]
    assert capture is not None
    assert capture["bed"] == run.faults[0]["bed"]
    assert capture["records"] == len(capture["slice"]) > 0
    assert capture["from_ns"] <= incident["open_at_ns"]
    assert sum(capture["kinds"].values()) == capture["records"]
    # Targeted exemplar retention: the incident carries tail blame.
    assert incident["exemplars"]
    assert incident["blame_diff"] is not None


def test_triage_rejects_unknown_scenario():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_triage("meteor")


def test_verdict_flags_unmatched_incident_as_false_positive():
    report = {
        "window_ns": W,
        "faults": [],
        "incidents": [{"id": 1, "shards": [0], "open_at_ns": 5 * W,
                       "top_cause": {"phase": "tail"}}],
    }
    verdict = triage_verdict(report)
    assert verdict["false_positives"] == [1]
    assert verdict["explained"] == [] and verdict["missed"] == []


# -- typed failure surfaces ------------------------------------------------


def test_fleet_error_names_bed_and_process():
    scenario = build_fleet(num_shards=2, clients_per_shard=2,
                           requests_per_client=2, telemetry_path="",
                           exemplars=0)

    def boom():
        yield 10
        raise RuntimeError("induced fault")

    scenario.rigs[1].sim.process(boom(), name="shard1-boom")
    with pytest.raises(FleetError) as err:
        scenario.run()
    assert err.value.beds == ["shard1"]
    assert err.value.processes == ["shard1-boom"]
    assert "shard1-boom" in str(err.value)


def test_hash_ring_without_preserves_survivors():
    ring = HashRing(4)
    survivor_keys = [k for k in range(256) if ring.owner(k) != 2]
    after = ring.without(2)
    for key in survivor_keys:
        assert after.owner(key) == ring.owner(key)
    moved = [k for k in range(256) if ring.owner(k) == 2]
    assert moved                       # shard 2 owned something
    for key in moved:
        assert after.owner(key) != 2


def test_hash_ring_without_rejects_bad_requests():
    ring = HashRing(3)
    with pytest.raises(ConnError):
        ring.without(7)                # unknown shard
    with pytest.raises(ConnError):
        ring.without(0, 1, 2)          # nobody left


# -- the incident_report CLI ----------------------------------------------


def test_incident_report_cli_gate_and_json(tmp_path, capsys):
    import incident_report

    out = tmp_path / "clean.json"
    # One clean run serves both surfaces: the JSON export is written
    # before the gates run, and --expect-incidents 1 must then fail.
    code = incident_report.main(
        ["clean", "--json", str(out), "--expect-incidents", "1"])
    assert code == 1
    report = json.loads(out.read_text())
    assert report["schema"] == 1
    assert report["incidents"] == []
    assert report["context"]["scenario"] == "clean"
    captured = capsys.readouterr()
    assert "GATE FAILED" in captured.err
    assert "clean: no faults injected" in captured.out
