"""Shared fixtures: simulation rigs used across the test suite."""

from __future__ import annotations

import pytest

from repro.ibv import VerbsContext
from repro.memory import AccessFlags, HostMemory, ProtectionDomain
from repro.net import Fabric
from repro.nic import RNIC
from repro.sim import Simulator


class TwoNicRig:
    """Two hosts' memories + NICs, back-to-back, with one QP pair."""

    def __init__(self):
        self.sim = Simulator()
        self.mem_a = HostMemory(name="mem-a")
        self.mem_b = HostMemory(name="mem-b")
        self.nic_a = RNIC(self.sim, self.mem_a, name="nic-a")
        self.nic_b = RNIC(self.sim, self.mem_b, name="nic-b")
        self.fabric = Fabric(self.sim)
        self.fabric.connect(self.nic_a, self.nic_b)
        self.pd_a = ProtectionDomain(self.mem_a, name="pd-a")
        self.pd_b = ProtectionDomain(self.mem_b, name="pd-b")
        self.qp_a = self.nic_a.create_qp(self.pd_a, name="qp-a")
        self.qp_b = self.nic_b.create_qp(self.pd_b, name="qp-b")
        self.qp_a.connect(self.qp_b)
        self.verbs = VerbsContext(self.sim, name="test-verbs")

    def buffer(self, side: str, size: int, register: bool = True,
               access: int = AccessFlags.ALL):
        """Allocate (and optionally register) a buffer on one side."""
        memory = self.mem_a if side == "a" else self.mem_b
        pd = self.pd_a if side == "a" else self.pd_b
        allocation = memory.alloc(size, label=f"buf-{side}")
        region = pd.register(allocation, access=access) if register else None
        return allocation, region

    def run(self, generator, until=None):
        """Drive a host process to completion and return its value."""
        return self.sim.run_process(generator, until=until)


class LoopbackRig:
    """One NIC with a loopback QP pair — the RedN chain substrate."""

    def __init__(self):
        self.sim = Simulator()
        self.memory = HostMemory(name="mem")
        self.nic = RNIC(self.sim, self.memory, name="nic")
        self.pd = ProtectionDomain(self.memory, name="pd")
        self.qp_a, self.qp_b = self.nic.create_loopback_pair(self.pd)
        self.verbs = VerbsContext(self.sim, name="lo-verbs")

    def buffer(self, size: int, register: bool = True,
               access: int = AccessFlags.ALL):
        allocation = self.memory.alloc(size, label="lo-buf")
        region = self.pd.register(allocation, access=access) \
            if register else None
        return allocation, region

    def run(self, generator, until=None):
        return self.sim.run_process(generator, until=until)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rig():
    return TwoNicRig()


@pytest.fixture
def lo():
    return LoopbackRig()
