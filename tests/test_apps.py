"""Integration tests: Memcached server, RPC baselines, one-sided KV."""

import pytest

from repro.apps import (
    MemcachedServer,
    OneSidedKvServer,
    OP_GET,
    OP_SET,
    RpcServer,
    STATUS_MISS,
    STATUS_OK,
    VMA_COSTS,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.bench import Testbed
from repro.redn.offload import OffloadClient


class TestProtocol:
    def test_request_roundtrip(self):
        frame = encode_request(OP_SET, 0x1234, b"hello", request_id=7)
        op, key, value, rid = decode_request(frame)
        assert (op, key, value, rid) == (OP_SET, 0x1234, b"hello", 7)

    def test_response_roundtrip(self):
        frame = encode_response(STATUS_OK, b"world", request_id=9)
        status, value, rid = decode_response(frame)
        assert (status, value, rid) == (STATUS_OK, b"world", 9)

    def test_empty_value(self):
        op, key, value, _ = decode_request(encode_request(OP_GET, 5))
        assert value == b""

    def test_oversized_key_rejected(self):
        with pytest.raises(ValueError):
            encode_request(OP_GET, 1 << 48)


class TestMemcachedServer:
    def test_set_get_delete(self):
        bed = Testbed(num_clients=1)
        store = MemcachedServer(bed.server)
        store.set(1, b"one")
        assert store.get(1) == b"one"
        assert store.delete(1)
        assert store.get(1) is None

    def test_hull_parent_owns_resources(self):
        bed = Testbed(num_clients=1)
        store = MemcachedServer(bed.server, hull_parent=True)
        assert store.rdma_resources_alive
        store.crash()
        # Child died; resources survive with the hull (§5.6).
        assert not store.process.alive
        assert store.rdma_resources_alive

    def test_no_hull_resources_die_with_process(self):
        bed = Testbed(num_clients=1)
        store = MemcachedServer(bed.server, hull_parent=False)
        store.crash()
        assert not store.rdma_resources_alive


class TestRpcServer:
    def make(self, mode="polling", costs=None, workers=2):
        bed = Testbed(num_clients=1)
        store = MemcachedServer(bed.server)
        kwargs = {"mode": mode, "workers": workers}
        if costs is not None:
            kwargs["costs"] = costs
        server = RpcServer(store, **kwargs)
        client = server.connect(bed.clients[0].nic, bed.client_pd(0))
        server.start()
        return bed, store, server, client

    def test_set_then_get(self):
        bed, store, server, client = self.make()

        def run():
            status, _v, _l = yield from client.set(10, b"value-10")
            assert status == STATUS_OK
            status, value, _l = yield from client.get(10)
            return status, value

        status, value = bed.run(run())
        assert status == STATUS_OK
        assert value == b"value-10"

    def test_get_miss(self):
        bed, _store, _server, client = self.make()

        def run():
            return (yield from client.get(404))

        status, value, _latency = bed.run(run())
        assert status == STATUS_MISS
        assert value == b""

    def test_event_mode_slower_than_polling(self):
        """Fig 10: event-based completion costs wake-ups per request."""
        def latency(mode):
            bed, store, _server, client = self.make(mode=mode)
            store.set(5, b"x" * 64)

            def run():
                # warm-up
                yield from client.get(5)
                _s, _v, lat = yield from client.get(5)
                return lat
            return bed.run(run())

        assert latency("event") > latency("polling")

    def test_vma_costs_grow_with_value_size(self):
        """Fig 14: sockets memcpys penalize large values."""
        def latency(size):
            bed, store, _server, client = self.make(costs=VMA_COSTS)
            store.set(5, b"x" * size)

            def run():
                yield from client.get(5)
                _s, _v, lat = yield from client.get(5)
                return lat
            return bed.run(run())

        small, large = latency(64), latency(65536)
        # Beyond wire-time scaling: 128 KB of copies at ~8 GB/s.
        assert large - small > 10_000

    def test_multiple_clients_served(self):
        bed = Testbed(num_clients=2)
        store = MemcachedServer(bed.server)
        server = RpcServer(store, workers=2)
        clients = [server.connect(bed.clients[i].nic, bed.client_pd(i))
                   for i in range(2)]
        server.start()
        store.set(7, b"shared")

        def run():
            results = []
            for client in clients:
                status, value, _l = yield from client.get(7)
                results.append((status, value))
            return results

        assert bed.run(run()) == [(STATUS_OK, b"shared")] * 2

    def test_requests_queue_under_load(self):
        """Many concurrent writers inflate get latency (Fig 15 shape)."""
        bed = Testbed(num_clients=2)
        store = MemcachedServer(bed.server)
        server = RpcServer(store, workers=1)
        reader = server.connect(bed.clients[0].nic, bed.client_pd(0))
        writers = [server.connect(bed.clients[1].nic, bed.client_pd(1))
                   for _ in range(4)]
        server.start()
        store.set(1, b"r")

        def writer_loop(writer, base):
            for index in range(30):
                yield from writer.set(base + index, b"w" * 64)

        def reader_probe():
            # unloaded
            yield from reader.get(1)
            _s, _v, quiet = yield from reader.get(1)
            procs = [bed.sim.process(writer_loop(writer, 1000 + 100 * i))
                     for i, writer in enumerate(writers)]
            yield bed.sim.timeout(20_000)   # let the queue build
            _s, _v, busy = yield from reader.get(1)
            for proc in procs:
                if not proc.triggered:
                    yield proc
            return quiet, busy

        quiet, busy = bed.run(reader_probe())
        assert busy > quiet


class TestOneSidedKv:
    def test_get_hit_two_rtts(self):
        bed = Testbed(num_clients=1)
        server = OneSidedKvServer(bed.server)
        server.set(42, b"one-sided-value")
        client = server.connect(bed.clients[0].nic, bed.client_pd(0))

        def run():
            return (yield from client.get(42))

        value, latency, rtts = bed.run(run())
        assert value == b"one-sided-value"
        assert rtts == 2
        # Two dependent ~1.8us READs plus client software time.
        assert latency > 3_000

    def test_get_miss_one_rtt(self):
        bed = Testbed(num_clients=1)
        server = OneSidedKvServer(bed.server)
        client = server.connect(bed.clients[0].nic, bed.client_pd(0))

        def run():
            return (yield from client.get(99))

        value, _latency, rtts = bed.run(run())
        assert value is None
        assert rtts == 1

    def test_neighborhood_read_size_matches_h6(self):
        """FaRM's 6x metadata overhead: READ #1 spans 6 buckets."""
        from repro.datastructs.records import BUCKET_SIZE
        bed = Testbed(num_clients=1)
        server = OneSidedKvServer(bed.server)
        server.set(1, b"v")
        _addr, length = server.table.neighborhood_read_args(1)
        assert length == 6 * BUCKET_SIZE


class TestOffloadIntegration:
    def test_memcached_get_offload(self):
        """The §5.4 integration: NIC-served gets against live data."""
        bed = Testbed(num_clients=1)
        store = MemcachedServer(bed.server)
        store.set(11, b"offloaded-value")
        offload, conn = store.attach_get_offload(
            bed.clients[0].nic, bed.client_pd(0))
        offload.post_instances(2)
        client = OffloadClient(conn, bed.client_verbs(0))

        def run():
            result = yield from client.call(offload.payload_for(11))
            return result

        result = bed.run(run())
        assert result.ok
        assert result.data == b"offloaded-value"

    def test_offload_sees_subsequent_sets(self):
        """Host-side sets are immediately visible to NIC gets: the
        table bytes are shared, not copied."""
        bed = Testbed(num_clients=1)
        store = MemcachedServer(bed.server)
        offload, conn = store.attach_get_offload(
            bed.clients[0].nic, bed.client_pd(0))
        offload.post_instances(2)
        client = OffloadClient(conn, bed.client_verbs(0))

        def run():
            first = yield from client.call(offload.payload_for(77),
                                           timeout_ns=500_000)
            store.set(77, b"late-write")
            second = yield from client.call(offload.payload_for(77))
            return first, second

        first, second = bed.run(run())
        assert not first.ok           # not inserted yet
        assert second.ok
        assert second.data == b"late-write"
