"""End-to-end tests: the Fig 12 list-traversal offload."""

import pytest

from repro.datastructs import LinkedList, SlabStore
from repro.ibv import VerbsContext
from repro.memory import HostMemory, ProtectionDomain
from repro.net import Fabric
from repro.nic import Opcode, RNIC
from repro.offloads.list_traversal import (
    ListTraversalOffload,
    list_get_payload,
)
from repro.redn import RednContext
from repro.redn.offload import OffloadClient, OffloadConnection
from repro.sim import Simulator


class ListRig:
    def __init__(self, list_keys, use_break=False, max_nodes=None):
        self.sim = Simulator()
        self.server_mem = HostMemory(name="srv", size=64 * 1024 * 1024)
        self.client_mem = HostMemory(name="cli")
        self.server_nic = RNIC(self.sim, self.server_mem, name="snic")
        self.client_nic = RNIC(self.sim, self.client_mem, name="cnic")
        Fabric(self.sim).connect(self.server_nic, self.client_nic)
        self.server_pd = ProtectionDomain(self.server_mem)
        self.client_pd = ProtectionDomain(self.client_mem)
        self.ctx = RednContext(self.server_nic, self.server_pd,
                               owner="list-server")

        slab_alloc = self.ctx.alloc(4 * 1024 * 1024, label="slab")
        node_alloc = self.ctx.alloc(64 * 1024, label="nodes")
        self.data_mr = self.server_pd.register(node_alloc)
        self.slab = SlabStore(self.server_mem, slab_alloc)
        self.list = LinkedList(self.server_mem, node_alloc, self.slab)
        for key in list_keys:
            self.list.append(key, f"value-{key}".encode())

        self.conn = OffloadConnection(self.ctx, self.client_nic,
                                      self.client_pd, name="lst")
        self.offload = ListTraversalOffload(
            self.ctx, self.list, self.data_mr, self.conn,
            max_nodes=max_nodes or len(list_keys), use_break=use_break)
        self.verbs = VerbsContext(self.sim, name="cli-verbs")
        self.client = OffloadClient(self.conn, self.verbs)

    def get(self, key, timeout_ns=3_000_000):
        def run():
            result = yield from self.client.call(
                self.offload.payload_for(key), timeout_ns=timeout_ns)
            return result
        return self.sim.run_process(run())

    def wr_count(self):
        return self.server_nic.stats.get("total_wrs", 0)


KEYS = [11, 22, 33, 44, 55, 66, 77, 88]


class TestPlainTraversal:
    def test_finds_first_element(self):
        rig = ListRig(KEYS)
        rig.offload.post_instances(1)
        result = rig.get(11)
        assert result.ok and result.data == b"value-11"

    def test_finds_last_element(self):
        rig = ListRig(KEYS)
        rig.offload.post_instances(1)
        result = rig.get(88)
        assert result.ok and result.data == b"value-88"

    def test_finds_middle_elements(self):
        rig = ListRig(KEYS)
        rig.offload.post_instances(len(KEYS))
        for key in (22, 44, 66):
            result = rig.get(key)
            assert result.ok and result.data == f"value-{key}".encode()

    def test_miss_times_out(self):
        rig = ListRig(KEYS)
        rig.offload.post_instances(1)
        assert not rig.get(99).ok

    def test_latency_grows_mildly_with_position(self):
        """Without break the response fires at its iteration; deeper
        keys cost more chained READs (Fig 13's upward slope)."""
        first = ListRig(KEYS)
        first.offload.post_instances(1)
        lat_first = first.get(11).latency_ns
        last = ListRig(KEYS)
        last.offload.post_instances(1)
        lat_last = last.get(88).latency_ns
        assert lat_last > lat_first

    def test_all_iterations_execute_without_break(self):
        rig = ListRig(KEYS)
        rig.offload.post_instances(1)
        rig.get(11)
        # Every step's READ ran even though the hit was at position 1.
        assert rig.offload.worker.wq.fetched_count >= 3 * len(KEYS)


class TestBreakTraversal:
    def test_finds_each_position_serially(self):
        rig = ListRig(KEYS, use_break=True)
        for index, key in enumerate(KEYS):
            rig.offload.post_instances(1)
            result = rig.get(key)
            assert result.ok, f"key {key}"
            assert result.data == f"value-{key}".encode()
            rig.offload.finish_request(index)

    def test_break_stops_iterations_early(self):
        """A hit at position 1 must stop the chain: far fewer worker
        WRs execute than the plain variant's full unroll."""
        rig = ListRig(KEYS, use_break=True)
        rig.offload.post_instances(1)
        result = rig.get(11)
        assert result.ok
        worker = next(q for q in rig.offload.builder.queues
                      if q.name == "trav0-w")
        # Only the first iteration's worker WRs ran; the tail is
        # stranded, never fetched.
        assert worker.wq.fetched_count <= 4

    def test_break_uses_fewer_wrs_than_plain(self):
        """Fig 13: without breaks >65% more WRs execute."""
        def executed(use_break):
            rig = ListRig(KEYS, use_break=use_break)
            total = 0
            for index, key in enumerate(KEYS[:4]):
                rig.offload.post_instances(1)
                before = rig.wr_count()
                assert rig.get(key).ok
                total += rig.wr_count() - before
                if use_break:
                    rig.offload.finish_request(index)
            return total

        with_break = executed(True)
        without = executed(False)
        assert without > with_break

    def test_break_miss_runs_all_iterations_then_times_out(self):
        rig = ListRig(KEYS, use_break=True)
        rig.offload.post_instances(1)
        assert not rig.get(99).ok
        rig.offload.finish_request(0)
        # No gate was killed on a miss.
        rig.offload.post_instances(1)
        assert rig.get(22).ok


class TestPayload:
    def test_payload_layout(self):
        payload = list_get_payload(0xABCD, 0x42)
        assert len(payload) == 16
        from repro.nic import split_ctrl
        word = int.from_bytes(payload[:8], "big")
        assert split_ctrl(word) == (Opcode.NOOP, 0x42)
        assert int.from_bytes(payload[8:], "big") == 0xABCD
