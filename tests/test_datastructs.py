"""Unit + property tests for RDMA-visible data structures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastructs import (
    BUCKET_RECORD,
    BUCKET_SIZE,
    CuckooTable,
    HashTableError,
    HopscotchTable,
    KEY_MASK,
    LinkedList,
    LIST_NODE,
    SlabStore,
    check_key,
    hash_key,
)
from repro.memory import HostMemory


def make_memory():
    return HostMemory(size=32 * 1024 * 1024)


def make_slab(memory, size=4 * 1024 * 1024):
    return SlabStore(memory, memory.alloc(size, label="slab"))


def make_cuckoo(memory=None, buckets=256):
    memory = memory or make_memory()
    slab = make_slab(memory)
    region = memory.alloc(buckets * BUCKET_SIZE, label="table")
    return CuckooTable(memory, region, buckets, slab)


class TestHashing:
    def test_deterministic(self):
        assert hash_key(42, 0) == hash_key(42, 0)

    def test_two_functions_differ(self):
        collisions = sum(
            1 for key in range(1, 200)
            if hash_key(key, 0) % 64 == hash_key(key, 1) % 64)
        assert collisions < 20   # not systematically equal

    def test_check_key_bounds(self):
        with pytest.raises(ValueError):
            check_key(0)
        with pytest.raises(ValueError):
            check_key(KEY_MASK + 1)
        assert check_key(KEY_MASK) == KEY_MASK


class TestSlab:
    def test_store_and_fetch(self):
        memory = make_memory()
        slab = make_slab(memory)
        addr, length = slab.store(b"hello")
        assert slab.fetch(addr, length) == b"hello"

    def test_free_reuses_chunk(self):
        memory = make_memory()
        slab = make_slab(memory)
        addr, length = slab.store(b"x" * 100)
        slab.free(addr, length)
        addr2, _ = slab.store(b"y" * 100)
        assert addr2 == addr

    def test_oversize_value_rejected(self):
        memory = make_memory()
        slab = make_slab(memory)
        with pytest.raises(Exception):
            slab.store(b"z" * (1 << 20))

    def test_distinct_classes_do_not_collide(self):
        memory = make_memory()
        slab = make_slab(memory)
        small, _ = slab.store(b"a" * 10)
        large, _ = slab.store(b"b" * 2000)
        assert slab.fetch(small, 10) == b"a" * 10
        assert slab.fetch(large, 2000) == b"b" * 2000


class TestCuckoo:
    def test_insert_lookup(self):
        table = make_cuckoo()
        table.insert(10, b"ten")
        table.insert(20, b"twenty")
        assert table.lookup(10) == b"ten"
        assert table.lookup(20) == b"twenty"
        assert table.lookup(30) is None

    def test_update_replaces_value(self):
        table = make_cuckoo()
        table.insert(5, b"old")
        table.insert(5, b"new")
        assert table.lookup(5) == b"new"
        assert table.count == 1

    def test_delete(self):
        table = make_cuckoo()
        table.insert(7, b"v")
        assert table.delete(7)
        assert table.lookup(7) is None
        assert not table.delete(7)

    def test_key_always_in_candidate_bucket(self):
        table = make_cuckoo(buckets=128)
        for key in range(1, 60):
            table.insert(key, str(key).encode())
        for key in range(1, 60):
            candidates = {table.bucket_index(key, 0),
                          table.bucket_index(key, 1)}
            record = None
            for index in candidates:
                raw = table.memory.read(table.bucket_addr(index),
                                        BUCKET_SIZE)
                fields = BUCKET_RECORD.unpack(raw)
                if fields["key"] == key:
                    record = fields
            assert record is not None, f"key {key} not in its candidates"

    def test_force_bucket_placement(self):
        table = make_cuckoo()
        index = table.insert(99, b"v", force_bucket=1)
        assert index == table.bucket_index(99, 1)

    def test_candidate_addrs_geometry(self):
        table = make_cuckoo()
        addrs = table.candidate_addrs(123)
        assert len(addrs) == 2
        for addr in addrs:
            assert (addr - table.region.addr) % BUCKET_SIZE == 0

    def test_bucket_bytes_are_big_endian(self):
        """The §5.4 requirement: pointers stored big-endian so a READ
        lands them directly into (big-endian) WQE fields."""
        table = make_cuckoo()
        index = table.insert(1, b"val")
        raw = table.memory.read(table.bucket_addr(index), BUCKET_SIZE)
        valptr = int.from_bytes(raw[6:14], "big")
        vlen = int.from_bytes(raw[14:18], "big")
        assert table.slab.fetch(valptr, vlen) == b"val"

    def test_fill_to_moderate_load(self):
        table = make_cuckoo(buckets=512)
        for key in range(1, 256):   # 50% load
            table.insert(key, b"v")
        for key in range(1, 256):
            assert table.lookup(key) == b"v"

    @given(st.sets(st.integers(min_value=1, max_value=KEY_MASK),
                   min_size=1, max_size=120))
    @settings(max_examples=25, deadline=None)
    def test_property_all_inserted_keys_found(self, keys):
        table = make_cuckoo(buckets=512)
        for key in keys:
            table.insert(key, key.to_bytes(8, "big"))
        for key in keys:
            assert table.lookup(key) == key.to_bytes(8, "big")


class TestHopscotch:
    def make(self, buckets=256, neighborhood=6):
        memory = make_memory()
        slab = make_slab(memory)
        region = memory.alloc(buckets * BUCKET_SIZE, label="hop")
        return HopscotchTable(memory, region, buckets, slab,
                              neighborhood=neighborhood)

    def test_insert_lookup_delete(self):
        table = self.make()
        table.insert(11, b"a")
        table.insert(22, b"b")
        assert table.lookup(11) == b"a"
        assert table.delete(11)
        assert table.lookup(11) is None

    def test_key_stays_in_neighborhood(self):
        """The hopscotch invariant FaRM's one-sided READ relies on."""
        table = self.make(buckets=128)
        for key in range(1, 90):
            table.insert(key, b"v")
        for key in range(1, 90):
            home = table.home_index(key)
            found = False
            for offset in range(table.neighborhood):
                record = table._record((home + offset) % table.num_buckets)
                if record["key"] == key:
                    found = True
            assert found, f"key {key} escaped its neighborhood"

    def test_neighborhood_read_covers_key(self):
        table = self.make()
        for key in range(1, 40):
            table.insert(key, str(key).encode())
        for key in range(1, 40):
            addr, length = table.neighborhood_read_args(key)
            blob = table.memory.read(addr, length)
            hit = HopscotchTable.scan_neighborhood(blob, key)
            assert hit is not None
            valptr, vlen = hit
            assert table.slab.fetch(valptr, vlen) == str(key).encode()

    def test_update_in_place(self):
        table = self.make()
        table.insert(3, b"one")
        table.insert(3, b"two")
        assert table.lookup(3) == b"two"
        assert table.count == 1

    @given(st.sets(st.integers(min_value=1, max_value=KEY_MASK),
                   min_size=1, max_size=100))
    @settings(max_examples=20, deadline=None)
    def test_property_neighborhood_invariant(self, keys):
        table = self.make(buckets=512)
        for key in keys:
            table.insert(key, b"v")
        for key in keys:
            addr, length = table.neighborhood_read_args(key)
            blob = table.memory.read(addr, length)
            assert HopscotchTable.scan_neighborhood(blob, key) is not None


class TestLinkedList:
    def make(self):
        memory = make_memory()
        slab = make_slab(memory)
        region = memory.alloc(64 * 1024, label="nodes")
        return LinkedList(memory, region, slab)

    def test_append_and_find(self):
        lst = self.make()
        for key in (1, 2, 3):
            lst.append(key, f"v{key}".encode())
        assert lst.find(2) == b"v2"
        assert lst.find(9) is None
        assert lst.length == 3

    def test_order_preserved(self):
        lst = self.make()
        keys = [5, 3, 8, 1]
        for key in keys:
            lst.append(key, b"x")
        assert [record["key"] for _a, record in lst.nodes()] == keys

    def test_position_of(self):
        lst = self.make()
        for key in (10, 20, 30):
            lst.append(key, b"x")
        assert lst.position_of(10) == 1
        assert lst.position_of(30) == 3
        assert lst.position_of(99) is None

    def test_next_pointer_is_big_endian_at_offset_18(self):
        """Fig 12's steering READ requires `next` at a fixed offset."""
        lst = self.make()
        first = lst.append(1, b"a")
        second = lst.append(2, b"b")
        raw = lst.memory.read(first, 32)
        assert int.from_bytes(raw[18:26], "big") == second

    def test_empty_list(self):
        lst = self.make()
        assert lst.find(1) is None
        assert lst.nodes() == []

    @given(st.lists(st.integers(min_value=1, max_value=KEY_MASK),
                    unique=True, min_size=1, max_size=50))
    @settings(max_examples=20, deadline=None)
    def test_property_traversal_matches_appends(self, keys):
        lst = self.make()
        for key in keys:
            lst.append(key, key.to_bytes(6, "big"))
        assert [r["key"] for _a, r in lst.nodes()] == keys
        for key in keys:
            assert lst.find(key) == key.to_bytes(6, "big")
