"""Trace-diff engine: causal alignment, typed first divergence.

The acceptance scenario for the whole observability PR: two
identical-seed runs diff to zero divergences; flipping one CAS arm
value yields exactly one *first* divergence that names the WQE field
and both byte values, with a causal slice containing the arming op;
perturbing a timing constant yields a typed ``timing`` divergence with
the delta.
"""

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.ibv import wr_write
from repro.obs import (
    FlightRecorder,
    causal_slice,
    diff_journals,
    load_journal,
)
from repro.obs.tracediff import causal_key, render_report
from repro.redn import ProgramBuilder, RednContext

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_if_scenario(compare_id, tmp_path, label, fetch_delta_ns=0):
    """The emit_if construct under a flight recorder.

    ``compare_id`` arms (or not) the branch WQE via CAS;
    ``fetch_delta_ns`` perturbs the NIC's WQE fetch latency without
    touching causal structure.
    """
    from conftest import LoopbackRig

    lo = LoopbackRig()
    if fetch_delta_ns:
        # TimingModel is frozen; swap in a perturbed copy.
        lo.nic.timing = dataclasses.replace(
            lo.nic.timing,
            wqe_fetch_ns=lo.nic.timing.wqe_fetch_ns + fetch_delta_ns)
    recorder = FlightRecorder(lo.sim, name=label,
                              checkpoint_interval=16)
    recorder.attach_nic(lo.nic)
    ctx = RednContext(lo.nic, lo.pd, owner="test-redn")
    builder = ProgramBuilder(ctx, name="if-test")
    src, _ = ctx.alloc_registered(8, label="src")
    dst, dst_mr = ctx.alloc_registered(8, label="dst")
    ctx.memory.write(src.addr, b"MATCHED!")
    ctl = builder.control_queue(name="ctl")
    worker = builder.worker_queue(name="wrk")
    branches = builder.worker_queue(name="brn")
    live = wr_write(src.addr, 8, dst.addr, dst_mr.rkey)
    live.wr_id = 0x42
    branch = builder.template(branches, live, tag="if.branch")
    builder.emit_if(ctl, worker, branch, compare_id=compare_id,
                    tag="if")
    ctl.doorbell()

    def run():
        yield lo.sim.timeout(50_000)

    lo.run(run())
    path = tmp_path / f"{label}.jsonl"
    recorder.dump(path)
    recorder.close()
    return load_journal(path)


class TestIdenticalRuns:
    def test_zero_divergences(self, tmp_path):
        journal_a = run_if_scenario(0x42, tmp_path, "a")
        journal_b = run_if_scenario(0x42, tmp_path, "b")
        report = diff_journals(journal_a, journal_b)
        assert report.identical
        assert report.first is None
        assert report.aligned == len(journal_a.records)
        assert "causally identical" in render_report(report)


class TestCasArmFlip:
    """One flipped CAS compare value — the paper's §3.3 conditional."""

    def test_first_divergence_names_field_and_values(self, tmp_path):
        journal_a = run_if_scenario(0x42, tmp_path, "a")
        journal_b = run_if_scenario(0x43, tmp_path, "b")
        report = diff_journals(journal_a, journal_b)
        assert not report.identical
        first = report.first
        assert first.kind == "wqe_bytes"
        # The divergent event is the post of the arming CAS itself.
        assert first.a["op"] == "CAS"
        fields = {f["field"]: f for f in first.fields}
        assert "operand0" in fields
        assert fields["operand0"]["a"] == 0x42
        assert fields["operand0"]["b"] == 0x43
        assert "operand0: 0x42 -> 0x43" in first.detail

    def test_causal_slice_names_arming_op(self, tmp_path):
        journal_a = run_if_scenario(0x42, tmp_path, "a")
        journal_b = run_if_scenario(0x43, tmp_path, "b")
        report = diff_journals(journal_a, journal_b)
        # The branch WQE's fetch diverges too (the CAS rewrote its id
        # field in run A only); its slice must reach the arming CAS.
        branch_divs = [d for d in report.divergences
                       if d.kind == "wqe_bytes"
                       and d.a["kind"] == "fetch"
                       and d.a["wq"].startswith("brn")]
        assert branch_divs
        feeding = causal_slice(journal_a, branch_divs[0].a, depth=12)
        assert any(record["kind"] == "atomic"
                   and record["op"] == "CAS" for record in feeding)

    def test_rendered_report_is_complete(self, tmp_path):
        journal_a = run_if_scenario(0x42, tmp_path, "a")
        journal_b = run_if_scenario(0x43, tmp_path, "b")
        report = diff_journals(journal_a, journal_b)
        text = render_report(report, journal_a)
        assert "first divergence (wqe_bytes)" in text
        assert "operand0: 0x42 -> 0x43" in text
        assert "causal slice" in text


class TestTimingPerturbation:
    def test_timing_divergence_reports_delta(self, tmp_path):
        journal_a = run_if_scenario(0x42, tmp_path, "a")
        journal_b = run_if_scenario(0x42, tmp_path, "b",
                                    fetch_delta_ns=7)
        report = diff_journals(journal_a, journal_b)
        assert not report.identical
        # Same causal structure: everything aligns, nothing is
        # missing/extra, and the differences are typed timing.
        assert report.aligned == len(journal_a.records)
        kinds = report.by_kind()
        assert set(kinds) == {"timing"}
        first = report.first
        assert first.b["ts"] - first.a["ts"] == 7
        assert "+7 ns" in first.detail


class TestMissingExtra:
    def test_shorter_run_reports_missing(self, tmp_path):
        from conftest import LoopbackRig

        def run_writes(writes, label):
            lo = LoopbackRig()
            recorder = FlightRecorder(lo.sim, name=label)
            recorder.attach_nic(lo.nic)
            src, _ = lo.buffer(64)
            dst, dst_mr = lo.buffer(64)
            for index in range(writes):
                lo.qp_a.post_send(
                    wr_write(src.addr, 64, dst.addr, dst_mr.rkey,
                             signaled=True, wr_id=index))

            def run():
                yield lo.sim.timeout(300_000)

            lo.run(run())
            path = tmp_path / f"{label}.jsonl"
            recorder.dump(path)
            recorder.close()
            return load_journal(path)

        journal_a = run_writes(4, "a")
        journal_b = run_writes(3, "b")
        report = diff_journals(journal_a, journal_b)
        kinds = report.by_kind()
        assert kinds.get("missing", 0) > 0
        # The surplus WR's CQEs folded into one per-CQ count summary.
        assert kinds.get("cqe_count", 0) <= 1
        report_ba = diff_journals(journal_b, journal_a)
        assert report_ba.by_kind().get("extra", 0) > 0


class TestCausalKeys:
    def test_wr_identity_not_wall_order(self):
        ordinals = {}
        key = causal_key({"kind": "fetch", "wq": "sq", "wr": 7,
                          "seq": 123, "ts": 999}, ordinals)
        assert key == (0, "wq", "sq", "fetch", 7, 0)

    def test_repeated_streams_get_ordinals(self):
        ordinals = {}
        first = causal_key({"kind": "doorbell", "wq": "sq",
                            "up_to": 1}, ordinals)
        second = causal_key({"kind": "doorbell", "wq": "sq",
                             "up_to": 2}, ordinals)
        assert first[-1] == 0
        assert second[-1] == 1
        assert first[:-1] == second[:-1]

    def test_bed_scopes_keys(self):
        ordinals = {}
        key_a = causal_key({"kind": "cqe", "cq": "scq", "count": 1,
                            "bed": 0}, ordinals)
        key_b = causal_key({"kind": "cqe", "cq": "scq", "count": 1,
                            "bed": 1}, ordinals)
        assert key_a != key_b


class TestChromeTraceAdapter:
    def test_trace_diff_on_chrome_exports(self, tmp_path):
        from conftest import LoopbackRig
        from repro.obs import Tracer, load_trace
        from repro.obs.tracediff import records_from_trace

        def run_traced(writes, label):
            lo = LoopbackRig()
            tracer = Tracer(lo.sim, name=label)
            tracer.attach_nic(lo.nic)
            src, _ = lo.buffer(64)
            dst, dst_mr = lo.buffer(64)
            for index in range(writes):
                lo.qp_a.post_send(
                    wr_write(src.addr, 64, dst.addr, dst_mr.rkey,
                             signaled=True, wr_id=index))

            def run():
                yield lo.sim.timeout(300_000)

            lo.run(run())
            path = tmp_path / f"{label}.json"
            tracer.export_chrome(path)
            tracer.close()
            return records_from_trace(load_trace(path))

        records_a = run_traced(3, "a")
        records_b = run_traced(3, "b")
        assert records_a == records_b
        assert any(record["kind"] == "post" for record in records_a)
        assert any(record["kind"] == "cqe" for record in records_a)


class TestCli:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable,
             str(REPO_ROOT / "tools" / "trace_diff.py"), *argv],
            capture_output=True, text=True)

    def test_identical_exit_zero(self, tmp_path):
        run_if_scenario(0x42, tmp_path, "a")
        run_if_scenario(0x42, tmp_path, "b")
        result = self._run(str(tmp_path / "a.jsonl"),
                           str(tmp_path / "b.jsonl"),
                           "--fail-on-divergence")
        assert result.returncode == 0, result.stderr
        assert "causally identical" in result.stdout

    def test_divergent_exit_two(self, tmp_path):
        run_if_scenario(0x42, tmp_path, "a")
        run_if_scenario(0x43, tmp_path, "b")
        result = self._run(str(tmp_path / "a.jsonl"),
                           str(tmp_path / "b.jsonl"),
                           "--fail-on-divergence")
        assert result.returncode == 2
        assert "operand0: 0x42 -> 0x43" in result.stdout
        payload = self._run(str(tmp_path / "a.jsonl"),
                            str(tmp_path / "b.jsonl"), "--json")
        report = json.loads(payload.stdout)
        assert report["identical"] is False
        assert report["first"]["kind"] == "wqe_bytes"

    def test_corrupt_input_exit_one(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "meta", "schema": 1}\n{oops\n')
        run_if_scenario(0x42, tmp_path, "a")
        result = self._run(str(bad), str(tmp_path / "a.jsonl"))
        assert result.returncode == 1
        assert "error:" in result.stderr
