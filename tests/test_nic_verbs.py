"""Integration tests: verb data-path semantics through the full device."""

import pytest

from repro.ibv import (
    wr_calc,
    wr_cas,
    wr_fetch_add,
    wr_noop,
    wr_read,
    wr_recv,
    wr_send,
    wr_write,
    wr_write_imm,
)
from repro.memory import AccessFlags
from repro.nic import Opcode, Sge


class TestWrite:
    def test_write_moves_bytes(self, rig):
        src, _ = rig.buffer("a", 64)
        dst, dst_mr = rig.buffer("b", 64)
        rig.mem_a.write(src.addr, b"payload!" * 8)

        def run():
            cqe = yield from rig.verbs.execute_sync_checked(
                rig.qp_a, wr_write(src.addr, 64, dst.addr, dst_mr.rkey))
            return cqe

        cqe = rig.run(run())
        assert cqe.byte_len == 64
        assert rig.mem_b.read(dst.addr, 64) == b"payload!" * 8

    def test_write_latency_matches_fig7(self, rig):
        """Remote 64B WRITE ~1.6 us (Fig 7)."""
        src, _ = rig.buffer("a", 64)
        dst, dst_mr = rig.buffer("b", 64)

        def run():
            start = rig.sim.now
            yield from rig.verbs.execute_sync_checked(
                rig.qp_a, wr_write(src.addr, 64, dst.addr, dst_mr.rkey))
            return rig.sim.now - start

        latency = rig.run(run()) - rig.verbs.post_overhead_ns
        assert 1400 <= latency <= 1800

    def test_write_wrong_rkey_fails(self, rig):
        src, _ = rig.buffer("a", 64)
        dst, dst_mr = rig.buffer("b", 64)

        def run():
            cqe = yield from rig.verbs.execute_sync(
                rig.qp_a, wr_write(src.addr, 64, dst.addr, 0xBAD))
            return cqe

        cqe = rig.run(run())
        assert cqe.status == "PROTECTION_ERROR"

    def test_write_outside_region_fails(self, rig):
        src, _ = rig.buffer("a", 64)
        dst, dst_mr = rig.buffer("b", 64)

        def run():
            cqe = yield from rig.verbs.execute_sync(
                rig.qp_a,
                wr_write(src.addr, 64, dst.addr + 32, dst_mr.rkey))
            return cqe

        assert rig.run(run()).status == "PROTECTION_ERROR"

    def test_write_needs_remote_write_permission(self, rig):
        src, _ = rig.buffer("a", 64)
        dst, dst_mr = rig.buffer("b", 64, access=AccessFlags.REMOTE_READ)

        def run():
            cqe = yield from rig.verbs.execute_sync(
                rig.qp_a, wr_write(src.addr, 64, dst.addr, dst_mr.rkey))
            return cqe

        assert rig.run(run()).status == "PROTECTION_ERROR"


class TestRead:
    def test_read_fetches_remote_bytes(self, rig):
        sink, _ = rig.buffer("a", 64)
        src, src_mr = rig.buffer("b", 64)
        rig.mem_b.write(src.addr, bytes(range(64)))

        def run():
            yield from rig.verbs.execute_sync_checked(
                rig.qp_a, wr_read(sink.addr, 64, src.addr, src_mr.rkey))

        rig.run(run())
        assert rig.mem_a.read(sink.addr, 64) == bytes(range(64))

    def test_read_latency_matches_fig7(self, rig):
        """Remote 64B READ ~1.8 us (Fig 7, non-posted PCIe)."""
        sink, _ = rig.buffer("a", 64)
        src, src_mr = rig.buffer("b", 64)

        def run():
            start = rig.sim.now
            yield from rig.verbs.execute_sync_checked(
                rig.qp_a, wr_read(sink.addr, 64, src.addr, src_mr.rkey))
            return rig.sim.now - start

        latency = rig.run(run()) - rig.verbs.post_overhead_ns
        assert 1600 <= latency <= 2000

    def test_read_scatter_to_sges(self, rig):
        """READ responses scatter across SGEs — Fig 12's steering tool."""
        sink1, _ = rig.buffer("a", 16)
        sink2, _ = rig.buffer("a", 16)
        src, src_mr = rig.buffer("b", 24)
        rig.mem_b.write(src.addr, b"A" * 16 + b"B" * 8)

        def run():
            wqe = wr_read(0, 24, src.addr, src_mr.rkey,
                          sges=[Sge(sink1.addr, 16), Sge(sink2.addr, 8)])
            yield from rig.verbs.execute_sync_checked(rig.qp_a, wqe)

        rig.run(run())
        assert rig.mem_a.read(sink1.addr, 16) == b"A" * 16
        assert rig.mem_a.read(sink2.addr, 8) == b"B" * 8

    def test_read_needs_remote_read_permission(self, rig):
        sink, _ = rig.buffer("a", 8)
        src, src_mr = rig.buffer("b", 8, access=AccessFlags.REMOTE_WRITE)

        def run():
            cqe = yield from rig.verbs.execute_sync(
                rig.qp_a, wr_read(sink.addr, 8, src.addr, src_mr.rkey))
            return cqe

        assert rig.run(run()).status == "PROTECTION_ERROR"


class TestAtomics:
    def test_cas_success_swaps_and_returns_original(self, rig):
        result, _ = rig.buffer("a", 8)
        target, target_mr = rig.buffer("b", 8)
        rig.mem_b.write_u64(target.addr, 111)

        def run():
            yield from rig.verbs.execute_sync_checked(
                rig.qp_a, wr_cas(target.addr, target_mr.rkey,
                                 compare=111, swap=222,
                                 result_laddr=result.addr))

        rig.run(run())
        assert rig.mem_b.read_u64(target.addr) == 222
        assert rig.mem_a.read_u64(result.addr) == 111

    def test_cas_mismatch_leaves_target(self, rig):
        result, _ = rig.buffer("a", 8)
        target, target_mr = rig.buffer("b", 8)
        rig.mem_b.write_u64(target.addr, 111)

        def run():
            yield from rig.verbs.execute_sync_checked(
                rig.qp_a, wr_cas(target.addr, target_mr.rkey,
                                 compare=999, swap=222,
                                 result_laddr=result.addr))

        rig.run(run())
        assert rig.mem_b.read_u64(target.addr) == 111
        assert rig.mem_a.read_u64(result.addr) == 111

    def test_fetch_add(self, rig):
        result, _ = rig.buffer("a", 8)
        target, target_mr = rig.buffer("b", 8)
        rig.mem_b.write_u64(target.addr, 40)

        def run():
            yield from rig.verbs.execute_sync_checked(
                rig.qp_a, wr_fetch_add(target.addr, target_mr.rkey, 2,
                                       result_laddr=result.addr))

        rig.run(run())
        assert rig.mem_b.read_u64(target.addr) == 42
        assert rig.mem_a.read_u64(result.addr) == 40

    def test_atomic_needs_permission(self, rig):
        target, target_mr = rig.buffer(
            "b", 8, access=AccessFlags.REMOTE_WRITE)

        def run():
            cqe = yield from rig.verbs.execute_sync(
                rig.qp_a, wr_cas(target.addr, target_mr.rkey, 0, 1))
            return cqe

        assert rig.run(run()).status == "PROTECTION_ERROR"

    def test_atomic_latency_matches_fig7(self, rig):
        target, target_mr = rig.buffer("b", 8)

        def run():
            start = rig.sim.now
            yield from rig.verbs.execute_sync_checked(
                rig.qp_a, wr_cas(target.addr, target_mr.rkey, 0, 1))
            return rig.sim.now - start

        latency = rig.run(run()) - rig.verbs.post_overhead_ns
        assert 1600 <= latency <= 2000


class TestCalcVerbs:
    def test_max_updates_when_larger(self, rig):
        target, target_mr = rig.buffer("b", 8)
        rig.mem_b.write_u64(target.addr, 10)

        def run():
            yield from rig.verbs.execute_sync_checked(
                rig.qp_a, wr_calc(Opcode.MAX, target.addr, target_mr.rkey,
                                  operand=50))

        rig.run(run())
        assert rig.mem_b.read_u64(target.addr) == 50

    def test_min_keeps_smaller(self, rig):
        target, target_mr = rig.buffer("b", 8)
        rig.mem_b.write_u64(target.addr, 10)

        def run():
            yield from rig.verbs.execute_sync_checked(
                rig.qp_a, wr_calc(Opcode.MIN, target.addr, target_mr.rkey,
                                  operand=50))

        rig.run(run())
        assert rig.mem_b.read_u64(target.addr) == 10

    def test_calc_rejected_on_non_mellanox(self, rig):
        # Vendor-specific (§3.5): ConnectX-3 profile lacks calc verbs.
        from repro.nic import CONNECTX3, RNIC
        from repro.memory import HostMemory, ProtectionDomain

        target, target_mr = rig.buffer("b", 8)
        # Replace the responder NIC model flag via a fresh rig is heavy;
        # instead verify the executor's guard directly.
        rig.nic_b.model = CONNECTX3

        def run():
            cqe = yield from rig.verbs.execute_sync(
                rig.qp_a, wr_calc(Opcode.MAX, target.addr, target_mr.rkey,
                                  operand=1))
            return cqe

        assert rig.run(run()).status == "QUEUE_ERROR"


class TestSendRecv:
    def test_send_lands_in_recv_buffer(self, rig):
        src, _ = rig.buffer("a", 32)
        sink, _ = rig.buffer("b", 32)
        rig.mem_a.write(src.addr, b"request-bytes" + bytes(19))
        rig.qp_b.post_recv(wr_recv(sink.addr, 32, wr_id=9))

        def run():
            yield from rig.verbs.execute_sync_checked(
                rig.qp_a, wr_send(src.addr, 32))
            cqe = yield from rig.verbs.poll(rig.qp_b.recv_wq.cq)
            return cqe

        cqe = rig.run(run())
        assert cqe.wr_id == 9
        assert cqe.byte_len == 32
        assert rig.mem_b.read(sink.addr, 13) == b"request-bytes"

    def test_send_scatters_across_sges(self, rig):
        """The RedN trigger path: RECV SGEs inject arguments (Fig 3)."""
        src, _ = rig.buffer("a", 24)
        sink1, _ = rig.buffer("b", 8)
        sink2, _ = rig.buffer("b", 16)
        rig.mem_a.write(src.addr, b"11111111" + b"2" * 16)
        rig.qp_b.post_recv(wr_recv(
            sges=[Sge(sink1.addr, 8), Sge(sink2.addr, 16)]))

        def run():
            yield from rig.verbs.execute_sync_checked(
                rig.qp_a, wr_send(src.addr, 24))

        rig.run(run())
        assert rig.mem_b.read(sink1.addr, 8) == b"11111111"
        assert rig.mem_b.read(sink2.addr, 16) == b"2" * 16

    def test_send_blocks_until_recv_posted(self, rig):
        src, _ = rig.buffer("a", 8)
        sink, _ = rig.buffer("b", 8)

        def sender():
            yield from rig.verbs.execute_sync_checked(
                rig.qp_a, wr_send(src.addr, 8))
            return rig.sim.now

        def late_recv():
            yield rig.sim.timeout(5000)
            rig.qp_b.post_recv(wr_recv(sink.addr, 8))

        rig.sim.process(late_recv())
        finished_at = rig.run(sender())
        assert finished_at >= 5000

    def test_send_overflowing_recv_is_error(self, rig):
        src, _ = rig.buffer("a", 64)
        sink, _ = rig.buffer("b", 8)
        rig.qp_b.post_recv(wr_recv(sink.addr, 8))

        def run():
            cqe = yield from rig.verbs.execute_sync(
                rig.qp_a, wr_send(src.addr, 64))
            return cqe

        assert rig.run(run()).status == "QUEUE_ERROR"

    def test_write_imm_consumes_recv_with_immediate(self, rig):
        src, _ = rig.buffer("a", 16)
        dst, dst_mr = rig.buffer("b", 16)
        rig.mem_a.write(src.addr, b"imm-payload-1234")
        rig.qp_b.post_recv(wr_recv(wr_id=5))

        def run():
            yield from rig.verbs.execute_sync_checked(
                rig.qp_a, wr_write_imm(src.addr, 16, dst.addr,
                                       dst_mr.rkey, immediate=0xFACE))
            cqe = yield from rig.verbs.poll(rig.qp_b.recv_wq.cq)
            return cqe

        cqe = rig.run(run())
        assert cqe.immediate == 0xFACE
        assert rig.mem_b.read(dst.addr, 16) == b"imm-payload-1234"


class TestNoop:
    def test_remote_noop_latency(self, rig):
        """Remote NOOP ~1.21 us; loopback ~0.96 us (Fig 7)."""
        def run():
            start = rig.sim.now
            yield from rig.verbs.execute_sync_checked(
                rig.qp_a, wr_noop(signaled=True))
            return rig.sim.now - start

        latency = rig.run(run()) - rig.verbs.post_overhead_ns
        assert 1100 <= latency <= 1350

    def test_loopback_noop_cheaper_by_network_rtt(self, rig, lo):
        def measure(r, qp):
            def run():
                start = r.sim.now
                yield from r.verbs.execute_sync_checked(
                    qp, wr_noop(signaled=True))
                return r.sim.now - start
            return r.run(run())

        remote = measure(rig, rig.qp_a)
        local = measure(lo, lo.qp_a)
        # Difference estimates the network RTT: ~0.25 us (Fig 7).
        assert 200 <= remote - local <= 320
