"""Unit tests for the connection plane (repro.net.conn).

QP pool lease discipline, shared-CQ cookie demux (including stale CQEs
surfacing after a QP recycle), doorbell batching flush semantics, the
ring_doorbell policy table, and consistent-hash key ownership.
"""

import pytest

from repro.bench import Testbed
from repro.ibv import wr_write
from repro.net.conn import (
    ConnError,
    GENERATION_SHIFT,
    HashRing,
    PoolExhausted,
    QpPool,
)
from repro.nic import CONNECTX5_TIMING, DoorbellBatcher


MEM = 2 * 1024 * 1024


class _Rig:
    """Testbed + server sink + a client-side QP pool."""

    def __init__(self, capacity=3, **pool_kwargs):
        self.bed = Testbed(num_clients=1, server_memory=MEM,
                           client_memory=MEM)
        self.sim = self.bed.sim
        proc = self.bed.server.spawn_process("sink")
        pd = proc.create_pd()
        sink = proc.alloc(4096, label="sink")
        sink_mr = pd.register(sink)
        self.sink_addr = sink.addr
        self.rkey = sink_mr.rkey
        self.src_addr = self.bed.clients[0].memory.alloc(
            64, owner="client").addr

        def connect(qp, index):
            server_qp = proc.create_qp(pd, name=f"s{index}")
            server_qp.connect(qp)

        self.pool = QpPool(self.bed.clients[0].nic, self.bed.client_pd(0),
                           capacity=capacity, connect=connect,
                           name="testpool", **pool_kwargs)

    def write(self, lease, wr_id=0, batcher=None):
        return lease.post_send(
            wr_write(self.src_addr, 64, self.sink_addr, self.rkey,
                     wr_id=wr_id, signaled=True),
            batcher=batcher)


class TestQpPool:
    def test_first_round_leases_in_creation_order(self):
        rig = _Rig(capacity=3)
        leases = [rig.pool.lease() for _ in range(3)]
        assert [l.qp for l in leases] == rig.pool.qps
        assert [l.generation for l in leases] == [0, 0, 0]

    def test_lru_recycling_order(self):
        rig = _Rig(capacity=3)
        leases = [rig.pool.lease() for _ in range(3)]
        # Release out of order: 1 first, then 0. LRU hands back 1, 0.
        leases[1].release()
        leases[0].release()
        again = [rig.pool.lease(), rig.pool.lease()]
        assert [l.index for l in again] == [1, 0]
        assert [l.generation for l in again] == [1, 1]
        assert rig.pool.recycles == 2

    def test_exhaustion_is_typed_and_counted(self):
        rig = _Rig(capacity=2)
        rig.pool.lease()
        rig.pool.lease()
        with pytest.raises(PoolExhausted):
            rig.pool.lease()
        assert isinstance(PoolExhausted("x"), ConnError)
        assert rig.pool.exhausted_hits == 1
        assert rig.pool.stats()["exhausted_hits"] == 1

    def test_double_release_rejected(self):
        rig = _Rig(capacity=1)
        lease = rig.pool.lease()
        lease.release()
        with pytest.raises(ConnError):
            lease.release()
        with pytest.raises(ConnError):
            rig.write(lease)  # posting through a released lease

    def test_release_to_foreign_pool_rejected(self):
        rig_a = _Rig(capacity=1)
        rig_b = _Rig(capacity=1)
        lease = rig_a.pool.lease()
        with pytest.raises(ConnError):
            rig_b.pool.release(lease)

    def test_acquire_waits_fifo(self):
        rig = _Rig(capacity=1)
        sim = rig.sim
        grants = []

        def holder():
            lease = yield from rig.pool.acquire(tag="holder")
            yield sim.timeout(1_000)
            rig.pool.release(lease)

        def waiter(name, delay):
            yield sim.timeout(delay)
            lease = yield from rig.pool.acquire(tag=name)
            grants.append((name, sim.now))
            yield sim.timeout(500)
            rig.pool.release(lease)

        sim.process(holder())
        sim.process(waiter("first", 10))
        sim.process(waiter("second", 20))
        sim.run()
        assert [name for name, _t in grants] == ["first", "second"]
        assert grants[0][1] == 1_000
        assert grants[1][1] == 1_500
        assert rig.pool.peak_in_use == 1

    def test_oversized_user_wr_id_rejected(self):
        rig = _Rig(capacity=1)
        lease = rig.pool.lease()
        with pytest.raises(ConnError):
            lease.cookie(1 << GENERATION_SHIFT)


class TestSharedCqDemux:
    def test_cqes_route_to_their_lease(self):
        """Two leases on one shared CQ each get exactly their CQEs,
        with the generation cookie stripped from the wr_id."""
        rig = _Rig(capacity=2)
        a = rig.pool.lease(tag="a")
        b = rig.pool.lease(tag="b")
        results = {}

        def run(name, lease, wr_id):
            rig.write(lease, wr_id=wr_id)
            cqe = yield from lease.wait_cqe()
            results[name] = cqe

        rig.sim.process(run("a", a, 7))
        rig.sim.process(run("b", b, 9))
        rig.sim.run()
        assert results["a"].wr_id == 7
        assert results["b"].wr_id == 9
        assert results["a"].wq_num == a.qp.send_wq.wq_num
        assert results["b"].wq_num == b.qp.send_wq.wq_num
        assert rig.pool.router.routed == 2
        assert rig.pool.router.stale == 0

    def test_recycled_qp_quarantines_stale_cqe(self):
        """A CQE from generation N surfacing after the QP was re-leased
        at generation N+1 is quarantined, never delivered."""
        rig = _Rig(capacity=1)
        sim = rig.sim
        old = rig.pool.lease(tag="old")
        rig.write(old, wr_id=5)
        # Release while the WRITE is still in flight, then immediately
        # re-lease the same QP: the generation fence must catch the
        # straggler completion.
        old.release()
        new = rig.pool.lease(tag="new")
        assert new.index == old.index
        assert new.generation == 1
        sim.run()
        assert new.poll() is None
        assert rig.pool.router.routed == 0
        assert rig.pool.router.stale == 1
        assert rig.pool.router.stale_cqes == [
            (old.qp.send_wq.wq_num, 0, 5)]

    def test_unregistered_wq_cqe_is_stale(self):
        """Release without re-lease: the route is gone, CQE quarantined."""
        rig = _Rig(capacity=1)
        lease = rig.pool.lease()
        rig.write(lease, wr_id=3)
        lease.release()
        rig.sim.run()
        assert rig.pool.router.stale == 1
        assert rig.pool.stats()["stale_cqes"] == 1

    def test_routing_adds_no_events(self):
        """A pooled drive and a hand-wired drive execute the identical
        kernel event count — the router is pure host bookkeeping."""
        def drive_pooled():
            rig = _Rig(capacity=1)
            lease = rig.pool.lease()

            def run():
                rig.write(lease, wr_id=1)
                yield from lease.wait_cqe()

            rig.sim.process(run())
            rig.sim.run()
            return (rig.sim.now,
                    rig.sim.metrics.snapshot()["gauges"]
                    ["sim.events_executed"])

        def drive_manual():
            bed = Testbed(num_clients=1, server_memory=MEM,
                          client_memory=MEM)
            proc = bed.server.spawn_process("sink")
            pd = proc.create_pd()
            sink = proc.alloc(4096, label="sink")
            sink_mr = pd.register(sink)
            # Same object creation order as QpPool: scq, rcq, then QP.
            scq = bed.clients[0].nic.create_cq(name="scq")
            rcq = bed.clients[0].nic.create_cq(name="rcq")
            qp = bed.clients[0].nic.create_qp(
                bed.client_pd(0), send_slots=64, send_cq=scq,
                recv_cq=rcq, name="manual")
            server_qp = proc.create_qp(pd, name="s0")
            server_qp.connect(qp)
            src = bed.clients[0].memory.alloc(64, owner="client")

            def run():
                qp.post_send(wr_write(src.addr, 64, sink.addr,
                                      sink_mr.rkey, wr_id=1,
                                      signaled=True))
                yield scq.wait_for_count(1)

            bed.sim.process(run())
            bed.sim.run()
            return (bed.sim.now,
                    bed.sim.metrics.snapshot()["gauges"]
                    ["sim.events_executed"])

        assert drive_pooled() == drive_manual()


class TestDoorbellBatcher:
    def _wq(self, rig):
        lease = rig.pool.lease()
        return lease, lease.qp.send_wq

    def test_cap_flush(self):
        """max_batch posts ring exactly one doorbell for the batch."""
        rig = _Rig(capacity=1)
        lease, wq = self._wq(rig)
        batcher = DoorbellBatcher(wq, max_batch=3)
        for wr_id in range(3):
            rig.write(lease, wr_id=wr_id, batcher=batcher)
        assert batcher.pending == 0          # cap reached -> auto flush
        assert batcher.flushes == 1
        assert batcher.coalesced == 3
        rig.sim.run()
        assert wq.fetched_count == 3
        cqes = [lease.poll() for _ in range(3)]
        assert [c.wr_id for c in cqes] == [0, 1, 2]

    def test_explicit_flush_and_empty_flush(self):
        rig = _Rig(capacity=1)
        lease, wq = self._wq(rig)
        batcher = DoorbellBatcher(wq, max_batch=16)
        rig.write(lease, wr_id=0, batcher=batcher)
        rig.write(lease, wr_id=1, batcher=batcher)
        assert wq.enabled_count == 0         # no doorbell yet
        assert batcher.flush() == 2
        assert batcher.flush() == 0          # empty flush is a no-op
        assert batcher.flushes == 1
        rig.sim.run()
        assert wq.fetched_count == 2

    def test_deadline_flush(self):
        """An unfilled batch flushes at the sim-time deadline."""
        rig = _Rig(capacity=1)
        lease, wq = self._wq(rig)
        batcher = DoorbellBatcher(wq, max_batch=16, deadline_ns=5_000)
        fired = []

        def run():
            rig.write(lease, wr_id=0, batcher=batcher)
            cqe = yield from lease.wait_cqe()
            fired.append((cqe.wr_id, rig.sim.now))

        rig.sim.process(run())
        rig.sim.run()
        assert batcher.flushes == 1
        assert fired and fired[0][0] == 0
        assert fired[0][1] >= 5_000          # waited for the deadline

    def test_explicit_flush_cancels_deadline(self):
        rig = _Rig(capacity=1)
        lease, wq = self._wq(rig)
        batcher = DoorbellBatcher(wq, max_batch=16, deadline_ns=5_000)
        rig.write(lease, wr_id=0, batcher=batcher)
        batcher.flush()
        rig.sim.run()
        assert batcher.flushes == 1          # deadline did not double-fire
        assert wq.fetched_count == 1

    def test_batched_doorbell_pays_per_entry_price(self):
        """One batched ring of N is priced doorbell_ns +
        (N-1)*doorbell_batch_entry_ns — cheaper than N rings but not
        free, and timing-visible vs the unbatched drive."""
        timing = CONNECTX5_TIMING

        def enable_time(batch):
            rig = _Rig(capacity=1)
            lease, wq = self._wq(rig)
            if batch:
                batcher = DoorbellBatcher(wq, max_batch=2)
                rig.write(lease, wr_id=0, batcher=batcher)
                rig.write(lease, wr_id=1, batcher=batcher)
            else:
                rig.write(lease, wr_id=0)
                rig.write(lease, wr_id=1)
            times = []

            def watch():
                while wq.enabled_count < 2:
                    yield 1
                times.append(rig.sim.now)

            rig.sim.process(watch())
            rig.sim.run()
            return times[0]

        assert enable_time(batch=True) == (
            timing.doorbell_ns + timing.doorbell_batch_entry_ns)
        assert enable_time(batch=False) == timing.doorbell_ns
        assert timing.doorbell_batch_ns(1) == timing.doorbell_ns
        assert timing.doorbell_batch_ns(4) == (
            timing.doorbell_ns + 3 * timing.doorbell_batch_entry_ns)

    def test_batched_flush_satisfies_wait_thresholds(self):
        """CQ count thresholds (the WAIT-verb observable) see all N
        completions of a batch, in posting order."""
        rig = _Rig(capacity=1)
        lease, wq = self._wq(rig)
        cq = rig.pool.send_cq
        batcher = DoorbellBatcher(wq, max_batch=4)
        seen = []

        count_at_wait = []

        def run():
            for wr_id in range(4):
                rig.write(lease, wr_id=wr_id, batcher=batcher)
            yield cq.wait_for_count(4)
            count_at_wait.append(cq.count)
            # count bumps before the CQE DMA to the host lands, so the
            # WAIT observable leads the inbox; drain the rest properly.
            for _ in range(4):
                cqe = yield from lease.wait_cqe()
                seen.append(cqe.wr_id)

        rig.sim.process(run())
        rig.sim.run()
        assert count_at_wait == [4]
        assert seen == [0, 1, 2, 3]

    def test_bad_parameters_rejected(self):
        from repro.nic.queue import QueueError
        rig = _Rig(capacity=1)
        _lease, wq = self._wq(rig)
        with pytest.raises(QueueError):
            DoorbellBatcher(wq, max_batch=0)
        with pytest.raises(QueueError):
            DoorbellBatcher(wq, max_batch=4, deadline_ns=0)

    def test_batcher_must_drive_the_leased_wq(self):
        rig = _Rig(capacity=2)
        a = rig.pool.lease()
        b = rig.pool.lease()
        foreign = DoorbellBatcher(b.qp.send_wq, max_batch=4)
        with pytest.raises(ConnError):
            rig.write(a, batcher=foreign)
        with pytest.raises(ConnError):
            a.post_send(wr_write(rig.src_addr, 64, rig.sink_addr,
                                 rig.rkey, signaled=True),
                        ring_doorbell=True,
                        batcher=DoorbellBatcher(a.qp.send_wq))


class TestRingDoorbellPolicy:
    """Pin the ring_doorbell default table documented on post_send."""

    def test_docstring_carries_the_policy_table(self):
        from repro.nic.qp import QueuePair
        doc = QueuePair.post_send.__doc__
        assert "ring_doorbell" in doc
        assert "managed" in doc
        assert "DoorbellBatcher" in doc

    def test_default_rings_on_normal_wq(self):
        rig = _Rig(capacity=1)
        lease = rig.pool.lease()
        rig.write(lease, wr_id=0)            # default ring_doorbell=None
        rig.sim.run()
        assert lease.qp.send_wq.enabled_count == 1
        assert lease.qp.send_wq.fetched_count == 1
        assert lease.poll() is not None      # completed end to end

    def test_false_suppresses_doorbell(self):
        rig = _Rig(capacity=1)
        lease = rig.pool.lease()
        lease.post_send(wr_write(rig.src_addr, 64, rig.sink_addr,
                                 rig.rkey, signaled=True),
                        ring_doorbell=False)
        rig.sim.run()
        wq = lease.qp.send_wq
        assert wq.posted_count == 1
        assert wq.enabled_count == 0         # never rung, never fetched
        assert wq.fetched_count == 0

    def test_default_on_managed_wq_stays_silent(self):
        """Managed queues (offload-owned) must not see host doorbells
        from the default policy — the paper's §5 invariant."""
        rig = _Rig(capacity=1)
        nic = rig.bed.clients[0].nic
        cq = nic.create_cq(name="managed-cq")
        wq = nic.create_wq("send", 16, cq, managed=True,
                           name="managed-wq")
        wqe = wr_write(rig.src_addr, 64, rig.sink_addr, rig.rkey,
                       signaled=False)
        wq.post(wqe)                         # ring_doorbell=None
        assert wq.posted_count == 1
        assert wq.enabled_count == 0


class TestHashRing:
    def test_ownership_is_stable_and_total(self):
        ring = HashRing(8)
        owners = {key: ring.owner(key) for key in range(1, 257)}
        assert owners == {key: HashRing(8).owner(key)
                          for key in range(1, 257)}
        assert all(0 <= owner < 8 for owner in owners.values())
        # All shards get some keys at this scale.
        assert set(owners.values()) == set(range(8))

    def test_partition_covers_every_key_once(self):
        ring = HashRing(5)
        keys = list(range(1, 101))
        parts = ring.partition(keys)
        flat = [key for shard in parts.values() for key in shard]
        assert sorted(flat) == keys

    def test_adding_a_shard_moves_few_keys(self):
        keys = range(1, 1001)
        before = {key: HashRing(8).owner(key) for key in keys}
        after = {key: HashRing(9).owner(key) for key in keys}
        moved = sum(1 for key in keys if before[key] != after[key])
        # Consistent hashing: ~1/9 of keys move; rehashing would move
        # ~8/9. Allow generous slack around the 111-key expectation.
        assert moved < 300

    def test_zero_shards_rejected(self):
        with pytest.raises(ConnError):
            HashRing(0)
