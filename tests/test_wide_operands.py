"""Tests for §3.5 wide-operand conditionals (chained CAS segments)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ibv import wr_write
from repro.redn import ProgramBuilder, ProgramError, RednContext


def build_wide_if(lo, x, y, bits=96):
    """if (x == y) over a `bits`-wide operand; returns dst bytes."""
    ctx = RednContext(lo.nic, lo.pd, owner="wide")
    builder = ProgramBuilder(ctx, name="wide")
    src, _ = ctx.alloc_registered(8)
    dst, dst_mr = ctx.alloc_registered(8)
    ctx.memory.write(src.addr, b"WIDE-HIT")

    ctl = builder.control_queue(name="ctl")
    predicate = builder.worker_queue(name="pred")
    stages = builder.worker_queue(name="stages")
    branches = builder.worker_queue(name="branches")

    branch = builder.template(
        branches, wr_write(src.addr, 8, dst.addr, dst_mr.rkey),
        tag="wide.branch")
    chain = builder.emit_wide_if(ctl, predicate, stages, branch,
                                 compare_value=y, operand_bits=bits)

    # Inject the runtime operand x: segment k into stage k's target id.
    x_segments = ProgramBuilder.split_wide_operand(x, bits)
    targets = chain + [branch]
    for segment, target in zip(x_segments, targets):
        target.poke("id", segment)

    def run():
        yield lo.sim.timeout(100_000)
        return ctx.memory.read(dst.addr, 8)

    return lo.run(run()), builder, chain


class TestWideIf:
    def test_96_bit_match_fires(self, lo):
        value = (0xABCDEF << 48) | 0x123456789ABC
        result, _b, chain = build_wide_if(lo, value, value)
        assert result == b"WIDE-HIT"
        assert len(chain) == 1   # 96 bits -> 2 segments -> 1 guard

    def test_96_bit_low_segment_mismatch(self, lo):
        y = (0xAAAA << 48) | 0x1111
        x = (0xAAAA << 48) | 0x2222       # low 48 bits differ
        result, _b, _c = build_wide_if(lo, x, y)
        assert result == bytes(8)

    def test_96_bit_high_segment_mismatch(self, lo):
        y = (0xAAAA << 48) | 0x1111
        x = (0xBBBB << 48) | 0x1111       # high segment differs
        result, _b, _c = build_wide_if(lo, x, y)
        assert result == bytes(8)

    def test_144_bit_operand_three_segments(self, lo):
        value = (0x77 << 96) | (0x66 << 48) | 0x55
        result, _b, chain = build_wide_if(lo, value, value, bits=144)
        assert result == b"WIDE-HIT"
        assert len(chain) == 2

    def test_144_bit_middle_mismatch(self, lo):
        y = (0x77 << 96) | (0x66 << 48) | 0x55
        x = (0x77 << 96) | (0x99 << 48) | 0x55
        result, _b, _c = build_wide_if(lo, x, y, bits=144)
        assert result == bytes(8)

    def test_narrow_operand_rejected(self, lo):
        with pytest.raises((ProgramError, Exception)):
            build_wide_if(lo, 1, 1, bits=48)

    def test_mismatch_leaves_guards_disarmed(self, lo):
        """A low-segment miss must leave later guards as NOOPs — the
        chain never partially fires."""
        y = (0xCC << 48) | 0xDD
        x = (0xCC << 48) | 0xEE
        _result, _builder, chain = build_wide_if(lo, x, y)
        from repro.nic import Opcode, split_ctrl
        opcode, _id = split_ctrl(chain[0].peek("ctrl"))
        assert opcode == Opcode.NOOP

    def test_split_wide_operand(self):
        segments = ProgramBuilder.split_wide_operand(
            (5 << 48) | 7, 96)
        assert segments == [7, 5]
        with pytest.raises(ProgramError):
            ProgramBuilder.split_wide_operand(1 << 96, 96)

    @given(st.integers(min_value=0, max_value=(1 << 96) - 1),
           st.integers(min_value=0, max_value=(1 << 96) - 1))
    @settings(max_examples=8, deadline=None)
    def test_property_wide_if_equals_python_equality(self, x, y):
        from conftest import LoopbackRig
        lo = LoopbackRig()
        result, _b, _c = build_wide_if(lo, x, y)
        expected = b"WIDE-HIT" if x == y else bytes(8)
        assert result == expected
