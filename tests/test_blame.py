"""Tail-blame attribution: cross-shard causal paths, exemplars, rollups.

Covers the blame plane end to end: the exact-sum priority sweep, the
:class:`RequestBlame` causal context, fleet-wide capture (sums equal
latency for every request, both drives byte-identical), the top-k
exemplar tie-break, the rollup/diff/OpenMetrics helpers, the tracer's
connection-plane census, and the ``tail_blame`` / ``metrics_export
--blame`` CLIs.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro import obs as _obs
from repro.obs.blame import (BLAME_PHASES, RequestBlame, blame_registries,
                             blame_table, diff_blame, exemplar_order,
                             exemplars_of, folded_blame, summarize_blame)
from repro.obs.critpath import attribute_spans

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOLS = str(REPO_ROOT / "tools")
if TOOLS not in sys.path:
    sys.path.append(TOOLS)


def _small_fleet(exemplars=0, **overrides):
    from repro.bench.fleet import FleetScenario

    config = dict(num_shards=3, clients_per_shard=4,
                  requests_per_client=2, pool_qps=2,
                  batch_doorbells=True, gateway_workers=2, link_ns=1000)
    config.update(overrides)
    scenario = FleetScenario(*config.values())
    fleet = scenario.attach_telemetry(window_ns=20_000,
                                      exemplars=exemplars)
    return scenario, fleet


# -- attribute_spans: the parameterized exact-sum sweep --------------------


def test_attribute_spans_partitions_exactly():
    phases = ("hot", "warm", "idle")
    priority = {"hot": 3, "warm": 2, "idle": 1}
    spans = [
        (10, 40, "warm", ("s0", "q")),
        (20, 30, "hot", ("s1", "q")),     # carves out of warm
        (60, 80, "warm", ("s0", "r")),
    ]
    totals, details = attribute_spans(spans, 0, 100, phases, priority,
                                      gap_phase="idle",
                                      gap_detail=("s0", ""))
    assert sum(totals.values()) == 100
    assert totals == {"hot": 10, "warm": 40, "idle": 50}
    assert details[("hot", ("s1", "q"))] == 10
    assert details[("warm", ("s0", "q"))] == 20
    assert details[("warm", ("s0", "r"))] == 20
    assert details[("idle", ("s0", ""))] == 50


def test_attribute_spans_empty_window():
    totals, details = attribute_spans([], 50, 50, ("a",), {"a": 1})
    assert totals == {"a": 0} and not details


# -- RequestBlame: spans, hops, finish -------------------------------------


def test_request_blame_finish_sums_and_slices():
    blame = RequestBlame(shard=0, seq=7, key=42, start=100)
    blame.hop_sent(100, 1100, dst=1, queue="rpc")
    blame.hop_received(1350, shard=1, queue="rpc")       # 250ns gw_wait
    blame.span(1350, 1900, "service", "kv")              # on locus=1
    blame.span(1400, 1500, "pool_wait", "pool")          # carves out
    blame.hop_sent(1900, 2900, dst=0, queue="rsp")
    record = blame.finish(3000)                          # 100ns tail gap
    assert record["latency_ns"] == 2900
    assert sum(record["phases"].values()) == 2900
    assert record["phases"]["link_wire"] == 2000
    assert record["phases"]["gw_wait"] == 250
    assert record["phases"]["pool_wait"] == 100
    assert record["phases"]["service"] == 450
    assert record["phases"]["queueing"] == 100
    assert sum(row[3] for row in record["slices"]) == 2900
    # Slices sort by (phase priority, shard, queue); gap blames home.
    assert record["slices"][0][0] == "pool_wait"
    assert ["queueing", 0, ""] == record["slices"][-1][:3]
    assert record["seq"] == 7 and record["shard"] == 0


def test_request_blame_drops_empty_and_clamps():
    blame = RequestBlame(shard=2, seq=1, key=5, start=1000)
    blame.span(500, 900, "service", "kv")     # entirely before start
    blame.span(1200, 1200, "service", "kv")   # zero-length: dropped
    blame.span(900, 1100, "service", "kv")    # clamped to [1000, 1100)
    record = blame.finish(1100)
    assert record["phases"]["service"] == 100
    assert record["phases"]["queueing"] == 0
    assert len(blame.spans) == 2  # zero-length span never recorded


# -- the fleet property: blame sums == latency, both drives ----------------


def _run_fleet_blame(serial, **overrides):
    # exemplar_k larger than the request count: every request's
    # breakdown is retained, so the property test covers all of them.
    scenario, fleet = _small_fleet(exemplars=64, **overrides)
    fingerprint, _measures = scenario.run(serial=serial)
    return fingerprint, fleet.to_jsonl()


def test_fleet_blame_sums_to_latency_both_drives():
    fp_sharded, jsonl_sharded = _run_fleet_blame(serial=False)
    fp_serial, jsonl_serial = _run_fleet_blame(serial=True)
    assert fp_sharded == fp_serial
    assert jsonl_sharded == jsonl_serial  # byte-identical blame stream
    records = [json.loads(line) for line in jsonl_sharded.splitlines()]
    exemplars = exemplars_of(records)
    requests = 3 * 4 * 2
    assert len(exemplars) == requests
    for exemplar in exemplars:
        assert sum(exemplar["phases"].values()) == exemplar["latency_ns"]
        assert sum(row[3] for row in exemplar["slices"]) \
            == exemplar["latency_ns"]
    # Cross-shard gets carry the full causal path: both wire hops.
    remote = [e for e in exemplars if e["phases"]["link_wire"]]
    assert remote, "zipf routing should produce cross-shard gets"
    for exemplar in remote:
        assert exemplar["phases"]["link_wire"] >= 2 * 1000
        queues = {row[2] for row in exemplar["slices"]}
        assert "rpc" in queues and "rsp" in queues
    # Globally unique request ids: no two exemplars collide.
    assert len({e["seq"] for e in exemplars}) == requests


def test_fleet_blame_double_run_is_deterministic():
    _fp_a, jsonl_a = _run_fleet_blame(serial=False)
    _fp_b, jsonl_b = _run_fleet_blame(serial=False)
    assert jsonl_a == jsonl_b


def test_exemplar_capture_does_not_change_fingerprint():
    from repro.bench.fleet import FleetScenario

    def fingerprint(exemplars):
        scenario, _fleet = _small_fleet(exemplars=exemplars)
        return scenario.run()[0]

    bare = FleetScenario(3, 4, 2, 2, True, 2, 1000).run()[0]
    assert fingerprint(0) == bare
    assert fingerprint(16) == bare


# -- top-k exemplars: tie-break and bounded retention ----------------------


def test_exemplar_order_tie_break():
    base = {"latency_ns": 500, "shard": 1, "seq": 9}
    slower = dict(base, latency_ns=900)
    tie_lower_shard = dict(base, shard=0, seq=30)
    tie_lower_seq = dict(base, seq=2)
    ranked = sorted([base, slower, tie_lower_shard, tie_lower_seq],
                    key=exemplar_order)
    assert ranked == [slower, tie_lower_shard, tie_lower_seq, base]


def test_window_keeps_top_k_with_deterministic_ties():
    from repro.obs.telemetry import FleetTelemetry
    from repro.sim import Simulator

    sim = Simulator()
    fleet = FleetTelemetry(window_ns=10_000, exemplars=2)
    collector = fleet.attach(sim, bed="bed0", shard=0)

    def driver():
        for seq, latency in enumerate([300, 700, 700, 700, 100]):
            yield 1
            blame = RequestBlame(0, seq, seq, sim.now - latency)
            collector.request_complete(latency, blame=blame)
        yield 10_000

    sim.process(driver(), name="driver")
    sim.run()
    records = fleet.finalize()
    fleet.close()
    exemplars = exemplars_of(records)
    # Top-2 of the window: the three 700ns ties break on (shard, seq),
    # so seq 1 and 2 survive — deterministically.
    assert [(e["latency_ns"], e["seq"]) for e in exemplars] \
        == [(700, 1), (700, 2)]


def test_exemplar_pool_is_pruned_between_flushes():
    from repro.obs.telemetry import FleetTelemetry
    from repro.sim import Simulator

    sim = Simulator()
    fleet = FleetTelemetry(window_ns=10 ** 9, exemplars=2)
    collector = fleet.attach(sim, bed="bed0", shard=0)

    def driver():
        for seq in range(40):
            blame = RequestBlame(0, seq, seq, sim.now)
            yield 10
            collector.request_complete(10, blame=blame)

    sim.process(driver(), name="driver")
    sim.run()
    # Candidate pool prunes at 4 * k: never grows unbounded.
    assert len(collector._exemplars) <= 8
    records = fleet.finalize()
    fleet.close()
    assert [e["seq"] for e in exemplars_of(records)] == [0, 1]


def test_negative_exemplars_rejected():
    from repro.obs.telemetry import FleetTelemetry

    with pytest.raises(ValueError):
        FleetTelemetry(exemplars=-1)


# -- pool-wait histogram (satellite) ---------------------------------------


def test_pool_wait_histogram_in_stream_and_summary():
    scenario, fleet = _small_fleet()
    scenario.run()
    records = fleet.records
    waited = [r for r in records if r.get("pool_wait")]
    assert waited, "2-QP pools under 4 clients must queue"
    snap = waited[0]["pool_wait"]
    assert snap["count"] >= 1 and "p99" in snap and "max" in snap

    from repro.obs.telemetry import metric_value, summarize_records
    assert any(metric_value(r, "pool_wait_p99_ns") is not None
               for r in waited)
    summary = summarize_records(records)
    beds_with_wait = [s for s in summary.values() if s["pool_wait"]]
    assert beds_with_wait
    assert beds_with_wait[0]["pool_wait"]["p99"] >= 0
    assert all("exemplars" in s for s in summary.values())


def test_fleet_top_renders_pool_wait_column(tmp_path, capsys):
    import fleet_top

    scenario, fleet = _small_fleet(exemplars=2)
    scenario.run()
    path = tmp_path / "stream.jsonl"
    path.write_text(fleet.to_jsonl())
    assert fleet_top.main(["--input", str(path)]) == 0
    out = capsys.readouterr().out
    assert "pw p99" in out


# -- rollups: table, folded stacks, diff, registries -----------------------


def _synthetic_records():
    def exemplar(seq, shard, latency, slices):
        phases = {phase: 0 for phase in BLAME_PHASES}
        for phase, _shard, _queue, ns in slices:
            phases[phase] += ns
        return {"key": seq, "latency_ns": latency, "phases": phases,
                "seq": seq, "shard": shard, "slices": slices,
                "start_ns": 0}

    return [{
        "bed": "bed0", "window": 0, "requests": 2,
        "latency": {"count": 2, "sum": 300, "le_256": 1, "le_512": 1},
        "exemplars": [
            exemplar(0, 0, 200, [["pool_wait", 0, "pool", 150],
                                 ["service", 0, "kv", 50]]),
            exemplar(1, 1, 100, [["link_wire", 0, "rpc", 60],
                                 ["service", 0, "kv", 40]]),
        ],
    }]


def test_blame_table_and_folded():
    records = _synthetic_records()
    rows = blame_table(records)
    assert rows[0] == {"shard": 0, "queue": "pool", "phase": "pool_wait",
                       "ns": 150, "requests": 1}
    assert {row["ns"] for row in rows} == {150, 90, 60}
    kv = next(r for r in rows if r["queue"] == "kv")
    assert kv["ns"] == 90 and kv["requests"] == 2
    folded = folded_blame(records)
    assert "shard0;pool;pool_wait 150" in folded
    assert folded == sorted(folded)


def test_summarize_and_diff_blame():
    summary = summarize_blame(_synthetic_records())
    assert summary["exemplars"] == 2 and summary["requests"] == 2
    assert summary["exemplar_latency_sum_ns"] == 300
    assert summary["phases"]["pool_wait"]["mean_ns"] == 75.0
    assert summary["phases"]["service"]["share"] == round(90 / 300, 6)
    assert summary["shards"]["0"]["total_ns"] == 300
    assert summary["p99_ns"] is not None

    baseline = json.loads(json.dumps(summary))  # file round-trip shape
    baseline["phases"]["pool_wait"]["mean_ns"] = 25.0
    baseline["p99_ns"] = summary["p99_ns"] - 100
    diff = diff_blame(summary, baseline)
    assert diff["p99_delta_ns"] == 100
    assert diff["phases"][0]["phase"] == "pool_wait"
    assert diff["phases"][0]["delta_ns"] == 50.0


def test_blame_registries_openmetrics_round_trip():
    from repro.obs.metrics import parse_openmetrics, to_openmetrics_multi

    records = _synthetic_records()
    registries = blame_registries(records)
    assert set(registries) == {"shard0"}
    text = to_openmetrics_multi(registries, label="shard")
    assert 'blame_phase_ns_total{shard="shard0",key="pool_wait"} 150' \
        in text
    parsed = parse_openmetrics(text, labels={"shard": "shard0"})
    assert parsed["counters"]["blame_phase_ns"] == {
        "pool_wait": 150, "link_wire": 60, "service": 90}
    assert parsed["counters"]["blame_requests"]["service"] == 2


# -- tracer census: connection-plane spans and link hops -------------------


def test_trace_summary_censuses_conn_and_links(tmp_path):
    from repro.obs import load_trace, summarize_trace
    from repro.obs.inspect import render_summary
    from repro.obs.tracer import Tracer, export_merged_chrome

    scenario, _fleet = _small_fleet(exemplars=2)
    tracers = [Tracer(rig.sim, name=rig.shard.name)
               for rig in scenario.rigs]
    scenario.run()
    path = tmp_path / "fleet.trace.json"
    export_merged_chrome(tracers, path)
    for tracer in tracers:
        tracer.close()
    summary = summarize_trace(load_trace(str(path)))
    conn = summary["conn"]
    assert conn["pool_wait"] > 0
    assert conn["doorbell_batch"] > 0
    assert conn["cqe_demux"] > 0
    assert summary["links"], "fabric hops must census as link tracks"
    assert all("link:" in track for track in summary["links"])
    rendered = render_summary(load_trace(str(path)))
    assert "connection plane" in rendered
    assert "cross-shard links" in rendered


# -- CLIs ------------------------------------------------------------------


def _stream_path(tmp_path, exemplars=8):
    scenario, fleet = _small_fleet(exemplars=exemplars)
    scenario.run()
    path = tmp_path / "stream.jsonl"
    path.write_text(fleet.to_jsonl())
    return path


def test_tail_blame_cli_table_json_flame(tmp_path, capsys):
    import tail_blame

    path = _stream_path(tmp_path)
    json_path = tmp_path / "summary.json"
    flame_path = tmp_path / "blame.folded"
    assert tail_blame.main(["--input", str(path),
                            "--json", str(json_path),
                            "--flame", str(flame_path)]) == 0
    out = capsys.readouterr().out
    assert "tail_blame" in out and "pool_wait" in out
    summary = json.loads(json_path.read_text())
    assert summary["exemplars"] > 0
    assert set(summary["phases"]) == set(BLAME_PHASES)
    folded = flame_path.read_text().splitlines()
    assert folded and all(" " in line for line in folded)


def test_tail_blame_cli_gates_and_diff(tmp_path, capsys):
    import tail_blame

    path = _stream_path(tmp_path)
    json_path = tmp_path / "base.json"
    assert tail_blame.main(["--input", str(path), "--quiet",
                            "--json", str(json_path),
                            "--fail-if", "pool_wait>999999999"]) == 0
    assert tail_blame.main(["--input", str(path), "--quiet",
                            "--fail-if", "service>0.001"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
    assert tail_blame.main(["--input", str(path), "--quiet",
                            "--diff", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "+0" in out  # self-diff: every delta is zero

    budgets = tmp_path / "budgets.json"
    budgets.write_text(json.dumps(
        {"phase_mean_ns": {"doorbell_batch": 0.0001}}))
    assert tail_blame.main(["--input", str(path), "--quiet",
                            "--budgets", str(budgets)]) == 1


def test_tail_blame_cli_history_and_errors(tmp_path):
    import tail_blame

    path = _stream_path(tmp_path)
    history = tmp_path / "history.json"
    assert tail_blame.main(["--input", str(path), "--quiet",
                            "--history", str(history)]) == 0
    runs = json.loads(history.read_text())["runs"]
    assert "tail_blame" in runs[0]["figs"]
    assert any(key.endswith("_mean_ns")
               for key in runs[0]["figs"]["tail_blame"])

    # No exemplars in the stream -> actionable error, exit 2.
    bare_dir = tmp_path / "bare"
    bare_dir.mkdir()
    bare = _stream_path(bare_dir, exemplars=0)
    assert tail_blame.main(["--input", str(bare), "--quiet"]) == 2
    assert tail_blame.main(["--input",
                            str(tmp_path / "missing.jsonl")]) == 2
    assert tail_blame.main(["--input", str(path),
                            "--fail-if", "bogus>5"]) == 2


def test_tail_blame_ci_budgets_file():
    """The committed CI budget file parses and covers pool_wait."""
    import tail_blame

    budgets = tail_blame.load_budgets(
        str(REPO_ROOT / "ci" / "fleet_blame.json"))
    assert "pool_wait" in budgets and budgets["pool_wait"] > 0


def test_metrics_export_blame_mode(tmp_path, capsys):
    import metrics_export

    from repro.obs.metrics import parse_openmetrics

    path = _stream_path(tmp_path)
    assert metrics_export.main(["--blame", str(path)]) == 0
    text = capsys.readouterr().out
    parsed = parse_openmetrics(text, labels={"shard": "shard0"})
    assert "blame_phase_ns" in parsed["counters"]
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert metrics_export.main(["--blame", str(empty)]) == 2


# -- zero-cost guard -------------------------------------------------------


def test_obs_disabled_leaves_no_blame_state():
    assert not _obs.enabled
    scenario, _fleet = None, None
    from repro.bench.fleet import FleetScenario
    scenario = FleetScenario(2, 2, 2, 2, True, 2, 1000)
    scenario.run()
    for rig in scenario.rigs:
        if rig.batchers:
            assert all(b.blame is None for b in rig.batchers)
