"""Fleet telemetry plane: histogram algebra, windowing, SLO burn alerts.

Four pillars:

* **Histogram algebra** — the log-bucketed histogram must merge
  associatively and commutatively (``merge(a, b) == merge(b, a)``),
  round-trip through its snapshot form, and bound quantile error to
  one bucket of the exact order statistic — the properties cross-bed
  and cross-window aggregation silently relies on.
* **Window semantics** — collectors attribute samples to
  ``sim.now // window_ns`` windows, emit gap-free-but-sparse streams
  (idle windows are absent, not zero-filled), clamp queue depths at
  zero, and seal windows under :meth:`FleetTelemetry.flush` exactly
  when the global time floor proves no more samples can land.
* **Telemetry determinism on the cluster** — serial and sharded
  drives of the same cluster must emit **byte-identical** JSONL
  streams, and attaching telemetry must not perturb the run
  fingerprint.
* **SLO burn alerts** — a synthetic p99 breach must fire at a
  deterministic simulated timestamp naming the violating bed and
  queue, with the multi-window burn-rate arithmetic pinned down.
"""

import io
import json
import sys
from pathlib import Path

import pytest

from repro.obs.metrics import (Histogram, HistogramLayoutError,
                               MetricsRegistry, parse_openmetrics,
                               to_openmetrics_multi)
from repro.obs.telemetry import (BurnAlert, FleetTelemetry, SloRule,
                                 evaluate_slo, load_slo_rules,
                                 metric_value, summarize_records)
from repro import obs as _obs

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOLS = str(REPO_ROOT / "tools")
if TOOLS not in sys.path:
    sys.path.append(TOOLS)


# -- histogram algebra ----------------------------------------------------


def _hist(values, name=""):
    histogram = Histogram(name)
    for value in values:
        histogram.observe(value)
    return histogram


# A deterministic long-tailed sample set: mostly small, a few huge.
SAMPLES_A = [((i * 37) % 900) + 1 for i in range(400)]
SAMPLES_B = [((i * 101) % 5000) + 50 for i in range(300)]
SAMPLES_C = [10_000_000 + i * 999 for i in range(30)]


def test_merge_commutative():
    ab = _hist(SAMPLES_A).merge(_hist(SAMPLES_B))
    ba = _hist(SAMPLES_B).merge(_hist(SAMPLES_A))
    assert ab.snapshot() == ba.snapshot()


def test_merge_associative():
    left = _hist(SAMPLES_A).merge(
        _hist(SAMPLES_B).merge(_hist(SAMPLES_C)))
    right = _hist(SAMPLES_A).merge(
        _hist(SAMPLES_B)).merge(_hist(SAMPLES_C))
    assert left.snapshot() == right.snapshot()


def test_merge_equals_whole():
    """Observing everything in one histogram == merging the parts."""
    whole = _hist(SAMPLES_A + SAMPLES_B + SAMPLES_C)
    parts = _hist(SAMPLES_A).merge(_hist(SAMPLES_B)).merge(
        _hist(SAMPLES_C))
    assert whole.snapshot() == parts.snapshot()
    for fraction in (0.5, 0.99, 0.999):
        assert whole.quantile(fraction) == parts.quantile(fraction)


def test_snapshot_round_trip():
    histogram = _hist(SAMPLES_A + [0, 0, 1])
    rebuilt = Histogram.from_snapshot(histogram.snapshot())
    assert rebuilt.snapshot() == histogram.snapshot()
    assert rebuilt.quantile(0.99) == histogram.quantile(0.99)


def test_merge_rejects_mismatched_bucket_layout():
    narrow = _hist(SAMPLES_A)
    wide = _hist(SAMPLES_B)
    wide.counts = wide.counts + [0] * 8   # a differently-bucketed peer
    with pytest.raises(HistogramLayoutError):
        narrow.merge(wide)
    with pytest.raises(HistogramLayoutError):
        wide.merge(narrow)
    # The failed merge must not have mutated the receiver.
    assert narrow.snapshot() == _hist(SAMPLES_A).snapshot()


@pytest.mark.parametrize("buckets", [
    {"le_5": 1},          # 5 is not 2^b - 1
    {"le_-1": 1},         # negative upper bound
    {"le_x": 1},          # malformed key
    {str(1 << 80): 1},    # beyond the 64-bucket layout
    {"le_7": -3},         # negative count
])
def test_from_snapshot_rejects_foreign_layouts(buckets):
    with pytest.raises(HistogramLayoutError):
        Histogram.from_snapshot({"buckets": buckets, "count": 1,
                                 "sum": 1})


def test_layout_error_is_a_value_error():
    # Callers that predate the typed error still catch it.
    assert issubclass(HistogramLayoutError, ValueError)


@pytest.mark.parametrize("fraction", [0.5, 0.9, 0.99, 0.999])
def test_quantile_within_one_bucket_of_exact(fraction):
    """The reported quantile is the bucket upper bound of the exact
    order statistic — i.e. within one power-of-two bucket."""
    values = sorted(SAMPLES_A + SAMPLES_B + SAMPLES_C)
    histogram = _hist(values)
    rank = max(1, round(fraction * len(values)))
    exact = values[rank - 1]
    reported = histogram.quantile(fraction)
    upper = (1 << exact.bit_length()) - 1 if exact else 0
    assert reported == upper
    assert exact <= reported <= 2 * exact


# -- collector windowing (driven through a stub simulator) ----------------


class _StubSim:
    """now + metrics + telemetry slot: all a collector reads."""

    def __init__(self):
        self.now = 0
        self.telemetry = None
        self.metrics = MetricsRegistry()


class _WQ:
    def __init__(self, name, kind="send"):
        self.name = name
        self.kind = kind


class _CQ:
    def __init__(self, name, entries=0):
        self.name = name
        self._entries = [None] * entries


@pytest.fixture
def fleet():
    fleet = FleetTelemetry(window_ns=1_000)
    yield fleet
    fleet.close()
    assert not _obs.enabled


def test_attach_rejects_double_attach(fleet):
    sim = _StubSim()
    fleet.attach(sim, bed="b")
    with pytest.raises(RuntimeError):
        fleet.attach(sim, bed="again")


def test_windows_sparse_not_zero_filled(fleet):
    sim = _StubSim()
    collector = fleet.attach(sim, bed="b")
    sim.now = 100
    collector.request_complete(40, key="k")
    sim.now = 5_500  # windows 1-4 idle -> no records for them
    collector.request_complete(40, key="k")
    records = fleet.finalize()
    assert [record["window"] for record in records] == [0, 5]
    assert records[0]["keys"] == {"k": 1}
    assert records[0]["latency"]["p50"] == 63  # bucket upper of 40


def test_depth_clamped_and_growth_signed(fleet):
    sim = _StubSim()
    collector = fleet.attach(sim, bed="b")
    sq = _WQ("b-sq")
    for _ in range(3):
        collector.on_post(sq)
    # A managed recycled ring can fetch past posted_count: clamp at 0.
    collector.on_fetch(sq, 5)
    sim.now = 1_200
    collector.on_fetch(sq, 1)
    sim.now = 2_100
    collector.on_post(sq)
    records = fleet.finalize()
    w0, w1, w2 = records
    assert w0["queues"] == {
        "sq_depth_max": 3, "sq_hot": "b-sq", "sq_depth_end": 0,
        "sq_growth": 0, "rq_depth_max": 0, "cq_depth_max": 0,
        "cq_hot": None}
    assert w1["queues"]["sq_depth_max"] == 0  # clamped, not negative
    assert w2["queues"]["sq_growth"] == 1


def test_flush_seals_exactly_below_floor(fleet):
    sim = _StubSim()
    collector = fleet.attach(sim, bed="b")
    sink = io.StringIO()
    fleet.sink = sink
    collector.request_complete(10)
    sim.now = 2_500
    collector.request_complete(10)
    # t_min 2_000 proves windows < 2 final: window 0 emits, the open
    # window 2 must survive (more samples can still land in it).
    emitted = fleet.flush(t_min=2_000)
    assert [record["window"] for record in emitted] == [0]
    sim.now = 2_900
    collector.request_complete(10)
    fleet.finalize()
    assert [record["window"] for record in fleet.records] == [0, 2]
    assert fleet.records[1]["requests"] == 2
    # The incrementally written sink matches the batch re-serialization.
    assert sink.getvalue() == fleet.to_jsonl()


def test_cqe_and_pu_accounting(fleet):
    sim = _StubSim()
    collector = fleet.attach(sim, bed="b")
    sim.now = 150
    collector.on_cqe(_CQ("b-cq", entries=2))
    collector.on_pu(_WQ("b-sq"), 420)
    collector.on_dma(None, 4096)
    (record,) = fleet.finalize()
    assert record["queues"]["cq_depth_max"] == 3  # 2 queued + delivered
    assert record["queues"]["cq_hot"] == "b-cq"
    assert record["pu_busy_ns"] == 420
    assert record["util"] == 0.42
    assert record["dma_bytes"] == 4096


def test_summarize_merges_windows(fleet):
    sim = _StubSim()
    collector = fleet.attach(sim, bed="b")
    collector.request_complete(100, key="hot")
    sim.now = 1_100
    collector.request_complete(9_000, key="hot")
    collector.request_complete(100, key="cold")
    records = fleet.finalize()
    summary = summarize_records(records)["b"]
    assert summary["requests"] == 3
    assert summary["windows"] == 2
    assert summary["keys"] == {"hot": 2, "cold": 1}
    whole = _hist([100, 9_000, 100])
    assert summary["latency"]["p99"] == whole.quantile(0.99)


def test_metric_value_dispatch():
    record = {"requests": 0, "latency": None,
              "queues": {"sq_depth_max": 7}, "util": 0.5}
    assert metric_value(record, "p99_ns") is None
    assert metric_value(record, "sq_depth_max") == 7
    assert metric_value(record, "util") == 0.5
    record["latency"] = {"p99": 8191, "max": 9000}
    assert metric_value(record, "p99_ns") == 8191
    assert metric_value(record, "latency_max_ns") == 9000


# -- SLO rules and burn-rate alerts ---------------------------------------


def test_slo_rule_validation():
    with pytest.raises(ValueError):
        SloRule("r", "p99_ns")  # neither bound
    with pytest.raises(ValueError):
        SloRule("r", "p99_ns", max=1, min=1)  # both bounds
    with pytest.raises(ValueError):
        SloRule("r", "p99_ns", max=1, budget=0)
    with pytest.raises(ValueError):
        SloRule("r", "p99_ns", max=1, long_windows=2, short_windows=3)


def test_load_slo_rules_forms(tmp_path):
    spec = {"_comment": "ignored", "rules": [
        {"name": "tail", "metric": "p99_ns", "max": 100}]}
    for source in (json.dumps(spec), json.dumps(spec["rules"]), spec):
        (rule,) = load_slo_rules(source)
        assert (rule.name, rule.metric, rule.max) == ("tail", "p99_ns",
                                                      100)
    path = tmp_path / "rules.json"
    path.write_text(json.dumps(spec))
    (rule,) = load_slo_rules(str(path))
    assert rule.name == "tail"
    assert rule.to_dict()["max"] == 100


def test_burn_alert_fires_at_deterministic_timestamp(fleet):
    """Synthetic p99 breach: healthy for four windows, then sustained
    badness — the alert lands at the first window where both burn
    spans saturate, pinned to that window's end timestamp."""
    sim = _StubSim()
    collector = fleet.attach(sim, bed="bed-x")
    sq = _WQ("bed-x-sq")
    for window in range(8):
        sim.now = window * 1_000 + 500
        collector.on_post(sq)
        collector.on_fetch(sq, 1)
        latency = 50 if window < 4 else 5_000  # breach from window 4
        collector.request_complete(latency)
    sim.now = 9_000
    records = fleet.finalize()

    rule = SloRule("tail", "p99_ns", max=100, budget=0.5,
                   long_windows=4, short_windows=1)
    alerts = evaluate_slo(records, [rule])
    assert len(alerts) == 1
    alert = alerts[0]
    # Windows 4 and 5 bad -> long burn (2/4)/0.5 first reaches 1.0 at
    # window 5, whose end is the deterministic alert instant.
    assert alert.window == 5
    assert alert.at_ns == 6_000
    assert alert.bed == "bed-x"
    assert alert.queue == "bed-x-sq"
    assert alert.value == 8191  # bucket upper of the 5000ns samples
    assert alert.burn_long == 1.0
    assert alert.burn_short == 2.0
    text = alert.describe()
    for token in ("tail", "bed-x", "bed-x-sq", "t=6000ns", "p99_ns"):
        assert token in text

    # first_only=False keeps every later firing window too.
    all_alerts = evaluate_slo(records, [rule], first_only=False)
    assert [a.window for a in all_alerts] == [5, 6, 7]
    assert all(isinstance(a, BurnAlert) for a in all_alerts)


def test_gap_windows_count_good(fleet):
    sim = _StubSim()
    collector = fleet.attach(sim, bed="b")
    collector.request_complete(5_000)  # bad window 0
    sim.now = 4_500
    collector.request_complete(5_000)  # bad window 4, gap 1-3 good
    records = fleet.finalize()
    strict = SloRule("strict", "p99_ns", max=100, budget=1.0,
                     long_windows=2, short_windows=2)
    # Window 0 alone can fire (spans clamp to elapsed), but the gap
    # then starves the short span: no alert at windows 1-4.
    alerts = evaluate_slo(records, [strict], first_only=False)
    assert [alert.window for alert in alerts] == [0]


# -- OpenMetrics per-bed labels (satellite) -------------------------------


def _registry(scale):
    registry = MetricsRegistry()
    registry.counter("rpc.calls")["get"] = 10 * scale
    histogram = registry.histogram("rpc.latency_ns")
    for value in (100 * scale, 2_000 * scale):
        histogram.observe(value)
    return registry


def test_openmetrics_label_round_trip():
    registry = _registry(1)
    text = registry.to_openmetrics(labels={"bed": "b0"})
    assert 'bed="b0"' in text
    parsed = parse_openmetrics(text, labels={"bed": "b0"})
    assert parsed["counters"]["rpc_calls"] == {"get": 10}
    snap = registry.histogram("rpc.latency_ns").snapshot()
    assert parsed["histograms"]["rpc_latency_ns"]["buckets"] == \
        snap["buckets"]
    # The filter actually filters: a different bed sees nothing.
    assert parse_openmetrics(text, labels={"bed": "b1"}) == {
        "counters": {}, "gauges": {}, "histograms": {}}


def test_openmetrics_multi_bed_export():
    text = to_openmetrics_multi({"b0": _registry(1), "b1": _registry(3)})
    assert text.endswith("# EOF\n")
    assert text.count("# EOF") == 1
    for bed, scale in (("b0", 1), ("b1", 3)):
        parsed = parse_openmetrics(text, labels={"bed": bed})
        assert parsed["counters"]["rpc_calls"] == {"get": 10 * scale}


# -- cluster end-to-end: byte-identity + fingerprint neutrality -----------


def _drive_cluster(serial, telemetry):
    from repro.bench.cluster import build_cluster

    scenario = build_cluster(num_beds=4, clients_per_bed=1,
                             requests_per_client=8, telemetry_path="")
    fleet = scenario.attach_telemetry() if telemetry else None
    fingerprint, measures = scenario.run(serial=serial)
    stream = fleet.to_jsonl() if fleet else None
    return fingerprint, measures, stream


def test_cluster_serial_vs_sharded_stream_byte_identical():
    fp_off, _, _ = _drive_cluster(serial=False, telemetry=False)
    fp_sharded, m_sharded, sharded = _drive_cluster(serial=False,
                                                    telemetry=True)
    fp_serial, m_serial, serial = _drive_cluster(serial=True,
                                                 telemetry=True)
    assert fp_off == fp_sharded == fp_serial
    assert sharded == serial
    assert sharded  # carries actual records
    assert m_sharded["telemetry_records"] == \
        m_serial["telemetry_records"] > 0
    records = [json.loads(line) for line in sharded.splitlines()]
    assert {record["bed"] for record in records} == \
        {f"bed{i}" for i in range(4)}
    # The concatenated stream is globally sorted in canonical order.
    keys = [(record["window"], record["shard"]) for record in records]
    assert keys == sorted(keys)
    assert not _obs.enabled  # scenario.run closed the fleet


def test_cluster_tight_slo_breach_is_deterministic():
    _, _, stream = _drive_cluster(serial=False, telemetry=True)
    records = [json.loads(line) for line in stream.splitlines()]
    rule = SloRule("tight", "p99_ns", max=100, budget=0.25,
                   long_windows=3, short_windows=1)
    alerts = evaluate_slo(records, [rule])
    assert alerts, "tight rule must breach on a busy cluster"
    first = alerts[0]
    window_ns = records[0]["end_ns"] - records[0]["start_ns"]
    assert first.at_ns == (first.window + 1) * window_ns
    assert first.bed == "bed0"
    assert first.queue and "sq" in first.queue
    # Re-deriving from a fresh run yields the same alert instant.
    _, _, stream2 = _drive_cluster(serial=False, telemetry=True)
    alerts2 = evaluate_slo(
        [json.loads(line) for line in stream2.splitlines()], [rule])
    assert [a.to_dict() for a in alerts] == \
        [a.to_dict() for a in alerts2]


def test_committed_ci_rules_clean_on_healthy_cluster():
    rules = load_slo_rules(str(REPO_ROOT / "ci" / "cluster_slo.json"))
    assert len(rules) >= 3
    _, _, stream = _drive_cluster(serial=False, telemetry=True)
    records = [json.loads(line) for line in stream.splitlines()]
    assert evaluate_slo(records, rules) == []


# -- fleet_top CLI (satellite) --------------------------------------------


def _write_stream(tmp_path):
    _, _, stream = _drive_cluster(serial=False, telemetry=True)
    path = tmp_path / "stream.jsonl"
    path.write_text(stream)
    return path


def test_fleet_top_offline_render_and_slo(tmp_path, capsys):
    import fleet_top

    path = _write_stream(tmp_path)
    assert fleet_top.main(["--input", str(path)]) == 0
    out = capsys.readouterr().out
    assert "fleet_top" in out and "bed0" in out

    rules = tmp_path / "tight.json"
    rules.write_text(json.dumps([{"name": "tight", "metric": "p99_ns",
                                  "max": 100, "budget": 0.25,
                                  "long_windows": 3,
                                  "short_windows": 1}]))
    assert fleet_top.main(["--input", str(path), "--quiet",
                           "--slo", str(rules),
                           "--fail-on-burn"]) == 1
    out = capsys.readouterr().out
    assert "SLO burn: rule 'tight'" in out

    clean = REPO_ROOT / "ci" / "cluster_slo.json"
    assert fleet_top.main(["--input", str(path), "--quiet",
                           "--slo", str(clean),
                           "--fail-on-burn"]) == 0


def test_fleet_top_error_paths(tmp_path):
    import fleet_top

    assert fleet_top.main(["--input", str(tmp_path / "missing.jsonl"),
                           "--quiet"]) == 2
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert fleet_top.main(["--input", str(empty), "--quiet"]) == 2
    with pytest.raises(SystemExit):
        fleet_top.main(["--input", str(empty), "--window", "1000"])


def test_fleet_top_runs_cluster_and_exports(tmp_path, capsys):
    import fleet_top

    out_jsonl = tmp_path / "run.jsonl"
    out_json = tmp_path / "summary.json"
    assert fleet_top.main(["--beds", "4", "--requests", "8", "--quiet",
                           "--jsonl", str(out_jsonl),
                           "--json", str(out_json)]) == 0
    records = [json.loads(line)
               for line in out_jsonl.read_text().splitlines()]
    assert records and records[0]["bed"] == "bed0"
    summary = json.loads(out_json.read_text())
    assert set(summary["beds"]) == {f"bed{i}" for i in range(4)}
    assert not _obs.enabled


# -- bench_history p99 column (satellite) ---------------------------------


def test_bench_history_records_p99(tmp_path):
    from bench_history import append_entry, load_history, render_history

    path = tmp_path / "history.json"
    append_entry(path, events_per_sec={"cluster": 1_000_000},
                 p99_ns={"cluster": 8191}, sha="aaaa", when="t0")
    append_entry(path, events_per_sec={"cluster": 1_100_000},
                 sha="bbbb", when="t1")  # schema-1 entry, no tails
    history = load_history(path)
    assert history["runs"][0]["p99_ns"] == {"cluster": 8191}
    assert "p99_ns" not in history["runs"][1]
    table = render_history(history)
    assert "cluster p99" in table
    assert "8,191ns" in table
