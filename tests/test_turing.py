"""Appendix A tests: mov emulation and Turing machines on the NIC."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.redn import RednContext
from repro.redn.movmachine import (
    AddConst,
    AddReg,
    MovImm,
    MovLoad,
    MovMachine,
    MovStore,
)
from repro.redn.turing import (
    BINARY_INCREMENT,
    BUSY_BEAVER_3,
    PARITY_MACHINE,
    NicTuringMachine,
    run_reference,
)


def make_machine(lo, **kwargs):
    ctx = RednContext(lo.nic, lo.pd, owner="mov-test")
    return MovMachine(ctx, **kwargs)


class TestMovOps:
    def test_mov_immediate(self, lo):
        machine = make_machine(lo)
        lo.run(machine.execute([MovImm(0, 0xDEADBEEF)]))
        assert machine.read_reg(0) == 0xDEADBEEF

    def test_mov_indirect_load(self, lo):
        """mov r0, [r1] — Table 7's indirect mode."""
        machine = make_machine(lo)
        cell = machine.alloc_ram(8)
        machine.write_ram(cell, 777)
        machine.write_reg(1, cell)
        lo.run(machine.execute([MovLoad(0, 1)]))
        assert machine.read_reg(0) == 777

    def test_mov_indirect_store(self, lo):
        """mov [r0], r1."""
        machine = make_machine(lo)
        cell = machine.alloc_ram(8)
        machine.write_reg(0, cell)
        machine.write_reg(1, 0xCAFE)
        lo.run(machine.execute([MovStore(0, 1)]))
        assert machine.read_ram(cell) == 0xCAFE

    def test_indexed_load_via_add(self, lo):
        """mov r0, [r1 + r2] — Table 7's indexed mode: the offset is
        ADDed into the load's source address at runtime."""
        machine = make_machine(lo)
        array = machine.alloc_ram(32)
        machine.write_ram(array + 16, 4242)
        machine.write_reg(1, array)
        machine.write_reg(2, 16)
        lo.run(machine.execute([
            MovImm(3, 0), AddReg(3, 1), AddReg(3, 2),   # r3 = r1 + r2
            MovLoad(0, 3),                              # r0 = [r3]
        ]))
        assert machine.read_reg(0) == 4242

    def test_add_const(self, lo):
        machine = make_machine(lo)
        machine.write_reg(0, 40)
        lo.run(machine.execute([AddConst(0, 2)]))
        assert machine.read_reg(0) == 42

    def test_add_reg(self, lo):
        machine = make_machine(lo)
        machine.write_reg(0, 30)
        machine.write_reg(1, 12)
        lo.run(machine.execute([AddReg(0, 1)]))
        assert machine.read_reg(0) == 42

    def test_add_wraps_modulo_2_64(self, lo):
        """Negative deltas work as wrapping u64 adds (head-left moves)."""
        machine = make_machine(lo)
        machine.write_reg(0, 100)
        lo.run(machine.execute([AddConst(0, -8)]))
        assert machine.read_reg(0) == 92

    def test_op_sequence_is_ordered(self, lo):
        """Doorbell ordering makes dependent chains correct: each op
        sees its predecessor's memory effects."""
        machine = make_machine(lo)
        cell = machine.alloc_ram(8)
        machine.write_ram(cell, 5)
        machine.write_reg(1, cell)
        lo.run(machine.execute([
            MovLoad(0, 1),        # r0 = 5
            AddConst(0, 1),       # r0 = 6
            MovStore(1, 0),       # [cell] = 6
            MovLoad(2, 1),        # r2 = 6
        ]))
        assert machine.read_reg(2) == 6

    def test_register_bounds_checked(self, lo):
        machine = make_machine(lo, num_registers=4)
        with pytest.raises(Exception):
            machine.reg_addr(4)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=10, deadline=None)
    def test_property_add_matches_python(self, a, b):
        from conftest import LoopbackRig
        lo = LoopbackRig()
        machine = make_machine(lo)
        machine.write_reg(0, a)
        machine.write_reg(1, b)
        lo.run(machine.execute([AddReg(0, 1)]))
        assert machine.read_reg(0) == (a + b) % (1 << 64)


class TestNicTuringMachine:
    def _run(self, lo, spec, tape, max_steps=200):
        ctx = RednContext(lo.nic, lo.pd, owner="tm-test")
        tm = NicTuringMachine(ctx, spec)
        tm.load_tape(tape)
        steps = lo.run(tm.run(max_steps=max_steps))
        return tm, steps

    def test_binary_increment_matches_reference(self, lo):
        tape = ["1", "1", "0", "1"]      # LSB-first: 11 -> 12
        tm, steps = self._run(lo, BINARY_INCREMENT, tape)
        reference, ref_steps, halted = run_reference(
            BINARY_INCREMENT, tape)
        assert halted and tm.halted
        assert steps == ref_steps
        assert tm.read_tape(0, len(reference)) == reference

    def test_increment_with_carry_chain(self, lo):
        tape = ["1", "1", "1"]           # 7 -> 8 = 0001 (LSB-first)
        tm, _steps = self._run(lo, BINARY_INCREMENT, tape)
        assert tm.read_tape(0, 4) == ["0", "0", "0", "1"]

    def test_parity_machine(self, lo):
        tm, _ = self._run(lo, PARITY_MACHINE, ["1", "0", "1", "1"])
        assert tm.halted
        assert tm.read_tape(4, 1) == ["O"]

    def test_busy_beaver_3_halts_with_six_ones(self, lo):
        """A machine with left AND right moves, fully NIC-executed."""
        tm, steps = self._run(lo, BUSY_BEAVER_3, [])
        assert tm.halted
        assert steps == 13
        window = tm.read_tape(-5, 10)
        assert window.count("1") == 6

    def test_nic_matches_reference_on_random_tapes(self, lo):
        import random
        rng = random.Random(7)
        for _trial in range(3):
            tape = [rng.choice(["0", "1"]) for _ in range(5)]
            tm, steps = self._run(lo, BINARY_INCREMENT, list(tape))
            reference, ref_steps, halted = run_reference(
                BINARY_INCREMENT, tape)
            assert halted
            assert steps == ref_steps
            assert tm.read_tape(0, len(reference)) == reference

    def test_step_budget_respected(self, lo):
        tm, steps = self._run(lo, BUSY_BEAVER_3, [], max_steps=5)
        assert steps == 5
        assert not tm.halted

    def test_all_computation_happens_on_nic(self, lo):
        """The host never reads the tape mid-run: verb counts prove the
        NIC did the work (loads/stores/adds per step)."""
        ctx = RednContext(lo.nic, lo.pd, owner="tm-audit")
        tm = NicTuringMachine(ctx, BINARY_INCREMENT)
        tm.load_tape(["1", "1"])
        before = lo.nic.stats.get("total_wrs", 0)
        lo.run(tm.run(max_steps=50))
        executed = lo.nic.stats.get("total_wrs", 0) - before
        # 11 ops/step, most compiling to 1-2 WRs each.
        assert executed >= 11 * 3
