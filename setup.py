"""Setup shim: enables legacy editable installs where the offline
environment lacks the ``wheel`` package required by PEP-517 builds."""

from setuptools import setup

setup()
