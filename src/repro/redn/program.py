"""RedN program plumbing: chain queues, WR handles, server context.

A RedN program is not an AST — it is a set of *work queues filled with
bytes*. The classes here manage exactly that:

* :class:`RednContext` — the server-side environment (§3.5 "Offload
  setup"): a protection domain, scratch allocations, and *code regions*
  — WQ rings registered for RDMA so the program can modify itself.
* :class:`ChainQueue` — one send queue used as chain storage, wrapped
  with its loopback QP and its code-region MR. Worker queues are
  *managed* (doorbell ordering, §3.1); control queues holding the
  static WAIT/ENABLE skeleton are normal-mode (they are never
  modified, so they may be prefetched).
* :class:`WrRef` — a handle to one posted WR: its index, its slot
  address, and per-field addresses. Field addresses are what the rest
  of the program aims CAS/WRITE/READ-scatter operations at.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from .. import obs as _obs
from ..memory.dram import Allocation, HostMemory
from ..memory.region import AccessFlags, MemoryRegion, ProtectionDomain
from ..nic.qp import QueuePair
from ..nic.queue import CompletionQueue, WorkQueue
from ..nic.rnic import RNIC
from ..nic.wqe import WQE_SLOT_SIZE, Wqe, field_location
from ..net.node import OsProcess

__all__ = ["RednContext", "ChainQueue", "WrRef", "ProgramError"]


class ProgramError(Exception):
    """Malformed RedN program construction."""


class WrRef:
    """Handle to a posted WR inside a :class:`ChainQueue`."""

    __slots__ = ("queue", "wr_index", "slot_cursor", "wqe", "tag",
                 "slot_addr", "intended_opcode", "ir_op")

    def __init__(self, queue: "ChainQueue", wr_index: int,
                 slot_cursor: int, wqe: Wqe, tag: str = ""):
        self.queue = queue
        self.wr_index = wr_index
        self.slot_cursor = slot_cursor
        self.wqe = wqe          # the host-side template (setup-time copy)
        self.tag = tag
        self.ir_op = None       # back-pointer set by the IR linker
        # Ring geometry is fixed at post time, so the slot address never
        # changes; programs aim thousands of field addresses at it.
        self.slot_addr = queue.wq.slot_addr(slot_cursor)

    def __repr__(self) -> str:
        return (f"<WrRef {self.queue.name}[{self.wr_index}] "
                f"op={self.wqe.opcode:#x} tag={self.tag}>")

    def field_addr(self, field: str) -> int:
        """Host address of one WQE field — a self-modification target."""
        offset, _width = field_location(field)
        return self.slot_addr + offset

    def field_width(self, field: str) -> int:
        return field_location(field)[1]

    # -- setup-time host patching (the CPU preparing code, not the NIC) --

    def poke(self, field: str, value: int) -> None:
        offset, width = field_location(field)
        self.queue.memory.write_uint(self.slot_addr + offset, value, width)

    def peek(self, field: str) -> int:
        offset, width = field_location(field)
        return self.queue.memory.read_uint(self.slot_addr + offset, width)

    def snapshot_bytes(self, length: Optional[int] = None) -> bytes:
        """Current ring bytes of this WQE (template images for restores)."""
        length = length if length is not None else WQE_SLOT_SIZE
        return self.queue.memory.read(self.slot_addr, length)

    # SGE entries live in follow-on slots: 4 per slot, 16 bytes each.

    def sge_addr_location(self, index: int) -> int:
        """Host address of scatter entry ``index``'s addr field."""
        if index >= len(self.wqe.sges):
            raise ProgramError(f"SGE {index} outside {self!r}")
        slot = 1 + index // 4
        return (self.queue.wq.slot_addr(self.slot_cursor + slot)
                + (index % 4) * 16)

    def poke_sge(self, index: int, addr: int,
                 length: Optional[int] = None) -> None:
        """Setup-time patch of one scatter entry (addr and optionally
        length). The SGE count is fixed at post time — only targets may
        be re-aimed, so ring slot geometry never changes."""
        if index >= len(self.wqe.sges):
            raise ProgramError(f"{self!r} has no SGE {index}")
        location = self.sge_addr_location(index)
        self.queue.memory.write_uint(location, addr, 8)
        if length is not None:
            self.queue.memory.write_uint(location + 8, length, 4)


class ChainQueue:
    """A send queue holding chain WRs, plus its code-region MR."""

    def __init__(self, ctx: "RednContext", managed: bool, slots: int,
                 name: str, qp: Optional[QueuePair] = None,
                 port_index: int = 0):
        self.ctx = ctx
        self.name = name
        self.managed = managed
        if qp is None:
            qp, peer = ctx.create_loopback_pair(
                managed_send=managed, send_slots=slots, name=name,
                port_index=port_index)
            self._peer = peer
        else:
            self._peer = qp.peer
        self.qp = qp
        self.wq: WorkQueue = qp.send_wq
        # Register the ring as a code region so chain verbs (running on
        # loopback QPs in the same PD) may rewrite it.
        self.code_mr: MemoryRegion = ctx.pd.register(
            self.wq.ring, access=AccessFlags.ALL)
        if _obs.enabled:
            tracer = ctx.nic.sim.tracer
            if tracer is not None:
                tracer.annotate_region(ctx.memory, self.wq.ring.addr,
                                       self.wq.ring.size,
                                       f"code:{name}")
        self.refs: List[WrRef] = []
        #: Signaled completions expected on this queue's CQ after each
        #: posted WR — the numbers WAIT thresholds are computed from.
        self.signaled_posted = 0

    def __repr__(self) -> str:
        return f"<ChainQueue {self.name} wrs={len(self.refs)}>"

    @property
    def memory(self) -> HostMemory:
        return self.ctx.memory

    @property
    def cq(self) -> CompletionQueue:
        return self.wq.cq

    @property
    def wq_num(self) -> int:
        return self.wq.wq_num

    @property
    def cq_num(self) -> int:
        return self.cq.cq_num

    @property
    def rkey(self) -> int:
        return self.code_mr.rkey

    def post(self, wqe: Wqe, tag: str = "",
             ring_doorbell: Optional[bool] = None) -> WrRef:
        """Post a chain WR; managed queues default to no doorbell."""
        slot_cursor = self.wq._post_slot_cursor
        wr_index = self.wq.post(wqe, ring_doorbell=ring_doorbell)
        ref = WrRef(self, wr_index, slot_cursor, wqe, tag=tag)
        self.refs.append(ref)
        if wqe.signaled:
            self.signaled_posted += 1
        return ref

    def doorbell(self, up_to: Optional[int] = None) -> None:
        self.wq.doorbell(up_to=up_to)


class RednContext:
    """Server-side RedN environment: PD, scratch, queues, data regions."""

    _ids = itertools.count()

    def __init__(self, nic: RNIC, pd: ProtectionDomain,
                 process: Optional[OsProcess] = None,
                 owner: Optional[str] = None, name: str = ""):
        if not nic.model.supports_wait_enable:
            # §6: Intel-class RNICs lack WAIT; a validity bit can mimic
            # ENABLE but pre-posted chains cannot be client-triggered
            # without another PCIe device ringing the doorbell. The
            # paper leaves that workaround as future work; so do we.
            raise ProgramError(
                f"{nic.model.name} lacks WAIT/ENABLE cross-channel "
                f"verbs; RedN programs require them (paper §4/§6)")
        self.nic = nic
        self.pd = pd
        self.process = process
        if owner is not None:
            self.owner = owner
        elif process is not None:
            self.owner = process.owner_tag
        else:
            self.owner = "redn"
        self.name = name or f"redn{next(self._ids)}"
        self._queue_counter = itertools.count()

    def __repr__(self) -> str:
        return f"<RednContext {self.name} on {self.nic.name}>"

    @property
    def memory(self) -> HostMemory:
        return self.nic.memory

    @property
    def sim(self):
        return self.nic.sim

    # -- resource creation -------------------------------------------------

    def create_loopback_pair(self, **kwargs):
        if self.process is not None:
            return self.process.create_loopback_pair(self.pd, **kwargs)
        kwargs.setdefault("owner", self.owner)
        return self.nic.create_loopback_pair(self.pd, **kwargs)

    def alloc(self, size: int, label: str = "") -> Allocation:
        if self.process is not None:
            return self.process.alloc(size, label=label)
        return self.memory.alloc(size, owner=self.owner, label=label)

    def register(self, allocation: Allocation,
                 access: int = AccessFlags.ALL) -> MemoryRegion:
        return self.pd.register(allocation, access=access)

    def alloc_registered(self, size: int, label: str = "",
                         access: int = AccessFlags.ALL):
        allocation = self.alloc(size, label=label)
        return allocation, self.register(allocation, access=access)

    # -- queue factories ------------------------------------------------------

    def control_queue(self, slots: int = 256, name: str = "",
                      port_index: int = 0) -> ChainQueue:
        """Normal-mode queue for the static WAIT/ENABLE skeleton."""
        name = name or f"{self.name}-ctl{next(self._queue_counter)}"
        return ChainQueue(self, managed=False, slots=slots, name=name,
                          port_index=port_index)

    def worker_queue(self, slots: int = 256, name: str = "",
                     port_index: int = 0) -> ChainQueue:
        """Managed (doorbell-ordered) queue for modifiable chain WRs."""
        name = name or f"{self.name}-wrk{next(self._queue_counter)}"
        return ChainQueue(self, managed=True, slots=slots, name=name,
                          port_index=port_index)

    def adopt_client_queue(self, qp: QueuePair, name: str = "") -> ChainQueue:
        """Wrap a client-facing QP's managed send queue as chain storage.

        Response templates live here: when a CAS flips one to a live
        WRITE/WRITE_IMM, the payload flows over the client connection.
        """
        if not qp.send_wq.managed:
            raise ProgramError(
                "client-facing send queue must be managed for RedN use")
        name = name or f"{self.name}-cli{next(self._queue_counter)}"
        return ChainQueue(self, managed=True, slots=0, name=name, qp=qp)
