"""RedN: self-modifying RDMA programs — the paper's contribution."""

from .builder import ConstructCost, IfRefs, ProgramBuilder
from .constructs import WQE_COUNT_ADD_DELTA, BreakImage, RecycledLoop
from .program import ChainQueue, ProgramError, RednContext, WrRef

__all__ = [
    "BreakImage",
    "ChainQueue",
    "ConstructCost",
    "IfRefs",
    "ProgramBuilder",
    "ProgramError",
    "RecycledLoop",
    "RednContext",
    "WQE_COUNT_ADD_DELTA",
    "WrRef",
]
