"""Offload setup and triggering (paper §3.5, "Offload setup" / Fig 3).

The deployment story the paper describes:

1. A client opens an RDMA connection; the server builds per-client
   managed WQs holding the offload program (code region) and registers
   the data region.
2. The client *triggers* the offload with a plain two-sided SEND — no
   rkeys to server memory, which is the security argument of §3.5. The
   SEND's payload is scattered by a pre-posted RECV directly into WQE
   fields (argument injection).
3. The program executes on the server NIC and answers with a
   WRITE_IMM into a client-registered response buffer, consuming a
   client-posted RECV so the client gets a CQE.

:class:`OffloadConnection` wires the QPs (optionally several per client
— extra response lanes for RedN-Parallel); :class:`OffloadClient` is
the host-side trigger/response helper with timeout support (a miss
produces no response WRITE, by design of the conditional chains).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from .. import obs as _obs
from ..ibv.api import VerbsContext
from ..ibv.wr import wr_recv, wr_send
from ..memory.region import AccessFlags, ProtectionDomain
from ..nic.qp import QueuePair
from ..nic.rnic import RNIC
from ..sim.core import Simulator
from .program import RednContext

__all__ = ["OffloadConnection", "OffloadClient", "CallResult"]


class OffloadConnection:
    """Server<->client QP wiring for one offloaded service client."""

    def __init__(self, server_ctx: RednContext, client_nic: RNIC,
                 client_pd: ProtectionDomain, num_lanes: int = 1,
                 response_capacity: int = 256 * 1024,
                 recv_slots: int = 1024, send_slots: int = 1024,
                 client_recv_slots: int = 1024,
                 managed_recv: bool = False,
                 name: str = "conn", server_port: int = 0):
        self.server_ctx = server_ctx
        self.client_nic = client_nic
        self.client_pd = client_pd
        self.name = name
        self.server_qps: List[QueuePair] = []
        self.client_qps: List[QueuePair] = []

        client_recv_cq = client_nic.create_cq(name=f"{name}-crcq")
        for lane in range(num_lanes):
            if server_ctx.process is not None:
                server_qp = server_ctx.process.create_qp(
                    server_ctx.pd, managed_send=True,
                    managed_recv=managed_recv,
                    recv_slots=recv_slots, send_slots=send_slots,
                    port_index=server_port, name=f"{name}-s{lane}")
            else:
                server_qp = server_ctx.nic.create_qp(
                    server_ctx.pd, managed_send=True,
                    managed_recv=managed_recv,
                    recv_slots=recv_slots, send_slots=send_slots,
                    owner=server_ctx.owner,
                    port_index=server_port, name=f"{name}-s{lane}")
            client_qp = client_nic.create_qp(
                client_pd, recv_cq=client_recv_cq,
                recv_slots=client_recv_slots, name=f"{name}-c{lane}")
            server_qp.connect(client_qp)
            self.server_qps.append(server_qp)
            self.client_qps.append(client_qp)

        # Client-registered response buffer the armed WRITE_IMMs target.
        self.response_alloc = client_nic.memory.alloc(
            response_capacity, owner="client", label=f"{name}-resp")
        self.response_mr = client_pd.register(
            self.response_alloc, access=AccessFlags.ALL)

    @property
    def server_qp(self) -> QueuePair:
        return self.server_qps[0]

    @property
    def client_qp(self) -> QueuePair:
        return self.client_qps[0]

    @property
    def client_recv_cq(self):
        return self.client_qps[0].recv_wq.cq

    @property
    def response_addr(self) -> int:
        return self.response_alloc.addr

    @property
    def response_rkey(self) -> int:
        return self.response_mr.rkey


class CallResult:
    """Outcome of one offload trigger."""

    __slots__ = ("ok", "data", "immediate", "latency_ns")

    def __init__(self, ok: bool, data: bytes = b"", immediate: int = 0,
                 latency_ns: int = 0):
        self.ok = ok
        self.data = data
        self.immediate = immediate
        self.latency_ns = latency_ns

    def __repr__(self) -> str:
        return (f"<CallResult ok={self.ok} bytes={len(self.data)} "
                f"lat={self.latency_ns}ns>")


class OffloadClient:
    """Client-side trigger: SEND the arguments, await the WRITE_IMM."""

    def __init__(self, conn: OffloadConnection, verbs: VerbsContext,
                 request_capacity: int = 4096):
        self.conn = conn
        self.verbs = verbs
        self.sim: Simulator = verbs.sim
        memory = conn.client_nic.memory
        self.request_alloc = memory.alloc(
            request_capacity, owner="client", label=f"{conn.name}-req")
        self._recv_id = 0

    def ensure_recvs(self, count: int = 8) -> None:
        """Keep ``count`` RECVs outstanding per lane for WRITE_IMMs.

        Replenishes based on each lane's actual consumption so the pool
        never drains mid-benchmark.
        """
        for client_qp in self.conn.client_qps:
            recv_wq = client_qp.recv_wq
            while recv_wq.posted_count - recv_wq.fetched_count < count:
                client_qp.post_recv(wr_recv(wr_id=self._recv_id))
                self._recv_id += 1

    def call(self, payload: bytes,
             timeout_ns: int = 2_000_000) -> Generator:
        """Trigger the offload; returns a :class:`CallResult`.

        A timeout means no conditional branch armed a response — for
        the KV offloads, a miss.
        """
        self.ensure_recvs()
        start = self.sim.now
        memory = self.conn.client_nic.memory
        memory.write(self.request_alloc.addr, payload)
        yield from self.verbs.post_send(
            self.conn.client_qp,
            wr_send(self.request_alloc.addr, len(payload),
                    signaled=False))
        cq = self.conn.client_recv_cq
        deadline = self.sim.timeout(timeout_ns)
        while True:
            cqe = cq.poll()
            if cqe is not None:
                if self.verbs.poll_detect_ns:
                    yield self.sim.timeout(self.verbs.poll_detect_ns)
                data = memory.read(self.conn.response_addr, cqe.byte_len) \
                    if cqe.byte_len else b""
                if _obs.enabled:
                    tracer = self.sim.tracer
                    if tracer is not None:
                        tracer.offload_call(self.conn, start, True,
                                            len(data))
                    telemetry = self.sim.telemetry
                    if telemetry is not None:
                        telemetry.request_complete(self.sim.now - start)
                return CallResult(True, data, cqe.immediate,
                                  self.sim.now - start)
            if deadline.triggered:
                if _obs.enabled:
                    tracer = self.sim.tracer
                    if tracer is not None:
                        tracer.offload_call(self.conn, start, False, 0)
                    telemetry = self.sim.telemetry
                    if telemetry is not None:
                        telemetry.request_complete(self.sim.now - start)
                return CallResult(False, latency_ns=self.sim.now - start)
            yield self.sim.any_of([cq.wait_for_event(), deadline])
