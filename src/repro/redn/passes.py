"""Passes over chain IR: verify, cost, optimize.

The verifier turns the §3.1 prefetch-incoherence hazards that the
runtime race inspector (PR 2, ``repro.obs``) catches *dynamically*
into properties checked *statically*, over the modification edges the
IR records:

* ``target-missing``     — a modification aims at a WR no program op
  or posted ring slot accounts for;
* ``prefetch-window``    — a swap/inject targets a WQE on a normal
  (unmanaged) queue: the NIC prefetches those in batches, so the
  modification races the prefetched copy (§3.1);
* ``upstream-target``    — an arming/injecting WR targets a WR at or
  before its own doorbell-order position on the same queue: the target
  was fetched before the modifier ran;
* ``early-release``      — an ENABLE releases an armed template
  before the arming CAS is ordered to have completed (no qualifying
  WAIT barrier);
* ``enable-mismatch``    — an ENABLE count exceeds the producer's
  posted index (absolute) or ring capacity (relative);
* ``inject-span``        — injected bytes overrun the target's ring
  image or touch its opcode bytes;
* ``restore-truncated`` / ``restore-overrun`` — a recycling shadow
  region does not match the ring image it restores (checked again
  here for deferred programs; :class:`RestoreOp` raises eagerly).

Recycling maintenance ops (:class:`RestoreOp`, :class:`CountBumpOp`)
deliberately rewrite upstream, already-executed WRs for the next lap,
so the upstream/early-release checks exempt them.

The cost pass derives Table 2 C/A/E counts from op intent; the
optimize passes (dead-template elimination, NOOP-run fusion,
per-segment ordering-mode selection priced from ``nic/timing.py``)
rewrite or annotate *deferred* programs before the linker lowers them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..nic.opcodes import (
    Opcode,
    WrFlags,
    is_atomic_verb,
    is_copy_verb,
    is_ordering_verb,
)
from ..nic.timing import CONNECTX5_TIMING, TimingModel
from ..nic.wqe import WQE_SLOT_SIZE
from .ir import (
    ArmCasOp,
    ChainLintError,
    ChainOp,
    ChainProgram,
    CountBumpOp,
    EnableOp,
    FieldRef,
    InjectReadOp,
    InjectWriteOp,
    RawOp,
    RestoreOp,
    TemplateOp,
    WaitOp,
    op_of,
    ref_of,
    wr_name,
)

__all__ = [
    "ConstructCost",
    "Hazard",
    "verify",
    "verify_or_raise",
    "chain_cost",
    "eliminate_dead_templates",
    "fuse_noop_runs",
    "plan_ordering",
    "optimize",
]


@dataclass
class ConstructCost:
    """WR-count breakdown in the paper's Table 2 categories."""

    copies: int = 0     # C: SEND/RECV/WRITE/READ (+ NOOP templates)
    atomics: int = 0    # A: CAS/FETCH_ADD/MAX/MIN
    ordering: int = 0   # E: WAIT/ENABLE

    def __str__(self) -> str:
        return f"{self.copies}C + {self.atomics}A + {self.ordering}E"

    @property
    def total(self) -> int:
        return self.copies + self.atomics + self.ordering


@dataclass
class Hazard:
    """One verifier finding, naming the offending WR."""

    check: str
    message: str
    op: Optional[ChainOp] = None

    def __str__(self) -> str:
        return f"[{self.check}] {self.message}"


# ---------------------------------------------------------------------------
# Cost (Table 2)
# ---------------------------------------------------------------------------


def _classify(cost: ConstructCost, opcode: int) -> None:
    if is_ordering_verb(opcode):
        cost.ordering += 1
    elif is_atomic_verb(opcode):
        cost.atomics += 1
    elif is_copy_verb(opcode):
        cost.copies += 1
    elif opcode == Opcode.NOOP:
        cost.copies += 1   # untyped placeholder: counts as copy


def chain_cost(program: ChainProgram,
               tag_prefix: str = "") -> ConstructCost:
    """C/A/E counts over ops whose tag starts with ``tag_prefix``.

    Templates count as their *intended* verb (a disarmed WRITE_IMM is
    still the copy the construct pays for), which is how Table 2
    tallies the if/while rows.
    """
    cost = ConstructCost()
    for op in program.ops_tagged(tag_prefix):
        _classify(cost, op.intended_opcode)
    return cost


# ---------------------------------------------------------------------------
# Verification
# ---------------------------------------------------------------------------


@dataclass
class _Mod:
    """One normalized modification: src op writes dst field span."""

    src: Optional[ChainOp]
    dst: FieldRef
    length: int
    kind: str            # arm | inject | scatter | count-bump | restore
    offset: Optional[int] = None   # byte offset when not dst.field's


def _decode_enable(op: ChainOp):
    """(wq_num, count|None, relative) for ENABLE-like ops, else None."""
    if isinstance(op, EnableOp):
        try:
            count = op.resolve_count()
        except (ChainLintError, AttributeError):
            count = None
        try:
            wq_num = op.target_wq_num
        except AttributeError:
            return None
        return wq_num, count, op.relative
    if isinstance(op, RawOp) and op.wqe.opcode == Opcode.ENABLE:
        return (op.wqe.target, op.wqe.wqe_count,
                bool(op.wqe.flags & WrFlags.ENABLE_RELATIVE))
    return None


def _collect_mods(program: ChainProgram) -> List[_Mod]:
    mods: List[_Mod] = []
    for op in program.ops:
        if isinstance(op, ArmCasOp):
            mods.append(_Mod(op, op.target, 8, "arm"))
        elif isinstance(op, InjectReadOp):
            mods.append(_Mod(op, op.target, op.length, "scatter"))
        elif isinstance(op, InjectWriteOp):
            if op.target is not None:
                mods.append(_Mod(op, op.target, op.length, "inject"))
        elif isinstance(op, CountBumpOp):
            mods.append(_Mod(op, FieldRef(op.target, "wqe_count"), 8,
                             "count-bump"))
        elif isinstance(op, RestoreOp):
            mods.append(_Mod(op, FieldRef(op.target, "ctrl"),
                             op.length, "restore"))
        elif isinstance(op, RawOp) and op.linked:
            # Recognize hand-assembled self-modification: a verb whose
            # remote address lands inside a program ring.
            wqe = op.wqe
            if wqe.opcode not in (Opcode.CAS, Opcode.FETCH_ADD,
                                  Opcode.WRITE):
                continue
            hit = program.find_slot(wqe.raddr)
            if hit is None:
                continue
            target_op, offset = hit
            if wqe.opcode == Opcode.CAS and offset == 0:
                kind = "arm"
            elif wqe.opcode == Opcode.FETCH_ADD:
                kind = "count-bump"
            else:
                kind = "inject"
            mods.append(_Mod(op, FieldRef(target_op, "ctrl"),
                             wqe.length, kind, offset=offset))
    for edge in program.edges:
        mods.append(_Mod(program.op_for(edge.src) if edge.src is not None
                         else None,
                         edge.dst, edge.length, edge.kind))
    return mods


def _order_key(op: Optional[ChainOp]) -> Optional[int]:
    """Doorbell-order position of an op on its own queue."""
    if op is None:
        return None
    if op.ref is not None:
        return op.ref.wr_index
    return op.index   # deferred: program order stands in


def _release_timeline(program: ChainProgram):
    """Cumulative ENABLE coverage per managed chain queue, in op order.

    Returns a list of ``(op_index, enable_op, queue, coverage_after)``
    entries; coverage is "released through WR index < coverage".
    """
    coverage: Dict[object, int] = {}
    timeline = []
    for op in program.ops:
        decoded = _decode_enable(op)
        if decoded is None:
            continue
        wq_num, count, relative = decoded
        queue = program.queue_by_wq_num(wq_num)
        if queue is None or not queue.managed or count is None:
            continue
        if relative:
            coverage[queue] = coverage.get(queue, 0) + count
        else:
            coverage[queue] = max(coverage.get(queue, 0), count)
        timeline.append((op.index, op, queue, coverage[queue]))
    return timeline


def verify(program: ChainProgram) -> List[Hazard]:
    """Run every static check; returns hazards (empty = clean)."""
    hazards: List[Hazard] = []
    timeline = _release_timeline(program)

    def first_release(queue, wr_index):
        for idx, en_op, q, cov in timeline:
            if q is queue and cov > wr_index:
                return idx, en_op
        return None

    # -- modification-edge checks ---------------------------------------
    for mod in _collect_mods(program):
        dst = mod.dst
        target_op = program.op_for(dst.target)
        target_ref = ref_of(dst.target)
        src_name = wr_name(mod.src) if mod.src is not None else \
            "external trigger"
        if target_op is None and target_ref is None:
            hazards.append(Hazard(
                "target-missing",
                f"{mod.kind} from {src_name} aims at "
                f"{dst.field} of a WR outside the program: "
                f"{dst.target!r}", mod.src))
            continue
        target_queue = dst.queue
        target_name = wr_name(dst.target)

        # §3.1: modifying a WQE on a normal-mode queue races the
        # batch prefetch — the NIC may already hold a stale copy.
        if target_queue is not None and not target_queue.managed:
            hazards.append(Hazard(
                "prefetch-window",
                f"{mod.kind} from {src_name} rewrites {target_name} on "
                f"normal-mode queue '{target_queue.name}': the swap "
                f"lands inside an already-prefetched window (§3.1)",
                mod.src or target_op))

        # Field-span safety (break WRITEs legitimately span two WQEs).
        if mod.kind in ("arm", "inject", "scatter") and \
                getattr(mod.src, "break_targets", None) is None:
            image = WQE_SLOT_SIZE
            wqe = target_ref.wqe if target_ref is not None else \
                (target_op.build_wqe() if target_op is not None else None)
            if wqe is not None:
                image = wqe.num_slots * WQE_SLOT_SIZE
            span_start = mod.offset if mod.offset is not None \
                else dst.offset
            span_end = span_start + mod.length
            if span_end > image:
                hazards.append(Hazard(
                    "inject-span",
                    f"{mod.kind} from {src_name} writes "
                    f"[{span_start}, {span_end}) past the {image}-byte "
                    f"image of {target_name}", mod.src or target_op))
            if mod.kind != "arm" and span_start < 2:
                hazards.append(Hazard(
                    "inject-span",
                    f"{mod.kind} from {src_name} overlaps the opcode "
                    f"bytes of {target_name} (offset {span_start})",
                    mod.src or target_op))

        # Doorbell-order direction: arms and injections must land
        # before their target is fetched, so a same-queue target must
        # be strictly downstream. Recycling maintenance (restore,
        # count-bump) legitimately rewrites upstream for the next lap.
        if mod.kind in ("arm", "inject", "scatter") \
                and mod.src is not None \
                and mod.src.queue is target_queue:
            src_pos = _order_key(mod.src)
            dst_pos = _order_key(target_op) if target_op is not None \
                else (target_ref.wr_index if target_ref else None)
            if src_pos is not None and dst_pos is not None \
                    and dst_pos <= src_pos:
                hazards.append(Hazard(
                    "upstream-target",
                    f"{mod.kind} from {src_name} targets {target_name} "
                    f"at or before its own doorbell-order position "
                    f"({dst_pos} <= {src_pos}): the target is fetched "
                    f"before the modifier executes", mod.src))

        # Cross-queue arm: the ENABLE that releases the armed template
        # must be ordered after the CAS completed.
        if mod.kind == "arm" and mod.src is not None \
                and target_queue is not None \
                and mod.src.queue is not target_queue \
                and mod.src.linked and target_ref is not None:
            release = first_release(target_queue, target_ref.wr_index)
            if release is not None:
                rel_idx, rel_op = release
                if rel_op.queue is mod.src.queue:
                    # Same managed queue as the CAS: doorbell order
                    # already serializes CAS before the ENABLE.
                    if _order_key(rel_op) <= _order_key(mod.src):
                        hazards.append(Hazard(
                            "early-release",
                            f"ENABLE {wr_name(rel_op)} releases "
                            f"{target_name} at or before the arming "
                            f"CAS {src_name} in doorbell order",
                            mod.src))
                elif not _has_barrier(program, mod.src, rel_idx):
                    hazards.append(Hazard(
                        "early-release",
                        f"ENABLE {wr_name(rel_op)} releases "
                        f"{target_name} with no WAIT ordering it after "
                        f"the arming CAS {src_name}", mod.src))

    # -- ENABLE count checks --------------------------------------------
    for op in program.ops:
        decoded = _decode_enable(op)
        if decoded is None:
            continue
        wq_num, count, relative = decoded
        queue = program.queue_by_wq_num(wq_num)
        if queue is None or count is None:
            continue
        produced = max(queue.wq.posted_count,
                       sum(1 for other in program.ops
                           if other.queue is queue))
        if not relative and count > produced:
            hazards.append(Hazard(
                "enable-mismatch",
                f"ENABLE {wr_name(op)} releases '{queue.name}' through "
                f"WR #{count - 1} but only {produced} WRs are posted "
                f"(producer index mismatch)", op))
        if relative and count > queue.wq.num_slots:
            hazards.append(Hazard(
                "enable-mismatch",
                f"ENABLE {wr_name(op)} advances '{queue.name}' by "
                f"+{count}, more than its {queue.wq.num_slots}-slot "
                f"ring", op))

    # -- restore-shadow checks (deferred programs; eager ops raise) -----
    for op in program.ops:
        if isinstance(op, RestoreOp):
            try:
                op.check_shadow()
            except ChainLintError as error:
                hazards.append(Hazard(error.check, str(error), op))
    return hazards


def _has_barrier(program: ChainProgram, arm: ChainOp,
                 release_index: int) -> bool:
    """Is there a WAIT between ``arm`` and the release, on the release
    op's queue, covering the arm's CQ completion?"""
    release_op = program.ops[release_index]
    arm_cq = arm.queue.cq.cq_num
    for op in program.ops[arm.index + 1:release_index]:
        if not isinstance(op, WaitOp) or op.queue is not release_op.queue:
            continue
        if op.cq_num != arm_cq:
            continue
        threshold = op.resolved_threshold
        if threshold is None or arm.signal_seq is None \
                or threshold >= arm.signal_seq:
            return True
    return False


def verify_or_raise(program: ChainProgram) -> None:
    """Raise :class:`ChainLintError` on the first (worst) hazard."""
    hazards = verify(program)
    if hazards:
        worst = hazards[0]
        wr = worst.op.ref if worst.op is not None and worst.op.linked \
            else worst.op
        raise ChainLintError(worst.message, wr=wr, check=worst.check)


# ---------------------------------------------------------------------------
# Optimization (deferred programs only, except the ordering report)
# ---------------------------------------------------------------------------


def _referenced_ops(program: ChainProgram) -> set:
    """ids of ops some symbol, edge or enable points at."""
    referenced = set()

    def note(target):
        op = program.op_for(target)
        if op is not None:
            referenced.add(id(op))

    for op in program.ops:
        for attr in ("target",):
            value = getattr(op, attr, None)
            if isinstance(value, FieldRef):
                note(value.target)
            elif value is not None:
                note(value)
        swap = getattr(op, "swap", None)
        if swap is not None and not isinstance(swap, int):
            note(swap.target)
    for edge in program.edges:
        note(edge.dst.target)
    return referenced


def _require_deferred(program: ChainProgram, pass_name: str) -> None:
    for op in program.ops:
        if op.linked:
            raise ChainLintError(
                f"{pass_name} rewrites programs before linking; "
                f"{op.wr_name} is already lowered to ring bytes",
                wr=op.ref, check="already-linked")


def _reindex(program: ChainProgram) -> None:
    for index, op in enumerate(program.ops):
        op.index = index


def eliminate_dead_templates(program: ChainProgram) -> int:
    """Drop templates nothing arms, wires or releases (dead code).

    A template no CAS swap, aim edge or ENABLE ever references can
    never fire; posting it would only burn a ring slot and a NOOP
    fetch. Signaled templates are kept — removing one would shift the
    queue's CQ arithmetic.
    """
    _require_deferred(program, "dead-template elimination")
    referenced = _referenced_ops(program)
    kept, removed = [], 0
    for op in program.ops:
        dead = (isinstance(op, TemplateOp)
                and id(op) not in referenced
                and not op.live.signaled)
        if dead:
            removed += 1
        else:
            kept.append(op)
    program.ops[:] = kept
    _reindex(program)
    return removed


def fuse_noop_runs(program: ChainProgram) -> int:
    """Collapse adjacent pure-padding NOOPs into one per run.

    Only raw, unsignaled, scatter-free NOOPs that nothing references
    qualify — those execute as back-to-back ring padding, and one slot
    of padding orders exactly as well as five.
    """
    _require_deferred(program, "NOOP fusion")
    referenced = _referenced_ops(program)

    def fusible(op: ChainOp) -> bool:
        return (isinstance(op, RawOp)
                and op.wqe.opcode == Opcode.NOOP
                and not op.wqe.signaled
                and not op.wqe.sges
                and id(op) not in referenced)

    kept, fused = [], 0
    for op in program.ops:
        if fusible(op) and kept and fusible(kept[-1]) \
                and kept[-1].queue is op.queue:
            fused += 1
            continue
        kept.append(op)
    program.ops[:] = kept
    _reindex(program)
    return fused


def plan_ordering(program: ChainProgram,
                  timing: TimingModel = CONNECTX5_TIMING) -> List[dict]:
    """Per-segment ordering-mode selection, priced from the timing model.

    Each queue is one segment of the program. Doorbell-ordered
    (managed) fetches serialize one WQE at a time
    (``managed_fetch_hold_ns`` each); normal-mode queues amortize a
    batched fetch (``batch_fetch_hold_per_wqe_ns`` per WQE, §3.1 /
    Fig 8). A segment only *needs* doorbell ordering if some WR on it
    is a modification target or its release is ENABLE-gated — for any
    other segment the pass recommends normal mode and reports the
    fetch-hold savings.
    """
    mods = _collect_mods(program)
    mod_queues = {mod.dst.queue for mod in mods
                  if mod.dst.queue is not None}
    gated = set()
    for op in program.ops:
        decoded = _decode_enable(op)
        if decoded is None:
            continue
        queue = program.queue_by_wq_num(decoded[0])
        if queue is not None and queue is not op.queue:
            gated.add(queue)
    per_wr_delta = (timing.managed_fetch_hold_ns
                    - timing.batch_fetch_hold_per_wqe_ns)
    plan = []
    for queue in program.queues:
        wrs = sum(1 for op in program.ops if op.queue is queue)
        if not queue.managed:
            mode, reason, saving = "normal", "static skeleton", 0
        elif queue in mod_queues:
            mode, saving = "doorbell", 0
            reason = "holds self-modification targets"
        elif queue in gated:
            mode, saving = "doorbell", 0
            reason = "release is ENABLE-gated"
        else:
            mode = "normal"
            reason = "never modified nor gated: batch prefetch is safe"
            saving = wrs * per_wr_delta
        plan.append({
            "queue": queue.name,
            "wrs": wrs,
            "current": "doorbell" if queue.managed else "normal",
            "recommended": mode,
            "reason": reason,
            "est_saving_ns": saving,
        })
    return plan


def optimize(program: ChainProgram,
             timing: TimingModel = CONNECTX5_TIMING) -> dict:
    """Run the rewriting passes + the ordering report on a deferred
    program; returns a summary dict."""
    removed = eliminate_dead_templates(program)
    fused = fuse_noop_runs(program)
    return {
        "dead_templates_removed": removed,
        "noops_fused": fused,
        "ordering": plan_ordering(program, timing),
    }
