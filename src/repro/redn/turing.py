"""A Turing machine executing on the (simulated) RNIC — Appendix A.

The construction is multiplication-free, in the spirit of Dolan's
mov-only machine:

* **symbols** are stored *pre-scaled* by the transition-entry stride
  (32 bytes), both on the tape and in transition entries, so an entry
  address is just ``state_row + symbol`` — one register add;
* **states** are stored as *row base addresses* of their transition
  table rows — no state-id arithmetic ever happens;
* **head movement** is a FETCH_ADD of the entry's delta field (±8,
  encoded as a wrapping u64, since RDMA ADD is modulo 2^64);
* each **step** is a fixed chain of eleven mov-machine ops; the host's
  only job is re-posting the chain and polling the halt register —
  Appendix A.2's CPU-assisted unconditional jump. (The NIC-only loop
  alternative is WQ recycling, demonstrated by
  :class:`~repro.redn.constructs.RecycledLoop`.)

Transition-entry layout (32 bytes, all u64):

    +0   new symbol (pre-scaled)
    +8   head delta (+8 / -8 / 0, two's complement u64)
    +16  next state (row base address)
    +24  reserved

Register assignment:

    r0  head   (tape cell address)
    r1  state  (current row base address)
    r2  sym    (scaled symbol scratch)
    r3  entry  (transition entry address scratch)
    r4  tmp    (loaded fields scratch)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..memory.layout import mask
from .movmachine import AddConst, AddReg, MovImm, MovLoad, MovMachine, \
    MovStore
from .program import ProgramError, RednContext

__all__ = ["TuringSpec", "Transition", "NicTuringMachine",
           "run_reference", "BINARY_INCREMENT", "PARITY_MACHINE",
           "BUSY_BEAVER_3"]

_U64 = mask(64)
_ENTRY_STRIDE = 32
_CELL = 8

R_HEAD, R_STATE, R_SYM, R_ENTRY, R_TMP = 0, 1, 2, 3, 4

LEFT, RIGHT, STAY = -1, 1, 0


@dataclass(frozen=True)
class Transition:
    """delta(state, symbol) -> (write, move, next_state)."""

    write: str
    move: int            # LEFT / RIGHT / STAY
    next_state: str


@dataclass(frozen=True)
class TuringSpec:
    """A classical single-tape Turing machine description."""

    name: str
    states: Tuple[str, ...]
    symbols: Tuple[str, ...]          # symbols[0] is the blank
    start: str
    halt: str
    transitions: Dict[Tuple[str, str], Transition]

    def __post_init__(self):
        if self.start not in self.states or self.halt not in self.states:
            raise ValueError("start/halt must be listed states")
        for (state, symbol), tr in self.transitions.items():
            if state not in self.states or symbol not in self.symbols:
                raise ValueError(f"bad transition key ({state},{symbol})")
            if tr.write not in self.symbols:
                raise ValueError(f"bad write symbol {tr.write}")
            if tr.next_state not in self.states:
                raise ValueError(f"bad next state {tr.next_state}")

    @property
    def blank(self) -> str:
        return self.symbols[0]


def run_reference(spec: TuringSpec, tape: Sequence[str],
                  max_steps: int = 10_000,
                  head: int = 0) -> Tuple[List[str], int, bool]:
    """Pure-Python oracle: (final tape, steps, halted)."""
    cells = list(tape)
    state = spec.start
    steps = 0
    while state != spec.halt and steps < max_steps:
        if head < 0:
            cells.insert(0, spec.blank)
            head = 0
        while head >= len(cells):
            cells.append(spec.blank)
        key = (state, cells[head])
        if key not in spec.transitions:
            return cells, steps, False
        tr = spec.transitions[key]
        cells[head] = tr.write
        head += tr.move
        state = tr.next_state
        steps += 1
    return cells, steps, state == spec.halt


class NicTuringMachine:
    """The spec compiled into mov-machine memory + a step chain."""

    def __init__(self, ctx: RednContext, spec: TuringSpec,
                 tape_cells: int = 64, name: str = "tm"):
        self.spec = spec
        self.machine = MovMachine(ctx, num_registers=8, name=name)
        self.tape_cells = tape_cells
        machine = self.machine

        self._symbol_scaled = {sym: index * _ENTRY_STRIDE
                               for index, sym in enumerate(spec.symbols)}
        self._scaled_symbol = {v: k for k, v in
                               self._symbol_scaled.items()}

        # Transition table: one row per state, one entry per symbol.
        row_size = len(spec.symbols) * _ENTRY_STRIDE
        self._rows: Dict[str, int] = {}
        for state in spec.states:
            self._rows[state] = machine.alloc_ram(row_size,
                                                  f"row-{state}")
        for state in spec.states:
            for symbol in spec.symbols:
                entry = self._rows[state] + self._symbol_scaled[symbol]
                tr = spec.transitions.get((state, symbol))
                if tr is None or state == spec.halt:
                    # Self-loop in place: the machine idles once halted
                    # (or stuck), which the host detects by state.
                    machine.write_ram(entry + 0,
                                      self._symbol_scaled[symbol])
                    machine.write_ram(entry + 8, 0)
                    machine.write_ram(entry + 16, self._rows[state])
                else:
                    machine.write_ram(
                        entry + 0, self._symbol_scaled[tr.write])
                    machine.write_ram(
                        entry + 8, (tr.move * _CELL) & _U64)
                    machine.write_ram(
                        entry + 16, self._rows[tr.next_state])

        # The tape. The head starts in the middle so LEFT moves work.
        self.tape_base = machine.alloc_ram(tape_cells * _CELL, "tape")
        self.head_start_cell = tape_cells // 4

        self.steps_run = 0

    # -- tape IO ----------------------------------------------------------------

    def load_tape(self, symbols: Sequence[str]) -> None:
        if len(symbols) > self.tape_cells - self.head_start_cell:
            raise ProgramError("tape content too long")
        machine = self.machine
        blank = self._symbol_scaled[self.spec.blank]
        for cell in range(self.tape_cells):
            machine.write_ram(self.tape_base + cell * _CELL, blank)
        for offset, symbol in enumerate(symbols):
            machine.write_ram(
                self.tape_base + (self.head_start_cell + offset) * _CELL,
                self._symbol_scaled[symbol])
        machine.write_reg(R_HEAD, self.tape_base
                          + self.head_start_cell * _CELL)
        machine.write_reg(R_STATE, self._rows[self.spec.start])

    def read_tape(self, start: int, count: int) -> List[str]:
        """Symbols at cells [head_start+start, ...+count)."""
        result = []
        for offset in range(start, start + count):
            cell = self.head_start_cell + offset
            value = self.machine.read_ram(self.tape_base + cell * _CELL)
            result.append(self._scaled_symbol[value])
        return result

    @property
    def current_state(self) -> str:
        row = self.machine.read_reg(R_STATE)
        for state, addr in self._rows.items():
            if addr == row:
                return state
        raise ProgramError(f"state register holds unknown row {row:#x}")

    @property
    def halted(self) -> bool:
        return self.current_state == self.spec.halt

    # -- the step chain ------------------------------------------------------------

    def step_ops(self) -> List:
        """One TM step as eleven mov-machine ops (all NIC-executed)."""
        return [
            MovLoad(R_SYM, R_HEAD),       # sym    = [head]
            MovImm(R_ENTRY, 0),           # entry  = 0
            AddReg(R_ENTRY, R_STATE),     # entry += state-row
            AddReg(R_ENTRY, R_SYM),       # entry += scaled symbol
            MovLoad(R_TMP, R_ENTRY),      # tmp    = new symbol
            MovStore(R_HEAD, R_TMP),      # [head] = tmp
            AddConst(R_ENTRY, 8),
            MovLoad(R_TMP, R_ENTRY),      # tmp    = head delta
            AddReg(R_HEAD, R_TMP),        # head  += delta
            AddConst(R_ENTRY, 8),
            MovLoad(R_STATE, R_ENTRY),    # state  = next row
        ]

    def run(self, max_steps: int = 500) -> Generator:
        """Drive the machine until halt (or the step budget).

        A simulation process: yields while the NIC executes each step
        chain. Returns the number of steps taken.
        """
        steps = 0
        while not self.halted and steps < max_steps:
            yield from self.machine.execute(self.step_ops())
            steps += 1
        self.steps_run += steps
        return steps


def _spec(name, states, symbols, start, halt, table) -> TuringSpec:
    transitions = {
        (state, symbol): Transition(*value)
        for (state, symbol), value in table.items()
    }
    return TuringSpec(name, tuple(states), tuple(symbols), start, halt,
                      transitions)


#: Increment a binary number (head at the least-significant bit,
#: number laid out LSB-first so carries move RIGHT).
BINARY_INCREMENT = _spec(
    "binary-increment",
    states=("carry", "done"),
    symbols=("_", "0", "1"),
    start="carry", halt="done",
    table={
        ("carry", "0"): ("1", STAY, "done"),
        ("carry", "1"): ("0", RIGHT, "carry"),
        ("carry", "_"): ("1", STAY, "done"),
    },
)

#: Replace a bit string by its parity (scans right, tracks parity).
PARITY_MACHINE = _spec(
    "parity",
    states=("even", "odd", "done"),
    symbols=("_", "0", "1", "E", "O"),
    start="even", halt="done",
    table={
        ("even", "0"): ("_", RIGHT, "even"),
        ("even", "1"): ("_", RIGHT, "odd"),
        ("odd", "0"): ("_", RIGHT, "odd"),
        ("odd", "1"): ("_", RIGHT, "even"),
        ("even", "_"): ("E", STAY, "done"),
        ("odd", "_"): ("O", STAY, "done"),
    },
)

#: The 3-state, 2-symbol busy beaver (writes six 1s in 14 steps) —
#: a classic non-trivial workload with both head directions.
BUSY_BEAVER_3 = _spec(
    "busy-beaver-3",
    states=("A", "B", "C", "H"),
    symbols=("_", "1"),
    start="A", halt="H",
    table={
        ("A", "_"): ("1", RIGHT, "B"),
        ("A", "1"): ("1", LEFT, "C"),
        ("B", "_"): ("1", LEFT, "A"),
        ("B", "1"): ("1", RIGHT, "B"),
        ("C", "_"): ("1", LEFT, "B"),
        ("C", "1"): ("1", STAY, "H"),
    },
)
