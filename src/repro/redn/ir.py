"""RedN IR: a typed intermediate representation of chain programs.

Every RedN construct in this repo used to hand-assemble WQE bytes:
target wiring, WAIT-threshold arithmetic and self-modification
bookkeeping were duplicated across the builder, the loop constructs,
the mov-machine and the offloads. This module is the single vocabulary
they now share — the compiler pipeline is

    builder  →  IR (this module)  →  passes (repro.redn.passes)
             →  linker (repro.redn.linker)  →  WQE bytes

The IR is *symbolic* where the byte format is positional:

* self-modification targets are ``(wr, field)`` pairs
  (:class:`FieldRef`) instead of raw byte offsets — the linker
  resolves them against ring geometry, and the verifier can reason
  about them (is the target downstream in doorbell order? inside a
  prefetch window? §3.1);
* CAS swap operands that arm templates are :class:`ArmWord` — "the
  live ctrl word of that template", not a magic integer;
* WAIT thresholds may be :class:`SignaledCount` — "every signaled WR
  posted on this queue so far", resolved at link time against the
  queue's monotonic counters (§3.4).

Ops record *intent* (arm, inject, restore, count-bump), so the
verifier distinguishes an arming CAS that must land before its target
is fetched from the maintenance ADDs/READs of WQ recycling that
deliberately rewrite upstream, already-executed WRs for the next lap.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import List, Optional, Tuple

from ..ibv.wr import (
    wr_cas,
    wr_enable,
    wr_fetch_add,
    wr_read,
    wr_wait,
    wr_write,
)
from ..nic.opcodes import OPCODE_NAMES, Opcode
from ..nic.wqe import (
    FIELD_CTRL,
    WQE_SLOT_SIZE,
    Wqe,
    ctrl_word,
    field_location,
)
from .program import ChainQueue, ProgramError, WrRef

__all__ = [
    "ChainLintError",
    "FieldRef",
    "ArmWord",
    "SignaledCount",
    "ChainOp",
    "RawOp",
    "TemplateOp",
    "WaitOp",
    "EnableOp",
    "ArmCasOp",
    "InjectReadOp",
    "InjectWriteOp",
    "RestoreOp",
    "CountBumpOp",
    "AimEdge",
    "LoopInfo",
    "ChainProgram",
    "WQE_COUNT_ADD_DELTA",
]

# The wqe_count field occupies the high 32 bits of the u64 at offset 48
# (big-endian), so a 64-bit ADD of ``delta << 32`` increments it without
# disturbing the neighbouring target/num_slots/num_sge bytes — the
# paper's "wqe_count values need to be incremented to match" trick.


def WQE_COUNT_ADD_DELTA(delta: int) -> int:
    """Encode a wqe_count increment as a u64 fetch-add operand."""
    return (delta & 0xFFFFFFFF) << 32


class ChainLintError(ProgramError):
    """A statically detectable chain hazard, naming the offending WR.

    ``wr`` is the :class:`WrRef` (or unlinked :class:`ChainOp`) the
    check fired on; ``check`` is the machine-readable hazard name
    (``upstream-target``, ``prefetch-window``, ``enable-mismatch``,
    ``restore-truncated``, ...).
    """

    def __init__(self, message: str, wr=None, check: str = ""):
        super().__init__(message)
        self.wr = wr
        self.check = check


# ---------------------------------------------------------------------------
# Symbolic values
# ---------------------------------------------------------------------------


def op_of(target) -> Optional["ChainOp"]:
    """The ChainOp behind a target given as an op or a WrRef."""
    if isinstance(target, ChainOp):
        return target
    return getattr(target, "ir_op", None)


def ref_of(target) -> Optional[WrRef]:
    """The WrRef behind a target given as an op or a WrRef."""
    if isinstance(target, ChainOp):
        return target.ref
    if isinstance(target, WrRef):
        return target
    return None


def wr_name(target) -> str:
    """Human name of an op/ref for hazard messages."""
    ref = ref_of(target)
    if ref is not None:
        tag = ref.tag or getattr(op_of(target), "tag", "") or "-"
        return f"{ref.queue.name}[{ref.wr_index}] tag={tag}"
    op = op_of(target)
    if op is not None:
        return f"{op.queue.name}[unlinked] tag={op.tag or '-'}"
    return repr(target)


class FieldRef:
    """A symbolic self-modification target: one field of one WR.

    ``target`` is a :class:`ChainOp` or an already-linked
    :class:`WrRef`; ``field`` is a canonical WQE field name (including
    the virtual ``id``). The linker resolves it to a host address; the
    verifier resolves it to (queue, wr_index, byte span).
    """

    __slots__ = ("target", "field")

    def __init__(self, target, field: str = FIELD_CTRL):
        field_location(field)   # validate the name eagerly
        self.target = target
        self.field = field

    def __repr__(self) -> str:
        return f"<FieldRef {self.field} of {wr_name(self.target)}>"

    @property
    def op(self) -> Optional["ChainOp"]:
        return op_of(self.target)

    @property
    def ref(self) -> Optional[WrRef]:
        return ref_of(self.target)

    @property
    def offset(self) -> int:
        return field_location(self.field)[0]

    @property
    def width(self) -> int:
        return field_location(self.field)[1]

    @property
    def addr(self) -> int:
        ref = self.ref
        if ref is None:
            raise ChainLintError(
                f"{self!r} resolved before its target was linked",
                wr=self.target, check="unlinked-target")
        return ref.field_addr(self.field)

    @property
    def queue(self) -> Optional[ChainQueue]:
        ref = self.ref
        if ref is not None:
            return ref.queue
        op = self.op
        return op.queue if op is not None else None

    @property
    def rkey(self) -> int:
        """The code-region rkey covering the target's ring."""
        queue = self.queue
        if queue is None:
            raise ChainLintError(
                f"{self!r} has no resolvable queue", wr=self.target,
                check="unlinked-target")
        return queue.rkey


class ArmWord:
    """Symbolic CAS swap operand: the live ctrl word of a template."""

    __slots__ = ("target", "wr_id")

    def __init__(self, target, wr_id: int = 0):
        if self._intended(target) is None:
            raise ProgramError(f"{target!r} is not a template")
        self.target = target
        self.wr_id = wr_id

    @staticmethod
    def _intended(target) -> Optional[int]:
        op = op_of(target)
        if isinstance(op, TemplateOp):
            return op.intended
        ref = ref_of(target)
        return getattr(ref, "intended_opcode", None)

    def resolve(self) -> int:
        return ctrl_word(self._intended(self.target), self.wr_id)

    def __repr__(self) -> str:
        return f"<ArmWord id={self.wr_id:#x} of {wr_name(self.target)}>"


class SignaledCount:
    """Symbolic WAIT threshold: a queue's signaled-WR total at link."""

    __slots__ = ("queue", "bias")

    def __init__(self, queue: ChainQueue, bias: int = 0):
        self.queue = queue
        self.bias = bias

    def resolve(self) -> int:
        return self.queue.signaled_posted + self.bias

    def __repr__(self) -> str:
        return f"<SignaledCount of {self.queue.name}{self.bias:+d}>"


# ---------------------------------------------------------------------------
# Chain ops
# ---------------------------------------------------------------------------


class ChainOp:
    """One WR of a chain program, before and after linking.

    ``ref`` is filled by the linker; ``signal_seq`` records the owning
    queue's signaled-WR total right after this op posted — the number
    a WAIT barrier must reach for this op to have completed.
    """

    kind = "raw"
    __slots__ = ("queue", "tag", "ref", "index", "signal_seq")

    def __init__(self, queue: ChainQueue, tag: str = ""):
        self.queue = queue
        self.tag = tag
        self.ref: Optional[WrRef] = None
        self.index: Optional[int] = None     # position in the program
        self.signal_seq: Optional[int] = None

    @property
    def linked(self) -> bool:
        return self.ref is not None

    def build_wqe(self) -> Wqe:
        """The concrete WQE this op lowers to (linker hook)."""
        raise NotImplementedError

    @property
    def intended_opcode(self) -> int:
        """Opcode for Table 2 cost classification."""
        return self.build_wqe().opcode

    @property
    def wr_name(self) -> str:
        return wr_name(self)

    def __repr__(self) -> str:
        name = OPCODE_NAMES.get(self.intended_opcode, "?")
        return f"<{type(self).__name__} {name} {self.wr_name}>"


class RawOp(ChainOp):
    """A fully concrete WQE (the escape hatch; no symbols)."""

    kind = "raw"
    __slots__ = ("wqe",)

    def __init__(self, queue: ChainQueue, wqe: Wqe, tag: str = ""):
        super().__init__(queue, tag)
        self.wqe = wqe

    def build_wqe(self) -> Wqe:
        return self.wqe

    @property
    def intended_opcode(self) -> int:
        return self.wqe.opcode


class TemplateOp(ChainOp):
    """A disarmed WR: posts as NOOP, carries its intended live verb."""

    kind = "template"
    __slots__ = ("live", "intended", "break_targets")

    def __init__(self, queue: ChainQueue, live: Wqe, tag: str = ""):
        super().__init__(queue, tag)
        if live.opcode == Opcode.NOOP:
            raise ProgramError("template needs a non-NOOP intended opcode")
        self.live = live
        self.intended = live.opcode
        #: Filled by BreakImage: (response, gate) WRs whose slots this
        #: template's armed WRITE overwrites (Fig 6) — exempts the
        #: cross-WQE span from the field-granularity inject checks.
        self.break_targets: Optional[Tuple] = None

    def build_wqe(self) -> Wqe:
        live = self.live
        return Wqe(
            opcode=Opcode.NOOP, wr_id=live.wr_id,
            laddr=live.laddr, length=live.length,
            raddr=live.raddr, flags=live.flags,
            operand0=live.operand0, operand1=live.operand1,
            wqe_count=live.wqe_count, target=live.target,
            lkey=live.lkey, rkey=live.rkey, sges=live.sges)

    @property
    def intended_opcode(self) -> int:
        return self.intended


class WaitOp(ChainOp):
    """WAIT until a CQ reaches a (possibly symbolic) threshold."""

    kind = "wait"
    __slots__ = ("cq_num", "threshold", "resolved_threshold")

    def __init__(self, queue: ChainQueue, cq, threshold, tag: str = ""):
        super().__init__(queue, tag)
        self.cq_num = cq if isinstance(cq, int) else cq.cq_num
        self.threshold = threshold
        self.resolved_threshold: Optional[int] = (
            threshold if isinstance(threshold, int) else None)

    def build_wqe(self) -> Wqe:
        threshold = self.threshold
        if isinstance(threshold, SignaledCount):
            threshold = threshold.resolve()
        self.resolved_threshold = threshold
        return wr_wait(self.cq_num, threshold)

    @property
    def intended_opcode(self) -> int:
        return Opcode.WAIT


class EnableOp(ChainOp):
    """ENABLE a queue: through a specific WR, or by/to a count."""

    kind = "enable"
    __slots__ = ("target", "count", "relative")

    def __init__(self, queue: ChainQueue, target, count: Optional[int],
                 relative: bool = False, tag: str = ""):
        super().__init__(queue, tag)
        self.target = target      # ChainOp/WrRef (through) or queue-ish
        self.count = count        # None when derived from the target WR
        self.relative = relative

    @property
    def target_wq_num(self) -> int:
        ref = ref_of(self.target)
        if ref is not None:
            return ref.queue.wq_num
        return self.target.wq_num   # ChainQueue or raw WorkQueue

    def resolve_count(self) -> int:
        if self.count is not None:
            return self.count
        ref = ref_of(self.target)
        if ref is None:
            raise ChainLintError(
                f"ENABLE through unlinked WR {self.target!r}",
                wr=self.target, check="unlinked-target")
        return ref.wr_index + 1

    def build_wqe(self) -> Wqe:
        return wr_enable(self.target_wq_num, self.resolve_count(),
                         relative=self.relative)

    @property
    def intended_opcode(self) -> int:
        return Opcode.ENABLE


class ArmCasOp(ChainOp):
    """The predicate CAS of §3.3: tests and rewrites a ctrl word.

    ``target`` is the :class:`FieldRef` of the template ctrl word it
    may arm; ``swap`` an :class:`ArmWord` (or literal); ``compare`` a
    literal ctrl word (runtime operand injection overwrites it when
    the construct is data-dependent).
    """

    kind = "arm"
    __slots__ = ("target", "compare", "swap", "result_laddr", "signaled")

    def __init__(self, queue: ChainQueue, target: FieldRef, compare: int,
                 swap, result_laddr: int = 0, signaled: bool = True,
                 tag: str = ""):
        super().__init__(queue, tag)
        self.target = target
        self.compare = compare
        self.swap = swap
        self.result_laddr = result_laddr
        self.signaled = signaled

    def build_wqe(self) -> Wqe:
        swap = self.swap
        if isinstance(swap, ArmWord):
            swap = swap.resolve()
        return wr_cas(self.target, self.target.rkey,
                      compare=self.compare, swap=swap,
                      result_laddr=self.result_laddr,
                      signaled=self.signaled)

    @property
    def intended_opcode(self) -> int:
        return Opcode.CAS


class InjectReadOp(ChainOp):
    """A READ landing remote bytes *onto WQE fields* (Fig 9).

    The local destination is symbolic: ``target`` names the first
    field the record lands on (e.g. ``id``) and ``length`` bytes flow
    from there across the adjacent fields. ``raddr`` is usually 0 —
    injected at runtime by a trigger RECV scatter.
    """

    kind = "inject"
    __slots__ = ("target", "length", "raddr", "rkey", "signaled")

    def __init__(self, queue: ChainQueue, target: FieldRef, length: int,
                 rkey: int, raddr: int = 0, signaled: bool = False,
                 tag: str = ""):
        super().__init__(queue, tag)
        self.target = target
        self.length = length
        self.raddr = raddr
        self.rkey = rkey
        self.signaled = signaled

    def build_wqe(self) -> Wqe:
        return wr_read(self.target, self.length, self.raddr, self.rkey,
                       signaled=self.signaled)

    @property
    def intended_opcode(self) -> int:
        return Opcode.READ


class InjectWriteOp(ChainOp):
    """A WRITE copying a memory cell into a WQE field (Fig 12's R2,
    the mov-machine's address injection).

    ``target`` may be attached *after* posting (the mov-machine posts
    the injector before the WR it patches exists); setup-time wiring
    then pokes the resolved address into this WR's raddr field.
    """

    kind = "inject"
    __slots__ = ("src_addr", "length", "rkey", "signaled", "target")

    def __init__(self, queue: ChainQueue, src_addr: int, rkey: int,
                 length: int = 8, signaled: bool = False,
                 target: Optional[FieldRef] = None, tag: str = ""):
        super().__init__(queue, tag)
        self.src_addr = src_addr
        self.length = length
        self.rkey = rkey
        self.signaled = signaled
        self.target = target

    def build_wqe(self) -> Wqe:
        raddr = 0
        if self.target is not None and self.target.ref is not None:
            raddr = self.target.addr
        return wr_write(self.src_addr, self.length, raddr, self.rkey,
                        signaled=self.signaled)

    @property
    def intended_opcode(self) -> int:
        return Opcode.WRITE


class RestoreOp(ChainOp):
    """A READ rewriting ring bytes back to a shadow template image.

    With ``capture`` set, the pristine image is copied from the
    target's current ring bytes into the shadow cell at link time. The
    shadow region is validated against the target's ring image — a
    short shadow would silently truncate the restore.
    """

    kind = "restore"
    __slots__ = ("target", "offset", "length", "shadow_addr",
                 "shadow_rkey", "capture")

    def __init__(self, queue: ChainQueue, target, offset: int,
                 length: int, shadow_addr: int, shadow_rkey: int,
                 capture: bool = True, tag: str = ""):
        super().__init__(queue, tag)
        self.target = target          # ChainOp or WrRef
        self.offset = offset
        self.length = length
        self.shadow_addr = shadow_addr
        self.shadow_rkey = shadow_rkey
        self.capture = capture
        self.check_shadow()

    def target_image_size(self) -> int:
        ref = ref_of(self.target)
        wqe = ref.wqe if ref is not None else \
            op_of(self.target).build_wqe()
        return wqe.num_slots * WQE_SLOT_SIZE

    def check_shadow(self) -> None:
        """The shadow must match the ring image it restores (§3.4)."""
        image = self.target_image_size()
        name = wr_name(self.target)
        if self.length < 1 or self.offset < 0:
            raise ChainLintError(
                f"restore of {name}: degenerate region "
                f"[{self.offset}, +{self.length})", wr=self.target,
                check="restore-truncated")
        if self.offset + self.length > image:
            raise ChainLintError(
                f"restore of {name}: region [{self.offset}, "
                f"+{self.length}) overruns the {image}-byte ring image",
                wr=self.target, check="restore-overrun")
        if self.offset == 0 and self.length == WQE_SLOT_SIZE \
                and self.length < image:
            raise ChainLintError(
                f"restore of {name}: default one-slot shadow truncates "
                f"the {image}-byte multi-slot ring image",
                wr=self.target, check="restore-truncated")

    def prepare(self) -> None:
        """Linker hook: snapshot the pristine bytes into the shadow."""
        ref = ref_of(self.target)
        if ref is None:
            raise ChainLintError(
                f"restore of unlinked {self.target!r}", wr=self.target,
                check="unlinked-target")
        if self.capture:
            image = ref.queue.memory.read(
                ref.slot_addr + self.offset, self.length)
            self.queue.memory.write(self.shadow_addr, image)

    def build_wqe(self) -> Wqe:
        ref = ref_of(self.target)
        return wr_read(ref.slot_addr + self.offset, self.length,
                       self.shadow_addr, self.shadow_rkey,
                       signaled=False)

    @property
    def intended_opcode(self) -> int:
        return Opcode.READ


class CountBumpOp(ChainOp):
    """The recycling ADD: bump a WAIT's wqe_count by ``delta`` per lap.

    Encodes the §3.4 monotonic-counter trick: wqe_count occupies the
    high 32 bits of the u64 at offset 48, so a 64-bit ADD of
    ``delta << 32`` increments it without disturbing the neighbouring
    target/num_slots bytes.
    """

    kind = "count-bump"
    __slots__ = ("target", "delta", "rkey")

    def __init__(self, queue: ChainQueue, target, delta: int, rkey: int,
                 tag: str = ""):
        super().__init__(queue, tag)
        self.target = target          # the WAIT ChainOp or WrRef
        self.delta = delta
        self.rkey = rkey

    def build_wqe(self) -> Wqe:
        return wr_fetch_add(FieldRef(self.target, "wqe_count"),
                            self.rkey, WQE_COUNT_ADD_DELTA(self.delta),
                            signaled=False)

    @property
    def intended_opcode(self) -> int:
        return Opcode.FETCH_ADD


# ---------------------------------------------------------------------------
# Program container
# ---------------------------------------------------------------------------


@dataclass
class AimEdge:
    """A recorded self-modification wire outside the op's own symbols.

    ``src`` is the modifying WR (op/ref), or None for external writers
    such as trigger RECV scatters; ``dst`` the field written; ``length``
    the bytes deposited there. ``kind``: ``arm`` (the write flips a
    ctrl word), ``inject`` (setup-time poke wiring of a runtime data
    path), ``scatter`` (READ/RECV response scatter onto fields).

    When the wire is a setup-time poke, ``src_field`` (or ``src_sge``)
    names where on ``src`` the target address is deposited; the linker
    applies the poke, record-only edges leave both None.
    """

    src: Optional[object]
    dst: FieldRef
    length: int = 0
    kind: str = "inject"
    src_field: Optional[str] = None
    src_sge: Optional[int] = None

    def __post_init__(self):
        if not self.length:
            self.length = self.dst.width

    def __repr__(self) -> str:
        return (f"<AimEdge {self.kind} {self.length}B -> "
                f"{self.dst.field} of {wr_name(self.dst.target)}>")


@dataclass
class LoopInfo:
    """Recycled-ring metadata for the verifier and reports."""

    ring: ChainQueue
    wait: ChainOp
    restores: List[RestoreOp] = dc_field(default_factory=list)
    ring_wrs: int = 0


class ChainProgram:
    """An ordered chain-op list plus its modification edges."""

    def __init__(self, name: str = "prog"):
        self.name = name
        self.ops: List[ChainOp] = []
        self.edges: List[AimEdge] = []
        self.loops: List[LoopInfo] = []
        self._queues: List[ChainQueue] = []

    def __repr__(self) -> str:
        return f"<ChainProgram {self.name} ops={len(self.ops)}>"

    def append(self, op: ChainOp) -> ChainOp:
        op.index = len(self.ops)
        self.ops.append(op)
        if op.queue not in self._queues:
            self._queues.append(op.queue)
        return op

    def add_edge(self, edge: AimEdge) -> AimEdge:
        self.edges.append(edge)
        return edge

    @property
    def queues(self) -> List[ChainQueue]:
        return list(self._queues)

    def queue_by_wq_num(self, wq_num: int) -> Optional[ChainQueue]:
        for queue in self._queues:
            if queue.wq_num == wq_num:
                return queue
        return None

    def op_for(self, target) -> Optional[ChainOp]:
        """The program op behind an op/WrRef, if it belongs here."""
        op = op_of(target)
        if op is not None and op.index is not None \
                and op.index < len(self.ops) and self.ops[op.index] is op:
            return op
        return None

    def ops_tagged(self, prefix: str = "") -> List[ChainOp]:
        if not prefix:
            return list(self.ops)
        return [op for op in self.ops if op.tag.startswith(prefix)]

    def find_slot(self, addr: int) -> Optional[Tuple[ChainOp, int]]:
        """(op, byte offset) of a host address inside a linked WR."""
        for op in self.ops:
            ref = op.ref
            if ref is None:
                continue
            size = ref.wqe.num_slots * WQE_SLOT_SIZE
            if ref.slot_addr <= addr < ref.slot_addr + size:
                return op, addr - ref.slot_addr
        return None
