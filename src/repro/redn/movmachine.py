"""mov emulation: the Turing-completeness building blocks (Appendix A).

Dolan proved x86's ``mov`` alone simulates a Turing machine; the paper
closes its argument by showing RDMA chains emulate every required
``mov`` addressing mode (Table 7):

* **immediate** — ``mov Rdst, C`` — one WRITE from a constant pool.
* **indirect load** — ``mov Rdst, [Rsrc]`` — a WRITE copies the *value*
  of Rsrc into the next WRITE's ``laddr`` field (self-modification),
  which then moves ``[Rsrc] -> Rdst``.
* **indirect store** — ``mov [Rdst], Rsrc`` — same trick on ``raddr``.
* **indexed** — ``mov Rdst, [Rsrc + Roff]`` — a WRITE injects Roff's
  value into a FETCH_ADD's operand, the FETCH_ADD bumps the final
  WRITE's ``laddr`` field, then the load runs (the paper's "Add Roff
  to src").

Registers are 64-bit cells in registered memory ("since RDMA operations
can only perform memory-to-memory transfers, we assume these registers
are stored in memory", A.1). Register-to-register adds come for free
from the same injection trick aimed at a register instead of a WQE.

Ops execute on a *managed* queue: doorbell ordering makes each WQE's
fetch wait for its predecessor's completion, giving exactly the
consistency self-modifying chains need. The host re-posts chains to
loop (A.2's CPU-assisted unconditional jump); the NIC-only alternative
is :class:`~repro.redn.constructs.RecycledLoop`.
"""

from __future__ import annotations

from typing import Generator, List, Sequence, Union

from ..ibv.wr import wr_fetch_add, wr_write
from ..memory.layout import mask
from ..nic.wqe import Wqe
from .ir import ChainOp, ChainProgram, FieldRef, InjectWriteOp, RawOp
from .linker import aim, link_op
from .program import ChainQueue, ProgramError, RednContext, WrRef

__all__ = [
    "MovMachine",
    "MovImm",
    "MovLoad",
    "MovStore",
    "AddConst",
    "AddReg",
    "MovOp",
]

_U64 = mask(64)


class MovOp:
    """Base class for machine operations (tagging only)."""

    __slots__ = ()


class MovImm(MovOp):
    """``mov Rdst, C`` — immediate addressing."""

    __slots__ = ("dst", "value")

    def __init__(self, dst: int, value: int):
        self.dst = dst
        self.value = value & _U64

    def __repr__(self) -> str:
        return f"mov r{self.dst}, {self.value:#x}"


class MovLoad(MovOp):
    """``mov Rdst, [Rsrc]`` — indirect load."""

    __slots__ = ("dst", "src")

    def __init__(self, dst: int, src: int):
        self.dst = dst
        self.src = src

    def __repr__(self) -> str:
        return f"mov r{self.dst}, [r{self.src}]"


class MovStore(MovOp):
    """``mov [Rdst], Rsrc`` — indirect store."""

    __slots__ = ("dst", "src")

    def __init__(self, dst: int, src: int):
        self.dst = dst
        self.src = src

    def __repr__(self) -> str:
        return f"mov [r{self.dst}], r{self.src}"


class AddConst(MovOp):
    """``add Rdst, C`` — a FETCH_ADD on the register cell."""

    __slots__ = ("dst", "value")

    def __init__(self, dst: int, value: int):
        self.dst = dst
        self.value = value & _U64

    def __repr__(self) -> str:
        return f"add r{self.dst}, {self.value:#x}"


class AddReg(MovOp):
    """``add Rdst, Rsrc`` — injection WRITE + FETCH_ADD."""

    __slots__ = ("dst", "src")

    def __init__(self, dst: int, src: int):
        self.dst = dst
        self.src = src

    def __repr__(self) -> str:
        return f"add r{self.dst}, r{self.src}"


class MovMachine:
    """A register machine whose every step runs as RDMA verbs."""

    def __init__(self, ctx: RednContext, num_registers: int = 16,
                 ram_size: int = 256 * 1024, queue_slots: int = 4096,
                 name: str = "mov"):
        if num_registers < 1:
            raise ProgramError("need at least one register")
        self.ctx = ctx
        self.name = name
        self.num_registers = num_registers
        # One unified RAM: registers at the base, then caller-allocated
        # cells (tape, transition tables, constant pool). A single MR
        # covers it all, so indirect loads/stores whose targets are
        # computed at runtime always validate.
        self.ram, self.ram_mr = ctx.alloc_registered(
            ram_size, label=f"{name}-ram")
        self._ram_cursor = self.ram.addr + 8 * num_registers
        self.queue: ChainQueue = ctx.worker_queue(
            slots=queue_slots, name=f"{name}-q")
        #: Every compiled op streams through the IR linker into here —
        #: address-injection WRITEs are typed (InjectWriteOp) and their
        #: wiring recorded as edges, so chain_lint can verify the
        #: machine's self-modification the same way it verifies offloads.
        self.program = ChainProgram(name)
        # Constant pool: one 8-byte cell per distinct immediate.
        self._pool = self.alloc_ram(8 * 256, "const-pool")
        self._pool_used = 0
        self._pool_cache = {}
        self.ops_executed = 0
        self.wrs_posted = 0

    # -- memory ----------------------------------------------------------------

    def alloc_ram(self, size: int, label: str = "") -> int:
        """Carve ``size`` bytes out of machine RAM; returns the address."""
        addr = (self._ram_cursor + 7) & ~7
        if addr + size > self.ram.addr + self.ram.size:
            raise ProgramError(f"machine RAM exhausted ({label})")
        self._ram_cursor = addr + size
        return addr

    def read_ram(self, addr: int) -> int:
        return self.ctx.memory.read_u64(addr)

    def write_ram(self, addr: int, value: int) -> None:
        self.ctx.memory.write_u64(addr, value & _U64)

    # -- register file --------------------------------------------------------

    def reg_addr(self, index: int) -> int:
        if not 0 <= index < self.num_registers:
            raise ProgramError(f"register r{index} out of range")
        return self.ram.addr + 8 * index

    def read_reg(self, index: int) -> int:
        return self.ctx.memory.read_u64(self.reg_addr(index))

    def write_reg(self, index: int, value: int) -> None:
        """Host-side register initialization (setup only)."""
        self.ctx.memory.write_u64(self.reg_addr(index), value & _U64)

    def _const_cell(self, value: int) -> int:
        """Address of a pool cell holding ``value``."""
        if value not in self._pool_cache:
            if self._pool_used >= 256:
                raise ProgramError("constant pool exhausted")
            addr = self._pool + 8 * self._pool_used
            self.ctx.memory.write_u64(addr, value)
            self._pool_cache[value] = addr
            self._pool_used += 1
        return self._pool_cache[value]

    # -- compilation: one op -> WQEs -------------------------------------------

    def _post(self, wqe: Wqe) -> WrRef:
        return self._link(RawOp(self.queue, wqe))

    def _link(self, chain_op: ChainOp) -> WrRef:
        self.wrs_posted += 1
        return link_op(self.program, chain_op)

    def _inject_write(self, src_addr: int) -> WrRef:
        """The address-injection WRITE: copies a register's value onto
        a downstream WQE field (wired afterwards via ``aim``)."""
        return self._link(InjectWriteOp(self.queue, src_addr,
                                        self.queue.rkey, length=8,
                                        signaled=False))

    def _compile_op(self, op: MovOp, signal_last: bool) -> None:
        reg_rkey = self.ram_mr.rkey     # register-file key
        memory_rkey = self.ram_mr.rkey  # unified machine RAM key

        if isinstance(op, MovImm):
            self._post(wr_write(self._const_cell(op.value), 8,
                                self.reg_addr(op.dst), reg_rkey,
                                signaled=signal_last))
            return

        if isinstance(op, AddConst):
            self._post(wr_fetch_add(self.reg_addr(op.dst), reg_rkey,
                                    op.value, signaled=signal_last))
            return

        if isinstance(op, MovLoad):
            # W2 posted conceptually second, but its slot address is
            # needed by W1 — the aim edge resolves it once W2 links.
            w1 = self._inject_write(self.reg_addr(op.src))
            w2 = self._post(wr_write(0, 8, self.reg_addr(op.dst),
                                     reg_rkey, signaled=signal_last))
            aim(self.program, w1, "raddr", FieldRef(w2, "laddr"))
            return

        if isinstance(op, MovStore):
            w1 = self._inject_write(self.reg_addr(op.dst))
            w2 = self._post(wr_write(self.reg_addr(op.src), 8, 0,
                                     memory_rkey,
                                     signaled=signal_last))
            aim(self.program, w1, "raddr", FieldRef(w2, "raddr"))
            return

        if isinstance(op, AddReg):
            w1 = self._inject_write(self.reg_addr(op.src))
            add = self._post(wr_fetch_add(self.reg_addr(op.dst),
                                          reg_rkey, 0,
                                          signaled=signal_last))
            aim(self.program, w1, "raddr", FieldRef(add, "operand0"))
            return

        raise ProgramError(f"unknown op {op!r}")

    # -- execution ------------------------------------------------------------------

    def execute(self, ops: Sequence[MovOp]) -> Generator:
        """Post a chain for ``ops`` and run it to completion.

        The host's only involvement is the doorbell and the final
        completion poll (Appendix A.2). Returns the WR count executed.
        """
        if not ops:
            return 0
        start_signals = self.queue.signaled_posted
        posted_before = self.wrs_posted
        for index, op in enumerate(ops):
            self._compile_op(op, signal_last=(index == len(ops) - 1))
        self.queue.doorbell()
        done = self.queue.cq.wait_for_count(start_signals + 1)
        yield done
        self.ops_executed += len(ops)
        return self.wrs_posted - posted_before

    # All mov-machine state is memory; registers may also alias
    # arbitrary data regions the caller registered.

    def memory_rkey_for(self, mr) -> int:
        return mr.rkey
