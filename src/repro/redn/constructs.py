"""Loop constructs: unrolled iteration helpers and WQ recycling (§3.4).

Two strategies, with the paper's trade-off:

* **Unrolled** — the CPU posts every iteration ahead of time (possible
  when the bound is known). Each iteration costs the same WRs as an
  ``if`` (Table 2: 1C + 1A + 3E) and executes fastest. The iteration
  scaffolding lives in :class:`ProgramBuilder`; offloads compose it
  directly (see :mod:`repro.offloads.list_traversal`).

* **WQ recycling** — :class:`RecycledLoop` builds a managed ring that
  re-executes *itself* forever with zero CPU involvement: the ring is
  filled exactly, a relative tail ENABLE re-arms it past the producer
  index, an ADD verb bumps the head WAIT's absolute completion count
  (monotonic CQ counters, §3.4), and restore READs rewrite any
  self-modified WQE back to its template image from a shadow buffer.
  Per iteration this costs the extra 2 READs + 1 ADD + 1 ENABLE the
  paper reports — but the offload stays alive across host software
  failures (§5.6).

Both lower through the IR: restores become :class:`RestoreOp` (whose
construction *asserts* the shadow region matches the ring image it
restores — a short shadow would silently truncate the re-templating),
the ADD becomes :class:`CountBumpOp` and the rearms
:class:`EnableOp` — so the verifier can tell this deliberate
upstream rewriting from genuine doorbell-order hazards.

The **break** mechanism (Fig 6) is provided by :class:`BreakImage`: a
single WRITE (armed by the predicate CAS) that overwrites a prepared
two-WQE image — arming the response *and* clearing the SIGNALED flag of
the iteration's gate WR, so the next iteration's WAIT never fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..nic.opcodes import Opcode, WrFlags
from ..nic.queue import CompletionQueue
from ..nic.wqe import (
    WQE_HEADER,
    WQE_SLOT_SIZE,
    Wqe,
    field_location,
)
from .builder import ProgramBuilder
from .ir import (
    AimEdge,
    CountBumpOp,
    EnableOp,
    FieldRef,
    LoopInfo,
    RestoreOp,
    WQE_COUNT_ADD_DELTA,
)
from .program import ChainQueue, ProgramError, WrRef

__all__ = ["RecycledLoop", "BreakImage", "WQE_COUNT_ADD_DELTA"]


@dataclass
class _RestoreSpec:
    target: WrRef
    offset: int
    length: int
    shadow_addr: int = 0   # filled at build time


class RecycledLoop:
    """A self-recycling managed ring: the CPU-free unbounded loop.

    Usage::

        loop = RecycledLoop(builder, trigger_cq, trigger_delta=1)
        ref = loop.body(some_wqe, tag="while.body")
        loop.restore(ref)                  # re-template after each lap
        loop.rearm(client_queue)           # ENABLE another queue per lap
        loop.build()                       # sizes + posts the exact ring
        loop.start()                       # one initial doorbell; the
                                           # NIC owns the loop from here
    """

    def __init__(self, builder: ProgramBuilder,
                 trigger_cq: CompletionQueue, trigger_delta: int = 1,
                 name: str = "while", tag: str = "while"):
        self.builder = builder
        self.trigger_cq = trigger_cq
        self.trigger_delta = trigger_delta
        self.name = name
        self.tag = tag
        self._body: List[Tuple[Wqe, str]] = []
        self._restores: List[_RestoreSpec] = []
        self._rearms: List[Tuple[ChainQueue, int]] = []
        self.ring: Optional[ChainQueue] = None
        self.wait_ref: Optional[WrRef] = None
        self.body_refs: List[WrRef] = []
        self._built = False

    # -- plan phase -----------------------------------------------------------

    def body(self, wqe: Wqe, tag: str = "") -> int:
        """Queue a body WR; returns its position (resolve after build)."""
        if self._built:
            raise ProgramError("loop already built")
        self._body.append((wqe, tag or f"{self.tag}.body"))
        return len(self._body) - 1

    def restore(self, body_index_or_ref, offset: int = 0,
                length: int = WQE_SLOT_SIZE) -> None:
        """Restore ``length`` template bytes of a WR after each lap.

        Accepts a body position (int) for ring WRs, or a WrRef for WRs
        on other queues (e.g. a response template on a client queue).
        """
        if self._built:
            raise ProgramError("loop already built")
        self._restores.append(_RestoreSpec(body_index_or_ref, offset,
                                           length))

    def rearm(self, queue, count: int = 1) -> None:
        """Per lap, ENABLE ``queue`` forward by ``count`` WRs.

        Accepts a :class:`ChainQueue` or a raw :class:`WorkQueue` —
        re-arming the trigger *recv ring* this way is what lets a
        recycled service accept requests forever without the CPU
        re-posting RECVs (the §5.6 failure-resiliency requirement).
        """
        self._rearms.append((queue, count))

    # -- build phase --------------------------------------------------------------

    @property
    def ring_wrs(self) -> int:
        # WAIT + body + restores + ADD + rearms + self-wrap ENABLE
        return (1 + len(self._body) + len(self._restores) + 1
                + len(self._rearms) + 1)

    def build(self) -> None:
        if self._built:
            raise ProgramError("loop already built")
        self._built = True
        builder = self.builder
        ctx = builder.ctx
        ring = builder.worker_queue(slots=self.ring_wrs,
                                    name=f"{self.name}-ring")
        self.ring = ring

        # Head WAIT: one lap per `trigger_delta` completions. Absolute
        # count for lap 1; the tail ADD bumps it before every wrap.
        self.wait_ref = builder.wait(ring, self.trigger_cq,
                                     self.trigger_delta,
                                     tag=f"{self.tag}.wait")
        restores: List[RestoreOp] = []

        for wqe, tag in self._body:
            self.body_refs.append(builder.emit(ring, wqe, tag=tag))

        # Shadow cells + restore READs. The RestoreOp captures the
        # just-posted (pristine) ring bytes into its shadow at link
        # time, after asserting the region matches the target's image.
        shadow_size = sum(spec.length for spec in self._restores) or 8
        shadow_alloc, shadow_mr = ctx.alloc_registered(
            shadow_size, label=f"{self.name}-shadow")
        cursor = shadow_alloc.addr
        for spec in self._restores:
            target = spec.target
            if isinstance(target, int):
                target = self.body_refs[target]
                spec.target = target
            spec.shadow_addr = cursor
            op = RestoreOp(ring, target, spec.offset, spec.length,
                           spec.shadow_addr, shadow_mr.rkey,
                           capture=True, tag=f"{self.tag}.restore")
            builder.link(op)
            restores.append(op)
            cursor += spec.length

        # ADD: bump the head WAIT's wqe_count by trigger_delta per lap.
        builder.link(CountBumpOp(ring, self.wait_ref,
                                 self.trigger_delta, ring.rkey,
                                 tag=f"{self.tag}.add"))

        for queue, count in self._rearms:
            builder.link(EnableOp(ring, queue, count, relative=True,
                                  tag=f"{self.tag}.rearm"))

        # Tail: wrap the ring around itself, one full lap at a time.
        builder.link(EnableOp(ring, ring, self.ring_wrs, relative=True,
                              tag=f"{self.tag}.wrap"))

        if ring.wq.posted_count != self.ring_wrs:
            raise ProgramError(
                f"ring not exactly filled: {ring.wq.posted_count} "
                f"!= {self.ring_wrs}")
        builder.program.loops.append(LoopInfo(
            ring=ring, wait=self.wait_ref.ir_op, restores=restores,
            ring_wrs=self.ring_wrs))

    def start(self) -> None:
        """The single CPU action: enable the first lap."""
        if not self._built:
            raise ProgramError("build() the loop first")
        self.ring.doorbell()

    @property
    def laps_completed(self) -> int:
        """Full ring traversals executed so far (NIC-side progress)."""
        if self.ring is None:
            return 0
        return self.ring.wq.fetched_count // self.ring_wrs


class BreakImage:
    """The Fig 6 break: one WRITE arming a response and killing a gate.

    Layout requirement: ``response`` and ``gate`` are *adjacent* WQEs on
    the same queue (response first). The prepared image holds:

    * a response WQE identical to the posted template but with its
      intended opcode armed (runtime-patched fields are kept current by
      aiming the data READ's scatter at the image too), and
    * the gate WQE with its SIGNALED flag cleared, so the completion
      the next iteration WAITs on never happens.

    ``emit_break_write`` posts the (disarmed) WRITE covering both WQEs;
    the loop's predicate CAS arms it on a key match. The break template
    records its (response, gate) pair on the IR op — the verifier
    exempts this intentional two-WQE span from the field-granularity
    inject checks.
    """

    def __init__(self, builder: ProgramBuilder, response: WrRef,
                 gate: WrRef, tag: str = "break"):
        if response.queue is not gate.queue:
            raise ProgramError("response and gate must share a queue")
        if gate.slot_cursor != response.slot_cursor + response.wqe.num_slots:
            raise ProgramError("gate must immediately follow response")
        self.builder = builder
        self.response = response
        self.gate = gate
        self.tag = tag
        ctx = builder.ctx
        # Image = armed response WQE + gate WQE with SIGNALED cleared.
        self.image_len = WQE_SLOT_SIZE * 2
        self._alloc, self._mr = ctx.alloc_registered(
            self.image_len, label=f"{tag}-image")
        memory = ctx.memory
        armed = bytearray(response.snapshot_bytes(WQE_SLOT_SIZE))
        WQE_HEADER.pack_into(
            armed, 0, "ctrl",
            ProgramBuilder.live_ctrl_for(response))
        dead_gate = bytearray(gate.snapshot_bytes(WQE_SLOT_SIZE))
        flags = WQE_HEADER.unpack_field(dead_gate, 0, "flags")
        WQE_HEADER.pack_into(dead_gate, 0, "flags",
                             flags & ~WrFlags.SIGNALED)
        memory.write(self._alloc.addr, bytes(armed))
        memory.write(self._alloc.addr + WQE_SLOT_SIZE, bytes(dead_gate))

    @property
    def image_addr(self) -> int:
        return self._alloc.addr

    def image_field_addr(self, field: str) -> int:
        """Address of a response field *inside the image* — data READs
        scatter runtime values here as well as into the live WQE."""
        return self._alloc.addr + field_location(field)[0]

    def emit_break_write(self, queue: ChainQueue,
                         signaled: bool = True) -> WrRef:
        """Post the disarmed break WRITE (a NOOP template)."""
        live = Wqe(opcode=Opcode.WRITE, laddr=self.image_addr,
                   length=self.image_len,
                   raddr=self.response.slot_addr,
                   rkey=self.response.queue.rkey,
                   flags=WrFlags.SIGNALED if signaled else 0)
        ref = self.builder.template(queue, live, tag=f"{self.tag}.write")
        ref.ir_op.break_targets = (self.response, self.gate)
        # Record the two-WQE overwrite as a modification edge so the
        # verifier (and reports) see the break datapath.
        self.builder.program.add_edge(AimEdge(
            src=ref, dst=FieldRef(self.response, "ctrl"),
            length=self.image_len, kind="inject"))
        return ref
