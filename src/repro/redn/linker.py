"""The RedN linker: lowering chain IR onto work-queue rings.

The linker is the only stage that turns symbols into bytes. Two modes:

* **streaming** (:func:`link_op`) — each op is appended to its program
  and posted immediately. This is how :class:`ProgramBuilder` and the
  offloads operate: chain WRs interleave with trigger RECVs and
  doorbells mid-simulation, so emission order *is* program order and
  the lowered bytes land exactly where (and when) the pre-IR
  hand-assembly put them.
* **batch** (:func:`link`) — a deferred program (ops created but not
  posted, e.g. after :func:`repro.redn.passes.optimize` rewrote it) is
  lowered in op order, then recorded aim wiring is poked into the
  rings.

Symbol resolution happens inside each op's ``build_wqe`` (field
addresses, arm words, signaled counts) against the queue state at the
moment the op posts — which is what makes streaming and batch linking
agree: in both, every op links after all ops before it in program
order.
"""

from __future__ import annotations

from typing import List, Optional

from .ir import (
    AimEdge,
    ChainLintError,
    ChainOp,
    ChainProgram,
    FieldRef,
    InjectWriteOp,
    RestoreOp,
)
from .program import WrRef

__all__ = ["link_op", "link", "aim", "aim_sge"]


def link_op(program: ChainProgram, op: ChainOp,
            append: bool = True) -> WrRef:
    """Lower one op: resolve its symbols, post its WQE, bind the ref."""
    if op.linked:
        raise ChainLintError(f"{op!r} already linked", wr=op,
                             check="double-link")
    if append:
        program.append(op)
    if isinstance(op, RestoreOp):
        op.prepare()
    wqe = op.build_wqe()
    ref = op.queue.post(wqe, tag=op.tag)
    op.ref = ref
    ref.ir_op = op
    op.signal_seq = op.queue.signaled_posted
    return ref


def link(program: ChainProgram) -> List[WrRef]:
    """Batch-lower a deferred program; returns refs in op order."""
    refs = []
    for op in program.ops:
        if not op.linked:
            link_op(program, op, append=False)
        refs.append(op.ref)
    for edge in program.edges:
        _apply_edge(edge)
    return refs


def aim(program: ChainProgram, src, src_field: str, dst: FieldRef,
        kind: str = "inject", length: int = 0) -> AimEdge:
    """Wire ``src``'s ``src_field`` to carry ``dst``'s address.

    The setup-time poke that used to be ``ref.poke(field,
    other.field_addr(...))`` — now recorded on the program so the
    verifier sees the modification edge. Applied immediately when both
    ends are linked (streaming mode), else deferred to :func:`link`.
    """
    edge = program.add_edge(AimEdge(src=src, dst=dst, length=length,
                                    kind=kind, src_field=src_field))
    src_op = program.op_for(src)
    if isinstance(src_op, InjectWriteOp) and src_op.target is None:
        src_op.target = dst
    _apply_edge(edge)
    return edge


def aim_sge(program: ChainProgram, src, sge_index: int, dst: FieldRef,
            kind: str = "scatter", length: int = 0) -> AimEdge:
    """Re-aim scatter entry ``sge_index`` of ``src`` at ``dst``."""
    edge = program.add_edge(AimEdge(src=src, dst=dst, length=length,
                                    kind=kind, src_sge=sge_index))
    _apply_edge(edge)
    return edge


def _apply_edge(edge: AimEdge) -> None:
    from .ir import ref_of   # local import: ir must not import linker

    src_ref = ref_of(edge.src)
    if src_ref is None or (edge.src_field is None
                           and edge.src_sge is None):
        return   # record-only edge (e.g. an external RECV scatter)
    if edge.dst.ref is None:
        return   # deferred: link() re-applies once dst is lowered
    if edge.src_field is not None:
        src_ref.poke(edge.src_field, edge.dst.addr)
    else:
        src_ref.poke_sge(edge.src_sge, edge.dst.addr)
