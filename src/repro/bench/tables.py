"""Plain-text table/figure rendering for benchmark output.

Benchmarks print their reproduced rows next to the paper's reported
numbers so a reader can eyeball the shape match without opening
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table", "render_series", "banner"]


def banner(title: str) -> str:
    line = "=" * max(60, len(title) + 4)
    return f"\n{line}\n  {title}\n{line}"


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width table with auto-sized columns."""
    materialized: List[List[str]] = [[str(cell) for cell in row]
                                     for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(row):
        return "  ".join(cell.ljust(widths[index])
                         for index, cell in enumerate(row))

    lines = []
    if title:
        lines.append(banner(title))
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[object],
                  ys: Sequence[float], unit: str = "us") -> str:
    """One figure series as 'x -> y unit' lines."""
    pairs = ", ".join(f"{x}:{y:.2f}" for x, y in zip(xs, ys))
    return f"{name} [{unit}]: {pairs}"
