"""The simulated evaluation testbed (paper §5, "Testbed").

Three dual-socket servers — 16 cores, 128 GB DRAM, 100 Gb/s ConnectX-5
— connected back-to-back. ``Testbed`` assembles the simulated
equivalent and provides the conveniences every benchmark needs: client
protection domains, verbs contexts, and process drivers.
"""

from __future__ import annotations

from typing import List, Optional

from ..ibv.api import VerbsContext
from ..memory.region import ProtectionDomain
from ..net.fabric import Fabric
from ..net.node import Host
from ..nic.models import CONNECTX5, DeviceModel
from ..sim.core import Simulator
from ..sim.rand import DEFAULT_SEED, SeededStreams

__all__ = ["Testbed"]


class Testbed:
    """server + N client hosts on back-to-back links."""

    __test__ = False   # not a pytest collectable despite the name

    def __init__(self, num_clients: int = 2, seed: int = DEFAULT_SEED,
                 model: DeviceModel = CONNECTX5, num_cores: int = 16,
                 server_memory: int = 256 * 1024 * 1024,
                 client_memory: Optional[int] = None,
                 nic_ports: int = 1, sim: Optional[Simulator] = None):
        # A bed normally owns its simulator; pass ``sim`` to mount the
        # bed on an existing one — e.g. a shard of a
        # :class:`repro.sim.sharded.ShardedSimulation` cluster.
        self.sim = sim if sim is not None else Simulator()
        self.streams = SeededStreams(seed)
        self.server = Host(self.sim, "server", model=model,
                           num_cores=num_cores,
                           memory_size=server_memory,
                           nic_ports=nic_ports, streams=self.streams)
        self.clients: List[Host] = []
        self.fabric = Fabric(self.sim)
        # ``client_memory`` matters when many beds share one process
        # (the cluster benchmark): the default 256 MB per client host
        # is real allocated memory, not simulated bookkeeping.
        client_kwargs = {} if client_memory is None else {
            "memory_size": client_memory}
        for index in range(num_clients):
            client = Host(self.sim, f"client{index}", model=model,
                          num_cores=num_cores, streams=self.streams,
                          **client_kwargs)
            self.fabric.connect(self.server.nic, client.nic)
            self.clients.append(client)
        self._client_pds = {}

    def client_pd(self, index: int = 0) -> ProtectionDomain:
        if index not in self._client_pds:
            self._client_pds[index] = ProtectionDomain(
                self.clients[index].memory, name=f"client{index}-pd")
        return self._client_pds[index]

    def client_verbs(self, index: int = 0, **kwargs) -> VerbsContext:
        return VerbsContext(self.sim, cpu=self.clients[index].cpu,
                            name=f"client{index}-verbs", **kwargs)

    def run(self, generator, until: Optional[int] = None):
        return self.sim.run_process(generator, until=until)
