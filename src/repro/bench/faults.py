"""Deterministic fleet fault scenarios for the incident triage plane.

The degraded-mode half of the fleet benchmark: two injectable faults
generalizing the paper's fig15/fig16 stories to the sharded KV fleet,
each a pure function of simulated time so both drive modes produce the
same degradation, the same telemetry stream and — through
:class:`~repro.obs.sentry.FleetSentry` — the same incident report,
byte for byte.

* **storm** (fig15 generalized) — a CPU-contention storm on the *hot*
  shard (the consistent-hash owner of the globally hottest key):
  ``lanes`` antagonist QPs on the shard's gateway NIC, one per
  processing unit, each blasting waves of RDMA WRITEs into a sink
  buffer between two deterministic simulated timestamps. Foreground
  gets on that shard contend for PU time; utilization and queueing
  explode, the fleet's tail inflates, and the sentry must pin the
  blame on the contended shard's ``pu_exec``/``queueing``.
* **failover** (fig16 generalized) — drain-then-kill of the hot
  shard: at ``t_switch`` its clients stop and the fleet's request
  routing swaps to a :meth:`~repro.net.conn.HashRing.without` ring
  (the killed shard's keys re-home to their successor vnodes, which
  were preloaded with the values at build time); after a drain slack
  the :class:`~repro.net.failures.CrashInjector` destroys the shard's
  server process. The killed shard flatlines while the survivors
  absorb its load, and the sentry must name the killed shard and the
  ring movement.
* **clean** — no fault; the sentry must stay silent (the false-
  positive gate).

Every constant is a deliberate, documented simulated time; nothing is
sampled. Fault metadata (:class:`FleetFault`) rides into the report so
:func:`~repro.obs.sentry.triage_verdict` can classify every incident
as explained / missed / false-positive and measure detection latency
in simulated nanoseconds.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..ibv import wr_write
from ..memory.region import AccessFlags
from ..net.conn import QpPool
from ..net.failures import CrashInjector
from .fleet import VALUE_SIZE, FleetScenario, build_fleet

__all__ = ["SCENARIOS", "FleetFault", "TriageRun", "run_triage",
           "inject_storm", "inject_failover",
           "STORM_START_NS", "STORM_END_NS", "FAILOVER_SWITCH_NS",
           "FAILOVER_KILL_NS"]

SCENARIOS = ("storm", "failover", "clean")

#: Storm window: starts after every shard has sealed enough windows to
#: establish a trailing baseline (>= min_baseline at 20 us windows).
STORM_START_NS = 160_000
STORM_END_NS = 360_000
STORM_LANES = 8            # one antagonist QP per gateway-NIC PU
STORM_BURST = 16           # WRITEs per wave (one signaled)
STORM_BYTES = 2048

#: Failover: routing swaps (and the doomed shard's clients stop) at
#: t_switch; the crash lands after a drain slack generous enough for
#: every in-flight request — including gets queued on the hot-key
#: offload lane — to complete before the server's QPs are destroyed.
FAILOVER_SWITCH_NS = 240_000
FAILOVER_KILL_NS = 1_000_000


class FleetFault:
    """Metadata for one injected fault, carried into the report."""

    __slots__ = ("kind", "shard", "bed", "t_inject_ns", "t_clear_ns",
                 "expect_phases", "detail")

    def __init__(self, kind: str, shard: int, bed: str,
                 t_inject_ns: int, t_clear_ns: Optional[int],
                 expect_phases, detail: Optional[dict] = None):
        self.kind = kind
        self.shard = shard
        self.bed = bed
        self.t_inject_ns = t_inject_ns
        self.t_clear_ns = t_clear_ns
        #: Blame phases an explaining incident's top cause may carry.
        self.expect_phases = tuple(expect_phases)
        self.detail = detail or {}

    def __repr__(self) -> str:
        return (f"<FleetFault {self.kind} shard={self.shard} "
                f"t={self.t_inject_ns}>")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind, "shard": self.shard, "bed": self.bed,
            "t_inject_ns": self.t_inject_ns,
            "t_clear_ns": self.t_clear_ns,
            "expect_phases": list(self.expect_phases),
            "detail": self.detail,
        }


# -- the CPU-contention storm (fig15 generalized) --------------------------


def _antagonist(sim, lease, src_addr: int, sink_addr: int, rkey: int,
                t_start: int, t_end: int, burst: int, size: int):
    """One storm lane: WRITE waves from t_start until t_end."""
    delay = t_start - sim.now
    if delay > 0:
        yield delay
    while sim.now < t_end:
        for shot in range(burst - 1):
            lease.post_send(wr_write(src_addr, size, sink_addr, rkey,
                                     wr_id=shot, signaled=False))
        lease.post_send(wr_write(src_addr, size, sink_addr, rkey,
                                 wr_id=burst - 1, signaled=True))
        cqe = yield from lease.wait_cqe()
        assert cqe.ok, f"storm WRITE failed: {cqe}"


def inject_storm(scenario: FleetScenario, *,
                 t_start: int = STORM_START_NS,
                 t_end: int = STORM_END_NS,
                 lanes: int = STORM_LANES,
                 burst: int = STORM_BURST,
                 size: int = STORM_BYTES) -> FleetFault:
    """Arm a CPU-contention storm on the hot shard; returns the fault.

    Must run against a freshly built (un-run) scenario: the antagonist
    processes and their QP pool are part of the shard's simulation, so
    the degradation is shard-local and identical in both drive modes.
    """
    hot = scenario.ring.owner(1)
    rig = scenario.rigs[hot]
    bed = rig.bed

    def connect(qp, index):
        server_qp = rig.server.process.create_qp(
            rig.server.pd, name=f"{rig.shard.name}-storm-ps{index}")
        server_qp.connect(qp)

    pool = QpPool(bed.clients[0].nic, bed.client_pd(0), capacity=lanes,
                  connect=connect, send_slots=2 * burst + 2,
                  recv_slots=4, name=f"{rig.shard.name}-storm")
    sink = rig.server.process.alloc(size, label="storm-sink")
    sink_mr = rig.server.pd.register(sink, access=AccessFlags.ALL)
    src = bed.clients[0].memory.alloc(size, owner="client",
                                      label="storm-src")
    for lane in range(lanes):
        lease = pool.lease(tag=f"storm{lane}")
        rig.sim.process(
            _antagonist(rig.sim, lease, src.addr, sink.addr,
                        sink_mr.rkey, t_start, t_end, burst, size),
            name=f"{rig.shard.name}-storm{lane}")
    return FleetFault(
        "storm", hot, rig.shard.name, t_start, t_end,
        expect_phases=("pu_exec", "queueing"),
        detail={"lanes": lanes, "burst": burst, "bytes": size})


# -- shard-kill / failover (fig16 generalized) -----------------------------


def inject_failover(scenario: FleetScenario, *,
                    t_switch: int = FAILOVER_SWITCH_NS,
                    t_kill: int = FAILOVER_KILL_NS) -> FleetFault:
    """Arm drain-then-kill failover of the hot shard; returns the fault.

    The ring movement is computed here (old ring vs
    :meth:`~repro.net.conn.HashRing.without`), the inherited keys are
    preloaded into their successor shards' KV stores, the fleet's
    routing override swaps rings at ``t_switch``, the doomed shard's
    own clients quiesce at the same instant, and the
    :class:`CrashInjector` destroys the server process at ``t_kill``.
    """
    if t_kill <= t_switch:
        raise ValueError("t_kill must leave drain slack after t_switch")
    killed = scenario.ring.owner(1)
    rig = scenario.rigs[killed]
    ring_before = scenario.ring
    ring_after = ring_before.without(killed)
    moves: Dict[int, int] = {}
    for key in rig.owned_keys:
        inheritor = ring_after.owner(key)
        moves[key] = inheritor
        scenario.rigs[inheritor].server.set(
            key, bytes([key & 0xFF]) * VALUE_SIZE)

    def route(key: int, now: int) -> int:
        ring = ring_before if now < t_switch else ring_after
        return ring.owner(key)

    scenario.route = route
    rig.stop_at = t_switch
    injector = CrashInjector(rig.sim, rig.bed.server)
    injector.kill_process_at(t_kill, rig.server.process)
    inheritors = sorted(set(moves.values()))
    return FleetFault(
        "failover", killed, rig.shard.name, t_switch, t_kill,
        expect_phases=("flatline", "skew"),
        detail={
            "keys_moved": len(moves),
            "inheritors": inheritors,
            "hot_key_inheritor": moves.get(rig.hot_key),
            "t_kill_ns": t_kill,
        })


# -- the triage runner -----------------------------------------------------


class TriageRun:
    """Everything one fault-scenario run produced."""

    __slots__ = ("scenario", "serial", "faults", "report",
                 "report_json", "verdict", "fingerprint", "measures")

    def __init__(self, scenario: str, serial: bool, faults: List[dict],
                 report: dict, report_json: str, verdict: dict,
                 fingerprint: dict, measures: dict):
        self.scenario = scenario
        self.serial = serial
        self.faults = faults
        self.report = report
        self.report_json = report_json
        self.verdict = verdict
        self.fingerprint = fingerprint
        self.measures = measures

    def __repr__(self) -> str:
        return (f"<TriageRun {self.scenario} "
                f"incidents={self.verdict['incidents']}>")


def run_triage(scenario: str = "storm", *, serial: bool = False,
               num_shards: int = 4, clients_per_shard: int = 16,
               requests_per_client: int = 16, pool_qps: int = 8,
               window_ns: int = 20_000, exemplars: int = 4,
               capture: bool = True,
               sentry_kwargs: Optional[dict] = None) -> TriageRun:
    """Build the fleet, arm one fault scenario, run, and triage.

    Returns a :class:`TriageRun` whose ``report_json`` is the
    byte-identity surface: for a fixed scenario and sizing it must be
    identical between the sharded and serial drives and across repeat
    runs.
    """
    from ..obs.recorder import FlightRecorder
    from ..obs.sentry import FleetSentry, triage_verdict
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; "
                         f"pick one of {SCENARIOS}")
    fleet_scenario = build_fleet(
        num_shards=num_shards, clients_per_shard=clients_per_shard,
        requests_per_client=requests_per_client, pool_qps=pool_qps,
        telemetry_path="", exemplars=0)
    telemetry = fleet_scenario.attach_telemetry(
        window_ns=window_ns, exemplars=exemplars)

    faults: List[FleetFault] = []
    if scenario == "storm":
        faults.append(inject_storm(fleet_scenario))
    elif scenario == "failover":
        faults.append(inject_failover(fleet_scenario))

    recorders: Dict[int, FlightRecorder] = {}
    if capture:
        # One bounded flight recorder per implicated bed; the sentry
        # cuts its incident slice out of the ring after the run.
        for fault in faults:
            rig = fleet_scenario.rigs[fault.shard]
            recorders[fault.shard] = FlightRecorder(
                rig.sim, name=f"{rig.shard.name}-triage",
                capacity=1 << 15, monitor=False)

    kwargs = dict(skew_min_total=3 * num_shards)
    kwargs.update(sentry_kwargs or {})
    sentry = FleetSentry(window_ns, recorders=recorders,
                         **kwargs).subscribe(telemetry)

    fingerprint, measures = fleet_scenario.run(serial=serial)
    for recorder in recorders.values():
        recorder.close()

    fault_dicts = [fault.to_dict() for fault in faults]
    report = sentry.report(
        faults=fault_dicts,
        context={"scenario": scenario,
                 "num_shards": num_shards,
                 "clients_per_shard": clients_per_shard,
                 "requests_per_client": requests_per_client,
                 "pool_qps": pool_qps,
                 "exemplars": exemplars})
    report_json = json.dumps(report, sort_keys=True, indent=2) + "\n"
    return TriageRun(scenario, serial, fault_dicts, report, report_json,
                     triage_verdict(report), fingerprint, measures)
