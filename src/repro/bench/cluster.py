"""Multi-bed cluster scenario for the sharded simulator.

``N`` independent testbeds — each a full :class:`Testbed` (server +
client host, NICs, back-to-back link) mounted on its own shard of a
:class:`~repro.sim.sharded.ShardedSimulation` — are joined into a
bidirectional ring of inter-bed links. Each bed runs ``M`` closed-loop
cluster clients that issue RPCs to the next bed around the ring; the
remote bed's frontend services every RPC with local RDMA work (a burst
of unsignaled WRITEs capped by a signaled CAS over its own
client->server connection, the Table 3 idiom) and sends the reply back
over the reverse channel.

This is the ``cluster_simspeed`` workload in ``tools/perf_smoke.py``:
the same scenario is driven once by the conservative sharded
synchronizer (:meth:`ShardedSimulation.run`) and once by the
one-timestamp-window serial merge (:meth:`ShardedSimulation.run_serial`);
both must produce bit-identical results (the :meth:`ClusterScenario.run`
fingerprint includes per-bed event counts), and the events/sec ratio
between the two is the reported speedup.

The inter-bed link latency doubles as the synchronizer's lookahead, so
it is deliberately the widest latency in the system: with ~1 µs links
over beds whose local events are tens of nanoseconds apart, a sharded
round lets every bed retire hundreds of events per synchronizer visit
while the serial merge pays one visit per distinct timestamp.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from .. import obs as _obs
from ..ibv import wr_cas, wr_write
from ..net.conn import QpPool
from ..sim.sharded import Shard, ShardChannel, ShardedSimulation
from .testbed import Testbed

__all__ = ["ClusterScenario", "build_cluster"]

#: One-way inter-bed link latency (and therefore the lookahead).
CLUSTER_LINK_NS = 1000

#: Client think time between a reply and the next request.
THINK_NS = 2000

#: Unsignaled WRITEs per RPC before the signaled CAS.
WRITES_PER_REQUEST = 8

_BED_MEMORY = 4 * 1024 * 1024

#: Hot-key skew for telemetry attribution: 16 logical keys with a
#: zipf-ish mass concentration on key 0 — a pure function of
#: (bed, client, seq), so the key stream is deterministic and
#: mode-independent like everything else in the fingerprint.
_SKEW_TABLE = ("k0", "k0", "k0", "k0", "k0", "k1", "k1", "k1",
               "k2", "k2", "k3", "k3", "k4", "k5", "k6", "k7")


class _BedRig:
    """One bed's RDMA plumbing, shared by its frontend process.

    The client side goes through the connection plane
    (:class:`repro.net.conn.QpPool`) rather than a hand-wired QP: the
    frontend holds a single long-lived lease on a capacity-1 pool.
    Generation-0 cookie stamps are the identity on ``wr_id`` and the
    pool's shared-CQ router adds no events, so this is byte- and
    timing-identical to the pre-pool wiring — the ``cluster_simspeed``
    fingerprint gate holds that claim.
    """

    __slots__ = ("bed", "shard", "pool", "lease", "qp", "cq", "src_addr",
                 "sink_addr", "rkey")

    def __init__(self, bed: Testbed, shard: Shard):
        self.bed = bed
        self.shard = shard
        proc = bed.server.spawn_process("sink")
        pd = proc.create_pd()
        sink = proc.alloc(4096, label="sink")
        sink_mr = pd.register(sink)
        server_qp = proc.create_qp(pd, name=f"{shard.name}-s")
        self.pool = QpPool(
            bed.clients[0].nic, bed.client_pd(0), capacity=1,
            connect=lambda qp, _index: server_qp.connect(qp),
            send_slots=64, name=f"{shard.name}-c")
        self.lease = self.pool.lease(tag=f"{shard.name}-frontend")
        self.qp = self.lease.qp
        self.cq = self.pool.send_cq
        self.src_addr = bed.clients[0].memory.alloc(
            64, owner="client").addr
        self.sink_addr = sink.addr
        self.rkey = sink_mr.rkey

    def service(self):
        """The per-RPC local RDMA work: WRITE burst + signaled CAS."""
        base = self.cq.count
        for _ in range(WRITES_PER_REQUEST):
            self.lease.post_send(
                wr_write(self.src_addr, 64, self.sink_addr,
                         self.rkey, signaled=False))
        self.lease.post_send(wr_cas(self.sink_addr, self.rkey, 0, 1,
                                    signaled=True))
        return self.cq.wait_for_count(base + 1)


def _frontend(rig: _BedRig, reply_to: Dict[int, ShardChannel]):
    """Serve inbound RPCs forever; quiesces between requests."""
    rpc = rig.shard.mailbox("rpc")
    sim = rig.bed.sim
    while True:
        src_index, client_id, seq = yield rpc.get()
        yield rig.service()
        if _obs.enabled:
            telemetry = sim.telemetry
            if telemetry is not None:
                telemetry.serviced()
        reply_to[src_index].send(f"rsp{client_id}", seq)


def _client(rig: _BedRig, chan: ShardChannel, client_id: int,
            requests: int, start_skew: int):
    """Closed loop: RPC to the next bed, await the reply, think.

    ``start_skew`` and the think-time dither keep the beds out of
    phase-lock: real cluster clients do not start on the same
    nanosecond, and perfectly aligned beds would make every timestamp
    collide across shards — flattering the serial merge with many
    events per visit it would never see in practice. Both are pure
    functions of (bed, client, seq), so the schedule stays deterministic
    and mode-independent.
    """
    sim = rig.bed.sim
    rsp = rig.shard.mailbox(f"rsp{client_id}")
    if start_skew:
        yield start_skew
    latency_sum = 0
    dither_base = rig.shard.index * 13 + client_id * 7
    bed_index = rig.shard.index
    for seq in range(requests):
        start = sim.now
        chan.send("rpc", (bed_index, client_id, seq))
        reply = yield rsp.get()
        assert reply == seq, f"out-of-order reply {reply} != {seq}"
        latency_sum += sim.now - start
        if _obs.enabled:
            telemetry = sim.telemetry
            if telemetry is not None:
                telemetry.request_complete(
                    sim.now - start,
                    key=_SKEW_TABLE[(bed_index * 31 + client_id * 17
                                     + seq * 7) % 16])
        yield THINK_NS + (dither_base + seq * 31) % 97
    return latency_sum


class ClusterScenario:
    """A built cluster, runnable exactly once (sharded or serial)."""

    def __init__(self, num_beds: int, clients_per_bed: int,
                 requests_per_client: int, link_ns: int):
        self.num_beds = num_beds
        self.clients_per_bed = clients_per_bed
        self.requests_per_client = requests_per_client
        self.sharded = ShardedSimulation()
        self.rigs: List[_BedRig] = []
        for index in range(num_beds):
            shard = self.sharded.add_shard(f"bed{index}")
            bed = Testbed(num_clients=1, sim=shard.sim,
                          server_memory=_BED_MEMORY,
                          client_memory=_BED_MEMORY)
            self.rigs.append(_BedRig(bed, shard))
        # Bidirectional ring: requests go forward, replies backward.
        self._forward: List[ShardChannel] = []
        self._reply_to: List[Dict[int, ShardChannel]] = [
            {} for _ in range(num_beds)]
        for index in range(num_beds):
            nxt = (index + 1) % num_beds
            fwd, back = self.sharded.link(
                self.sharded.shards[index], self.sharded.shards[nxt],
                one_way_ns=link_ns)
            self._forward.append(fwd)
            self._reply_to[nxt][index] = back
        self._ran = False
        self._telemetry = None
        self._telemetry_path: Optional[str] = None

    def attach_telemetry(self, window_ns: Optional[int] = None,
                         sink=None, path: Optional[str] = None):
        """Attach a per-bed telemetry collector fleet before running.

        Returns the :class:`~repro.obs.telemetry.FleetTelemetry`; its
        merged record stream is finalized by :meth:`run` and, when
        ``path`` is given, written there as JSONL.
        """
        from ..obs.telemetry import DEFAULT_WINDOW_NS, FleetTelemetry
        if self._telemetry is not None:
            raise RuntimeError("telemetry already attached")
        fleet = FleetTelemetry(
            window_ns=window_ns or DEFAULT_WINDOW_NS, sink=sink)
        for rig in self.rigs:
            fleet.attach(rig.bed.sim, bed=rig.shard.name,
                         shard=rig.shard.index)
        self.sharded.telemetry = fleet
        self._telemetry = fleet
        self._telemetry_path = path
        return fleet

    def events_executed(self) -> List[int]:
        """Per-bed kernel event counts — part of the identity surface."""
        return [rig.bed.sim.metrics.snapshot()["gauges"]
                ["sim.events_executed"] for rig in self.rigs]

    def run(self, serial: bool = False,
            until: Optional[int] = None) -> Tuple[dict, dict]:
        """Execute; returns ``(fingerprint, measures)``.

        The fingerprint is a pure function of the simulated system —
        identical for sharded and serial drives. ``measures`` carries
        driver-dependent observables (round count, messages).
        """
        if self._ran:
            raise RuntimeError("a ClusterScenario runs exactly once; "
                               "build a fresh one per drive")
        self._ran = True
        client_procs = []
        for index, rig in enumerate(self.rigs):
            rig.bed.sim.process(_frontend(rig, self._reply_to[index]),
                                name=f"{rig.shard.name}-frontend")
            for cid in range(self.clients_per_bed):
                client_procs.append(rig.bed.sim.process(
                    _client(rig, self._forward[index], cid,
                            self.requests_per_client,
                            start_skew=index * 157 + cid * 61),
                    name=f"{rig.shard.name}-client{cid}"))
        if serial:
            self.sharded.run_serial(until=until)
        else:
            self.sharded.run(until=until)
        failures = self.sharded.failed_processes()
        if failures:
            raise AssertionError(f"cluster processes failed: {failures}")
        unfinished = [p for p in client_procs if not p.triggered]
        if unfinished:
            raise AssertionError(f"clients never finished: {unfinished}")
        fingerprint = {
            "requests": (self.num_beds * self.clients_per_bed
                         * self.requests_per_client),
            "latency_sum_ns": sum(p.value for p in client_procs),
            "frontier_ns": self.sharded.now,
            "per_bed_events": self.events_executed(),
        }
        measures = {
            "rounds": self.sharded.rounds,
            "messages": self.sharded.fabric.messages_sent,
        }
        if self._telemetry is not None:
            records = self._telemetry.finalize()
            self._telemetry.close()
            measures["telemetry_records"] = len(records)
            if self._telemetry_path:
                with open(self._telemetry_path, "w") as handle:
                    handle.write(self._telemetry.to_jsonl())
        return fingerprint, measures


def build_cluster(num_beds: int = 16, clients_per_bed: int = 1,
                  requests_per_client: int = 40,
                  link_ns: int = CLUSTER_LINK_NS,
                  telemetry_path: Optional[str] = None
                  ) -> ClusterScenario:
    """The canonical ``cluster_simspeed`` configuration.

    ``telemetry_path`` (default: the ``REPRO_TELEMETRY`` environment
    variable) attaches the telemetry fleet and writes the merged JSONL
    stream there after the run.
    """
    scenario = ClusterScenario(num_beds, clients_per_bed,
                               requests_per_client, link_ns)
    if telemetry_path is None:
        telemetry_path = os.environ.get("REPRO_TELEMETRY") or None
    if telemetry_path:
        scenario.attach_telemetry(path=telemetry_path)
    return scenario
