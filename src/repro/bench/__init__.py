"""Benchmark harness: testbed assembly, statistics, table rendering."""

from .stats import LatencyRecorder, percentile, summarize
from .tables import banner, render_series, render_table
from .testbed import Testbed

__all__ = [
    "LatencyRecorder",
    "Testbed",
    "banner",
    "percentile",
    "render_series",
    "render_table",
    "summarize",
]
