"""Sharded KV fleet serving thousands of pooled client connections.

The ROADMAP item-1 scenario, mounted on the connection plane
(:mod:`repro.net.conn`) and the sharded simulator core:

* ``N`` shards, each a full server + gateway host pair
  (:class:`Testbed`) on its own :class:`ShardedSimulation` shard. The
  server hosts a cuckoo-hash :class:`MemcachedServer` holding the keys
  a :class:`HashRing` assigns to that shard.
* Thousands of closed-loop Memtier-style logical client connections
  (``clients_per_shard`` per shard) draw keys from a zipfian hot-key
  table. A key owned by the client's home shard is served locally; any
  other key is forwarded over the inter-shard fabric to the owner's
  gateway (consistent-hash request routing).
* All RDMA data-path work goes through a per-shard :class:`QpPool`
  (``pool_qps`` QPs leased per request, LRU-recycled) whose QPs
  complete into **one shared CQ pair** demuxed by the pool's
  :class:`CompletionRouter` — O(1) CQs per host, not O(clients).
* A *get* fetches **both** cuckoo candidate buckets with one-sided
  READs — posted through a :class:`DoorbellBatcher` when
  ``batch_doorbells`` is on, so the two READs cost **one** ring write
  — then READs the value out of the slab. The shard's hottest owned
  key is instead served by the paper's Fig 9 NIC offload
  (:class:`HashGetOffload`), one offload program per shard.
* Like the cluster scenario, the same built fleet runs under the
  conservative sharded synchronizer or the serial merge, and both
  drives must be bit-identical; this is the ``fleet_simspeed``
  workload in ``tools/perf_smoke.py``.

Every stochastic-looking choice (zipf draw, start skew, think dither)
is a pure integer function of ``(shard, client, seq)``, so the
schedule — and the fingerprint — is deterministic and drive-mode
independent. Doorbell batching on/off are *both* deterministic; they
differ in timing and ring-write counts (that is the point), which the
fingerprint records via ``doorbell_rings``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from .. import obs as _obs
from ..apps.memcached import MemcachedServer
from ..datastructs.hashing import splitmix64
from ..datastructs.records import BUCKET_SIZE
from ..ibv import wr_read
from ..net.conn import HashRing, QpPool
from ..nic.queue import DoorbellBatcher
from ..offloads.hash_lookup import hash_get_payload
from ..redn.offload import OffloadClient
from ..sim.resources import Resource
from ..sim.sharded import Shard, ShardChannel, ShardedSimulation
from .stats import percentile
from .testbed import Testbed

__all__ = ["FLEET_LINK_NS", "FleetError", "FleetScenario", "build_fleet"]

#: One-way inter-shard link latency (= the synchronizer lookahead).
FLEET_LINK_NS = 1000

#: Client think time between a reply and the next request.
THINK_NS = 1500

#: Global key universe; ownership is consistent-hashed over the shards.
NUM_KEYS = 128

VALUE_SIZE = 64

_SHARD_MEMORY = 8 * 1024 * 1024
_GATEWAY_MEMORY = 4 * 1024 * 1024


class FleetError(RuntimeError):
    """A fleet run ended with failed or unfinished processes.

    Typed (instead of a bare ``AssertionError``) so drivers like
    ``fleet_top`` and the triage CLI can attribute the failure: which
    beds were implicated and which simulated processes died there.
    """

    def __init__(self, message: str, beds: List[str],
                 processes: List[str]):
        detail = ""
        if beds:
            detail = f" [beds: {', '.join(beds)};" \
                     f" processes: {', '.join(processes)}]"
        super().__init__(message + detail)
        #: Implicated bed (shard) names, deduped, stream order.
        self.beds = beds
        #: The failed/unfinished simulated process names.
        self.processes = processes


def _zipf_table(num_keys: int = NUM_KEYS, head: int = 64) -> Tuple[int, ...]:
    """A zipf-ish draw table: key ``k`` appears ~``head/k`` times.

    Integer-only construction (no float powers), so the table — and
    every key draw — is bit-stable across platforms. Keys are 1-based
    (0 is not a legal cuckoo key); key 1 is the global hottest and
    mass decays harmonically down the key ids.
    """
    table: List[int] = []
    for key in range(1, num_keys + 1):
        table.extend([key] * max(1, head // key))
    return tuple(table)


_ZIPF = _zipf_table()


def _pick_key(shard: int, client: int, seq: int) -> int:
    """The zipfian key stream: pure function of (shard, client, seq)."""
    mix = splitmix64(shard * 1_000_003 + client * 10_007 + seq * 101)
    return _ZIPF[mix % len(_ZIPF)]


class _ShardRig:
    """One shard: cuckoo-KV server + gateway host with the conn plane."""

    def __init__(self, bed: Testbed, shard: Shard, owned_keys: List[int],
                 pool_qps: int, batch_doorbells: bool):
        self.bed = bed
        self.shard = shard
        self.index = shard.index
        self.sim = bed.sim
        self.owned_keys = owned_keys
        self.executed = 0            # requests served by this shard
        self.doorbell_rings = 0      # data-path ring writes (host count)
        self.latencies: List[int] = []
        #: Simulated time after which this shard's clients stop issuing
        #: requests (the failover scenario quiesces the doomed shard).
        self.stop_at: Optional[int] = None

        self.server = MemcachedServer(
            bed.server, num_buckets=512, slab_size=1024 * 1024,
            name=f"{shard.name}-kv")
        for key in owned_keys:
            self.server.set(key, bytes([key & 0xFF]) * VALUE_SIZE)

        # The connection plane: pooled QPs from the gateway host to the
        # server, all completing into one shared CQ pair.
        def connect(qp, index):
            server_qp = self.server.process.create_qp(
                self.server.pd, name=f"{shard.name}-ps{index}")
            server_qp.connect(qp)

        self.pool = QpPool(bed.clients[0].nic, bed.client_pd(0),
                           capacity=pool_qps, connect=connect,
                           send_slots=64, recv_slots=16,
                           name=f"{shard.name}-pool")
        self.batchers: Optional[List[DoorbellBatcher]] = None
        if batch_doorbells:
            self.batchers = [DoorbellBatcher(qp.send_wq, max_batch=8)
                             for qp in self.pool.qps]
        # Per-lease scratch slices: concurrent gets on different leases
        # must not land their READs in the same client memory.
        self._scratch = bed.clients[0].memory.alloc(
            256 * pool_qps, owner="client", label=f"{shard.name}-scratch")
        self.table_rkey = self.server.table_mr.rkey
        self.slab_rkey = self.server.slab_mr.rkey

        # The shard's hottest owned key is NIC-served (Fig 9 offload);
        # calls serialize on one offload lane per shard.
        self.hot_key: Optional[int] = min(owned_keys) if owned_keys else None
        self.offload = None
        if self.hot_key is not None:
            self.offload, conn = self.server.attach_get_offload(
                bed.clients[0].nic, bed.client_pd(0), max_instances=8,
                name=f"{shard.name}-off")
            self.offload_client = OffloadClient(conn, bed.client_verbs(0))
            self.offload_lock = Resource(self.sim, 1,
                                         name=f"{shard.name}-offlock")

    # -- the per-request data path ----------------------------------------

    def execute_get(self, key: int, blame=None):
        """Serve one get on this shard; returns the path label.

        ``blame`` is an optional :class:`~repro.obs.blame.RequestBlame`
        context; the connection plane (pool acquire, doorbell batch,
        CQE demux) records its spans into it, and this method brackets
        the offload/service windows around them.
        """
        if blame is not None:
            blame.locus = self.index
        if self.offload is not None and key == self.hot_key:
            wait_from = self.sim.now
            grant = yield self.offload_lock.acquire()
            if blame is not None:
                blame.span(wait_from, self.sim.now, "pool_wait",
                           self.offload_lock.name)
                exec_from = self.sim.now
            try:
                self.offload.post_instances(1)
                result = yield from self.offload_client.call(
                    hash_get_payload(self.server.table, key),
                    timeout_ns=10_000_000)
                assert result.ok, f"offload miss for hot key {key}"
                assert result.data[:1] == bytes([key & 0xFF])
            finally:
                self.offload_lock.release(grant)
            if blame is not None:
                blame.span(exec_from, self.sim.now, "offload_exec",
                           f"{self.shard.name}-off")
            self.executed += 1
            return "offload"
        service_from = self.sim.now
        lease = yield from self.pool.acquire(tag=f"k{key}", blame=blame)
        try:
            yield from self._pooled_get(lease, key)
        finally:
            self.pool.release(lease)
        if blame is not None:
            # Covers the lease wait too; the sweep's priority order
            # carves pool_wait/doorbell_batch/cqe_demux out of it.
            blame.span(service_from, self.sim.now, "service",
                       f"{self.shard.name}-kv")
        self.executed += 1
        return "pooled"

    def _pooled_get(self, lease, key: int):
        """Two-phase one-sided get over a pooled QP.

        Phase 1 READs *both* cuckoo candidate buckets (the classic
        parallel-probe optimization); with batching on, the two READs
        ride one coalesced doorbell. Phase 2 READs the value from the
        slab. WR order on one QP guarantees the unsignaled first READ
        landed before the signaled second one completes.
        """
        table = self.server.table
        addrs = table.candidate_addrs(key)
        scratch = self._scratch.addr + 256 * lease.index
        bucket0 = wr_read(scratch, BUCKET_SIZE, addrs[0],
                          self.table_rkey, signaled=False)
        bucket1 = wr_read(scratch + 64, BUCKET_SIZE, addrs[1],
                          self.table_rkey, wr_id=1, signaled=True)
        if self.batchers is not None:
            batcher = self.batchers[lease.index]
            if _obs.enabled:
                batcher.blame = lease.blame
            lease.post_send(bucket0, batcher=batcher)
            lease.post_send(bucket1, batcher=batcher)
            batcher.flush()
            self.doorbell_rings += 1
        else:
            lease.post_send(bucket0)
            lease.post_send(bucket1)
            self.doorbell_rings += 2
        cqe = yield from lease.wait_cqe()
        assert cqe.ok and cqe.wr_id == 1
        # Parse the fetched buckets for the value pointer (the host
        # consults the same table the READ just snapshotted).
        found = table.lookup_ptr(key)
        assert found is not None, f"key {key} missing from shard {self.index}"
        valptr, vlen = found
        lease.post_send(wr_read(scratch + 128, min(vlen, 64), valptr,
                                self.slab_rkey, wr_id=2, signaled=True))
        self.doorbell_rings += 1
        cqe = yield from lease.wait_cqe()
        assert cqe.ok and cqe.wr_id == 2
        value = self.bed.clients[0].memory.read(scratch + 128, 1)
        assert value == bytes([key & 0xFF]), \
            f"value mismatch for key {key}: {value!r}"


def _gateway(rig: _ShardRig, reply_to: Dict[int, ShardChannel]):
    """One remote-exec worker: serve forwarded gets forever."""
    rpc = rig.shard.mailbox("rpc")
    sim = rig.sim
    while True:
        src_index, gid, seq, key, ctx = yield rpc.get()
        if ctx is not None:
            ctx.hop_received(sim.now, rig.index, "rpc")
        yield from rig.execute_get(key, blame=ctx)
        if _obs.enabled:
            telemetry = sim.telemetry
            if telemetry is not None:
                telemetry.serviced()
        sent = sim.now
        arrival = reply_to[src_index].send(f"rsp{gid}", seq)
        if ctx is not None:
            # Queue label "rsp", not f"rsp{gid}": per-connection reply
            # mailboxes would explode blame-table cardinality.
            ctx.hop_sent(sent, arrival, src_index, "rsp")


def _client(rig: _ShardRig, ring: HashRing, rigs: List[_ShardRig],
            forward: Dict[int, ShardChannel], gid: int, cid: int,
            requests: int, start_skew: int, route=None):
    """One closed-loop logical connection on its home shard's gateway.

    Local keys run the pooled data path in-place; remote keys are
    forwarded to the owner shard's gateway and awaited. Note ``rigs``
    is only indexed for *local* execution — cross-shard interaction
    happens exclusively through the channels, as the synchronizer
    requires.

    ``route`` optionally overrides consistent-hash routing: a pure
    ``(key, now_ns) -> owner`` function (the failover scenario swaps
    rings at a deterministic simulated time). ``rig.stop_at`` ends the
    connection early — before issuing the next request — once the
    home shard's simulated clock reaches it; the return value counts
    the requests actually completed.
    """
    sim = rig.sim
    rsp = rig.shard.mailbox(f"rsp{gid}")
    blame_cls = None
    if _obs.enabled and sim.telemetry is not None \
            and sim.telemetry.exemplar_k:
        from ..obs.blame import RequestBlame as blame_cls
    if start_skew:
        yield start_skew
    latency_sum = 0
    remote_ops = 0
    completed = 0
    dither_base = rig.index * 13 + cid * 7
    for seq in range(requests):
        if rig.stop_at is not None and sim.now >= rig.stop_at:
            break
        key = _pick_key(rig.index, cid, seq)
        owner = ring.owner(key) if route is None else route(key, sim.now)
        start = sim.now
        # The causal context travels inside the rpc payload (None when
        # capture is off) — payloads are opaque to the fabric, so the
        # schedule and the fingerprint never depend on it.
        ctx = None
        if blame_cls is not None:
            ctx = blame_cls(rig.index, gid * requests + seq, key, start)
        if owner == rig.index:
            yield from rig.execute_get(key, blame=ctx)
        else:
            arrival = forward[owner].send(
                "rpc", (rig.index, gid, seq, key, ctx))
            if ctx is not None:
                ctx.hop_sent(start, arrival, owner, "rpc")
            reply = yield rsp.get()
            assert reply == seq, f"out-of-order reply {reply} != {seq}"
            if ctx is not None:
                ctx.hop_received(sim.now, rig.index, "rsp")
            remote_ops += 1
        latency = sim.now - start
        latency_sum += latency
        completed += 1
        rigs[owner].latencies.append(latency)
        if _obs.enabled:
            telemetry = sim.telemetry
            if telemetry is not None:
                telemetry.request_complete(latency, key=f"k{key}",
                                           blame=ctx)
        yield THINK_NS + (dither_base + seq * 31) % 97
    # sim.now here, not the drained-queue frontier: a dangling offload
    # timeout event otherwise inflates the denominator of Mops.
    return latency_sum, remote_ops, completed, sim.now


class FleetScenario:
    """A built fleet, runnable exactly once (sharded or serial)."""

    def __init__(self, num_shards: int, clients_per_shard: int,
                 requests_per_client: int, pool_qps: int,
                 batch_doorbells: bool, gateway_workers: int,
                 link_ns: int):
        self.num_shards = num_shards
        self.clients_per_shard = clients_per_shard
        self.requests_per_client = requests_per_client
        self.pool_qps = pool_qps
        self.batch_doorbells = batch_doorbells
        self.gateway_workers = gateway_workers
        self.ring = HashRing(num_shards)
        owned = self.ring.partition(range(1, NUM_KEYS + 1))
        self.sharded = ShardedSimulation()
        self.rigs: List[_ShardRig] = []
        for index in range(num_shards):
            shard = self.sharded.add_shard(f"shard{index}")
            bed = Testbed(num_clients=1, sim=shard.sim,
                          server_memory=_SHARD_MEMORY,
                          client_memory=_GATEWAY_MEMORY)
            self.rigs.append(_ShardRig(bed, shard, owned[index],
                                       pool_qps, batch_doorbells))
        # Full mesh: requests to any owner, replies straight back.
        self._forward: List[Dict[int, ShardChannel]] = [
            {} for _ in range(num_shards)]
        for a in range(num_shards):
            for b in range(a + 1, num_shards):
                fwd, back = self.sharded.link(
                    self.sharded.shards[a], self.sharded.shards[b],
                    one_way_ns=link_ns)
                self._forward[a][b] = fwd
                self._forward[b][a] = back
        self._ran = False
        self._telemetry = None
        self._telemetry_path: Optional[str] = None
        #: Optional routing override (see :func:`_client`); fault
        #: scenarios install a time-aware ring swap here before run().
        self.route = None

    @property
    def logical_connections(self) -> int:
        return self.num_shards * self.clients_per_shard

    def attach_telemetry(self, window_ns: Optional[int] = None,
                         sink=None, path: Optional[str] = None,
                         exemplars: int = 0):
        """Attach per-shard telemetry (see ClusterScenario for the shape).

        ``exemplars`` > 0 turns on tail exemplar capture: each window
        record keeps the ``exemplars`` slowest requests' full blame
        breakdowns (see :mod:`repro.obs.blame`).
        """
        from ..obs.telemetry import DEFAULT_WINDOW_NS, FleetTelemetry
        if self._telemetry is not None:
            raise RuntimeError("telemetry already attached")
        fleet = FleetTelemetry(
            window_ns=window_ns or DEFAULT_WINDOW_NS, sink=sink,
            exemplars=exemplars)
        for rig in self.rigs:
            fleet.attach(rig.sim, bed=rig.shard.name,
                         shard=rig.shard.index)
        self.sharded.telemetry = fleet
        self._telemetry = fleet
        self._telemetry_path = path
        return fleet

    def events_executed(self) -> List[int]:
        """Per-shard kernel event counts — identity surface."""
        return [rig.sim.metrics.snapshot()["gauges"]
                ["sim.events_executed"] for rig in self.rigs]

    def run(self, serial: bool = False,
            until: Optional[int] = None) -> Tuple[dict, dict]:
        """Execute; returns ``(fingerprint, measures)``.

        The fingerprint is a pure function of the simulated system —
        identical for sharded and serial drives (and that identity is
        asserted by the ``fleet_simspeed`` workload every run).
        ``measures`` carries driver observables and derived reporting
        (aggregate Mops, per-shard isolation).
        """
        if self._ran:
            raise RuntimeError("a FleetScenario runs exactly once; "
                               "build a fresh one per drive")
        self._ran = True
        client_procs = []
        for index, rig in enumerate(self.rigs):
            reply_to = self._forward[index]
            for worker in range(self.gateway_workers):
                rig.sim.process(_gateway(rig, reply_to),
                                name=f"{rig.shard.name}-gw{worker}")
            for cid in range(self.clients_per_shard):
                gid = index * self.clients_per_shard + cid
                client_procs.append(rig.sim.process(
                    _client(rig, self.ring, self.rigs,
                            self._forward[index], gid, cid,
                            self.requests_per_client,
                            start_skew=index * 157 + cid * 61,
                            route=self.route),
                    name=f"{rig.shard.name}-client{cid}"))
        if serial:
            self.sharded.run_serial(until=until)
        else:
            self.sharded.run(until=until)
        failed_beds: List[str] = []
        failed_names: List[str] = []
        for rig in self.rigs:
            dead = list(rig.sim.failed_processes)
            if dead:
                failed_beds.append(rig.shard.name)
                failed_names.extend(p.name for p in dead)
        if failed_names:
            raise FleetError(
                f"{len(failed_names)} fleet process(es) failed",
                failed_beds, failed_names)
        unfinished = [p for p in client_procs if not p.triggered]
        if unfinished:
            beds = sorted({p.name.split("-")[0] for p in unfinished})
            raise FleetError(
                f"{len(unfinished)} client(s) never finished",
                beds, [p.name for p in unfinished])

        # Completed-request counts, not the planned total: clients a
        # fault scenario quiesces early (stop_at) finish cleanly with
        # fewer requests. For a clean run the sum equals the plan.
        requests = sum(p.value[2] for p in client_procs)
        latency_sum = sum(p.value[0] for p in client_procs)
        remote_ops = sum(p.value[1] for p in client_procs)
        offload_ops = sum(
            rig.offload.instances_posted for rig in self.rigs
            if rig.offload is not None)
        pool_stats: Dict[str, int] = {}
        for rig in self.rigs:
            for stat, value in rig.pool.stats().items():
                pool_stats[stat] = pool_stats.get(stat, 0) + value
        all_latencies = sorted(
            lat for rig in self.rigs for lat in rig.latencies)
        frontier = max(p.value[3] for p in client_procs)
        fingerprint = {
            "requests": requests,
            "latency_sum_ns": latency_sum,
            "frontier_ns": frontier,
            "per_shard_events": self.events_executed(),
            "remote_ops": remote_ops,
            "offload_ops": offload_ops,
            "doorbell_rings": sum(r.doorbell_rings for r in self.rigs),
            "pool": pool_stats,
            "p99_ns": percentile(all_latencies, 0.99),
            "p999_ns": percentile(all_latencies, 0.999),
        }
        measures = {
            "rounds": self.sharded.rounds,
            "messages": self.sharded.fabric.messages_sent,
            "aggregate_mops": round(requests / frontier * 1000, 4)
            if frontier else 0.0,
            "per_shard": [
                {"shard": rig.shard.name,
                 "executed": rig.executed,
                 "keys_owned": len(rig.owned_keys),
                 "hot_key": rig.hot_key,
                 "p99_ns": percentile(rig.latencies, 0.99)
                 if rig.latencies else None}
                for rig in self.rigs],
        }
        if self._telemetry is not None:
            records = self._telemetry.finalize()
            self._telemetry.close()
            measures["telemetry_records"] = len(records)
            if self._telemetry_path:
                with open(self._telemetry_path, "w") as handle:
                    handle.write(self._telemetry.to_jsonl())
        return fingerprint, measures


def build_fleet(num_shards: int = 8, clients_per_shard: int = 128,
                requests_per_client: int = 3, pool_qps: int = 8,
                batch_doorbells: bool = True, gateway_workers: int = 8,
                link_ns: int = FLEET_LINK_NS,
                telemetry_path: Optional[str] = None,
                exemplars: Optional[int] = None) -> FleetScenario:
    """The canonical ``fleet_simspeed`` configuration.

    Defaults drive 1024 logical client connections (8 shards x 128)
    over 64 pooled QPs and 16 shared CQs total, with doorbell batching
    on. ``telemetry_path`` (default: the ``REPRO_TELEMETRY``
    environment variable) attaches the telemetry fleet and writes the
    merged JSONL stream there after the run; ``exemplars`` (default:
    ``REPRO_EXEMPLARS``) sets the per-window tail-exemplar count.
    """
    scenario = FleetScenario(num_shards, clients_per_shard,
                             requests_per_client, pool_qps,
                             batch_doorbells, gateway_workers, link_ns)
    if telemetry_path is None:
        telemetry_path = os.environ.get("REPRO_TELEMETRY") or None
    if exemplars is None:
        exemplars = int(os.environ.get("REPRO_EXEMPLARS", "0") or 0)
    if telemetry_path:
        scenario.attach_telemetry(path=telemetry_path,
                                  exemplars=exemplars)
    return scenario
