"""Latency statistics shared by the workload generator and benchmarks."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

__all__ = ["LatencyRecorder", "percentile", "summarize"]


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (0 < fraction <= 1)."""
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(
            f"percentile fraction {fraction} outside (0, 1]")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """avg / p50 / p99 / min / max / count, in the samples' unit."""
    if not samples:
        return {"count": 0}
    return {
        "count": len(samples),
        "avg": sum(samples) / len(samples),
        "p50": percentile(samples, 0.50),
        "p99": percentile(samples, 0.99),
        "min": min(samples),
        "max": max(samples),
    }


class LatencyRecorder:
    """Accumulates per-operation latencies (nanoseconds)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[int] = []

    def record(self, latency_ns: int) -> None:
        self.samples.append(latency_ns)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def avg_us(self) -> float:
        if not self.samples:
            raise ValueError(f"recorder {self.name!r} has no samples")
        return sum(self.samples) / len(self.samples) / 1000.0

    @property
    def p50_us(self) -> float:
        return percentile(self.samples, 0.50) / 1000.0

    @property
    def p99_us(self) -> float:
        return percentile(self.samples, 0.99) / 1000.0

    def summary_us(self) -> Dict[str, float]:
        stats = summarize(self.samples)
        return {key: (value / 1000.0 if key != "count" else value)
                for key, value in stats.items()}
