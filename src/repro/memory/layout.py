"""Byte-layout codecs for simulated device memory.

RDMA NICs interpret raw bytes: work-queue entries, hash buckets and list
nodes all have fixed binary layouts, and RedN's self-modifying programs
work *because* those layouts line up (a READ of a bucket lands its key
bytes exactly on the id field of a later WQE). All multi-byte fields in
this reproduction are **big-endian**, matching Mellanox WQE format — the
reason the paper had to patch Memcached to store bucket pointers in big
endian (§5.4).

:class:`Struct` is a tiny declarative codec: declare ``(name, offset,
width)`` fields once and get bounds-checked pack/unpack plus per-field
address arithmetic (``field_offset`` is what self-modifying code uses to
aim a CAS or WRITE at a specific field of a specific WQE).

Each struct is *compiled* at declaration time into a flat slice table
``(name, offset, end, width, bound)`` so that the hot pack/unpack paths
are a single pass of ``int.from_bytes``/``int.to_bytes`` over
precomputed slices — no per-field method dispatch, no intermediate
``bytes()`` copies. The original per-field path survives as
``unpack_legacy`` (toggled via ``Struct.use_compiled``) purely so tests
can differentially check the compiled codec against it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

__all__ = [
    "Struct",
    "Field",
    "pack_uint",
    "unpack_uint",
    "mask",
]


def mask(bits: int) -> int:
    """All-ones mask of ``bits`` width."""
    return (1 << bits) - 1


def pack_uint(value: int, width: int) -> bytes:
    """Encode ``value`` as ``width`` big-endian bytes (range-checked)."""
    if not 0 <= value < (1 << (8 * width)):
        raise ValueError(f"value {value:#x} does not fit in {width} bytes")
    return value.to_bytes(width, "big")


def unpack_uint(data: bytes) -> int:
    """Decode big-endian bytes to an unsigned int."""
    return int.from_bytes(data, "big")


class Field:
    """One fixed-width unsigned big-endian field inside a Struct."""

    __slots__ = ("name", "offset", "width", "end", "bound")

    def __init__(self, name: str, offset: int, width: int):
        self.name = name
        self.offset = offset
        self.width = width
        self.end = offset + width
        self.bound = 1 << (8 * width)

    def __repr__(self) -> str:
        return f"<Field {self.name}@{self.offset}+{self.width}>"


class Struct:
    """A fixed-size record of big-endian unsigned fields.

    Fields may not overlap; gaps are permitted (reserved bytes) and are
    preserved as zeroes by :meth:`pack`.
    """

    #: When False, :meth:`unpack` routes through the original per-field
    #: path — kept only for differential testing of the compiled codec.
    use_compiled = True

    def __init__(self, name: str, size: int,
                 fields: Iterable[Tuple[str, int, int]]):
        self.name = name
        self.size = size
        self.fields: Dict[str, Field] = {}
        claimed: List[Tuple[int, int]] = []
        for fname, offset, width in fields:
            if fname in self.fields:
                raise ValueError(f"duplicate field {fname!r} in {name}")
            field = Field(fname, offset, width)
            if field.end > size:
                raise ValueError(
                    f"field {fname!r} ends at {field.end} > size {size}")
            for lo, hi in claimed:
                if offset < hi and field.end > lo:
                    raise ValueError(
                        f"field {fname!r} overlaps another field in {name}")
            claimed.append((offset, field.end))
            self.fields[fname] = field
        # Compiled slice table: one flat tuple drives the hot paths.
        self._layout: Tuple[Tuple[str, int, int, int, int], ...] = tuple(
            (f.name, f.offset, f.end, f.width, f.bound)
            for f in self.fields.values())

    def __repr__(self) -> str:
        return f"<Struct {self.name} size={self.size}>"

    def field_offset(self, fname: str) -> int:
        """Byte offset of a field — the self-modification aiming point."""
        return self.fields[fname].offset

    def field_width(self, fname: str) -> int:
        return self.fields[fname].width

    def pack(self, **values: int) -> bytearray:
        """Encode field values into a fresh ``size``-byte buffer."""
        buf = bytearray(self.size)
        fields = self.fields
        for fname, value in values.items():
            field = fields[fname]
            if not 0 <= value < field.bound:
                raise ValueError(
                    f"value {value:#x} does not fit in {field.width} bytes")
            buf[field.offset:field.end] = value.to_bytes(field.width, "big")
        return buf

    def pack_into(self, buf: bytearray, base: int, fname: str,
                  value: int) -> None:
        """Encode one field into ``buf`` at struct base offset ``base``."""
        field = self.fields[fname]
        if not 0 <= value < field.bound:
            raise ValueError(
                f"value {value:#x} does not fit in {field.width} bytes")
        buf[base + field.offset:base + field.end] = value.to_bytes(
            field.width, "big")

    def unpack(self, buf: bytes, base: int = 0) -> Dict[str, int]:
        """Decode every field from ``buf`` at base offset ``base``."""
        if base + self.size > len(buf):
            raise ValueError(
                f"buffer too short for {self.name} at offset {base}")
        if not self.use_compiled:
            return {fname: self.unpack_field(buf, base, fname)
                    for fname in self.fields}
        return self.unpack_from(buf, base)

    def unpack_from(self, buf, base: int = 0) -> Dict[str, int]:
        """Single-pass decode from any buffer (bytes/bytearray/memoryview).

        No bounds validation: slices are precomputed, the buffer is
        trusted to be large enough (use :meth:`unpack` for the checked
        variant). Memoryview input avoids byte copies entirely.
        """
        from_bytes = int.from_bytes
        if base:
            return {name: from_bytes(buf[base + off:base + end], "big")
                    for name, off, end, _w, _b in self._layout}
        return {name: from_bytes(buf[off:end], "big")
                for name, off, end, _w, _b in self._layout}

    def unpack_field(self, buf: bytes, base: int, fname: str) -> int:
        field = self.fields[fname]
        return unpack_uint(bytes(buf[base + field.offset: base + field.end]))

    def unpack_legacy(self, buf: bytes, base: int = 0) -> Dict[str, int]:
        """Original per-field decode path (differential-test reference)."""
        if base + self.size > len(buf):
            raise ValueError(
                f"buffer too short for {self.name} at offset {base}")
        return {fname: self.unpack_field(buf, base, fname)
                for fname in self.fields}
