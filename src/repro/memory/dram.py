"""Simulated host DRAM.

A :class:`HostMemory` is a flat byte-addressable space backed by a
``bytearray``, with a bump allocator for carving out buffers (work
queues, hash tables, slabs). Addresses start at a non-zero base so that
address 0 can serve as a null pointer for linked data structures.

Ownership: every allocation is tagged with an *owner* string (process
name). When a process crashes, the OS reclaims its allocations — unless
they were transferred to a "hull parent" (see :mod:`repro.net.failures`
and paper §5.6). Reclaimed ranges are poisoned with 0xDE bytes so that
use-after-free by a still-running RNIC program is loudly wrong rather
than silently stale, mirroring what happens on real hardware when the
OS frees pinned pages.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .layout import pack_uint, unpack_uint

__all__ = ["HostMemory", "Allocation", "MemoryError_", "NULL_ADDR"]

NULL_ADDR = 0

_POISON = 0xDE


class MemoryError_(Exception):
    """Access outside an allocation or other memory misuse."""


class Allocation:
    """A live allocation: [addr, addr+size), tagged with its owner."""

    __slots__ = ("addr", "size", "owner", "label", "freed")

    def __init__(self, addr: int, size: int, owner: str, label: str):
        self.addr = addr
        self.size = size
        self.owner = owner
        self.label = label
        self.freed = False

    def __repr__(self) -> str:
        return (f"<Allocation {self.label} [{self.addr:#x},"
                f"{self.addr + self.size:#x}) owner={self.owner}>")

    @property
    def end(self) -> int:
        return self.addr + self.size

    def contains(self, addr: int, length: int = 1) -> bool:
        return self.addr <= addr and addr + length <= self.end


class HostMemory:
    """Byte-addressable simulated DRAM with owner-tagged allocations."""

    BASE_ADDR = 0x1000

    def __init__(self, size: int = 64 * 1024 * 1024, name: str = "dram"):
        self.name = name
        self.size = size
        self._bytes = bytearray(size)
        self._next = self.BASE_ADDR
        self._allocations: List[Allocation] = []

    def __repr__(self) -> str:
        return (f"<HostMemory {self.name} used="
                f"{self._next - self.BASE_ADDR}/{self.size}>")

    # -- allocation ------------------------------------------------------

    def alloc(self, size: int, owner: str = "kernel", label: str = "",
              align: int = 8) -> Allocation:
        """Allocate ``size`` bytes, ``align``-aligned, owned by ``owner``."""
        if size <= 0:
            raise MemoryError_(f"bad allocation size {size}")
        if align & (align - 1):
            raise MemoryError_(f"alignment {align} is not a power of two")
        addr = (self._next + align - 1) & ~(align - 1)
        if addr + size > self.size:
            raise MemoryError_(
                f"out of simulated DRAM: need {size} at {addr:#x}")
        self._next = addr + size
        allocation = Allocation(addr, size, owner, label or f"alloc{addr:#x}")
        self._allocations.append(allocation)
        return allocation

    def free(self, allocation: Allocation) -> None:
        """Release and poison an allocation (bump allocator: no reuse)."""
        if allocation.freed:
            raise MemoryError_(f"double free of {allocation!r}")
        allocation.freed = True
        self._bytes[allocation.addr:allocation.end] = bytes(
            [_POISON]) * allocation.size

    def allocations_owned_by(self, owner: str) -> List[Allocation]:
        return [a for a in self._allocations
                if a.owner == owner and not a.freed]

    def transfer_ownership(self, allocation: Allocation,
                           new_owner: str) -> None:
        """Re-tag an allocation (the 'empty hull parent' trick, §5.6)."""
        allocation.owner = new_owner

    def reclaim_owner(self, owner: str) -> List[Allocation]:
        """Free everything owned by ``owner`` (OS cleanup after a crash)."""
        reclaimed = self.allocations_owned_by(owner)
        for allocation in reclaimed:
            self.free(allocation)
        return reclaimed

    # -- raw access ------------------------------------------------------

    def _check(self, addr: int, length: int) -> None:
        if addr < self.BASE_ADDR or addr + length > self.size:
            raise MemoryError_(
                f"access [{addr:#x},{addr + length:#x}) outside DRAM")

    def read(self, addr: int, length: int) -> bytes:
        self._check(addr, length)
        return bytes(self._bytes[addr:addr + length])

    def write(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self._bytes[addr:addr + len(data)] = data

    def read_uint(self, addr: int, width: int) -> int:
        return unpack_uint(self.read(addr, width))

    def write_uint(self, addr: int, value: int, width: int) -> None:
        self.write(addr, pack_uint(value, width))

    def read_u64(self, addr: int) -> int:
        return self.read_uint(addr, 8)

    def write_u64(self, addr: int, value: int) -> None:
        self.write_uint(addr, value, 8)

    def fill(self, addr: int, length: int, byte: int = 0) -> None:
        self._check(addr, length)
        self._bytes[addr:addr + length] = bytes([byte]) * length

    def compare_and_swap_u64(self, addr: int, expected: int,
                             desired: int) -> int:
        """Atomic 64-bit CAS; returns the *original* value (RDMA CAS
        semantics: the original value is returned to the initiator)."""
        original = self.read_u64(addr)
        if original == expected:
            self.write_u64(addr, desired)
        return original

    def fetch_add_u64(self, addr: int, delta: int) -> int:
        """Atomic 64-bit fetch-and-add (wraps modulo 2^64)."""
        original = self.read_u64(addr)
        self.write_u64(addr, (original + delta) & ((1 << 64) - 1))
        return original
