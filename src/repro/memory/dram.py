"""Simulated host DRAM.

A :class:`HostMemory` is a flat byte-addressable space backed by a
``bytearray``, with a bump allocator for carving out buffers (work
queues, hash tables, slabs). Addresses start at a non-zero base so that
address 0 can serve as a null pointer for linked data structures.

Ownership: every allocation is tagged with an *owner* string (process
name). When a process crashes, the OS reclaims its allocations — unless
they were transferred to a "hull parent" (see :mod:`repro.net.failures`
and paper §5.6). Reclaimed ranges are poisoned with 0xDE bytes so that
use-after-free by a still-running RNIC program is loudly wrong rather
than silently stale, mirroring what happens on real hardware when the
OS frees pinned pages.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, List, Optional, Tuple

from .layout import pack_uint, unpack_uint

__all__ = ["HostMemory", "Allocation", "GenerationRange", "MemoryError_",
           "NULL_ADDR"]

NULL_ADDR = 0

_POISON = 0xDE


class MemoryError_(Exception):
    """Access outside an allocation or other memory misuse."""


class Allocation:
    """A live allocation: [addr, addr+size), tagged with its owner."""

    __slots__ = ("addr", "size", "owner", "label", "freed")

    def __init__(self, addr: int, size: int, owner: str, label: str):
        self.addr = addr
        self.size = size
        self.owner = owner
        self.label = label
        self.freed = False

    def __repr__(self) -> str:
        return (f"<Allocation {self.label} [{self.addr:#x},"
                f"{self.addr + self.size:#x}) owner={self.owner}>")

    @property
    def end(self) -> int:
        return self.addr + self.size

    def contains(self, addr: int, length: int = 1) -> bool:
        return self.addr <= addr and addr + length <= self.end


class GenerationRange:
    """Per-chunk write generation counters over one address range.

    Consumers that cache decoded views of memory (the WQE decode cache
    in :class:`repro.nic.queue.WorkQueue`) register their range here;
    every write that overlaps a chunk bumps that chunk's counter, so a
    cached decode is valid exactly when its generation snapshot still
    matches. This is the software analogue of the NIC watching its own
    DMA engine: any store into queue memory invalidates the fetched
    snapshot, no matter which verb or host path issued it.
    """

    __slots__ = ("start", "end", "granularity", "gens")

    def __init__(self, start: int, length: int, granularity: int = 64):
        self.start = start
        self.end = start + length
        self.granularity = granularity
        self.gens: List[int] = [0] * (
            (length + granularity - 1) // granularity)

    def __repr__(self) -> str:
        return (f"<GenerationRange [{self.start:#x},{self.end:#x}) "
                f"/{self.granularity}>")

    def bump(self, lo: int, hi: int) -> None:
        """Bump every chunk overlapping [lo, hi) (pre-clipped bounds)."""
        granularity = self.granularity
        start = self.start
        first = (lo - start) // granularity
        last = (hi - 1 - start) // granularity
        gens = self.gens
        for index in range(first, last + 1):
            gens[index] += 1


class HostMemory:
    """Byte-addressable simulated DRAM with owner-tagged allocations."""

    BASE_ADDR = 0x1000

    def __init__(self, size: int = 64 * 1024 * 1024, name: str = "dram"):
        self.name = name
        self.size = size
        self._bytes = bytearray(size)
        self._view = memoryview(self._bytes)
        self._next = self.BASE_ADDR
        self._allocations: List[Allocation] = []
        # Registered generation ranges, sorted by start (disjoint: they
        # come from disjoint allocations).
        self._gen_starts: List[int] = []
        self._gen_ranges: List[GenerationRange] = []
        #: Store observers installed by attached repro.obs consumers
        #: (tracer, flight recorder): each is called as hook(addr,
        #: length) after generations are bumped. ``_trace_hook`` is the
        #: fused dispatch target the write paths check — None (one
        #: pointer check per tracked write) with no observer, the bare
        #: hook with one, a dispatcher with several. Manage it through
        #: :meth:`add_store_hook` / :meth:`remove_store_hook`.
        self._store_hooks: List = []
        self._trace_hook = None

    def add_store_hook(self, hook) -> None:
        """Register a store observer: ``hook(addr, length)`` per write."""
        self._store_hooks.append(hook)
        self._refresh_store_dispatch()

    def remove_store_hook(self, hook) -> None:
        """Unregister a store observer installed by :meth:`add_store_hook`."""
        if hook in self._store_hooks:
            self._store_hooks.remove(hook)
        self._refresh_store_dispatch()

    def _refresh_store_dispatch(self) -> None:
        hooks = self._store_hooks
        if not hooks:
            self._trace_hook = None
        elif len(hooks) == 1:
            self._trace_hook = hooks[0]
        else:
            frozen = tuple(hooks)

            def dispatch(addr: int, length: int,
                         _hooks=frozen) -> None:
                for hook in _hooks:
                    hook(addr, length)

            self._trace_hook = dispatch

    def __repr__(self) -> str:
        return (f"<HostMemory {self.name} used="
                f"{self._next - self.BASE_ADDR}/{self.size}>")

    # -- allocation ------------------------------------------------------

    def alloc(self, size: int, owner: str = "kernel", label: str = "",
              align: int = 8) -> Allocation:
        """Allocate ``size`` bytes, ``align``-aligned, owned by ``owner``."""
        if size <= 0:
            raise MemoryError_(f"bad allocation size {size}")
        if align & (align - 1):
            raise MemoryError_(f"alignment {align} is not a power of two")
        addr = (self._next + align - 1) & ~(align - 1)
        if addr + size > self.size:
            raise MemoryError_(
                f"out of simulated DRAM: need {size} at {addr:#x}")
        self._next = addr + size
        allocation = Allocation(addr, size, owner, label or f"alloc{addr:#x}")
        self._allocations.append(allocation)
        return allocation

    def free(self, allocation: Allocation) -> None:
        """Release and poison an allocation (bump allocator: no reuse)."""
        if allocation.freed:
            raise MemoryError_(f"double free of {allocation!r}")
        allocation.freed = True
        self._bytes[allocation.addr:allocation.end] = bytes(
            [_POISON]) * allocation.size
        if self._gen_starts:
            self._bump_gens(allocation.addr, allocation.end)
            if self._trace_hook is not None:
                self._trace_hook(allocation.addr, allocation.size)

    def allocations_owned_by(self, owner: str) -> List[Allocation]:
        return [a for a in self._allocations
                if a.owner == owner and not a.freed]

    def transfer_ownership(self, allocation: Allocation,
                           new_owner: str) -> None:
        """Re-tag an allocation (the 'empty hull parent' trick, §5.6)."""
        allocation.owner = new_owner

    def reclaim_owner(self, owner: str) -> List[Allocation]:
        """Free everything owned by ``owner`` (OS cleanup after a crash)."""
        reclaimed = self.allocations_owned_by(owner)
        for allocation in reclaimed:
            self.free(allocation)
        return reclaimed

    # -- write-generation tracking ---------------------------------------

    def register_generation_range(self, addr: int, length: int,
                                  granularity: int = 64) -> GenerationRange:
        """Track write generations over [addr, addr+length).

        Every mutation of bytes in the range (write, fill, atomics, free
        poisoning) bumps the generation of each ``granularity``-sized
        chunk it touches. Callers snapshot generations to key caches of
        decoded memory contents.
        """
        self._check(addr, length)
        gen_range = GenerationRange(addr, length, granularity)
        index = bisect_right(self._gen_starts, addr)
        self._gen_starts.insert(index, addr)
        self._gen_ranges.insert(index, gen_range)
        return gen_range

    def _bump_gens(self, lo: int, hi: int) -> None:
        """Bump generations of registered chunks overlapping [lo, hi)."""
        starts = self._gen_starts
        index = bisect_right(starts, lo)
        # The range starting at or before lo may contain it.
        if index and self._gen_ranges[index - 1].end > lo:
            index -= 1
        ranges = self._gen_ranges
        count = len(ranges)
        while index < count:
            gen_range = ranges[index]
            start = gen_range.start
            if start >= hi:
                break
            # GenerationRange.bump inlined: single-chunk writes (one WQE
            # slot) are the overwhelmingly common case on the post path.
            granularity = gen_range.granularity
            first = (max(lo, start) - start) // granularity
            last = (min(hi, gen_range.end) - 1 - start) // granularity
            gens = gen_range.gens
            if first == last:
                gens[first] += 1
            else:
                for chunk in range(first, last + 1):
                    gens[chunk] += 1
            index += 1

    # -- raw access ------------------------------------------------------

    def _check(self, addr: int, length: int) -> None:
        if length < 0:
            raise MemoryError_(f"negative access length {length}")
        if addr < self.BASE_ADDR or addr + length > self.size:
            raise MemoryError_(
                f"access [{addr:#x},{addr + length:#x}) outside DRAM")

    def read(self, addr: int, length: int) -> bytes:
        self._check(addr, length)
        # Slicing the memoryview (not the bytearray) makes this one copy
        # instead of two — read() backs every payload gather.
        return bytes(self._view[addr:addr + length])

    def view(self, addr: int, length: int) -> memoryview:
        """Zero-copy read-only window into DRAM.

        Read-only on purpose: all mutations must flow through the write
        APIs so generation counters (and therefore WQE decode caches)
        stay coherent.
        """
        self._check(addr, length)
        return self._view[addr:addr + length].toreadonly()

    def write(self, addr: int, data: bytes) -> None:
        length = len(data)
        if addr < self.BASE_ADDR or addr + length > self.size:
            raise MemoryError_(
                f"access [{addr:#x},{addr + length:#x}) outside DRAM")
        self._bytes[addr:addr + length] = data
        if self._gen_starts:
            self._bump_gens(addr, addr + length)
            if self._trace_hook is not None:
                self._trace_hook(addr, length)

    def read_uint(self, addr: int, width: int) -> int:
        self._check(addr, width)
        return int.from_bytes(self._view[addr:addr + width], "big")

    def write_uint(self, addr: int, value: int, width: int) -> None:
        self.write(addr, pack_uint(value, width))

    def read_u64(self, addr: int) -> int:
        if addr < self.BASE_ADDR or addr + 8 > self.size:
            raise MemoryError_(
                f"access [{addr:#x},{addr + 8:#x}) outside DRAM")
        return int.from_bytes(self._view[addr:addr + 8], "big")

    def write_u64(self, addr: int, value: int) -> None:
        if addr < self.BASE_ADDR or addr + 8 > self.size:
            raise MemoryError_(
                f"access [{addr:#x},{addr + 8:#x}) outside DRAM")
        try:
            self._bytes[addr:addr + 8] = value.to_bytes(8, "big")
        except OverflowError:
            raise ValueError(
                f"value {value:#x} does not fit in 8 bytes") from None
        if self._gen_starts:
            self._bump_gens(addr, addr + 8)
            if self._trace_hook is not None:
                self._trace_hook(addr, 8)

    def fill(self, addr: int, length: int, byte: int = 0) -> None:
        self._check(addr, length)
        self._bytes[addr:addr + length] = bytes([byte]) * length
        if self._gen_starts:
            self._bump_gens(addr, addr + length)
            if self._trace_hook is not None:
                self._trace_hook(addr, length)

    def compare_and_swap_u64(self, addr: int, expected: int,
                             desired: int) -> int:
        """Atomic 64-bit CAS; returns the *original* value (RDMA CAS
        semantics: the original value is returned to the initiator)."""
        original = self.read_u64(addr)
        if original == expected:
            self.write_u64(addr, desired)
        return original

    def fetch_add_u64(self, addr: int, delta: int) -> int:
        """Atomic 64-bit fetch-and-add (wraps modulo 2^64)."""
        original = self.read_u64(addr)
        self.write_u64(addr, (original + delta) & ((1 << 64) - 1))
        return original
