"""Memory registration: protection domains, regions and keys.

Before an RNIC may touch host memory, the memory must be *registered*,
yielding local/remote keys (lkey/rkey). RedN registers two kinds of
regions (paper §3.5, "Offload setup"):

* **code regions** — the WQ ring buffers themselves, registered so that
  RDMA verbs can self-modify the posted program;
* **data regions** — application data (hash tables, values).

Key checking matters for the paper's security argument: clients trigger
offloads with two-sided SENDs and never hold keys to server memory; only
the server's own posted program (which holds the keys) touches data.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from .dram import Allocation, HostMemory

__all__ = [
    "AccessFlags",
    "MemoryRegion",
    "ProtectionDomain",
    "ProtectionError",
]


class ProtectionError(Exception):
    """RDMA access that fails key or bounds validation."""


class AccessFlags:
    """Bitmask of region access permissions (libibverbs-style)."""

    LOCAL_WRITE = 1 << 0
    REMOTE_READ = 1 << 1
    REMOTE_WRITE = 1 << 2
    REMOTE_ATOMIC = 1 << 3

    ALL = LOCAL_WRITE | REMOTE_READ | REMOTE_WRITE | REMOTE_ATOMIC


class MemoryRegion:
    """A registered range of host memory with an rkey."""

    def __init__(self, pd: "ProtectionDomain", allocation: Allocation,
                 access: int, lkey: int, rkey: int):
        self.pd = pd
        self.allocation = allocation
        self.access = access
        self.lkey = lkey
        self.rkey = rkey
        self.invalidated = False

    def __repr__(self) -> str:
        return (f"<MR rkey={self.rkey:#x} [{self.addr:#x},"
                f"{self.addr + self.length:#x})>")

    @property
    def addr(self) -> int:
        return self.allocation.addr

    @property
    def length(self) -> int:
        return self.allocation.size

    def check(self, addr: int, length: int, need: int) -> None:
        """Validate an access of ``length`` bytes at ``addr``."""
        if self.invalidated or self.allocation.freed:
            raise ProtectionError(f"{self!r} is invalidated")
        if not self.allocation.contains(addr, length):
            raise ProtectionError(
                f"access [{addr:#x},{addr + length:#x}) outside {self!r}")
        if (self.access & need) != need:
            raise ProtectionError(
                f"{self!r} lacks access bits {need:#x} (has {self.access:#x})")


class ProtectionDomain:
    """Groups memory regions and queue pairs of one RDMA consumer."""

    _pd_ids = itertools.count(1)

    def __init__(self, memory: HostMemory, name: str = ""):
        self.memory = memory
        self.pd_id = next(self._pd_ids)
        self.name = name or f"pd{self.pd_id}"
        self._regions_by_rkey: Dict[int, MemoryRegion] = {}
        self._key_counter = itertools.count(0x100)

    def __repr__(self) -> str:
        return f"<PD {self.name} regions={len(self._regions_by_rkey)}>"

    def register(self, allocation: Allocation,
                 access: int = AccessFlags.ALL) -> MemoryRegion:
        """Register an allocation for RDMA access, minting fresh keys."""
        key = next(self._key_counter)
        region = MemoryRegion(self, allocation, access, lkey=key, rkey=key)
        self._regions_by_rkey[region.rkey] = region
        return region

    def deregister(self, region: MemoryRegion) -> None:
        region.invalidated = True
        self._regions_by_rkey.pop(region.rkey, None)

    def lookup_rkey(self, rkey: int) -> MemoryRegion:
        region = self._regions_by_rkey.get(rkey)
        if region is None or region.invalidated:
            raise ProtectionError(f"invalid rkey {rkey:#x} in {self!r}")
        return region

    def validate_remote(self, rkey: int, addr: int, length: int,
                        need: int) -> MemoryRegion:
        """rkey + bounds + permission check for an inbound RDMA access."""
        region = self.lookup_rkey(rkey)
        region.check(addr, length, need)
        return region

    def invalidate_all(self) -> None:
        """Drop every region (e.g. owning process died with no hull)."""
        for region in list(self._regions_by_rkey.values()):
            self.deregister(region)
