"""Simulated host memory: DRAM, registration, and byte-layout codecs."""

from .dram import (
    NULL_ADDR,
    Allocation,
    GenerationRange,
    HostMemory,
    MemoryError_,
)
from .layout import Field, Struct, mask, pack_uint, unpack_uint
from .region import (
    AccessFlags,
    MemoryRegion,
    ProtectionDomain,
    ProtectionError,
)

__all__ = [
    "AccessFlags",
    "Allocation",
    "Field",
    "GenerationRange",
    "HostMemory",
    "MemoryError_",
    "MemoryRegion",
    "NULL_ADDR",
    "ProtectionDomain",
    "ProtectionError",
    "Struct",
    "mask",
    "pack_uint",
    "unpack_uint",
]
