"""repro — a full reproduction of RedN (NSDI 2022).

"RDMA is Turing complete, we just did not know it yet!" showed that
chains of self-modifying RDMA work requests on commodity ConnectX NICs
form a Turing-complete programming target. This package reproduces the
system on a calibrated, byte-accurate RNIC simulator:

* :mod:`repro.sim` — discrete-event kernel.
* :mod:`repro.memory` — simulated host DRAM + RDMA registration.
* :mod:`repro.nic` — the RNIC device model (WQEs, queues, PUs, timing).
* :mod:`repro.net` — hosts, CPU scheduling, fabric, failure injection.
* :mod:`repro.ibv` — libibverbs-flavoured host API.
* :mod:`repro.redn` — the paper's contribution: self-modifying RDMA
  programs, if/while constructs, mov emulation, Turing machine.
* :mod:`repro.offloads` — hash lookup and linked-list traversal chains.
* :mod:`repro.datastructs` — RDMA-visible hash tables and lists.
* :mod:`repro.apps` — Memcached-style KV store and baselines.
* :mod:`repro.bench` — the experiment harness behind ``benchmarks/``.
"""

__version__ = "1.0.0"
