"""Cuckoo hash table over registered memory.

The shape RedN's hash-lookup offload targets (§5.2.1): every key lives
in exactly one of **two** candidate buckets ("we set the number of
hashes to two, which is common in practice [MemC3]"), values hang off
the bucket by pointer. This is also the table the paper's Memcached
integration uses ("a version of Memcached that employs cuckoo hashing",
§5.4).

The table is byte-resident: buckets are :data:`BUCKET_RECORD` structs
in a registered region, so RDMA READs see exactly what host code sees.
Insertion uses BFS-free random-walk cuckoo kicks with a bounded path.
Benchmarks can pin a key to its first or second candidate
(``force_bucket``) to reproduce the collision scenarios of Fig 10/11.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..memory.dram import Allocation, HostMemory
from .hashing import hash_key
from .records import BUCKET_RECORD, BUCKET_SIZE, check_key
from .slab import SlabStore

__all__ = ["CuckooTable", "HashTableError"]

_MAX_KICKS = 64


class HashTableError(Exception):
    """Insert failure (table too full) or lookup misuse."""


class CuckooTable:
    """Two-choice cuckoo table with by-pointer values."""

    NUM_HASHES = 2

    def __init__(self, memory: HostMemory, region: Allocation,
                 num_buckets: int, slab: SlabStore):
        if num_buckets < 2:
            raise HashTableError("need at least two buckets")
        needed = num_buckets * BUCKET_SIZE
        if region.size < needed:
            raise HashTableError(
                f"region {region.size}B too small for {num_buckets} "
                f"buckets ({needed}B)")
        self.memory = memory
        self.region = region
        self.num_buckets = num_buckets
        self.slab = slab
        self.count = 0
        memory.fill(region.addr, needed, 0)

    def __repr__(self) -> str:
        return (f"<CuckooTable {self.count}/{self.num_buckets} "
                f"lf={self.load_factor:.2f}>")

    @property
    def load_factor(self) -> float:
        return self.count / self.num_buckets

    # -- geometry (shared with clients) -----------------------------------

    def bucket_index(self, key: int, which: int) -> int:
        return hash_key(check_key(key), which) % self.num_buckets

    def bucket_addr(self, index: int) -> int:
        return self.region.addr + index * BUCKET_SIZE

    def candidate_addrs(self, key: int) -> List[int]:
        """The two bucket addresses a key may live at — what a client
        ships in the trigger message (Fig 9's H1(x))."""
        return [self.bucket_addr(self.bucket_index(key, which))
                for which in range(self.NUM_HASHES)]

    # -- raw bucket IO -------------------------------------------------------

    def _read_bucket(self, index: int) -> dict:
        return BUCKET_RECORD.unpack(
            self.memory.read(self.bucket_addr(index), BUCKET_SIZE))

    def _write_bucket(self, index: int, key: int, valptr: int,
                      vlen: int) -> None:
        self.memory.write(self.bucket_addr(index), bytes(
            BUCKET_RECORD.pack(key=key, valptr=valptr, vlen=vlen)))

    def _clear_bucket(self, index: int) -> None:
        self.memory.fill(self.bucket_addr(index), BUCKET_SIZE, 0)

    # -- operations ----------------------------------------------------------------

    def insert(self, key: int, value: bytes,
               force_bucket: Optional[int] = None) -> int:
        """Insert (or update) a key; returns the bucket index used.

        ``force_bucket`` (0 or 1) pins the key to its first or second
        candidate, evicting any occupant — how the benchmarks construct
        the no-collision / always-second-bucket scenarios of Fig 10/11.
        """
        check_key(key)
        existing = self._locate(key)
        if existing is not None:
            index, record = existing
            self.slab.free(record["valptr"], record["vlen"])
            valptr, vlen = self.slab.store(value)
            self._write_bucket(index, key, valptr, vlen)
            return index

        valptr, vlen = self.slab.store(value)
        if force_bucket is not None:
            index = self.bucket_index(key, force_bucket)
            occupant = self._read_bucket(index)
            if occupant["key"]:
                self.slab.free(occupant["valptr"], occupant["vlen"])
                self.count -= 1
            self._write_bucket(index, key, valptr, vlen)
            self.count += 1
            return index

        placed = self._place(key, valptr, vlen)
        if placed is None:
            self.slab.free(valptr, vlen)
            raise HashTableError(
                f"cuckoo path exhausted at load {self.load_factor:.2f}")
        self.count += 1
        return placed

    def _place(self, key: int, valptr: int, vlen: int) -> Optional[int]:
        carry = (key, valptr, vlen)
        index = self.bucket_index(key, 0)
        for _kick in range(_MAX_KICKS):
            record = self._read_bucket(index)
            if record["key"] == 0:
                self._write_bucket(index, *carry)
                return index
            alt = self.bucket_index(carry[0], 1)
            if self._read_bucket(alt)["key"] == 0:
                self._write_bucket(alt, *carry)
                return alt
            # Evict the occupant of `index`, move carry in, continue
            # with the evictee at its alternate location.
            evictee = (record["key"], record["valptr"], record["vlen"])
            self._write_bucket(index, *carry)
            carry = evictee
            first, second = (self.bucket_index(carry[0], 0),
                             self.bucket_index(carry[0], 1))
            index = second if index == first else first
        return None

    def _locate(self, key: int) -> Optional[Tuple[int, dict]]:
        for which in range(self.NUM_HASHES):
            index = self.bucket_index(key, which)
            record = self._read_bucket(index)
            if record["key"] == key:
                return index, record
        return None

    def lookup(self, key: int) -> Optional[bytes]:
        """Host-side get (what the two-sided RPC handler runs)."""
        found = self._locate(key)
        if found is None:
            return None
        _index, record = found
        return self.slab.fetch(record["valptr"], record["vlen"])

    def lookup_ptr(self, key: int) -> Optional[Tuple[int, int]]:
        """(valptr, vlen) without copying the value."""
        found = self._locate(key)
        if found is None:
            return None
        return found[1]["valptr"], found[1]["vlen"]

    def delete(self, key: int) -> bool:
        found = self._locate(key)
        if found is None:
            return False
        index, record = found
        self.slab.free(record["valptr"], record["vlen"])
        self._clear_bucket(index)
        self.count -= 1
        return True
