"""RDMA-visible data structures with WQE-compatible byte layouts."""

from .cuckoo import CuckooTable, HashTableError
from .hashing import hash_key, splitmix64
from .hopscotch import DEFAULT_NEIGHBORHOOD, HopscotchTable
from .linkedlist import LinkedList, ListError
from .records import (
    BUCKET_RECORD,
    BUCKET_SIZE,
    KEY_BITS,
    KEY_MASK,
    LIST_NODE,
    LIST_NODE_SIZE,
    WQE_PATCH_LEN,
    check_key,
)
from .slab import SlabError, SlabStore

__all__ = [
    "BUCKET_RECORD",
    "BUCKET_SIZE",
    "CuckooTable",
    "DEFAULT_NEIGHBORHOOD",
    "HashTableError",
    "HopscotchTable",
    "KEY_BITS",
    "KEY_MASK",
    "LIST_NODE",
    "LIST_NODE_SIZE",
    "LinkedList",
    "ListError",
    "SlabError",
    "SlabStore",
    "WQE_PATCH_LEN",
    "check_key",
    "hash_key",
    "splitmix64",
]
