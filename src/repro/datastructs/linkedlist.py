"""Singly-linked key-value list over registered memory (§5.3).

Node layout (:data:`LIST_NODE`) is WQE-compatible like the bucket
record, plus a big-endian ``next`` pointer at offset 18 so a single
READ of ``[key|valptr|vlen|next]`` can scatter the first 18 bytes into
a response template and the last 8 into the *next iteration's* READ
target — the steering trick of Fig 12.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..memory.dram import Allocation, HostMemory, NULL_ADDR
from .records import LIST_NODE, LIST_NODE_SIZE, check_key
from .slab import SlabStore

__all__ = ["LinkedList", "ListError"]


class ListError(Exception):
    """Node-region exhaustion or malformed list operations."""


class LinkedList:
    """Append-ordered singly-linked list with by-pointer values."""

    def __init__(self, memory: HostMemory, region: Allocation,
                 slab: SlabStore):
        self.memory = memory
        self.region = region
        self.slab = slab
        self._cursor = region.addr
        self.head = NULL_ADDR
        self.tail = NULL_ADDR
        self.length = 0

    def __repr__(self) -> str:
        return f"<LinkedList len={self.length} head={self.head:#x}>"

    def _alloc_node(self) -> int:
        addr = self._cursor
        if addr + LIST_NODE_SIZE > self.region.end:
            raise ListError("node region exhausted")
        self._cursor += LIST_NODE_SIZE
        return addr

    def alloc_parking_node(self) -> int:
        """A detached node inside the list's region: key 0 (matches no
        request) and a self-referential ``next``. Offload cleanup aims
        defused READs here so a flushed pointer chase stays inside
        registered memory and can never match or run off the end."""
        addr = self._alloc_node()
        self.memory.write(addr, bytes(LIST_NODE.pack(
            key=0, valptr=addr, vlen=0, next=addr)))
        return addr

    def append(self, key: int, value: bytes) -> int:
        """Append a node; returns its address."""
        check_key(key)
        valptr, vlen = self.slab.store(value)
        addr = self._alloc_node()
        self.memory.write(addr, bytes(LIST_NODE.pack(
            key=key, valptr=valptr, vlen=vlen, next=NULL_ADDR)))
        if self.head == NULL_ADDR:
            self.head = addr
        else:
            LIST_NODE.pack_into(self._node_buf(self.tail), 0, "next", addr)
            self._flush_node(self.tail)
        self.tail = addr
        self.length += 1
        return addr

    # Read-modify-write helpers keeping bytes authoritative.

    def _node_buf(self, addr: int) -> bytearray:
        if not hasattr(self, "_buf_cache"):
            self._buf_cache = {}
        buf = bytearray(self.memory.read(addr, LIST_NODE_SIZE))
        self._buf_cache[addr] = buf
        return buf

    def _flush_node(self, addr: int) -> None:
        self.memory.write(addr, bytes(self._buf_cache.pop(addr)))

    def node(self, addr: int) -> dict:
        return LIST_NODE.unpack(self.memory.read(addr, LIST_NODE_SIZE))

    def nodes(self) -> List[Tuple[int, dict]]:
        """(addr, record) pairs in list order."""
        result = []
        addr = self.head
        while addr != NULL_ADDR:
            record = self.node(addr)
            result.append((addr, record))
            addr = record["next"]
        return result

    def find(self, key: int) -> Optional[bytes]:
        """Host-side traversal (the two-sided baseline's work)."""
        addr = self.head
        hops = 0
        while addr != NULL_ADDR:
            record = self.node(addr)
            if record["key"] == key:
                return self.slab.fetch(record["valptr"], record["vlen"])
            addr = record["next"]
            hops += 1
            if hops > self.length:
                raise ListError("cycle detected")
        return None

    def position_of(self, key: int) -> Optional[int]:
        """1-based position of a key (how many READs a traversal costs)."""
        for position, (_addr, record) in enumerate(self.nodes(), start=1):
            if record["key"] == key:
                return position
        return None
