"""Hopscotch hash table — the FaRM-KV baseline's layout (§5.2).

FaRM's one-sided *get* works because hopscotch hashing guarantees a key
lives within a small **neighborhood** of its home bucket: the client
READs the whole neighborhood (default H=6, "implying a 6× overhead for
RDMA metadata operations"), scans it locally, then READs the value by
pointer — two round trips total.

Insertion follows classic hopscotch displacement: if the home
neighborhood is full, a free slot is bubbled backwards by hopping
entries that remain within their own neighborhoods.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..memory.dram import Allocation, HostMemory
from .cuckoo import HashTableError
from .hashing import hash_key
from .records import BUCKET_RECORD, BUCKET_SIZE, check_key
from .slab import SlabStore

__all__ = ["HopscotchTable", "DEFAULT_NEIGHBORHOOD"]

DEFAULT_NEIGHBORHOOD = 6   # FaRM's default (§5.2.2)
_MAX_PROBE = 512


class HopscotchTable:
    """Neighborhood-constrained open addressing over registered memory."""

    def __init__(self, memory: HostMemory, region: Allocation,
                 num_buckets: int, slab: SlabStore,
                 neighborhood: int = DEFAULT_NEIGHBORHOOD):
        if neighborhood < 1:
            raise HashTableError("neighborhood must be >= 1")
        needed = num_buckets * BUCKET_SIZE
        if region.size < needed:
            raise HashTableError("region too small")
        self.memory = memory
        self.region = region
        self.num_buckets = num_buckets
        self.neighborhood = neighborhood
        self.slab = slab
        self.count = 0
        memory.fill(region.addr, needed, 0)

    def __repr__(self) -> str:
        return (f"<HopscotchTable {self.count}/{self.num_buckets} "
                f"H={self.neighborhood}>")

    @property
    def load_factor(self) -> float:
        return self.count / self.num_buckets

    # -- geometry (shared with FaRM-style clients) --------------------------

    def home_index(self, key: int) -> int:
        return hash_key(check_key(key), 0) % self.num_buckets

    def bucket_addr(self, index: int) -> int:
        return self.region.addr + (index % self.num_buckets) * BUCKET_SIZE

    def neighborhood_read_args(self, key: int) -> Tuple[int, int]:
        """(addr, length) of the one-sided neighborhood READ.

        The neighborhood may wrap the table; FaRM sizes tables to make
        that rare — we simply clamp the READ at the region end and let
        the client issue it as a single contiguous fetch, which is the
        common case the paper measures.
        """
        home = self.home_index(key)
        span = min(self.neighborhood, self.num_buckets - home)
        return self.bucket_addr(home), span * BUCKET_SIZE

    @staticmethod
    def scan_neighborhood(blob: bytes, key: int) -> Optional[Tuple[int, int]]:
        """Client-side scan of READ #1's bytes; (valptr, vlen) or None."""
        for offset in range(0, len(blob) - BUCKET_SIZE + 1, BUCKET_SIZE):
            record = BUCKET_RECORD.unpack(blob, offset)
            if record["key"] == key:
                return record["valptr"], record["vlen"]
        return None

    # -- host-side operations ---------------------------------------------------

    def _record(self, index: int) -> dict:
        return BUCKET_RECORD.unpack(
            self.memory.read(self.bucket_addr(index), BUCKET_SIZE))

    def _write(self, index: int, key: int, valptr: int, vlen: int) -> None:
        self.memory.write(self.bucket_addr(index), bytes(
            BUCKET_RECORD.pack(key=key, valptr=valptr, vlen=vlen)))

    def _clear(self, index: int) -> None:
        self.memory.fill(self.bucket_addr(index), BUCKET_SIZE, 0)

    def insert(self, key: int, value: bytes) -> int:
        """Insert/update; returns the bucket index used."""
        home = self.home_index(key)
        # Update in place if present.
        for offset in range(self.neighborhood):
            index = (home + offset) % self.num_buckets
            record = self._record(index)
            if record["key"] == key:
                self.slab.free(record["valptr"], record["vlen"])
                valptr, vlen = self.slab.store(value)
                self._write(index, key, valptr, vlen)
                return index

        # Linear-probe for a free slot, then hop it into range.
        free = None
        for offset in range(_MAX_PROBE):
            index = (home + offset) % self.num_buckets
            if self._record(index)["key"] == 0:
                free = offset
                break
        if free is None:
            raise HashTableError("no free slot within probe range")

        while free >= self.neighborhood:
            free = self._hop_closer(home, free)

        valptr, vlen = self.slab.store(value)
        self._write((home + free) % self.num_buckets, key, valptr, vlen)
        self.count += 1
        return (home + free) % self.num_buckets

    def _hop_closer(self, home: int, free_offset: int) -> int:
        """Move the free slot at ``home+free_offset`` toward home by
        relocating an earlier entry that tolerates the move."""
        free_index = (home + free_offset) % self.num_buckets
        for back in range(self.neighborhood - 1, 0, -1):
            cand_offset = free_offset - back
            if cand_offset < 0:
                continue
            cand_index = (home + cand_offset) % self.num_buckets
            record = self._record(cand_index)
            if record["key"] == 0:
                continue
            cand_home = self.home_index(record["key"])
            distance = (free_index - cand_home) % self.num_buckets
            if distance < self.neighborhood:
                self._write(free_index, record["key"], record["valptr"],
                            record["vlen"])
                self._clear(cand_index)
                return cand_offset
        raise HashTableError("hopscotch displacement failed (table too "
                             "dense for this neighborhood)")

    def lookup(self, key: int) -> Optional[bytes]:
        home = self.home_index(key)
        for offset in range(self.neighborhood):
            record = self._record((home + offset) % self.num_buckets)
            if record["key"] == key:
                return self.slab.fetch(record["valptr"], record["vlen"])
        return None

    def delete(self, key: int) -> bool:
        home = self.home_index(key)
        for offset in range(self.neighborhood):
            index = (home + offset) % self.num_buckets
            record = self._record(index)
            if record["key"] == key:
                self.slab.free(record["valptr"], record["vlen"])
                self._clear(index)
                self.count -= 1
                return True
        return False
