"""On-memory record formats shared by RDMA-visible data structures.

The whole point of these layouts is WQE compatibility (paper §5.2/§5.4):
a *single contiguous RDMA READ* of a record, aimed at ``wqe_base + 2``,
must land

    key    (6 bytes)  -> the WQE's 48-bit id field,
    valptr (8 bytes)  -> the WQE's laddr field,
    vlen   (4 bytes)  -> the WQE's length field,

so the record's first 18 bytes fully prepare a response WRITE and set up
the conditional CAS in one verb. All fields are big-endian — the reason
the paper had to patch Memcached to store bucket pointers in big endian.

Linked-list nodes extend the record with a big-endian ``next`` pointer
(READ scatter steers it into the following iteration's READ).
"""

from __future__ import annotations

from ..memory.layout import Struct, mask

__all__ = [
    "KEY_BITS",
    "KEY_MASK",
    "BUCKET_RECORD",
    "BUCKET_SIZE",
    "LIST_NODE",
    "LIST_NODE_SIZE",
    "WQE_PATCH_LEN",
    "check_key",
]

KEY_BITS = 48            # the paper's 48-bit keys (§5.2.2)
KEY_MASK = mask(KEY_BITS)

#: Bytes a record READ transfers into a WQE: key + valptr + vlen.
WQE_PATCH_LEN = 18

BUCKET_SIZE = 24
BUCKET_RECORD = Struct("bucket", BUCKET_SIZE, [
    ("key", 0, 6),        # 48-bit key (0 = empty slot)
    ("valptr", 6, 8),     # address of the value in the slab
    ("vlen", 14, 4),      # value length
    ("meta", 18, 6),      # version/occupancy metadata (host-side use)
])

LIST_NODE_SIZE = 32
LIST_NODE = Struct("list_node", LIST_NODE_SIZE, [
    ("key", 0, 6),
    ("valptr", 6, 8),
    ("vlen", 14, 4),
    ("next", 18, 8),      # address of the next node (0 = end of list)
    ("meta", 26, 6),
])


def check_key(key: int) -> int:
    """Validate a 48-bit, non-zero key (zero marks empty slots)."""
    if not 0 < key <= KEY_MASK:
        raise ValueError(f"key {key:#x} not a non-zero 48-bit value")
    return key
