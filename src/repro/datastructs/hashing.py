"""Deterministic hash functions shared by client and server.

Clients compute bucket addresses themselves and ship them in the
trigger message (Fig 9: the client sends x and H1(x)), so both sides
must agree on the hash. We use splitmix64 finalizers with two fixed
stream constants — fast, well-distributed, and stable across runs.
"""

from __future__ import annotations

__all__ = ["splitmix64", "hash_key"]

_MASK64 = (1 << 64) - 1
_STREAMS = (0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9)


def splitmix64(value: int) -> int:
    """The splitmix64 finalizer: a high-quality 64-bit mixer."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def hash_key(key: int, which: int) -> int:
    """Hash ``key`` with hash function ``which`` (0 or 1)."""
    return splitmix64(key ^ _STREAMS[which % len(_STREAMS)])
