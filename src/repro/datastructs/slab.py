"""Slab store: where key-value *values* live in registered memory.

Buckets and list nodes only carry (pointer, length) pairs — the paper's
configuration for dynamic value sizes ("we assume the value is not
inlined in the bucket and is instead referenced via a pointer", §5.2).
The slab is a size-classed allocator over one registered region, close
in spirit to Memcached's slab classes: predictable addresses, no
compaction, O(1) alloc/free.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..memory.dram import Allocation, HostMemory

__all__ = ["SlabStore", "SlabError"]

_DEFAULT_CLASSES = (64, 256, 1024, 4096, 16384, 65536, 262144)


class SlabError(Exception):
    """Slab exhaustion or misuse."""


class SlabStore:
    """Size-classed value storage inside one contiguous allocation."""

    def __init__(self, memory: HostMemory, region: Allocation,
                 size_classes: Tuple[int, ...] = _DEFAULT_CLASSES):
        self.memory = memory
        self.region = region
        self.size_classes = tuple(sorted(size_classes))
        self._cursor = region.addr
        self._free: Dict[int, List[int]] = {c: [] for c in
                                            self.size_classes}
        self.stored_values = 0

    def __repr__(self) -> str:
        used = self._cursor - self.region.addr
        return f"<SlabStore {used}/{self.region.size}B values={self.stored_values}>"

    def _class_for(self, length: int) -> int:
        for cls in self.size_classes:
            if length <= cls:
                return cls
        raise SlabError(f"value of {length}B exceeds largest slab class "
                        f"{self.size_classes[-1]}")

    def store(self, value: bytes) -> Tuple[int, int]:
        """Place a value; returns (addr, length)."""
        cls = self._class_for(len(value))
        if self._free[cls]:
            addr = self._free[cls].pop()
        else:
            addr = self._cursor
            if addr + cls > self.region.end:
                raise SlabError("slab region exhausted")
            self._cursor += cls
        self.memory.write(addr, value)
        self.stored_values += 1
        return addr, len(value)

    def free(self, addr: int, length: int) -> None:
        """Return a chunk to its size class."""
        cls = self._class_for(length)
        self._free[cls].append(addr)
        self.stored_values -= 1

    def fetch(self, addr: int, length: int) -> bytes:
        return self.memory.read(addr, length)
