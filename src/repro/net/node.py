"""Hosts and OS processes.

A :class:`Host` bundles the substrate one paper testbed server has:
DRAM, a ConnectX-5 RNIC, and 16 CPU cores (§5, "Testbed"). On top of
it, :class:`OsProcess` models the OS resource-ownership rules that the
failure-resiliency use case (§5.6) hinges on:

* RDMA resources (queue rings, registered regions) are owned by the
  process that created them. When a process dies, the OS reclaims its
  memory, which *kills any RDMA program using it*.
* Unless — the "empty hull" trick — resources are created by (or
  transferred to) a parent process that merely holds them. Linux does
  not free a crashed child's shared resources while the parent lives,
  so the NIC keeps executing across child restarts.
* A kernel panic halts every thread but leaves memory and the NIC
  alone: RNIC offloads keep serving requests.
"""

from __future__ import annotations

import itertools
from typing import Generator, List, Optional

from ..memory.dram import HostMemory
from ..memory.region import ProtectionDomain
from ..nic.models import CONNECTX5, DeviceModel
from ..nic.qp import QueuePair
from ..nic.queue import WorkQueue
from ..nic.rnic import RNIC
from ..sim.core import Process, Simulator
from ..sim.rand import SeededStreams
from .cpu import CpuScheduler

__all__ = ["Host", "OsProcess"]


class OsProcess:
    """An OS process: an ownership domain for RDMA resources."""

    _pids = itertools.count(100)

    def __init__(self, host: "Host", name: str,
                 parent: Optional["OsProcess"] = None):
        self.host = host
        self.name = name
        self.pid = next(self._pids)
        self.parent = parent
        self.children: List["OsProcess"] = []
        if parent is not None:
            parent.children.append(self)
        self.alive = True
        self.pds: List[ProtectionDomain] = []
        self.qps: List[QueuePair] = []
        self.wqs: List[WorkQueue] = []
        self.threads: List[Process] = []

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"<OsProcess {self.name} pid={self.pid} {state}>"

    @property
    def owner_tag(self) -> str:
        """The tag stamped on this process's memory allocations."""
        return f"{self.name}#{self.pid}"

    # -- resource creation --------------------------------------------------

    def create_pd(self) -> ProtectionDomain:
        pd = ProtectionDomain(self.host.memory, name=f"{self.name}-pd")
        self.pds.append(pd)
        return pd

    def create_qp(self, pd: ProtectionDomain, **kwargs) -> QueuePair:
        kwargs.setdefault("owner", self.owner_tag)
        qp = self.host.nic.create_qp(pd, **kwargs)
        self.qps.append(qp)
        self.wqs.extend([qp.send_wq, qp.recv_wq])
        return qp

    def create_loopback_pair(self, pd: ProtectionDomain, **kwargs):
        kwargs.setdefault("owner", self.owner_tag)
        pair = self.host.nic.create_loopback_pair(pd, **kwargs)
        for qp in pair:
            self.qps.append(qp)
            self.wqs.extend([qp.send_wq, qp.recv_wq])
        return pair

    def alloc(self, size: int, label: str = "", align: int = 8):
        return self.host.memory.alloc(
            size, owner=self.owner_tag, label=label, align=align)

    def transfer_rdma_resources_to(self, new_owner: "OsProcess") -> None:
        """The hull-parent trick: re-home resources so they survive us."""
        for allocation in self.host.memory.allocations_owned_by(
                self.owner_tag):
            self.host.memory.transfer_ownership(
                allocation, new_owner.owner_tag)
        new_owner.pds.extend(self.pds)
        new_owner.qps.extend(self.qps)
        new_owner.wqs.extend(self.wqs)
        self.pds, self.qps, self.wqs = [], [], []

    # -- threads -----------------------------------------------------------

    def start_thread(self, generator: Generator, name: str = "") -> Process:
        proc = self.host.sim.process(
            generator, name=name or f"{self.name}-thread")
        self.threads.append(proc)
        return proc


class Host:
    """One testbed server: DRAM + RNIC + cores + an OS process table."""

    def __init__(self, sim: Simulator, name: str,
                 model: DeviceModel = CONNECTX5, num_cores: int = 16,
                 memory_size: int = 256 * 1024 * 1024,
                 nic_ports: int = 1,
                 streams: Optional[SeededStreams] = None):
        self.sim = sim
        self.name = name
        self.memory = HostMemory(size=memory_size, name=f"{name}-dram")
        self.nic = RNIC(sim, self.memory, model=model,
                        name=f"{name}-nic", active_ports=nic_ports)
        self.cpu = CpuScheduler(sim, num_cores=num_cores, name=f"{name}-cpu")
        self.streams = streams or SeededStreams()
        self.processes: List[OsProcess] = []
        self.os_alive = True

    def __repr__(self) -> str:
        return f"<Host {self.name} os={'up' if self.os_alive else 'down'}>"

    def spawn_process(self, name: str,
                      parent: Optional[OsProcess] = None) -> OsProcess:
        process = OsProcess(self, name, parent=parent)
        self.processes.append(process)
        return process

    # -- failure injection (driven by repro.net.failures) --------------------

    def crash_process(self, process: OsProcess) -> None:
        """Kill a process; the OS reclaims whatever it still owns.

        Freed queue rings are poisoned and their WQs destroyed — any
        RDMA program running out of them terminates, exactly the
        failure mode §5.6 describes for un-hulled Memcached. Resources
        previously transferred to a live parent are untouched.
        """
        if not process.alive:
            return
        process.alive = False
        for thread in process.threads:
            thread.interrupt("process crash")
        for wq in process.wqs:
            wq.destroy()
            if wq.cq is not None:
                wq.cq.destroy()
        for pd in process.pds:
            pd.invalidate_all()
        self.memory.reclaim_owner(process.owner_tag)

    def kernel_panic(self) -> None:
        """Freeze the OS: threads stop; the NIC and memory live on."""
        self.os_alive = False
        self.cpu.halt()
        for process in self.processes:
            for thread in process.threads:
                thread.interrupt("kernel panic")
