"""Host CPU model: cores, run queues, context switches.

Two-sided RPC baselines live or die by this model. It captures the
effects the paper leans on:

* **queueing** — a thread that needs CPU waits for a free core behind
  every runnable thread ahead of it; under writer-generated load this
  is what blows up two-sided *get* latency in Fig 15.
* **time slicing** — when cores are contended, threads run in slices
  and pay a context-switch penalty per slice ("CPU contention ... can
  lead to arbitrary context switches, which can, in turn, inflate
  average and tail latencies", §5.5).
* **blocking wake-ups** — a thread sleeping on an event (the
  event-based completion mode of §5.2.2) pays scheduler wake-up latency
  before it runs, which is why event-based RPC is 3.8× slower than
  RedN even on an idle machine.

The model is run-to-completion with cooperative slicing: exact enough
to reproduce the latency distributions, simple enough to stay fast.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim.core import Event, Simulator
from ..sim.resources import Resource

__all__ = ["CpuScheduler"]


class CpuScheduler:
    """``num_cores`` cores with FIFO run queues and slice accounting."""

    def __init__(self, sim: Simulator, num_cores: int = 16,
                 time_slice_ns: int = 50_000,
                 context_switch_ns: int = 2_000,
                 wakeup_ns: int = 4_000, name: str = "cpu"):
        if num_cores < 1:
            raise ValueError("need at least one core")
        self.sim = sim
        self.name = name
        self.num_cores = num_cores
        self.time_slice_ns = time_slice_ns
        self.context_switch_ns = context_switch_ns
        self.wakeup_ns = wakeup_ns
        self.cores = Resource(sim, num_cores, name=f"{name}-cores")
        self.running = True

    def __repr__(self) -> str:
        return (f"<CpuScheduler {self.name} {self.cores.in_use}"
                f"/{self.num_cores} runq={self.cores.queue_length}>")

    @property
    def load(self) -> int:
        """Runnable threads currently waiting for a core."""
        return self.cores.queue_length

    def run(self, duration_ns: int) -> Generator:
        """Consume ``duration_ns`` of CPU time, honouring contention.

        Uncontended, this is a single grant for the full duration.
        Contended, the work is cut into time slices: after each slice
        the core is yielded (context switch) and the thread requeues,
        exposing it to the queueing delays that create Fig 15's tails.
        """
        remaining = int(duration_ns)
        if not self.running:
            # A panicked kernel never schedules anyone again: the
            # thread freezes here (rather than returning and letting
            # its caller spin).
            yield self.sim.event(name=f"{self.name}-halted")
            return
        while remaining > 0 and self.running:
            grant = yield self.cores.acquire()
            if not self.running:
                self.cores.release(grant)
                yield self.sim.event(name=f"{self.name}-halted")
                return
            contended = self.cores.queue_length > 0
            if contended and remaining > self.time_slice_ns:
                slice_ns = self.time_slice_ns
            else:
                slice_ns = remaining
            yield self.sim.timeout(slice_ns)
            remaining -= slice_ns
            if remaining > 0:
                # Pay the involuntary context switch before requeueing.
                yield self.sim.timeout(self.context_switch_ns)
            self.cores.release(grant)

    def block_on(self, event: Event) -> Generator:
        """Sleep until ``event``, then pay scheduler wake-up latency.

        This is the cost profile of epoll/completion-channel servers:
        no CPU burned while idle, but every request eats a wake-up.
        """
        if not event.triggered:
            yield event
        yield self.sim.timeout(self.wakeup_ns)
        # Getting back on a core competes with whatever else is runnable.
        yield from self.run(self.context_switch_ns)
        return event.value

    def acquire_core(self) -> Event:
        """Pin a core indefinitely (a busy-polling thread, §5.2.2)."""
        return self.cores.acquire()

    def release_core(self, grant: int) -> None:
        self.cores.release(grant)

    def halt(self) -> None:
        """Kernel panic: no thread makes progress anymore (§5.6)."""
        self.running = False
