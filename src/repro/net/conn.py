"""The connection plane: QP pools, shared-CQ demux, consistent hashing.

A fleet serving millions of users is first a *connection-management*
problem: thousands of logical client connections cannot each own a
private QP/CQ pair (per-connection NIC state is the scaling bottleneck
Tiara documents for remote-memory serving). This module lifts the
connection machinery that used to be hand-wired per benchmark into
three first-class pieces:

* :class:`QpPool` — a fixed set of pre-connected QPs leased to logical
  connections. Lease order is deterministic (creation order first,
  then least-recently-released — LRU recycling), exhaustion raises the
  typed :class:`PoolExhausted`, and :meth:`QpPool.acquire` gives the
  blocking closed-loop form. Every pool QP completes into **one shared
  send CQ and one shared recv CQ**, so a host polls O(1) CQs instead
  of O(clients).

* :class:`CompletionRouter` — the shared-CQ demux. CQEs carry their
  ``wq_num``; the router's routing table maps it to the current
  :class:`QpLease`. The lease *generation* rides in the high bits of
  every ``wr_id`` (the classic verbs cookie trick — see
  :meth:`QpLease.cookie`), so a CQE that surfaces after its QP was
  released and re-leased is detected as **stale** and quarantined
  instead of being delivered to the wrong logical connection.

* :class:`HashRing` — consistent-hash key ownership for sharded
  serving (``bench/fleet.py``): which shard owns a key is a pure
  function of the key, stable under the deterministic splitmix64
  streams in :mod:`repro.datastructs.hashing`.

Doorbell batching — the third leg of the connection plane — lives in
:class:`repro.nic.queue.DoorbellBatcher` (it is a per-WQ driver
concern, not a per-connection one) and composes with leases via
:meth:`QpLease.post_send`'s ``batcher`` argument.

Everything here is host-side bookkeeping: no simulated time passes in
any non-generator method, and a program that never constructs a pool
or router leaves the NIC queue paths byte- and timing-identical.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from typing import Callable, Deque, Dict, Generator, List, Optional, Tuple

from .. import obs as _obs
from ..datastructs.hashing import hash_key
from ..memory.region import ProtectionDomain
from ..nic.qp import QueuePair
from ..nic.queue import CompletionQueue, Cqe, DoorbellBatcher
from ..nic.rnic import RNIC
from ..nic.wqe import Wqe
from ..sim.core import Event, Simulator

__all__ = ["CompletionRouter", "ConnError", "HashRing", "PoolExhausted",
           "QpLease", "QpPool"]

#: ``wr_id`` cookie layout: 48 bits total (the WQE ctrl-word id field),
#: split as generation(16) << 32 | user id(32). Generations wrap at
#: 2^16 re-leases of one QP — far beyond any scenario here, and a wrap
#: only weakens stale detection, never misroutes a live CQE (routing is
#: by wq_num; the generation is purely the staleness check).
GENERATION_SHIFT = 32
_GEN_MASK = (1 << 16) - 1
_USER_MASK = (1 << GENERATION_SHIFT) - 1


class ConnError(Exception):
    """Connection-plane misuse (double release, oversized wr_id...)."""


class PoolExhausted(ConnError):
    """``QpPool.lease`` found no free QP.

    The typed error is the non-blocking contract: callers that can wait
    use :meth:`QpPool.acquire` instead; callers that cannot (admission
    control, load shedding) catch this and back off.
    """


class QpLease(object):
    """One logical connection's exclusive hold on a pooled QP.

    The lease is the unit of demux: while held, every WR posted through
    it is cookie-stamped with the lease generation, and the pool's
    router delivers matching CQEs to this lease's private inbox.
    Releasing returns the QP to the pool's LRU free list and bumps the
    generation, so anything still in flight surfaces as stale.
    """

    __slots__ = ("pool", "qp", "index", "generation", "tag", "active",
                 "blame", "_inbox", "_cq_waiters")

    def __init__(self, pool: "QpPool", qp: QueuePair, index: int,
                 generation: int, tag: str = "", blame=None):
        self.pool = pool
        self.qp = qp
        self.index = index
        self.generation = generation
        self.tag = tag
        self.active = True
        #: Optional :class:`repro.obs.blame.RequestBlame` context for
        #: the request this lease serves; the router and batcher record
        #: their causal spans into it. Pure host-side bookkeeping.
        self.blame = blame
        self._inbox: Deque[Cqe] = deque()
        self._cq_waiters: Deque[Event] = deque()

    def __repr__(self) -> str:
        state = "active" if self.active else "released"
        return (f"<QpLease {self.qp.name} gen={self.generation} "
                f"tag={self.tag!r} {state}>")

    def cookie(self, user_id: int = 0) -> int:
        """Compose the 48-bit ``wr_id`` cookie for this lease."""
        if not 0 <= user_id <= _USER_MASK:
            raise ConnError(f"user wr_id {user_id:#x} exceeds "
                            f"{GENERATION_SHIFT} bits")
        return ((self.generation & _GEN_MASK) << GENERATION_SHIFT) | user_id

    def _stamp(self, wqe: Wqe) -> Wqe:
        if not self.active:
            raise ConnError(f"post through released {self!r}")
        wqe.wr_id = self.cookie(wqe.wr_id)
        return wqe

    # -- posting -----------------------------------------------------------

    def post_send(self, wqe: Wqe, ring_doorbell: Optional[bool] = None,
                  batcher: Optional[DoorbellBatcher] = None) -> int:
        """Post a cookie-stamped send WR; returns the WR index.

        With ``batcher`` the WQE joins the batcher's pending doorbell
        batch (``ring_doorbell`` must then be left at ``None``);
        otherwise the usual :meth:`QueuePair.post_send` policy table
        applies.
        """
        self._stamp(wqe)
        if batcher is not None:
            if ring_doorbell is not None:
                raise ConnError("batcher and ring_doorbell are exclusive")
            if batcher.wq is not self.qp.send_wq:
                raise ConnError(f"{batcher!r} does not drive "
                                f"{self.qp.send_wq!r}")
            return batcher.post(wqe)
        return self.qp.post_send(wqe, ring_doorbell=ring_doorbell)

    def post_recv(self, wqe: Wqe,
                  ring_doorbell: Optional[bool] = None) -> int:
        """Post a cookie-stamped recv WR; returns the WR index."""
        self._stamp(wqe)
        return self.qp.post_recv(wqe, ring_doorbell=ring_doorbell)

    # -- completion consumption (fed by the pool's router) -----------------

    def _deliver(self, cqe: Cqe) -> None:
        self._inbox.append(cqe)
        if self._cq_waiters:
            self._cq_waiters.popleft().trigger(None)

    def poll(self) -> Optional[Cqe]:
        """Non-blocking: pop this connection's oldest routed CQE."""
        if self._inbox:
            return self._inbox.popleft()
        return None

    def wait_for_event(self) -> Event:
        """Event triggering when a routed CQE is (or already is) inboxed."""
        event = Event(self.pool.sim, f"{self.qp.name}-lease-cqe")
        if self._inbox:
            event.trigger(None)
        else:
            self._cq_waiters.append(event)
        return event

    def wait_cqe(self) -> Generator:
        """Process helper: block until one CQE is routed here; return it."""
        while True:
            cqe = self.poll()
            if cqe is not None:
                return cqe
            yield self.wait_for_event()

    def release(self) -> None:
        """Return the QP to the pool (sugar for ``pool.release(self)``)."""
        self.pool.release(self)


class CompletionRouter:
    """Shared-CQ demux: one routing table over many WQs' completions.

    Attach to any number of :class:`CompletionQueue` objects via
    :meth:`watch`; every host-visible CQE is then routed by its
    ``wq_num`` to the registered lease's inbox, with the ``wr_id``
    generation cookie checked against the lease's. Mismatches — a CQE
    for an unregistered WQ, a released lease, or a recycled (re-leased)
    QP whose in-flight work completed late — are quarantined in
    :attr:`stale_cqes` and counted, never misdelivered.

    Routing is a synchronous host-side table lookup: it adds no
    simulated time and schedules no events, so a routed drive and an
    unrouted one execute the identical event sequence.
    """

    def __init__(self, sim: Simulator, name: str = "cqrouter"):
        self.sim = sim
        self.name = name
        self._routes: Dict[int, QpLease] = {}
        self.routed = 0
        self.stale = 0
        #: Quarantined (wq_num, cookie generation, user wr_id) triples.
        self.stale_cqes: List[Tuple[int, int, int]] = []

    def __repr__(self) -> str:
        return (f"<CompletionRouter {self.name} routes={len(self._routes)} "
                f"routed={self.routed} stale={self.stale}>")

    def watch(self, cq: CompletionQueue) -> None:
        """Divert ``cq``'s host deliveries through this router."""
        cq.attach_router(self)

    def register(self, wq_num: int, lease: QpLease) -> None:
        self._routes[wq_num] = lease

    def unregister(self, wq_num: int) -> None:
        self._routes.pop(wq_num, None)

    def route(self, cqe: Cqe, cq: CompletionQueue) -> None:
        """CompletionQueue delivery hook (see ``attach_router``)."""
        lease = self._routes.get(cqe.wq_num)
        generation = (cqe.wr_id >> GENERATION_SHIFT) & _GEN_MASK
        if lease is None or not lease.active \
                or generation != (lease.generation & _GEN_MASK):
            self.stale += 1
            self.stale_cqes.append(
                (cqe.wq_num, generation, cqe.wr_id & _USER_MASK))
            if _obs.enabled:
                telemetry = self.sim.telemetry
                if telemetry is not None:
                    telemetry.on_stale_cqe(cq)
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.cqe_demux(cq, cqe, stale=True)
            return
        # Strip the cookie so the consumer sees the wr_id it posted.
        cqe.wr_id &= _USER_MASK
        self.routed += 1
        if _obs.enabled:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.cqe_demux(cq, cqe, stale=False)
            blame = lease.blame
            if blame is not None:
                # The completion-to-host-delivery window: the CQE was
                # raised at cqe.timestamp, the demux runs now — blaming
                # the *edge*, not the completion order.
                blame.span(cqe.timestamp, self.sim.now, "cqe_demux",
                           cq.name)
        lease._deliver(cqe)


class QpPool(object):
    """A leased pool of pre-connected QPs sharing one CQ pair.

    ``connect(qp, index)`` is called once per QP at construction to
    wire it to its server-side peer — the pool stays agnostic of how
    peers are built (same-host loopback, a server process across a
    fabric link...). Lease discipline:

    * first lease round goes out in **creation order** (QP 0, 1, ...);
    * released QPs rejoin the free list at the tail, so recycling is
      **least-recently-released first** (LRU) — deterministic, and it
      maximizes the drain time for any straggler completions;
    * :meth:`lease` is non-blocking and raises :class:`PoolExhausted`;
      :meth:`acquire` is the generator form that waits FIFO.
    """

    def __init__(self, nic: RNIC, pd: ProtectionDomain, capacity: int,
                 connect: Optional[Callable[[QueuePair, int], None]] = None,
                 send_slots: int = 64, recv_slots: int = 128,
                 port_index: int = 0, name: str = "pool"):
        if capacity < 1:
            raise ConnError("a QP pool needs at least one QP")
        self.nic = nic
        self.sim: Simulator = nic.sim
        self.name = name
        self.capacity = capacity
        # The shared completion plane: every pool QP's send and recv
        # WQs complete into these two CQs, demuxed by the router.
        self.send_cq = nic.create_cq(name=f"{name}-scq")
        self.recv_cq = nic.create_cq(name=f"{name}-rcq")
        self.router = CompletionRouter(nic.sim, name=f"{name}-router")
        self.router.watch(self.send_cq)
        self.router.watch(self.recv_cq)
        self.qps: List[QueuePair] = []
        for index in range(capacity):
            qp = nic.create_qp(pd, send_slots=send_slots,
                               recv_slots=recv_slots,
                               send_cq=self.send_cq, recv_cq=self.recv_cq,
                               port_index=port_index,
                               name=f"{name}-qp{index}")
            if connect is not None:
                connect(qp, index)
            self.qps.append(qp)
        self._generations = [0] * capacity
        self._free: Deque[int] = deque(range(capacity))
        self._waiters: Deque[Event] = deque()
        self.leases_granted = 0
        self.recycles = 0
        self.exhausted_hits = 0
        self.peak_in_use = 0

    def __repr__(self) -> str:
        return (f"<QpPool {self.name} {self.in_use}/{self.capacity} leased"
                f" granted={self.leases_granted}>")

    @property
    def in_use(self) -> int:
        return self.capacity - len(self._free)

    def lease(self, tag: str = "", blame=None) -> QpLease:
        """Lease the next free QP or raise :class:`PoolExhausted`."""
        if not self._free:
            self.exhausted_hits += 1
            raise PoolExhausted(
                f"{self.name}: all {self.capacity} QPs leased "
                f"({self.leases_granted} granted so far)")
        index = self._free.popleft()
        generation = self._generations[index]
        if generation:
            self.recycles += 1
        lease = QpLease(self, self.qps[index], index, generation,
                        tag=tag, blame=blame)
        self.router.register(lease.qp.send_wq.wq_num, lease)
        self.router.register(lease.qp.recv_wq.wq_num, lease)
        self.leases_granted += 1
        if self.in_use > self.peak_in_use:
            self.peak_in_use = self.in_use
        return lease

    def acquire(self, tag: str = "", blame=None) -> Generator:
        """Process helper: wait (FIFO) for a free QP, then lease it."""
        waited_from = None
        while not self._free:
            if waited_from is None:
                waited_from = self.sim.now
            event = Event(self.sim, f"{self.name}-acquire")
            self._waiters.append(event)
            yield event
        if _obs.enabled:
            now = self.sim.now
            wait_ns = 0 if waited_from is None else now - waited_from
            telemetry = self.sim.telemetry
            if telemetry is not None:
                telemetry.on_pool_wait(self, wait_ns)
            if wait_ns:
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.pool_wait(self, waited_from, tag)
                if blame is not None:
                    blame.span(waited_from, now, "pool_wait", self.name)
        return self.lease(tag, blame=blame)

    def release(self, lease: QpLease) -> None:
        """Return a leased QP; bumps its generation (stale fence)."""
        if lease.pool is not self:
            raise ConnError(f"{lease!r} belongs to another pool")
        if not lease.active:
            raise ConnError(f"{lease!r} released twice")
        lease.active = False
        self._generations[lease.index] = lease.generation + 1
        self.router.unregister(lease.qp.send_wq.wq_num)
        self.router.unregister(lease.qp.recv_wq.wq_num)
        self._free.append(lease.index)
        if self._waiters:
            self._waiters.popleft().trigger(None)

    def stats(self) -> Dict[str, int]:
        """Deterministic pool counters (fingerprint material)."""
        return {
            "capacity": self.capacity,
            "leases_granted": self.leases_granted,
            "recycles": self.recycles,
            "exhausted_hits": self.exhausted_hits,
            "peak_in_use": self.peak_in_use,
            "stale_cqes": self.router.stale,
            "routed_cqes": self.router.routed,
        }


class HashRing:
    """Consistent-hash ownership of integer keys over ``num_shards``.

    Each shard contributes ``vnodes`` points hashed onto a 64-bit ring
    (splitmix64 stream 0); a key (stream 1) is owned by the first point
    clockwise. Ownership is a pure function of ``(num_shards, vnodes,
    key)`` — stable across runs, drive modes and processes — and
    adding a shard moves only ~1/N of the keys, which is the point of
    consistent hashing.
    """

    def __init__(self, num_shards: int, vnodes: int = 64):
        if num_shards < 1:
            raise ConnError("a hash ring needs at least one shard")
        points = sorted(
            (hash_key(shard * 0x10001 + vnode, 0), shard)
            for shard in range(num_shards)
            for vnode in range(vnodes))
        self.num_shards = num_shards
        self._hashes = [point[0] for point in points]
        self._owners = [point[1] for point in points]

    def owner(self, key: int) -> int:
        """The shard index owning ``key``."""
        index = bisect_right(self._hashes, hash_key(key, 1))
        if index == len(self._hashes):
            index = 0
        return self._owners[index]

    def without(self, *shards: int) -> "HashRing":
        """The ring after the given shards leave (failover rebalance).

        The survivors' vnodes keep their positions, so every key owned
        by a surviving shard stays put and only the departed shards'
        keys move to their clockwise successors — the consistent-hash
        property the shard-kill scenario leans on. Shard *indices* are
        preserved (``num_shards`` stays the same); the departed shards
        simply own nothing.
        """
        dead = set(shards)
        unknown = [s for s in sorted(dead)
                   if not 0 <= s < self.num_shards]
        if unknown:
            raise ConnError(f"cannot remove unknown shards {unknown} "
                            f"from a {self.num_shards}-shard ring")
        survivors = [(h, o) for h, o in zip(self._hashes, self._owners)
                     if o not in dead]
        if not survivors:
            raise ConnError("cannot remove every shard from the ring")
        ring = HashRing.__new__(HashRing)
        ring.num_shards = self.num_shards
        ring._hashes = [point[0] for point in survivors]
        ring._owners = [point[1] for point in survivors]
        return ring

    def partition(self, keys) -> Dict[int, List[int]]:
        """Group ``keys`` by owning shard (shard -> sorted key list)."""
        shards: Dict[int, List[int]] = {s: [] for s in range(self.num_shards)}
        for key in keys:
            shards[self.owner(key)].append(key)
        return shards
