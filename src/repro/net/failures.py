"""Failure injection and component-reliability accounting (§5.6).

Two kinds of content live here:

1. The **failure-rate survey** the paper reproduces in Table 6
   (annualized failure rate / mean time to failure / availability per
   server component, sourced from [8, 37] in the paper). These are
   literature constants, not measurements; we quote them and derive the
   availability column, plus an offload-availability model that shows
   *why* NIC-resident services survive host failures.

2. **Crash injectors** used by the Fig 16 fail-over experiment: kill a
   process mid-run (with or without a hull parent holding the RDMA
   resources) or panic the kernel, then optionally model the OS
   restarting the service with the paper's observed recovery costs
   (~1 s process bootstrap + ~1.25 s metadata/hashtable rebuild).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional

from ..sim.core import Simulator
from .node import Host, OsProcess

__all__ = [
    "ComponentReliability",
    "TABLE6_COMPONENTS",
    "availability_from_mttf",
    "offload_availability",
    "CrashInjector",
    "RestartPolicy",
]

HOURS_PER_YEAR = 8760.0


@dataclass(frozen=True)
class ComponentReliability:
    """One row of the paper's Table 6."""

    component: str
    afr_percent: float       # annualized failure rate
    mttf_hours: float        # mean time to failure
    reliability: str         # the paper's "nines" column

    @property
    def availability(self) -> float:
        """Fraction of time up, assuming a 1-hour mean repair time."""
        return availability_from_mttf(self.mttf_hours, mttr_hours=1.0)


#: Paper Table 6 (failure rates from [8, 37]).
TABLE6_COMPONENTS: Dict[str, ComponentReliability] = {
    "OS": ComponentReliability("OS", 41.9, 20_906, "99%"),
    "DRAM": ComponentReliability("DRAM", 39.5, 22_177, "99%"),
    "NIC": ComponentReliability("NIC", 1.00, 876_000, "99.99%"),
    "NVM": ComponentReliability("NVM", 1.00, 2_000_000, "99.99%"),
}


def availability_from_mttf(mttf_hours: float,
                           mttr_hours: float = 1.0) -> float:
    """Classic MTTF/(MTTF+MTTR) steady-state availability."""
    if mttf_hours <= 0:
        raise ValueError("MTTF must be positive")
    return mttf_hours / (mttf_hours + mttr_hours)


def offload_availability(depends_on_os: bool, mttr_hours: float = 1.0) -> float:
    """Availability of a service depending on (NIC [+ OS]).

    A CPU-served RPC path needs both the OS and the NIC up; a RedN
    offload with hull-parented resources needs only the NIC (plus DRAM
    for state). This one-liner is the quantitative version of the
    paper's argument that NIC AFR is an order of magnitude lower.
    """
    chain = ["NIC", "DRAM"]
    if depends_on_os:
        chain.append("OS")
    total = 1.0
    for component in chain:
        total *= availability_from_mttf(
            TABLE6_COMPONENTS[component].mttf_hours, mttr_hours)
    return total


@dataclass
class RestartPolicy:
    """How the OS restarts a crashed service (Fig 16 timeline).

    The paper measures a vanilla Memcached taking "at least 1 second to
    bootstrap, and 1.25 additional seconds to build its metadata and
    hashtables" after the OS respawns it.
    """

    detect_ns: int = 50_000_000              # OS notices the death
    bootstrap_ns: int = 1_000_000_000        # process start + listen
    rebuild_ns: int = 1_250_000_000          # metadata + hashtable rebuild

    @property
    def total_outage_ns(self) -> int:
        return self.detect_ns + self.bootstrap_ns + self.rebuild_ns


class CrashInjector:
    """Schedules crashes against a host during an experiment."""

    def __init__(self, sim: Simulator, host: Host):
        self.sim = sim
        self.host = host
        self.events = []   # (time_ns, kind, target-name) log

    def kill_process_at(self, time_ns: int, process: OsProcess,
                        on_restart: Optional[Callable[[], None]] = None,
                        restart: Optional[RestartPolicy] = None) -> None:
        """Kill ``process`` at ``time_ns``; optionally restart it.

        ``on_restart`` runs once the RestartPolicy delay elapses —
        typically a closure that re-registers state and resumes
        serving (what the OS-respawned Memcached does).
        """
        self.sim.process(self._kill_later(time_ns, process, on_restart,
                                          restart),
                         name=f"crash:{process.name}")

    def panic_at(self, time_ns: int) -> None:
        self.sim.process(self._panic_later(time_ns),
                         name=f"panic:{self.host.name}")

    def _kill_later(self, time_ns: int, process: OsProcess,
                    on_restart, restart) -> Generator:
        delay = time_ns - self.sim.now
        if delay > 0:
            yield self.sim.timeout(delay)
        self.host.crash_process(process)
        self.events.append((self.sim.now, "crash", process.name))
        if restart is not None and on_restart is not None:
            yield self.sim.timeout(restart.total_outage_ns)
            on_restart()
            self.events.append((self.sim.now, "restarted", process.name))

    def _panic_later(self, time_ns: int) -> Generator:
        delay = time_ns - self.sim.now
        if delay > 0:
            yield self.sim.timeout(delay)
        self.host.kernel_panic()
        self.events.append((self.sim.now, "panic", self.host.name))
