"""The network fabric: point-to-point links between NICs.

The paper's testbed connects three servers with back-to-back 100 Gb/s
InfiniBand links (§5, "Testbed") — no switch. :class:`Fabric` mirrors
that: explicit pairwise links with a configurable one-way latency
(default calibrated to the paper's measured ~0.25 µs RTT, Fig 7).
Bandwidth is enforced at the NIC ports (wire serialization), so the
fabric itself only contributes propagation delay.

Inter-shard transport (:class:`ShardFabric`, :class:`ShardChannel`,
:class:`LookaheadError`) is re-exported here from
:mod:`repro.sim.sharded`: cross-shard sends route through this module's
namespace, but the implementation lives in the sim layer so the kernel
package stays import-cycle-free.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..nic.rnic import RNIC
from ..sim.core import Simulator
from ..sim.sharded import LookaheadError, ShardChannel, ShardFabric

__all__ = ["Fabric", "FabricError", "LookaheadError", "ShardChannel",
           "ShardFabric"]

DEFAULT_ONE_WAY_NS = 125


class FabricError(Exception):
    """Topology misuse: message to an unlinked NIC."""


class Fabric:
    """A set of point-to-point links between RNICs."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._links: Dict[Tuple[int, int], int] = {}

    def connect(self, nic_a: RNIC, nic_b: RNIC,
                one_way_ns: int = DEFAULT_ONE_WAY_NS) -> None:
        """Create a bidirectional link (back-to-back cable)."""
        if nic_a is nic_b:
            raise FabricError("cannot link a NIC to itself")
        self._links[(id(nic_a), id(nic_b))] = one_way_ns
        self._links[(id(nic_b), id(nic_a))] = one_way_ns
        nic_a.link_latency_fn = self._latency_fn(nic_a)
        nic_b.link_latency_fn = self._latency_fn(nic_b)

    def linked(self, nic_a: RNIC, nic_b: RNIC) -> bool:
        return (id(nic_a), id(nic_b)) in self._links

    def _latency_fn(self, nic: RNIC):
        def lookup(other: RNIC) -> int:
            key = (id(nic), id(other))
            if key not in self._links:
                raise FabricError(
                    f"{nic.name} has no link to {other.name}")
            return self._links[key]
        return lookup
