"""Hosts, CPU scheduling, network fabric, and failure injection."""

from .cpu import CpuScheduler
from .fabric import DEFAULT_ONE_WAY_NS, Fabric, FabricError
from .failures import (
    TABLE6_COMPONENTS,
    ComponentReliability,
    CrashInjector,
    RestartPolicy,
    availability_from_mttf,
    offload_availability,
)
from .node import Host, OsProcess

__all__ = [
    "CpuScheduler",
    "ComponentReliability",
    "CrashInjector",
    "DEFAULT_ONE_WAY_NS",
    "Fabric",
    "FabricError",
    "Host",
    "OsProcess",
    "RestartPolicy",
    "TABLE6_COMPONENTS",
    "availability_from_mttf",
    "offload_availability",
]
