"""Hosts, CPU scheduling, network fabric, and failure injection."""

from .conn import (
    CompletionRouter,
    ConnError,
    HashRing,
    PoolExhausted,
    QpLease,
    QpPool,
)
from .cpu import CpuScheduler
from .fabric import DEFAULT_ONE_WAY_NS, Fabric, FabricError
from .failures import (
    TABLE6_COMPONENTS,
    ComponentReliability,
    CrashInjector,
    RestartPolicy,
    availability_from_mttf,
    offload_availability,
)
from .node import Host, OsProcess

__all__ = [
    "CompletionRouter",
    "ConnError",
    "CpuScheduler",
    "ComponentReliability",
    "CrashInjector",
    "DEFAULT_ONE_WAY_NS",
    "Fabric",
    "FabricError",
    "HashRing",
    "Host",
    "OsProcess",
    "PoolExhausted",
    "QpLease",
    "QpPool",
    "RestartPolicy",
    "TABLE6_COMPONENTS",
    "availability_from_mttf",
    "offload_availability",
]
