"""Deterministic randomness helpers.

Every stochastic element of the reproduction (workload key choice,
context-switch jitter, crash timing) draws from a :class:`SeededStreams`
instance, which hands out independent `random.Random` streams by name.
Independent named streams keep components decoupled: adding a draw to
one component cannot perturb the sequence seen by another, so benchmark
results stay comparable across code changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["SeededStreams", "DEFAULT_SEED"]

DEFAULT_SEED = 0xC0FFEE


class SeededStreams:
    """A family of independent, reproducible RNG streams keyed by name."""

    def __init__(self, seed: int = DEFAULT_SEED):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big"))
        return self._streams[name]
