"""Shared-resource primitives built on the simulation kernel.

Three primitives cover every contention point in the RNIC and host
models:

* :class:`Resource` — ``capacity`` interchangeable slots with a FIFO
  wait queue. Used for NIC processing units, PCIe DMA engines, host CPU
  cores and the NIC-wide atomic unit.
* :class:`Store` — an unbounded FIFO of items with blocking ``get``.
  Used for mailboxes: NIC doorbell queues, RPC request queues, network
  link ingress buffers.
* :class:`TokenBucket` — a rate limiter. Used for per-WQ rate limiting
  (``ibv_modify_qp_rate_limit``-style isolation, paper §3.5).

All waiting is FIFO and therefore deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from .core import Event, Simulator

__all__ = ["Resource", "Store", "TokenBucket"]


class Resource:
    """``capacity`` slots; acquire with ``yield res.acquire()``.

    The acquire event triggers with a *grant token* that must be passed
    to :meth:`release`. Tokens make double-release a detectable error
    instead of silent capacity corruption.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._event_name = f"acquire:{name}"
        self.in_use = 0
        self._waiters: Deque[Event] = deque()
        self._outstanding = set()
        self._grant_counter = 0

    def __repr__(self) -> str:
        return (f"<Resource {self.name} {self.in_use}/{self.capacity}"
                f" waiters={len(self._waiters)}>")

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that triggers (with a token) once a slot frees."""
        event = Event(self.sim, self._event_name)
        if self.in_use < self.capacity:
            self.in_use += 1
            event.trigger(self._new_grant())
        else:
            self._waiters.append(event)
        return event

    def try_acquire(self) -> Optional[int]:
        """Claim a slot synchronously if one is free; else None.

        The claim happens at exactly the same schedule point acquire()
        would claim it — only the triggered-event dispatch round-trip is
        skipped. Contended callers must fall back to acquire().
        """
        if self.in_use < self.capacity:
            self.in_use += 1
            return self._new_grant()
        return None

    def release(self, grant: int) -> None:
        if grant not in self._outstanding:
            raise ValueError(f"unknown or already-released grant {grant}")
        self._outstanding.discard(grant)
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.trigger(self._new_grant())
        else:
            self.in_use -= 1

    def use(self, duration: int) -> Generator[Event, Any, None]:
        """Process helper: hold one slot for ``duration`` nanoseconds."""
        if self.in_use < self.capacity and not self._waiters:
            # Uncontended fast path: claim the slot synchronously and
            # skip the acquire event plus its grant bookkeeping — one
            # less dispatch round-trip per hold. The slot is claimed at
            # exactly the same point in the schedule as acquire() would
            # claim it, so FIFO fairness is unchanged.
            self.in_use += 1
            try:
                yield duration
            finally:
                if self._waiters:
                    waiter = self._waiters.popleft()
                    waiter.trigger(self._new_grant())
                else:
                    self.in_use -= 1
            return
        grant = yield self.acquire()
        try:
            yield duration
        finally:
            self.release(grant)

    def _new_grant(self) -> int:
        self._grant_counter += 1
        self._outstanding.add(self._grant_counter)
        return self._grant_counter


class Store:
    """Unbounded FIFO with blocking ``get`` and immediate ``put``."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._event_name = f"get:{name}"
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that triggers with the next item."""
        event = Event(self.sim, self._event_name)
        if self._items:
            event.trigger(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking poll; None if empty (models CQ polling)."""
        if self._items:
            return self._items.popleft()
        return None


class TokenBucket:
    """A token-bucket rate limiter: ``rate`` tokens/second, ``burst`` cap.

    ``throttle(cost)`` is a process helper that waits until ``cost``
    tokens are available and consumes them. Refill is computed lazily
    from elapsed simulated time, so the bucket adds no event-loop load
    when idle.
    """

    def __init__(self, sim: Simulator, rate_per_sec: float, burst: float,
                 name: str = ""):
        if rate_per_sec <= 0:
            raise ValueError("rate must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.sim = sim
        self.name = name
        self.rate_per_sec = float(rate_per_sec)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_refill = sim.now

    def _refill(self) -> None:
        elapsed_ns = self.sim.now - self._last_refill
        self._last_refill = self.sim.now
        self._tokens = min(
            self.burst, self._tokens + elapsed_ns * self.rate_per_sec / 1e9)

    def available(self) -> float:
        self._refill()
        return self._tokens

    def throttle(self, cost: float = 1.0) -> Generator[Event, Any, None]:
        if cost > self.burst:
            raise ValueError(f"cost {cost} exceeds burst {self.burst}")
        while True:
            self._refill()
            if self._tokens >= cost:
                self._tokens -= cost
                return
            deficit = cost - self._tokens
            wait_ns = int(deficit * 1e9 / self.rate_per_sec) + 1
            yield wait_ns
