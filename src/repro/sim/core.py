"""Discrete-event simulation kernel.

Every component of the RedN reproduction — RNIC processing units, PCIe
transactions, network links, host CPU threads — is modelled as a *process*:
a Python generator driven by a :class:`Simulator`. Processes advance
simulated time by yielding waitables:

* :class:`Timeout` — resume after a fixed delay,
* :class:`Event` — resume when some other process triggers the event,
* another :class:`Process` — resume when that process finishes,
* :class:`AnyOf` / :class:`AllOf` — compositions of the above.

Time is measured in **integer nanoseconds**. Using integers keeps event
ordering exact and runs deterministic: two simulations with the same seed
produce identical traces, which the test suite relies on heavily.

The kernel is intentionally small and has no external dependencies. It is
loosely shaped after SimPy's API so that readers familiar with SimPy can
follow the device models, but it is implemented from scratch for this
project.

Fast path
---------

The hot loop splits pending work into two queues:

* a binary heap ordered by ``(time, seq)`` for callbacks scheduled in the
  future, and
* a FIFO "immediate" deque for callbacks scheduled *at the current time*
  (event triggers, process starts, zero-delay timeouts).

This preserves the original total order exactly. Every heap entry at time
``T`` was necessarily pushed while ``now < T`` — once the clock reaches
``T``, a schedule at ``T`` lands in the deque instead — so all heap
entries at ``now`` carry sequence numbers smaller than any deque entry,
and draining heap-at-now before the deque replays the old ``(time, seq)``
order while sparing same-time callbacks the O(log n) heap round-trip.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "quantize_delay",
]


class SimulationError(Exception):
    """Raised for kernel-level misuse (e.g. re-triggering an event)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries an arbitrary payload supplied by the
    interrupter (for example, a preemption notice from the CPU scheduler).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


def quantize_delay(delay: float) -> int:
    """Round a real-valued delay to integer nanoseconds, half-up.

    :class:`Timeout` rejects non-integral delays because silent
    truncation changes event order between runs. Timing models that
    genuinely produce fractional nanoseconds opt in to rounding by
    calling this explicitly.
    """
    return int(delay // 1) + (1 if delay % 1 >= 0.5 else 0)


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *untriggered*. Calling :meth:`trigger` (or
    :meth:`fail`) moves it to the triggered state and schedules every
    waiting process to resume at the current simulation time. Triggering
    twice is an error — events are strictly one-shot, mirroring RDMA
    completion semantics where a completion fires exactly once.
    """

    __slots__ = ("sim", "name", "triggered", "value", "exception",
                 "_callbacks")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        # Waiter storage is tri-state to avoid allocating a list for the
        # ubiquitous zero/one-waiter cases: None (no waiters), a bare
        # callable (one waiter), or a list (two or more).
        self._callbacks: Any = None

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<Event {self.name or id(self):x} {state}>"

    @property
    def ok(self) -> bool:
        """True once the event triggered successfully (no exception)."""
        return self.triggered and self.exception is None

    def trigger(self, value: Any = None) -> "Event":
        """Mark the event as having happened, waking all waiters."""
        if self.triggered:
            raise SimulationError(f"{self!r} triggered twice")
        self.triggered = True
        self.value = value
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            immediate = self.sim._immediate
            if callbacks.__class__ is list:
                for callback in callbacks:
                    immediate.append((callback, self))
            else:
                immediate.append((callbacks, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Mark the event as failed; waiters see ``exception`` raised."""
        if self.triggered:
            raise SimulationError(f"{self!r} triggered twice")
        self.triggered = True
        self.exception = exception
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            immediate = self.sim._immediate
            if callbacks.__class__ is list:
                for callback in callbacks:
                    immediate.append((callback, self))
            else:
                immediate.append((callbacks, self))
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event triggers.

        If the event already triggered the callback is queued to run at
        the current simulation time (not synchronously), preserving the
        invariant that callbacks never run inside the caller's frame.
        """
        if self.triggered:
            self.sim._immediate.append((callback, self))
            return
        callbacks = self._callbacks
        if callbacks is None:
            self._callbacks = callback
        elif callbacks.__class__ is list:
            callbacks.append(callback)
        else:
            self._callbacks = [callbacks, callback]

    def _discard_callback(self, callback: Callable[["Event"], None]) -> None:
        """Detach a waiter that no longer cares (abandoned wait).

        Without this, an abandoned event keeps the dead callback and
        queues a useless immediate when it eventually triggers. Uses
        ``==`` (not ``is``): bound methods compare by identity of their
        underlying function and instance but are re-created per access.
        """
        callbacks = self._callbacks
        if callbacks is None:
            return
        if callbacks.__class__ is list:
            try:
                callbacks.remove(callback)
            except ValueError:
                return
            if len(callbacks) == 1:
                self._callbacks = callbacks[0]
        elif callbacks == callback:
            self._callbacks = None


class Timeout(Event):
    """An event that triggers automatically after ``delay`` nanoseconds.

    ``delay`` must be integral: integer nanoseconds are what keep runs
    deterministic, and silently truncating a float changes event order.
    Integral floats (``5.0``) are accepted; fractional delays raise
    ``ValueError`` — round explicitly with :func:`quantize_delay` where a
    timing model really produces fractions.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if type(delay) is not int:
            if isinstance(delay, float) and delay.is_integer():
                delay = int(delay)
            elif isinstance(delay, int):  # bool / IntEnum
                delay = int(delay)
            else:
                raise ValueError(
                    f"non-integral timeout delay {delay!r}: simulated time "
                    f"is integer ns; round explicitly with quantize_delay()")
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.sim = sim
        self.name = ""
        self.triggered = False
        self.value = None
        self.exception = None
        self._callbacks = None
        self.delay = delay
        if delay:
            sim._push_future(sim.now + delay, self._fire, value)
        else:
            sim._immediate.append((self._fire, value))

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<Event timeout({self.delay}) {state}>"

    def _fire(self, value: Any) -> None:
        # Runs from the event loop itself, never inside a process frame,
        # so waiter callbacks are safe to run synchronously — this saves
        # a full dispatch round-trip per elapsed timeout (the single most
        # common event in any simulation).
        if self.triggered:
            return
        self.triggered = True
        self.value = value
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            if callbacks.__class__ is list:
                for callback in callbacks:
                    callback(self)
            else:
                callbacks(self)


class _Condition(Event):
    """Base for AnyOf/AllOf: completes based on a set of child events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.trigger([])
            return
        for event in self.events:
            event.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:
        raise NotImplementedError

    def _values(self) -> List[Any]:
        return [e.value for e in self.events if e.triggered]


class AnyOf(_Condition):
    """Triggers when the first of its child events triggers."""

    __slots__ = ()

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
        else:
            self.trigger(event)
        # Detach from the losing children: once the race is decided
        # their triggers have no observer here, so leaving the callback
        # behind only costs a dead dispatch (and keeps this condition
        # alive) when they eventually fire.
        callback = self._child_done
        for child in self.events:
            if child is not event and not child.triggered:
                child._discard_callback(callback)


class AllOf(_Condition):
    """Triggers when every child event has triggered."""

    __slots__ = ()

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.trigger(self._values())


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running generator, driven by the simulator.

    A process *is* an event: it triggers (with the generator's return
    value) when the generator finishes, so processes can wait on each
    other simply by yielding the target process.
    """

    __slots__ = ("_generator", "_waiting_on", "_sleep_token")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = ""):
        super().__init__(sim, name=name or getattr(generator, "__name__", ""))
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Monotonic token identifying the current bare-delay sleep (a
        # ``yield <int ns>``); any other resumption bumps it so a stale
        # sleep entry left on the heap cannot resume the process twice.
        self._sleep_token = 0
        # Kick off on the next kernel step at the current time.
        sim._immediate.append((self._resume, (None, None)))

    def __repr__(self) -> str:
        state = "done" if self.triggered else "running"
        return f"<Process {self.name} {state}>"

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op, mirroring the
        convention that cancellation of completed work is harmless.
        """
        if self.triggered:
            return
        self.sim._immediate.append((self._resume, (None, Interrupt(cause))))

    def _resume(self, payload) -> None:
        if self.triggered:
            return
        send_value, throw_exc = payload
        waiting = self._waiting_on
        if waiting is not None:
            # Re-targeting (e.g. an interrupt) abandons the old wait:
            # prune our callback so the event's eventual trigger does
            # not queue a dead immediate.
            waiting._discard_callback(self._on_event)
            self._waiting_on = None
        self._sleep_token += 1
        self._step(send_value, throw_exc)

    def _step(self, send_value, throw_exc) -> None:
        try:
            if throw_exc is None:
                target = self._generator.send(send_value)
            else:
                target = self._generator.throw(throw_exc)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        except Interrupt:
            # Process chose not to handle its interrupt: treat as clean
            # termination. This lets models kill worker loops without
            # every loop needing a try/except.
            self.trigger(None)
            return
        except Exception as exc:
            # A crashed process fails its event (waiters see the
            # exception) and is recorded so errors cannot pass silently.
            self.fail(exc)
            self.sim.failed_processes.append(self)
            return
        if target.__class__ is int:
            # Bare-delay sleep: ``yield ns`` resumes the process after
            # ``ns`` nanoseconds with no Timeout/Event allocated at all
            # — one heap tuple replaces the object, its callback slot
            # and the add_callback round-trip. Scheduling is position-
            # identical to ``yield Timeout(sim, ns)`` (same sequence
            # number consumed here, same single loop callback at fire
            # time), so runs are bit-identical either way.
            if target < 0:
                exc = SimulationError(
                    f"process {self.name} yielded negative delay {target}")
                self.fail(exc)
                self.sim.failed_processes.append(self)
                return
            self._sleep_token = token = self._sleep_token + 1
            sim = self.sim
            if target:
                sim._push_future(sim.now + target, self._sleep_fire, token)
            else:
                sim._immediate.append((self._sleep_fire, token))
        elif isinstance(target, Event):
            # Inlined _wait_on/add_callback: this is the hottest edge in
            # the kernel (every yield of every process lands here).
            self._waiting_on = target
            if target.triggered:
                self.sim._immediate.append((self._on_event, target))
            else:
                callbacks = target._callbacks
                if callbacks is None:
                    target._callbacks = self._on_event
                elif callbacks.__class__ is list:
                    callbacks.append(self._on_event)
                else:
                    target._callbacks = [callbacks, self._on_event]
        elif isinstance(target, float) and target.is_integer():
            # Integral float delay: accepted exactly like Timeout does.
            self._step_sleep_float(target)
        else:
            exc = SimulationError(
                f"process {self.name} yielded {target!r}, not an Event")
            self.fail(exc)
            self.sim.failed_processes.append(self)

    def _step_sleep_float(self, target: float) -> None:
        delay = int(target)
        if delay < 0:
            exc = SimulationError(
                f"process {self.name} yielded negative delay {delay}")
            self.fail(exc)
            self.sim.failed_processes.append(self)
            return
        self._sleep_token = token = self._sleep_token + 1
        sim = self.sim
        if delay:
            sim._push_future(sim.now + delay, self._sleep_fire, token)
        else:
            sim._immediate.append((self._sleep_fire, token))

    def _sleep_fire(self, token: int) -> None:
        if (self.triggered or token != self._sleep_token
                or self._waiting_on is not None):
            # The process finished, was interrupted, or moved on to a
            # different wait while this sleep was pending.
            return
        self._step(None, None)

    def _wait_on(self, target: Event) -> None:
        self._waiting_on = target
        target.add_callback(self._on_event)

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if self._waiting_on is not event:
            # A stale callback from an event we abandoned (e.g. after an
            # interrupt re-targeted the process). Ignore it.
            return
        self._waiting_on = None
        exception = event.exception
        if exception is None:
            self._step(event.value, None)
        else:
            self._step(None, exception)


class Simulator:
    """The event loop: a time-ordered heap plus an immediate deque.

    Determinism: ties in time are broken by insertion order. Future
    callbacks carry a monotonically increasing sequence number on the
    heap; same-time callbacks go to a FIFO deque which is drained after
    the heap entries already pending at the current time (those are
    always older — see the module docstring), so runs are exactly
    reproducible.
    """

    def __init__(self):
        self.now: int = 0
        self._heap: List = []
        self._immediate: deque = deque()
        self._sequence = itertools.count()
        self._processes_started = 0
        self._events_executed = 0
        self._heap_peak = 0
        #: Processes that died with an unhandled exception. Inspect (or
        #: assert empty) in tests — failures never crash the kernel.
        self.failed_processes: List["Process"] = []
        #: Attached :class:`repro.obs.Tracer`, or None. The kernel never
        #: touches it; instrumented device models check it behind the
        #: ``repro.obs.enabled`` module flag.
        self.tracer = None
        #: Attached :class:`repro.obs.recorder.FlightRecorder`, or None
        #: — same contract as ``tracer``.
        self.recorder = None
        #: Attached :class:`repro.obs.telemetry.TelemetryCollector`, or
        #: None — same contract as ``tracer``.
        self.telemetry = None
        self._metrics = None

    # -- scheduling ------------------------------------------------------

    def schedule_at(self, time: int, callback: Callable, payload: Any) -> None:
        """Run ``callback(payload)`` at simulated ``time`` (ns)."""
        now = self.now
        if time == now:
            self._immediate.append((callback, payload))
            return
        if time < now:
            raise SimulationError(
                f"cannot schedule at {time} < now {self.now}")
        self._push_future(int(time), callback, payload)

    def _push_future(self, time: int, callback: Callable, payload: Any) -> None:
        """Heap-push a future callback with the shared seq/peak bookkeeping.

        Single point of truth for the ``(time, seq, callback, payload)``
        entry layout — Timeout, bare-delay sleeps and schedule_at all
        route through here so the determinism-critical sequence counter
        is consumed in exactly one place.
        """
        heap = self._heap
        heappush(heap, (time, next(self._sequence), callback, payload))
        if len(heap) > self._heap_peak:
            self._heap_peak = len(heap)

    def _queue_callbacks(self, event: Event) -> None:
        callbacks, event._callbacks = event._callbacks, None
        if callbacks is None:
            return
        immediate = self._immediate
        if callbacks.__class__ is list:
            for callback in callbacks:
                immediate.append((callback, event))
        else:
            immediate.append((callbacks, event))

    def _schedule_callback(self, event: Event, callback: Callable) -> None:
        self._immediate.append((callback, event))

    # -- factories -------------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        self._processes_started += 1
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- introspection ---------------------------------------------------

    @property
    def metrics(self):
        """This simulation's :class:`~repro.obs.MetricsRegistry`.

        Created lazily (and imported lazily, keeping the kernel free of
        package dependencies) with the kernel counters pre-registered
        as gauges — the loop keeps bumping bare ints; the registry
        samples them only at snapshot time.
        """
        registry = self._metrics
        if registry is None:
            from ..obs.metrics import MetricsRegistry
            registry = self._metrics = MetricsRegistry()
            registry.gauge("sim.now", lambda: self.now)
            registry.gauge("sim.events_executed",
                           lambda: self._events_executed)
            registry.gauge("sim.heap_peak", lambda: self._heap_peak)
            registry.gauge("sim.processes_started",
                           lambda: self._processes_started)
        return registry

    @property
    def stats(self) -> Dict[str, int]:
        """Kernel counters for the perf harness (and determinism checks).

        ``events_executed`` counts every callback the loop ran,
        ``heap_peak`` is the maximum length the future-event heap ever
        reached, ``processes_started`` counts :meth:`process` calls.
        """
        return {
            "events_executed": self._events_executed,
            "heap_peak": self._heap_peak,
            "processes_started": self._processes_started,
        }

    def peek_next_time(self) -> Optional[int]:
        """Earliest time at which work is pending, or None when idle.

        Immediate callbacks count as work at the current time. Used by
        the sharded synchronizer to compute the global window floor
        without disturbing the queues.
        """
        if self._immediate:
            return self.now
        if self._heap:
            return self._heap[0][0]
        return None

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Execute the earliest pending callback, advancing time."""
        heap = self._heap
        if heap and (not self._immediate or heap[0][0] == self.now):
            time, _seq, callback, payload = heapq.heappop(heap)
            self.now = time
            callback(payload)
        else:
            callback, payload = self._immediate.popleft()
            callback(payload)
        self._events_executed += 1

    def run(self, until: Optional[int] = None,
            max_events: int = 100_000_000) -> int:
        """Run until the queues drain or simulated time passes ``until``.

        Returns the simulation time at exit. ``max_events`` guards
        against accidental non-termination in tests (RedN programs are,
        after all, Turing complete).
        """
        if until is not None and until < self.now:
            # A window that already closed: running would rewind the
            # clock on the `time > until` break below. No-op instead.
            return self.now
        heap = self._heap
        immediate = self._immediate
        heappop_ = heappop
        popleft = immediate.popleft
        executed = 0
        # Rare: resuming with heap entries already at the current time
        # (after step() or a max_events abort). They predate everything
        # in the deque, so prepend them in (time, seq) order.
        if heap and heap[0][0] == self.now:
            stale = []
            while heap and heap[0][0] == self.now:
                entry = heappop_(heap)
                stale.append((entry[2], entry[3]))
            immediate.extendleft(reversed(stale))
        try:
            while True:
                # Same-time callbacks: the common case, dispatched with
                # no heap consultation at all.
                while immediate:
                    if executed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} "
                            f"at t={self.now}")
                    callback, payload = popleft()
                    callback(payload)
                    executed += 1
                if not heap:
                    break
                time = heap[0][0]
                if until is not None and time > until:
                    self.now = until
                    break
                self.now = time
                # Drain every heap entry at `time` before returning to
                # the deque: they were all pushed while now < time, so
                # they predate anything a callback appends now, and no
                # new heap entry can land at the current time.
                while True:
                    if executed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} "
                            f"at t={self.now}")
                    _t, _seq, callback, payload = heappop_(heap)
                    callback(payload)
                    executed += 1
                    if not heap or heap[0][0] != time:
                        break
        finally:
            self._events_executed += executed
        return self.now

    def run_process(self, generator: ProcessGenerator,
                    until: Optional[int] = None) -> Any:
        """Convenience: start a process, run to completion, return value."""
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(f"{proc!r} did not finish by t={self.now}")
        if proc.exception is not None:
            raise proc.exception
        return proc.value
