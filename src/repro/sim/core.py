"""Discrete-event simulation kernel.

Every component of the RedN reproduction — RNIC processing units, PCIe
transactions, network links, host CPU threads — is modelled as a *process*:
a Python generator driven by a :class:`Simulator`. Processes advance
simulated time by yielding waitables:

* :class:`Timeout` — resume after a fixed delay,
* :class:`Event` — resume when some other process triggers the event,
* another :class:`Process` — resume when that process finishes,
* :class:`AnyOf` / :class:`AllOf` — compositions of the above.

Time is measured in **integer nanoseconds**. Using integers keeps event
ordering exact and runs deterministic: two simulations with the same seed
produce identical traces, which the test suite relies on heavily.

The kernel is intentionally small (a binary-heap event loop plus a
coroutine driver) and has no external dependencies. It is loosely shaped
after SimPy's API so that readers familiar with SimPy can follow the
device models, but it is implemented from scratch for this project.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for kernel-level misuse (e.g. re-triggering an event)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries an arbitrary payload supplied by the
    interrupter (for example, a preemption notice from the CPU scheduler).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *untriggered*. Calling :meth:`trigger` (or
    :meth:`fail`) moves it to the triggered state and schedules every
    waiting process to resume at the current simulation time. Triggering
    twice is an error — events are strictly one-shot, mirroring RDMA
    completion semantics where a completion fires exactly once.
    """

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Event"], None]] = []

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<Event {self.name or id(self):x} {state}>"

    @property
    def ok(self) -> bool:
        """True once the event triggered successfully (no exception)."""
        return self.triggered and self.exception is None

    def trigger(self, value: Any = None) -> "Event":
        """Mark the event as having happened, waking all waiters."""
        if self.triggered:
            raise SimulationError(f"{self!r} triggered twice")
        self.triggered = True
        self.value = value
        self.sim._queue_callbacks(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Mark the event as failed; waiters see ``exception`` raised."""
        if self.triggered:
            raise SimulationError(f"{self!r} triggered twice")
        self.triggered = True
        self.exception = exception
        self.sim._queue_callbacks(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event triggers.

        If the event already triggered the callback is queued to run at
        the current simulation time (not synchronously), preserving the
        invariant that callbacks never run inside the caller's frame.
        """
        if self.triggered:
            self.sim._schedule_callback(self, callback)
        else:
            self._callbacks.append(callback)


class Timeout(Event):
    """An event that triggers automatically after ``delay`` nanoseconds."""

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        super().__init__(sim, name=f"timeout({delay})")
        sim.schedule_at(sim.now + int(delay), self._fire, value)

    def _fire(self, value: Any) -> None:
        if not self.triggered:
            self.trigger(value)


class _Condition(Event):
    """Base for AnyOf/AllOf: completes based on a set of child events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.trigger([])
            return
        for event in self.events:
            event.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:
        raise NotImplementedError

    def _values(self) -> List[Any]:
        return [e.value for e in self.events if e.triggered]


class AnyOf(_Condition):
    """Triggers when the first of its child events triggers."""

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
        else:
            self.trigger(event)


class AllOf(_Condition):
    """Triggers when every child event has triggered."""

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.trigger(self._values())


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running generator, driven by the simulator.

    A process *is* an event: it triggers (with the generator's return
    value) when the generator finishes, so processes can wait on each
    other simply by yielding the target process.
    """

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = ""):
        super().__init__(sim, name=name or getattr(generator, "__name__", ""))
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off on the next kernel step at the current time.
        sim.schedule_at(sim.now, self._resume, (None, None))

    def __repr__(self) -> str:
        state = "done" if self.triggered else "running"
        return f"<Process {self.name} {state}>"

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op, mirroring the
        convention that cancellation of completed work is harmless.
        """
        if self.triggered:
            return
        self.sim.schedule_at(self.sim.now, self._resume,
                             (None, Interrupt(cause)))

    def _resume(self, payload) -> None:
        send_value, throw_exc = payload
        if self.triggered:
            return
        self._waiting_on = None
        try:
            if throw_exc is not None:
                target = self._generator.throw(throw_exc)
            else:
                target = self._generator.send(send_value)
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process {self.name} yielded {target!r}, not an Event")
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        except Interrupt:
            # Process chose not to handle its interrupt: treat as clean
            # termination. This lets models kill worker loops without
            # every loop needing a try/except.
            self.trigger(None)
            return
        except Exception as exc:
            # A crashed process fails its event (waiters see the
            # exception) and is recorded so errors cannot pass silently.
            self.fail(exc)
            self.sim.failed_processes.append(self)
            return
        self._wait_on(target)

    def _wait_on(self, target: Event) -> None:
        self._waiting_on = target
        target.add_callback(self._on_event)

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if self._waiting_on is not event:
            # A stale callback from an event we abandoned (e.g. after an
            # interrupt re-targeted the process). Ignore it.
            return
        if event.exception is not None:
            self._resume((None, event.exception))
        else:
            self._resume((event.value, None))


class Simulator:
    """The event loop: a time-ordered heap of callbacks.

    Determinism: ties in time are broken by insertion order (a
    monotonically increasing sequence number), so runs are exactly
    reproducible.
    """

    def __init__(self):
        self.now: int = 0
        self._heap: List = []
        self._sequence = itertools.count()
        self._processes_started = 0
        #: Processes that died with an unhandled exception. Inspect (or
        #: assert empty) in tests — failures never crash the kernel.
        self.failed_processes: List["Process"] = []

    # -- scheduling ------------------------------------------------------

    def schedule_at(self, time: int, callback: Callable, payload: Any) -> None:
        """Run ``callback(payload)`` at simulated ``time`` (ns)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} < now {self.now}")
        heapq.heappush(self._heap, (int(time), next(self._sequence),
                                    callback, payload))

    def _queue_callbacks(self, event: Event) -> None:
        callbacks, event._callbacks = event._callbacks, []
        for callback in callbacks:
            self.schedule_at(self.now, callback, event)

    def _schedule_callback(self, event: Event, callback: Callable) -> None:
        self.schedule_at(self.now, callback, event)

    # -- factories -------------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        self._processes_started += 1
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Execute the earliest pending callback, advancing time."""
        time, _seq, callback, payload = heapq.heappop(self._heap)
        self.now = time
        callback(payload)

    def run(self, until: Optional[int] = None,
            max_events: int = 100_000_000) -> int:
        """Run until the heap drains or simulated time passes ``until``.

        Returns the simulation time at exit. ``max_events`` guards
        against accidental non-termination in tests (RedN programs are,
        after all, Turing complete).
        """
        executed = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                break
            if executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self.now}")
            self.step()
            executed += 1
        return self.now

    def run_process(self, generator: ProcessGenerator,
                    until: Optional[int] = None) -> Any:
        """Convenience: start a process, run to completion, return value."""
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(f"{proc!r} did not finish by t={self.now}")
        if proc.exception is not None:
            raise proc.exception
        return proc.value
