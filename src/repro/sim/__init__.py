"""Discrete-event simulation kernel (substrate for all device models)."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    quantize_delay,
)
from .rand import DEFAULT_SEED, SeededStreams
from .resources import Resource, Store, TokenBucket
from .sharded import LookaheadError, Shard, ShardedSimulation

__all__ = [
    "AllOf",
    "AnyOf",
    "DEFAULT_SEED",
    "Event",
    "Interrupt",
    "LookaheadError",
    "Process",
    "Resource",
    "SeededStreams",
    "Shard",
    "ShardedSimulation",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "TokenBucket",
    "quantize_delay",
]
