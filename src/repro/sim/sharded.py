"""Sharded multi-bed simulation with conservative lookahead.

A multi-bed scenario (fig 14/15-style fleets, the cluster benchmark)
used to run every bed inside one global event loop. This module instead
gives every bed its own :class:`~repro.sim.core.Simulator` **shard**
and coordinates them with a classic conservative (bounded-window)
synchronizer: beds only interact through :class:`ShardFabric` links
(re-exported via :mod:`repro.net.fabric`), and a link's one-way latency
is a hard lower bound on how soon one bed can affect another — the
*lookahead*. Each round, every shard may therefore run freely through a
window of that width without ever seeing a message late.

The protocol, per round:

1. ``T_min`` — the globally earliest pending action: the minimum over
   shards of the shard's next local event time and its earliest pending
   inbound message arrival.
2. Every shard's window is ``[.., T_min + min_inbound_latency)`` —
   unbounded if nothing can ever reach it. Any message generated this
   round is sent at ``>= T_min`` and so arrives at
   ``>= T_min + latency``, i.e. **at or past every receiver's horizon**
   — which is why the shards of a round can run in any order (we use
   index order for reproducibility) and a message at exactly the
   horizon must wait for the next round.
3. Within its window a shard first runs to each pending message's
   arrival time, then injects the message, so delivery always happens
   after all local events before the arrival time and before any event
   at it. Combined with the fabric's canonical ``(ts, src shard, send
   seq)`` message order, the merged per-shard schedules are a pure
   function of the simulated system — not of the synchronizer's
   batching.

:meth:`ShardedSimulation.run_serial` drives the *same* protocol with
degenerate one-timestamp windows, which is exactly a time-ordered
global merge of all shards. Because both drivers share the delivery
rules, serial and sharded runs are bit-identical — same per-shard event
counts, clocks and journals — and the serial run is the honest baseline
the cluster benchmark's speedup is measured against.

Single-shard fallback: with one shard and no links, :meth:`run`
degenerates to exactly one ``Simulator.run`` call — today's loop,
byte for byte.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from .. import obs as _obs
from .core import SimulationError, Simulator
from .resources import Store

__all__ = ["DEFAULT_SHARD_LINK_NS", "LookaheadError", "Shard",
           "ShardChannel", "ShardFabric", "ShardedSimulation"]

#: Default one-way latency of an inter-shard link. Cross-bed links are
#: inter-server hops, not the paper's back-to-back NIC cables, and a
#: wider link is also a wider conservative window.
DEFAULT_SHARD_LINK_NS = 1000


class LookaheadError(SimulationError):
    """An inter-shard link without positive latency has no lookahead.

    The conservative synchronizer can only run a shard ahead of its
    neighbours by the minimum inbound link latency; a zero-latency link
    would force lock-step execution (and, worse, same-timestamp
    cross-shard causality the window protocol cannot order), so it is
    rejected up front with this typed error.
    """


class ShardChannel:
    """A directed inter-shard link: ``src`` shard -> ``dst`` shard.

    ``send`` stamps the message with the sender's current simulated
    time; it arrives at the destination shard exactly ``one_way_ns``
    later, addressed to a named mailbox (see :meth:`Shard.mailbox`).
    """

    __slots__ = ("fabric", "src_index", "dst_index", "one_way_ns")

    def __init__(self, fabric: "ShardFabric", src_index: int,
                 dst_index: int, one_way_ns: int):
        self.fabric = fabric
        self.src_index = src_index
        self.dst_index = dst_index
        self.one_way_ns = one_way_ns

    def __repr__(self) -> str:
        return (f"<ShardChannel {self.src_index}->{self.dst_index} "
                f"+{self.one_way_ns}ns>")

    def send(self, mailbox: str, payload) -> int:
        """Post ``payload`` to the peer shard; returns the arrival time."""
        return self.fabric.post(self, mailbox, payload)


class ShardFabric:
    """Timestamped message transport between per-bed simulator shards.

    Messages are queued per destination shard in **canonical order** —
    ``(arrival_ts, src_shard_index, per-source send seq)`` — which is a
    property of the simulated communication alone, independent of the
    order the synchronizer happens to run shards in. The sharded and
    serial drivers both deliver in this order, which is one half of the
    bit-identical cross-mode guarantee (the other half is the delivery
    boundary rule in :class:`ShardedSimulation`).
    """

    def __init__(self):
        self._sims: List[Simulator] = []
        # Directed latency per (src_index, dst_index).
        self._latency: Dict[Tuple[int, int], int] = {}
        # Min inbound latency per dst_index (the lookahead).
        self._lookahead: Dict[int, int] = {}
        # Per-destination heap of (ts, src_index, seq, mailbox, payload).
        self._pending: Dict[int, List] = {}
        self._send_seq: Dict[int, int] = {}
        self.messages_sent = 0

    # -- topology ----------------------------------------------------------

    def register(self, sim: Simulator) -> int:
        """Admit a shard's simulator; returns its shard index."""
        self._sims.append(sim)
        return len(self._sims) - 1

    def connect(self, src_index: int, dst_index: int,
                one_way_ns: int) -> ShardChannel:
        """Create a directed link; latency is the lookahead (must be > 0)."""
        if not (0 <= src_index < len(self._sims)
                and 0 <= dst_index < len(self._sims)):
            raise SimulationError(
                f"unknown shard in link {src_index}->{dst_index}")
        if src_index == dst_index:
            raise SimulationError("cannot link a shard to itself")
        if type(one_way_ns) is not int:
            raise LookaheadError(
                f"shard link latency must be an int (ns), "
                f"got {one_way_ns!r}")
        if one_way_ns <= 0:
            raise LookaheadError(
                f"shard link {src_index}->{dst_index} needs positive "
                f"latency for lookahead, got {one_way_ns}")
        key = (src_index, dst_index)
        if key in self._latency:
            raise SimulationError(f"shard link {key} already exists")
        self._latency[key] = one_way_ns
        previous = self._lookahead.get(dst_index)
        if previous is None or one_way_ns < previous:
            self._lookahead[dst_index] = one_way_ns
        return ShardChannel(self, src_index, dst_index, one_way_ns)

    @property
    def has_channels(self) -> bool:
        return bool(self._latency)

    def min_inbound_latency(self, dst_index: int) -> Optional[int]:
        """The shard's lookahead; None when nothing can ever reach it."""
        return self._lookahead.get(dst_index)

    # -- messaging ---------------------------------------------------------

    def post(self, channel: ShardChannel, mailbox: str, payload) -> int:
        """Timestamp and enqueue one message; returns the arrival time."""
        src = channel.src_index
        arrival = self._sims[src].now + channel.one_way_ns
        seq = self._send_seq.get(src, 0)
        self._send_seq[src] = seq + 1
        heapq.heappush(
            self._pending.setdefault(channel.dst_index, []),
            (arrival, src, seq, mailbox, payload))
        self.messages_sent += 1
        if _obs.enabled:
            tracer = self._sims[src].tracer
            if tracer is not None:
                tracer.link_send(src, channel.dst_index, mailbox,
                                 arrival)
        return arrival

    def pending_floor(self, dst_index: int) -> Optional[int]:
        """Earliest pending arrival time for a shard, or None."""
        heap = self._pending.get(dst_index)
        return heap[0][0] if heap else None

    def in_flight(self) -> int:
        return sum(len(heap) for heap in self._pending.values())

    def pop_due(self, dst_index: int,
                before_ts: Optional[int]) -> List[Tuple]:
        """Drain messages with arrival strictly before ``before_ts``.

        Returned in canonical ``(ts, src_index, seq)`` order. A message
        at exactly the window horizon stays queued for the next round —
        the window owns ``[start, before_ts)`` only. ``None`` drains
        everything (an unbounded window).
        """
        heap = self._pending.get(dst_index)
        if not heap:
            return []
        due = []
        while heap and (before_ts is None or heap[0][0] < before_ts):
            due.append(heapq.heappop(heap))
        return due


class Shard:
    """One independently-clocked simulator plus its message endpoints."""

    def __init__(self, sharded: "ShardedSimulation", index: int,
                 name: str, sim: Simulator):
        self.sharded = sharded
        self.index = index
        self.name = name or f"shard{index}"
        self.sim = sim
        self._mailboxes: Dict[str, Store] = {}

    def __repr__(self) -> str:
        return f"<Shard {self.name} t={self.sim.now}>"

    def mailbox(self, name: str) -> Store:
        """The named inbound queue; processes ``yield mailbox.get()``."""
        store = self._mailboxes.get(name)
        if store is None:
            store = self._mailboxes[name] = Store(
                self.sim, name=f"{self.name}.{name}")
        return store

    def _deliver(self, message) -> None:
        # Loop callback at the message's arrival time.
        _ts, _src, _seq, mailbox, payload = message
        self.mailbox(mailbox).put(payload)


class ShardedSimulation:
    """Shards + fabric + the conservative window driver."""

    def __init__(self):
        self.fabric = ShardFabric()
        self.shards: List[Shard] = []
        #: Rounds executed by the last :meth:`run`/:meth:`run_serial`.
        self.rounds = 0
        #: Attached :class:`repro.obs.telemetry.FleetTelemetry`, or
        #: None. The driver only ever calls ``flush(t_min)`` — every
        #: shard's future events are at or past ``t_min``, so windows
        #: ending at or before it are final and safe to emit. Record
        #: *content* never depends on this timing (see the telemetry
        #: module docstring), which is why sharded and serial drives
        #: emit byte-identical streams.
        self.telemetry = None

    # -- topology ----------------------------------------------------------

    def add_shard(self, name: str = "",
                  sim: Optional[Simulator] = None) -> Shard:
        """Admit a bed's simulator (a fresh one by default) as a shard."""
        sim = sim if sim is not None else Simulator()
        for shard in self.shards:
            if shard.sim is sim:
                raise SimulationError(
                    f"simulator already registered as {shard.name}")
        index = self.fabric.register(sim)
        shard = Shard(self, index, name, sim)
        self.shards.append(shard)
        return shard

    def connect(self, src: Shard, dst: Shard,
                one_way_ns: int = DEFAULT_SHARD_LINK_NS) -> ShardChannel:
        """Directed link ``src -> dst``; latency is the lookahead."""
        return self.fabric.connect(src.index, dst.index, one_way_ns)

    def link(self, a: Shard, b: Shard,
             one_way_ns: int = DEFAULT_SHARD_LINK_NS):
        """Bidirectional link; returns ``(a->b, b->a)`` channels."""
        return (self.connect(a, b, one_way_ns),
                self.connect(b, a, one_way_ns))

    # -- introspection -----------------------------------------------------

    @property
    def now(self) -> int:
        """The frontier: the furthest any shard's clock has advanced."""
        return max((shard.sim.now for shard in self.shards), default=0)

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-shard kernel counters (the cross-mode identity surface)."""
        return {shard.name: dict(shard.sim.stats, now=shard.sim.now)
                for shard in self.shards}

    def failed_processes(self) -> List:
        failures = []
        for shard in self.shards:
            failures.extend(shard.sim.failed_processes)
        return failures

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[int] = None) -> int:
        """Drive all shards with lookahead-wide windows; returns ``now``."""
        if len(self.shards) == 1 and not self.fabric.has_channels:
            # Single-shard fallback: exactly the plain event loop.
            self.rounds = 1
            return self.shards[0].sim.run(until=until)
        return self._drive(until, serial=False)

    def run_serial(self, until: Optional[int] = None) -> int:
        """Same protocol, one-timestamp windows: the merge baseline."""
        return self._drive(until, serial=True)

    def _drive(self, until: Optional[int], serial: bool) -> int:
        if not self.shards:
            raise SimulationError("no shards to run")
        fabric = self.fabric
        shards = self.shards
        cap = None if until is None else until + 1
        self.rounds = 0
        while True:
            t_min = None
            for shard in shards:
                t_next = shard.sim.peek_next_time()
                t_msg = fabric.pending_floor(shard.index)
                if t_msg is not None and (t_next is None or t_msg < t_next):
                    t_next = t_msg
                if t_next is not None and (t_min is None or t_next < t_min):
                    t_min = t_next
            if t_min is None:
                break  # globally quiescent, nothing in flight
            if until is not None and t_min > until:
                break
            if self.telemetry is not None:
                self.telemetry.flush(t_min)
            self.rounds += 1
            for shard in shards:
                if serial:
                    window_end = t_min + 1
                else:
                    lookahead = fabric.min_inbound_latency(shard.index)
                    window_end = (None if lookahead is None
                                  else t_min + lookahead)
                if cap is not None:
                    window_end = (cap if window_end is None
                                  else min(window_end, cap))
                self._run_shard(shard, window_end)
        return self.now

    def _run_shard(self, shard: Shard, window_end: Optional[int]) -> None:
        sim = shard.sim
        due = self.fabric.pop_due(shard.index, window_end)
        for message in due:
            arrival = message[0]
            if arrival <= sim.now:
                raise SimulationError(
                    f"{shard.name}: message for t={arrival} arrived with "
                    f"clock already at {sim.now} (lookahead violated)")
            # Delivery boundary: all local events strictly before the
            # arrival time run first, so the message's heap entry sorts
            # after every local entry at the arrival time — the same
            # relative order the serial merge produces.
            sim.run(until=arrival - 1)
            sim.schedule_at(arrival, shard._deliver, message)
        if window_end is None:
            sim.run()
        else:
            sim.run(until=window_end - 1)
