"""RedN offload programs: hash lookup (Fig 9), list traversal (Fig 12)."""

from .hash_lookup import HashGetOffload, hash_get_payload
from .list_traversal import ListTraversalOffload, list_get_payload
from .recycled_get import RECYCLED_CONN_KWARGS, RecycledHashGetOffload

__all__ = [
    "HashGetOffload",
    "RECYCLED_CONN_KWARGS",
    "RecycledHashGetOffload",
    "ListTraversalOffload",
    "hash_get_payload",
    "list_get_payload",
]
