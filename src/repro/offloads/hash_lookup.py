"""Offloaded hash-table *get* (paper §5.2, Fig 9).

The program, per request instance:

1. The client computes its key's candidate buckets and SENDs
   ``[compare_word, compare_word, bucket1_addr, bucket2_addr]``. A
   pre-posted RECV scatters the compare words into the CAS WQEs'
   operand fields and the bucket addresses into the READ WQEs' raddr
   fields — data-dependent self-modification via argument injection.
2. Per bucket: a READ fetches the 18-byte bucket record and lands it at
   ``response_wqe + 2`` — key into the id field, value pointer into
   laddr, value length into length (the record/WQE layout pact).
3. A CAS compares the response WQE's ctrl word against
   ``(NOOP || x)``: equal keys arm the response (NOOP -> WRITE_IMM).
4. The armed response streams the value straight from the server slab
   into the client's registered response buffer, consuming a client
   RECV so the client gets a CQE. On a miss nothing fires and the
   client times out.

Variants (Fig 11): **sequential** shares one worker queue and control
chain (buckets probed one-by-one on one NIC PU); **parallel** gives
each bucket its own worker/control queues — and its own response lane
QP, because two response templates racing on one managed queue would
let an ENABLE release a not-yet-armed sibling ("The trade-off is
having to allocate extra WQs for each level of parallelism", §5.2.2).
"""

from __future__ import annotations

from typing import List, Optional

from ..datastructs.cuckoo import CuckooTable
from ..ibv.wr import wr_recv, wr_write_imm
from ..memory.layout import pack_uint
from ..memory.region import MemoryRegion
from ..nic.opcodes import Opcode
from ..nic.wqe import Sge, ctrl_word
from ..redn.builder import ProgramBuilder
from ..redn.ir import AimEdge, FieldRef, InjectReadOp
from ..redn.offload import OffloadConnection
from ..redn.program import RednContext, WrRef

__all__ = ["HashGetOffload", "hash_get_payload"]

_PATCH_LEN = 18   # key(6) + valptr(8) + vlen(4)


def hash_get_payload(table: CuckooTable, key: int,
                     buckets: int = 2) -> bytes:
    """Client-side request bytes for a key (the Fig 9 SEND payload)."""
    compare = pack_uint(ctrl_word(Opcode.NOOP, key), 8)
    addrs = table.candidate_addrs(key)[:buckets]
    payload = compare * buckets
    for addr in addrs:
        payload += pack_uint(addr, 8)
    return payload


class HashGetOffload:
    """Server-side Fig 9 program over a :class:`CuckooTable`."""

    def __init__(self, ctx: RednContext, table: CuckooTable,
                 data_mr: MemoryRegion, conn: OffloadConnection,
                 parallel: bool = False, buckets: int = 2,
                 port_index: int = 0, max_instances: int = 64,
                 name: str = "hashget"):
        if buckets < 1 or buckets > table.NUM_HASHES:
            raise ValueError(f"buckets must be 1..{table.NUM_HASHES}")
        if parallel and len(conn.server_qps) < buckets:
            raise ValueError(
                "parallel lookups need one connection lane per bucket")
        self.ctx = ctx
        self.table = table
        self.data_mr = data_mr
        self.conn = conn
        self.parallel = parallel
        self.buckets = buckets
        self.name = name
        self.builder = ProgramBuilder(ctx, name=name)
        self.instances_posted = 0

        # Ring capacities scale with the instances the host pre-posts:
        # per instance and bucket, 2 worker slots (READ + CAS) and 5
        # control WRs (trigger WAIT + ENABLE/WAIT + if's 3 E-verbs).
        worker_slots = max(256, 3 * max_instances *
                           (1 if parallel else buckets))
        control_slots = max(256, 7 * max_instances *
                            (1 if parallel else buckets))
        if parallel:
            # One worker + control chain per bucket: independent PUs.
            self.workers = [
                self.builder.worker_queue(
                    slots=worker_slots,
                    name=f"{name}-w{b}", port_index=port_index)
                for b in range(buckets)]
            self.controls = [
                self.builder.control_queue(
                    slots=control_slots,
                    name=f"{name}-ctl{b}", port_index=port_index)
                for b in range(buckets)]
            self.response_lanes = [
                self.builder.adopt_client_queue(conn.server_qps[b],
                                                name=f"{name}-resp{b}")
                for b in range(buckets)]
        else:
            worker = self.builder.worker_queue(
                slots=worker_slots, name=f"{name}-w",
                port_index=port_index)
            control = self.builder.control_queue(
                slots=control_slots, name=f"{name}-ctl",
                port_index=port_index)
            lane = self.builder.adopt_client_queue(conn.server_qps[0],
                                                   name=f"{name}-resp")
            self.workers = [worker] * buckets
            self.controls = [control] * buckets
            self.response_lanes = [lane] * buckets

    # -- instance posting (the CPU's setup-time job) ----------------------

    def post_instances(self, count: int) -> None:
        """Pre-post ``count`` request instances + their trigger RECVs."""
        for _ in range(count):
            self._post_one()

    def _post_one(self) -> None:
        builder = self.builder
        instance = self.instances_posted
        self.instances_posted += 1
        tag = f"get{instance}"

        cas_sinks: List[WrRef] = []
        read_sinks: List[WrRef] = []
        for bucket in range(self.buckets):
            worker = self.workers[bucket]
            control = self.controls[bucket]
            lane = self.response_lanes[bucket]

            # Response template: WRITE_IMM value -> client buffer. The
            # READ patches laddr/length; immediate returns the instance.
            response = builder.template(
                lane,
                wr_write_imm(0, 0, self.conn.response_addr,
                             self.conn.response_rkey,
                             immediate=instance, signaled=True),
                tag=f"{tag}.b{bucket}.resp")

            # Bucket READ: raddr injected by the RECV; record bytes land
            # on the response template's id|laddr|length fields — a
            # symbolic (wr, field) target, not a byte offset.
            read = builder.link(InjectReadOp(
                worker, FieldRef(response, "id"), _PATCH_LEN,
                self.data_mr.rkey, signaled=True,
                tag=f"{tag}.b{bucket}.read"))

            # Control chain for this bucket: trigger -> READ -> if.
            builder.wait(control, self.conn.server_qp.recv_wq.cq,
                         instance + 1, tag=f"{tag}.b{bucket}.trigger")
            builder.enable(control, read, tag=f"{tag}.b{bucket}.en-read")
            builder.wait_signals(control, worker,
                                 tag=f"{tag}.b{bucket}.wait-read")
            refs = builder.emit_if(control, worker, response,
                                   compare_id=None,
                                   tag=f"{tag}.b{bucket}.if")
            cas_sinks.append(refs.cas)
            read_sinks.append(read)

        # Trigger RECV: scatter [cmp*buckets, addr*buckets] into the
        # CAS operands and READ raddr fields of this instance. Each
        # scatter is recorded as an external modification edge so the
        # verifier sees the runtime injections.
        targets = ([FieldRef(cas, "operand0") for cas in cas_sinks]
                   + [FieldRef(read, "raddr") for read in read_sinks])
        sges = [Sge(target.addr, 8) for target in targets]
        for target in targets:
            builder.program.add_edge(AimEdge(src=None, dst=target,
                                             length=8, kind="scatter"))
        self.conn.server_qp.post_recv(wr_recv(sges=sges))
        for control in self._unique_controls():
            control.doorbell()

    def _unique_controls(self):
        seen = []
        for control in self.controls:
            if control not in seen:
                seen.append(control)
        return seen

    # -- client helper ------------------------------------------------------

    def payload_for(self, key: int) -> bytes:
        return hash_get_payload(self.table, key, buckets=self.buckets)
