"""A hash-get server that runs forever with zero CPU (§3.4 + §5.6).

The pre-posted instances of :class:`HashGetOffload` eventually run out:
the CPU must keep posting. This module closes the loop with **WQ
recycling** — one chain, posted once, that re-executes itself per
request indefinitely:

    ring (managed, exactly ring-sized, wraps forever):
      WAIT   recv_cq >= k          (k bumped by an ADD below)
      READ   bucket -> response WQE fields  (raddr injected by RECV)
      CAS    arm the response on key match  (operand injected by RECV)
      ENABLE lane +1               (release the response template)
      WAIT   lane_cq >= k          (response retired, hit or miss)
      READ   shadow -> response    (restore the disarmed template)
      ADD    +1 to the recv WAIT's wqe_count   (monotonic counters!)
      ADD    +1 to the lane WAIT's wqe_count
      ENABLE recv ring +1          (re-arm the trigger RECV)
      ENABLE self +ring            (wrap around: the unbounded loop)

The response template lives alone in a **one-slot** client send ring
and the trigger RECV alone in a ring sized exactly to its WQE, so the
relative ENABLEs re-execute the same bytes every lap. After setup the
host never touches anything again — kill the process (with a hull
parent) and the NIC keeps answering, which is the §5.6 experiment in
its strongest form.

Requests must be serial (one in flight per chain), the natural shape
for a closed-loop client.
"""

from __future__ import annotations

from ..datastructs.cuckoo import CuckooTable
from ..ibv.wr import wr_recv, wr_write_imm
from ..memory.region import MemoryRegion
from ..nic.wqe import Sge, WQE_SLOT_SIZE
from ..redn.builder import ProgramBuilder
from ..redn.ir import (
    AimEdge,
    ArmCasOp,
    ArmWord,
    CountBumpOp,
    EnableOp,
    FieldRef,
    InjectReadOp,
    LoopInfo,
    RestoreOp,
)
from ..redn.offload import OffloadConnection
from ..redn.program import ProgramError, RednContext

from .hash_lookup import hash_get_payload

__all__ = ["RecycledHashGetOffload", "RECYCLED_CONN_KWARGS"]

_PATCH_LEN = 18
_RING_WRS = 10

#: OffloadConnection sizing this offload requires: a one-slot send ring
#: (the recycling response template) and a recv ring exactly one RECV
#: WQE long (header + one SGE slot).
RECYCLED_CONN_KWARGS = {"send_slots": 1, "recv_slots": 2,
                        "managed_recv": True}


class RecycledHashGetOffload:
    """Single-bucket hash gets served by one self-recycling ring."""

    def __init__(self, ctx: RednContext, table: CuckooTable,
                 data_mr: MemoryRegion, conn: OffloadConnection,
                 name: str = "recget"):
        server_qp = conn.server_qp
        if server_qp.send_wq.num_slots != 1:
            raise ProgramError(
                "recycled offload needs a 1-slot client send ring; "
                "create the connection with RECYCLED_CONN_KWARGS")
        if server_qp.recv_wq.num_slots != 2:
            raise ProgramError(
                "recycled offload needs a 2-slot recv ring")
        if not server_qp.recv_wq.managed:
            raise ProgramError(
                "recycled offload needs a managed recv ring "
                "(create the connection with RECYCLED_CONN_KWARGS)")
        self.ctx = ctx
        self.table = table
        self.conn = conn
        self.name = name
        self.builder = ProgramBuilder(ctx, name=name)
        builder = self.builder

        lane = builder.adopt_client_queue(server_qp, name=f"{name}-lane")
        worker = builder.worker_queue(slots=_RING_WRS,
                                      name=f"{name}-ring")
        self.lane, self.worker = lane, worker

        # The one recycling response template (disarmed WRITE_IMM).
        response = builder.template(
            lane, wr_write_imm(0, 0, conn.response_addr,
                               conn.response_rkey, immediate=0,
                               signaled=True), tag=f"{name}.resp")
        self.response = response

        # Shadow cell for the per-lap restore; the RestoreOp captures
        # the pristine template image at link time (and asserts the
        # shadow region matches the ring image it restores).
        shadow, shadow_mr = ctx.alloc_registered(
            WQE_SLOT_SIZE, label=f"{name}-shadow")

        recv_cq = server_qp.recv_wq.cq
        wait_recv = builder.wait(worker, recv_cq, 1,
                                 tag=f"{name}.wait-recv")
        read = builder.link(InjectReadOp(
            worker, FieldRef(response, "id"), _PATCH_LEN, data_mr.rkey,
            signaled=False, tag=f"{name}.read"))
        cas = builder.link(ArmCasOp(
            worker, FieldRef(response, "ctrl"), compare=0,
            swap=ArmWord(response), signaled=False,
            tag=f"{name}.cas"))
        builder.link(EnableOp(worker, lane, 1, relative=True,
                              tag=f"{name}.en-lane"))
        wait_lane = builder.wait(worker, lane, 1,
                                 tag=f"{name}.wait-lane")
        restore = RestoreOp(worker, response, 0, WQE_SLOT_SIZE,
                            shadow.addr, shadow_mr.rkey, capture=True,
                            tag=f"{name}.restore")
        builder.link(restore)
        builder.link(CountBumpOp(worker, wait_recv, 1, worker.rkey,
                                 tag=f"{name}.add-recv"))
        builder.link(CountBumpOp(worker, wait_lane, 1, worker.rkey,
                                 tag=f"{name}.add-lane"))
        builder.link(EnableOp(worker, server_qp.recv_wq, 1,
                              relative=True, tag=f"{name}.en-recv"))
        builder.link(EnableOp(worker, worker, _RING_WRS, relative=True,
                              tag=f"{name}.wrap"))
        if worker.wq.posted_count != _RING_WRS:
            raise ProgramError("recycled ring not exactly filled")
        builder.program.loops.append(LoopInfo(
            ring=worker, wait=wait_recv.ir_op, restores=[restore],
            ring_wrs=_RING_WRS))

        # The single recycling trigger RECV: compare word into the CAS
        # operand, bucket address into the READ's raddr — same WQE (and
        # the same two fields) every lap. Recorded as external
        # modification edges for the verifier.
        targets = [FieldRef(cas, "operand0"), FieldRef(read, "raddr")]
        for target in targets:
            builder.program.add_edge(AimEdge(src=None, dst=target,
                                             length=8, kind="scatter"))
        server_qp.post_recv(wr_recv(sges=[
            Sge(target.addr, 8) for target in targets
        ]), ring_doorbell=True)   # managed ring: arm lap 1 explicitly

    def start(self) -> None:
        """The CPU's last action, ever: enable the first lap."""
        self.worker.doorbell()

    @property
    def laps(self) -> int:
        """Requests the ring has fully served so far."""
        return self.worker.wq.fetched_count // _RING_WRS

    def payload_for(self, key: int) -> bytes:
        """Client request: [compare_word | bucket1_addr] (1 bucket)."""
        return hash_get_payload(self.table, key, buckets=1)
