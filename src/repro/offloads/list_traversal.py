"""Offloaded linked-list traversal (paper §5.3, Fig 12).

The loop body, per node, entirely on the server NIC:

* a READ of the 26-byte node ``[key|valptr|vlen|next]`` whose response
  *scatters*: key/pointer/length bytes prepare the response machinery,
  and the trailing ``next`` pointer lands directly in the **next
  iteration's READ raddr field** — pointer chasing by WQE
  self-modification;
* a WRITE copying the client's compare word into the iteration's CAS
  (Fig 12's R2 — one injection point reused every iteration instead of
  burning a RECV scatter per iteration: "RECVs can only perform 16
  scatters");
* the CAS conditional arming either the response directly (**plain**
  variant) or the break WRITE (**break** variant, Fig 6).

Fig 13's trade-off reproduces mechanically:

* plain — all ``max_nodes`` iterations always execute. The response
  fires as soon as its iteration hits, so latency is minimal, but >65%
  more WRs execute per request. Instances can be freely pre-posted.
* break — each iteration carries the break machinery: the armed break
  WRITE installs a prepared 2-WQE image that arms the response *and*
  clears the following gate's SIGNALED flag, starving the control
  chain's WAIT so no later iteration runs. Stopping the chain mid-way
  leaves un-executed WRs behind, so the host performs a small
  ``finish_request`` cleanup between requests (the CPU-assisted
  reposting the paper attributes to unrolled loops, §3.4).
"""

from __future__ import annotations

from typing import List, Optional

from ..datastructs.linkedlist import LinkedList
from ..ibv.wr import wr_noop, wr_read, wr_recv, wr_write_imm
from ..memory.layout import pack_uint
from ..memory.region import MemoryRegion
from ..nic.opcodes import Opcode, WrFlags
from ..nic.wqe import Sge, WQE_HEADER, ctrl_word
from ..redn.builder import ProgramBuilder
from ..redn.constructs import BreakImage
from ..redn.ir import AimEdge, FieldRef, InjectWriteOp
from ..redn.linker import aim, aim_sge
from ..redn.offload import OffloadConnection
from ..redn.program import RednContext, WrRef

__all__ = ["ListTraversalOffload", "list_get_payload"]

_PATCH_LEN = 18          # key + valptr + vlen
_NODE_READ_LEN = 26      # ... + next pointer


def list_get_payload(head_addr: int, key: int) -> bytes:
    """Client request: [compare_word | first_node_addr] (Fig 12)."""
    return pack_uint(ctrl_word(Opcode.NOOP, key), 8) + pack_uint(
        head_addr, 8)


class _Instance:
    """Bookkeeping for one posted request instance (break variant)."""

    def __init__(self):
        self.reads: List[WrRef] = []
        self.gates: List[WrRef] = []
        self.one_shot_queues: List = []
        self.last_lane_index = 0


class ListTraversalOffload:
    """Server-side Fig 12 program over a :class:`LinkedList`."""

    def __init__(self, ctx: RednContext, linked_list: LinkedList,
                 data_mr: MemoryRegion, conn: OffloadConnection,
                 max_nodes: int = 8, use_break: bool = False,
                 name: str = "listget"):
        if max_nodes < 1:
            raise ValueError("need at least one iteration")
        self.ctx = ctx
        self.list = linked_list
        self.data_mr = data_mr
        self.conn = conn
        self.max_nodes = max_nodes
        self.use_break = use_break
        self.name = name
        self.builder = ProgramBuilder(ctx, name=name)
        queue_slots = max(512, max_nodes * 8)
        self.lane = self.builder.adopt_client_queue(
            conn.server_qps[0], name=f"{name}-resp")
        if use_break:
            # Break chains are one-shot: a hit strands the unexecuted
            # tail, so each request gets fresh worker/branch/control
            # queues (the CPU re-posting of §3.4) and the strands are
            # simply abandoned. Queues are created per instance.
            self.worker = None
            self.control = None
            self.branches = None
        else:
            self.worker = self.builder.worker_queue(
                slots=queue_slots, name=f"{name}-w")
            self.control = self.builder.control_queue(
                slots=queue_slots, name=f"{name}-ctl")
            self.branches = None
        # One compare-word cell per program; the RECV injects x here and
        # per-iteration WRITEs fan it out to the CAS operands (Fig 12 R2).
        self.xbuf, self.xbuf_mr = ctx.alloc_registered(
            8, label=f"{name}-xbuf")
        # Dead-end sink for the final iteration's next-pointer scatter.
        self.sink, _ = ctx.alloc_registered(8, label=f"{name}-sink")
        self.instances: List[_Instance] = []
        self.instances_posted = 0
        # Gates killed by break WRITEs never signal; later instances'
        # lane thresholds discount them (updated in finish_request).
        self._lane_killed = 0

    # -- instance posting ---------------------------------------------------

    def post_instances(self, count: int) -> None:
        for _ in range(count):
            if self.use_break:
                self._post_break_instance()
            else:
                self._post_plain_instance()

    def _response_template(self, tag: str, signaled: bool) -> WrRef:
        live = wr_write_imm(0, 0, self.conn.response_addr,
                            self.conn.response_rkey,
                            immediate=self.instances_posted,
                            signaled=signaled)
        return self.builder.template(self.lane, live, tag=tag)

    def _emit_read(self, worker, sges: List[Sge], tag: str) -> WrRef:
        return self.builder.emit(
            worker,
            wr_read(0, _NODE_READ_LEN, 0, self.data_mr.rkey,
                    signaled=False, sges=sges),
            tag=tag)

    def _record_scatter(self, read: WrRef, target: FieldRef,
                        length: int) -> None:
        """Record a READ-response scatter onto WQE fields as an edge."""
        self.builder.program.add_edge(AimEdge(
            src=read, dst=target, length=length, kind="scatter"))

    def _emit_prep(self, worker, tag: str) -> WrRef:
        """Fig 12's R2: copy the compare word into a CAS operand."""
        return self.builder.link(InjectWriteOp(
            worker, self.xbuf.addr, worker.rkey, length=8,
            signaled=False, tag=tag))

    def _chain_next_pointers(self, reads: List[WrRef],
                             next_sge_index: int) -> None:
        """Aim each READ's `next`-pointer scatter at the next READ."""
        for step in range(len(reads) - 1):
            aim_sge(self.builder.program, reads[step], next_sge_index,
                    FieldRef(reads[step + 1], "raddr"), length=8)

    def _post_trigger_recv(self, first_read: WrRef) -> None:
        target = FieldRef(first_read, "raddr")
        self.builder.program.add_edge(AimEdge(
            src=None, dst=target, length=8, kind="scatter"))
        sges = [Sge(self.xbuf.addr, 8), Sge(target.addr, 8)]
        self.conn.server_qp.post_recv(wr_recv(sges=sges))

    # -- plain variant ----------------------------------------------------------

    def _post_plain_instance(self) -> None:
        builder = self.builder
        instance_id = self.instances_posted
        self.instances_posted += 1
        tag = f"trav{instance_id}"
        record = _Instance()

        builder.wait(self.control, self.conn.server_qp.recv_wq.cq,
                     instance_id + 1, tag=f"{tag}.trigger")

        responses = [self._response_template(f"{tag}.s{s}.resp",
                                             signaled=False)
                     for s in range(self.max_nodes)]
        for step in range(self.max_nodes):
            patch = FieldRef(responses[step], "id")
            read = self._emit_read(
                self.worker,
                [Sge(patch.addr, _PATCH_LEN),
                 Sge(self.sink.addr, 8)],
                tag=f"{tag}.s{step}.read")
            self._record_scatter(read, patch, _PATCH_LEN)
            record.reads.append(read)
            prep = self._emit_prep(self.worker, f"{tag}.s{step}.prep")
            refs = builder.emit_if(self.control, self.worker,
                                   responses[step], compare_id=None,
                                   tag=f"{tag}.s{step}.if")
            aim(builder.program, prep, "raddr",
                FieldRef(refs.cas, "operand0"))
        self._chain_next_pointers(record.reads, next_sge_index=1)
        self._post_trigger_recv(record.reads[0])
        self.instances.append(record)

    # -- break variant -------------------------------------------------------------

    def _post_break_instance(self) -> None:
        builder = self.builder
        instance_id = self.instances_posted
        self.instances_posted += 1
        tag = f"trav{instance_id}"
        record = _Instance()

        # One-shot queues for this request; a hit strands their tails,
        # which are simply never fetched again. Each step needs 4 ring
        # slots: a 2-slot READ (3 SGEs), the prep WRITE, and the CAS.
        worker = builder.worker_queue(slots=4 * self.max_nodes + 2,
                                      name=f"{tag}-w")
        branches = builder.worker_queue(slots=self.max_nodes + 1,
                                        name=f"{tag}-b")
        control = builder.control_queue(slots=8 * self.max_nodes + 2,
                                        name=f"{tag}-ctl")
        record.one_shot_queues = [worker, branches, control]

        builder.wait(control, self.conn.server_qp.recv_wq.cq,
                     instance_id + 1, tag=f"{tag}.trigger")

        # Lane: per step, an (unsignaled) response followed by its gate.
        # Gates are posted in bulk, so per-step WAIT thresholds are
        # computed from this base (discounted by gates that break
        # WRITEs killed), not cumulative bookkeeping.
        lane_signal_base = self.lane.signaled_posted - self._lane_killed
        responses, gates, images = [], [], []
        for step in range(self.max_nodes):
            response = self._response_template(f"{tag}.s{step}.resp",
                                               signaled=False)
            gate = builder.emit(self.lane, wr_noop(signaled=True),
                                tag=f"{tag}.s{step}.gate")
            responses.append(response)
            gates.append(gate)
            images.append(BreakImage(builder, response, gate,
                                     tag=f"{tag}.s{step}.brk"))
        record.gates = gates

        for step in range(self.max_nodes):
            image = images[step]
            # Break WR first (on the branch queue) so the CAS can aim
            # at its ctrl word; execution order is enforced by ENABLEs.
            brk = image.emit_break_write(branches)
            # READ: key -> break WQE id (the CAS predicate input);
            # valptr+vlen -> image laddr/length (arming data);
            # next -> next iteration's READ.
            key_sink = FieldRef(brk, "id")
            read = self._emit_read(
                worker,
                [Sge(key_sink.addr, 6),
                 Sge(image.image_addr + WQE_HEADER.field_offset("laddr"),
                     _PATCH_LEN - 6),
                 Sge(self.sink.addr, 8)],
                tag=f"{tag}.s{step}.read")
            self._record_scatter(read, key_sink, 6)
            record.reads.append(read)
            prep = self._emit_prep(worker, f"{tag}.s{step}.prep")
            refs = builder.emit_if(control, worker, brk,
                                   compare_id=None,
                                   tag=f"{tag}.s{step}.if")
            aim(builder.program, prep, "raddr",
                FieldRef(refs.cas, "operand0"))
            # Release the lane pair once the break WR retired; require
            # the gate's completion before the next iteration — the
            # starvation point of Fig 6.
            builder.wait_signals(control, branches,
                                 tag=f"{tag}.s{step}.wait-brk")
            builder.enable(control, gates[step],
                           tag=f"{tag}.s{step}.en-lane")
            builder.wait(control, self.lane.cq,
                         lane_signal_base + step + 1,
                         tag=f"{tag}.s{step}.wait-gate")
        self._chain_next_pointers(record.reads, next_sge_index=2)
        record.last_lane_index = self.lane.wq.posted_count
        self._post_trigger_recv(record.reads[0])
        self.instances.append(record)

    # -- break-variant host cleanup between requests -------------------------

    def finish_request(self, instance_id: int) -> None:
        """Host-side cleanup after a break-variant request completed.

        A hit stops the chain mid-way: the one-shot worker/branch/
        control queues are abandoned with their unexecuted tails (the
        starved control WAIT simply never fires again). Only the
        *shared* response lane needs care:

        1. destroy the request's one-shot queues (ibv_destroy_qp-style
           teardown), so nothing can ever revive the stranded tail;
        2. defuse the leftover gates (clear SIGNALED), then release the
           lane through this instance's end — leftover templates and
           defused gates execute as silent NOOPs, advancing the shared
           lane past this instance;
        3. record every gate that will never signal (break-killed +
           defused) so later instances compute reachable lane WAIT
           thresholds.

        This is exactly the per-request CPU involvement the paper
        ascribes to unrolled loops (§3.4); the recycled variant avoids
        it at the cost of Table 2's extra verbs.
        """
        if not self.use_break:
            return
        record = self.instances[instance_id]
        for queue in record.one_shot_queues:
            queue.wq.destroy()
        lane_wq = self.lane.wq
        for gate in record.gates:
            not_executed = gate.wr_index >= lane_wq.fetched_count
            if not_executed:
                gate.poke("flags",
                          gate.peek("flags") & ~WrFlags.SIGNALED)
        self._lane_killed += sum(
            1 for gate in record.gates
            if not gate.peek("flags") & WrFlags.SIGNALED)
        lane_wq.doorbell(record.last_lane_index)

    # -- client helper ----------------------------------------------------------

    def payload_for(self, key: int) -> bytes:
        return list_get_payload(self.list.head, key)
