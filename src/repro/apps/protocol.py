"""KV wire protocol for the two-sided (RPC) baselines.

A compact binary format carried in SEND payloads. Keys are 48-bit (the
paper's key size), values are raw bytes. The header is fixed-size so a
server can parse with one unpack, and responses reuse the same frame.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..datastructs.records import KEY_MASK
from ..memory.layout import Struct

__all__ = [
    "OP_GET",
    "OP_SET",
    "OP_DELETE",
    "STATUS_OK",
    "STATUS_MISS",
    "STATUS_ERROR",
    "HEADER",
    "HEADER_SIZE",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "max_frame_size",
]

OP_GET = 1
OP_SET = 2
OP_DELETE = 3

STATUS_OK = 0
STATUS_MISS = 1
STATUS_ERROR = 2

HEADER = Struct("kv_header", 24, [
    ("op", 0, 1),
    ("status", 1, 1),
    ("key", 2, 6),
    ("value_len", 8, 4),
    ("request_id", 12, 8),
    ("reserved", 20, 4),
])
HEADER_SIZE = HEADER.size


def max_frame_size(max_value: int) -> int:
    return HEADER_SIZE + max_value


def encode_request(op: int, key: int, value: bytes = b"",
                   request_id: int = 0) -> bytes:
    if key > KEY_MASK:
        raise ValueError(f"key {key:#x} exceeds 48 bits")
    header = HEADER.pack(op=op, status=0, key=key, value_len=len(value),
                         request_id=request_id)
    return bytes(header) + value


def decode_request(frame: bytes) -> Tuple[int, int, bytes, int]:
    """(op, key, value, request_id)."""
    fields = HEADER.unpack(frame[:HEADER_SIZE])
    value = frame[HEADER_SIZE:HEADER_SIZE + fields["value_len"]]
    return fields["op"], fields["key"], value, fields["request_id"]


def encode_response(status: int, value: bytes = b"",
                    request_id: int = 0) -> bytes:
    header = HEADER.pack(op=0, status=status, key=0,
                         value_len=len(value), request_id=request_id)
    return bytes(header) + value


def decode_response(frame: bytes) -> Tuple[int, bytes, int]:
    """(status, value, request_id)."""
    fields = HEADER.unpack(frame[:HEADER_SIZE])
    value = frame[HEADER_SIZE:HEADER_SIZE + fields["value_len"]]
    return fields["status"], value, fields["request_id"]
