"""Applications and baselines: Memcached, RPC servers, FaRM-style KV."""

from .memcached import MemcachedServer
from .memtier import ClosedLoopClient, WorkloadMix, populate
from .onesided import OneSidedKvClient, OneSidedKvServer
from .protocol import (
    OP_DELETE,
    OP_GET,
    OP_SET,
    STATUS_ERROR,
    STATUS_MISS,
    STATUS_OK,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from .rpc import (
    RpcClient,
    RpcCosts,
    RpcServer,
    VERBS_RPC_COSTS,
    VMA_COSTS,
)

__all__ = [
    "ClosedLoopClient",
    "MemcachedServer",
    "OP_DELETE",
    "OP_GET",
    "OP_SET",
    "OneSidedKvClient",
    "OneSidedKvServer",
    "RpcClient",
    "RpcCosts",
    "RpcServer",
    "STATUS_ERROR",
    "STATUS_MISS",
    "STATUS_OK",
    "VERBS_RPC_COSTS",
    "VMA_COSTS",
    "WorkloadMix",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "populate",
]
