"""A Memcached-flavoured KV store with RDMA integration (paper §5.4).

The paper takes a cuckoo-hashing Memcached (MemC3 lineage), adds ~700
LoC of RDMA plumbing — registering the hash table and value storage
with the RNIC, and storing bucket pointers **big-endian** so one READ
can land them in WQE fields — and then serves *get* requests entirely
from the NIC via RedN. This module is that server:

* :class:`MemcachedServer` owns the cuckoo table + slab in registered
  memory and exposes host-side ``set``/``get``/``delete`` (what the
  two-sided RPC handler calls) plus :meth:`attach_get_offload` to hang
  the Fig 9 chain off a client connection.
* **Failure wiring (§5.6)**: with ``hull_parent=True``, RDMA resources
  (queue rings, registered regions) are owned by an empty parent
  process; the serving logic runs in a child. Killing the child leaves
  the NIC program intact and serving. Without the hull, the OS reclaims
  everything and the offload dies with the process — both behaviours
  are exercised by the Fig 16 benchmark.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..datastructs.cuckoo import CuckooTable
from ..datastructs.records import BUCKET_SIZE
from ..datastructs.slab import SlabStore
from ..memory.region import AccessFlags, MemoryRegion, ProtectionDomain
from ..net.node import Host, OsProcess
from ..nic.rnic import RNIC
from ..redn.offload import OffloadClient, OffloadConnection
from ..redn.program import RednContext
from ..offloads.hash_lookup import HashGetOffload

__all__ = ["MemcachedServer"]


class MemcachedServer:
    """Cuckoo-hash KV store over registered memory on one host."""

    def __init__(self, host: Host, num_buckets: int = 4096,
                 slab_size: int = 32 * 1024 * 1024,
                 hull_parent: bool = False, name: str = "memcached"):
        self.host = host
        self.name = name
        self.hull_parent = hull_parent
        if hull_parent:
            # The empty hull owns every RDMA resource; the child only
            # runs service threads ("keeping the RDMA resources tied to
            # an empty process allows us to continue operating in spite
            # of application failures", §5.6).
            self.hull = host.spawn_process(f"{name}-hull")
            self.process = host.spawn_process(name, parent=self.hull)
            self._resource_owner = self.hull
        else:
            self.hull = None
            self.process = host.spawn_process(name)
            self._resource_owner = self.process

        owner = self._resource_owner
        self.pd: ProtectionDomain = owner.create_pd()
        slab_alloc = owner.alloc(slab_size, label=f"{name}-slab")
        table_alloc = owner.alloc(num_buckets * BUCKET_SIZE,
                                  label=f"{name}-table")
        self.table_mr: MemoryRegion = self.pd.register(
            table_alloc, access=AccessFlags.ALL)
        self.slab_mr: MemoryRegion = self.pd.register(
            slab_alloc, access=AccessFlags.ALL)
        self.slab = SlabStore(host.memory, slab_alloc)
        self.table = CuckooTable(host.memory, table_alloc, num_buckets,
                                 self.slab)
        self.ctx = RednContext(host.nic, self.pd,
                               process=self._resource_owner)
        self.offloads = []
        self.sets_served = 0
        self.gets_served = 0

    def __repr__(self) -> str:
        return (f"<MemcachedServer {self.name} items={self.table.count}"
                f"{' hull' if self.hull_parent else ''}>")

    # -- host-side operations (what RPC handlers invoke) -------------------

    def set(self, key: int, value: bytes,
            force_bucket: Optional[int] = None) -> None:
        self.table.insert(key, value, force_bucket=force_bucket)
        self.sets_served += 1

    def get(self, key: int) -> Optional[bytes]:
        self.gets_served += 1
        return self.table.lookup(key)

    def delete(self, key: int) -> bool:
        return self.table.delete(key)

    # -- RDMA/RedN integration ------------------------------------------------

    def attach_get_offload(self, client_nic: RNIC,
                           client_pd: ProtectionDomain,
                           parallel: bool = False,
                           max_instances: int = 64,
                           name: str = "") -> Tuple[HashGetOffload,
                                                    OffloadConnection]:
        """Wire a client up for NIC-served gets (the §5.4 integration)."""
        buckets = self.table.NUM_HASHES
        conn = OffloadConnection(
            self.ctx, client_nic, client_pd,
            num_lanes=buckets if parallel else 1,
            recv_slots=8 * max_instances + 16,
            send_slots=4 * max_instances + 16,
            name=name or f"{self.name}-off{len(self.offloads)}")
        offload = HashGetOffload(self.ctx, self.table, self.table_mr,
                                 conn, parallel=parallel,
                                 buckets=buckets,
                                 max_instances=max_instances,
                                 name=f"{self.name}-hashget")
        self.offloads.append(offload)
        return offload, conn

    # -- failure injection hooks (§5.6 / Fig 16) --------------------------------

    def crash(self) -> None:
        """Kill the serving process (not the hull, if any)."""
        self.host.crash_process(self.process)

    def respawn(self) -> None:
        """The OS restarted us: new child process, same resources when
        hull-parented; without a hull the caller must rebuild state."""
        self.process = self.host.spawn_process(
            self.name, parent=self.hull)
        if self.hull is not None:
            self._resource_owner = self.hull

    @property
    def rdma_resources_alive(self) -> bool:
        """Are the queue rings and regions still owned by a live
        process (i.e. will the NIC program keep running)?"""
        return self._resource_owner.alive
