"""Memtier-style workload generation (paper §5.4/§5.5).

The paper benchmarks Memcached with memtier_benchmark: closed-loop
clients issuing gets/sets over distinct key sets. This module gives the
same shape for any backend exposing ``get``/``set`` process-generator
methods:

* :class:`ClosedLoopClient` — issues operations back-to-back, each with
  its own latency sample, from a private key set accessed sequentially
  (the §5.5 setup: "each reader/writer is assigned a distinct set of
  10K keys ... accessed by the clients sequentially").
* :class:`WorkloadMix` — get/set ratio control.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Sequence

from ..sim.core import Simulator
from ..bench.stats import LatencyRecorder

__all__ = ["ClosedLoopClient", "WorkloadMix", "populate"]


class WorkloadMix:
    """Deterministic get/set interleaving by ratio."""

    def __init__(self, get_fraction: float = 1.0):
        if not 0.0 <= get_fraction <= 1.0:
            raise ValueError("get_fraction must be within [0, 1]")
        self.get_fraction = get_fraction
        self._accumulator = 0.0

    def next_is_get(self) -> bool:
        self._accumulator += self.get_fraction
        if self._accumulator >= 1.0:
            self._accumulator -= 1.0
            return True
        return False


class ClosedLoopClient:
    """One closed-loop load generator bound to a backend."""

    def __init__(self, sim: Simulator, name: str,
                 keys: Sequence[int], value_size: int,
                 get_fn: Callable[[int], Generator],
                 set_fn: Optional[Callable[[int, bytes], Generator]] = None,
                 mix: Optional[WorkloadMix] = None,
                 think_time_ns: int = 0):
        self.sim = sim
        self.name = name
        self.keys = list(keys)
        self.value_size = value_size
        self.get_fn = get_fn
        self.set_fn = set_fn
        self.mix = mix or WorkloadMix(1.0)
        self.think_time_ns = think_time_ns
        self.get_latencies = LatencyRecorder(f"{name}-get")
        self.set_latencies = LatencyRecorder(f"{name}-set")
        self.operations = 0
        self.failures = 0
        self._key_cursor = 0

    def _next_key(self) -> int:
        key = self.keys[self._key_cursor % len(self.keys)]
        self._key_cursor += 1
        return key

    def run(self, num_ops: int) -> Generator:
        """Issue ``num_ops`` operations back-to-back."""
        for _ in range(num_ops):
            yield from self.step()
        return self.operations

    def run_until(self, deadline_ns: int) -> Generator:
        """Issue operations until simulated time reaches the deadline.

        No new operation starts at or past ``deadline_ns``, and the
        final think sleep is clamped **at** the deadline — the
        generator returns at ``max(deadline_ns, last op completion)``,
        never a full think time later. An operation already in flight
        when the deadline passes still completes (closed-loop clients
        cannot preempt an issued verb), which is the only remaining
        overshoot.
        """
        while self.sim.now < deadline_ns:
            yield from self.step(deadline_ns=deadline_ns)
        return self.operations

    def step(self, deadline_ns: Optional[int] = None) -> Generator:
        key = self._next_key()
        start = self.sim.now
        if self.mix.next_is_get() or self.set_fn is None:
            ok = yield from self.get_fn(key)
            recorder = self.get_latencies
        else:
            value = bytes([key & 0xFF]) * self.value_size
            ok = yield from self.set_fn(key, value)
            recorder = self.set_latencies
        recorder.record(self.sim.now - start)
        self.operations += 1
        if ok is False:
            self.failures += 1
        if self.think_time_ns:
            think = self.think_time_ns
            if deadline_ns is not None:
                think = min(think, max(0, deadline_ns - self.sim.now))
            if think:
                yield self.sim.timeout(think)


def populate(store, keys: Sequence[int], value_size: int) -> None:
    """Pre-load a store with deterministic values for each key."""
    for key in keys:
        store.set(key, bytes([key & 0xFF]) * value_size)
