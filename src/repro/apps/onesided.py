"""One-sided KV get: the FaRM-style baseline (paper §5.2.2).

The client needs no server CPU at all — but pays **two dependent
round trips** per get:

1. READ the key's whole hopscotch *neighborhood* (H=6 buckets by
   default: "implying a 6× overhead for RDMA metadata operations"),
   scan it locally for the key;
2. READ the value through the bucket's pointer.

Requires the server to expose table and slab regions for remote reads
— the direct-memory-access exposure RedN's two-sided triggers avoid
(§3.5, Security).
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from ..datastructs.hopscotch import HopscotchTable
from ..ibv.api import VerbsContext
from ..ibv.wr import wr_read
from ..memory.region import AccessFlags, MemoryRegion, ProtectionDomain
from ..nic.qp import QueuePair
from ..nic.rnic import RNIC

__all__ = ["OneSidedKvServer", "OneSidedKvClient"]


class OneSidedKvServer:
    """Server side: a hopscotch table + slab exposed for remote READs."""

    def __init__(self, host, num_buckets: int = 4096,
                 slab_size: int = 32 * 1024 * 1024,
                 neighborhood: int = 6, name: str = "farm"):
        from ..datastructs.records import BUCKET_SIZE
        from ..datastructs.slab import SlabStore

        self.host = host
        self.name = name
        self.process = host.spawn_process(name)
        self.pd = self.process.create_pd()
        slab_alloc = self.process.alloc(slab_size, label=f"{name}-slab")
        table_alloc = self.process.alloc(
            num_buckets * BUCKET_SIZE, label=f"{name}-table")
        # One-sided design: clients hold read keys to data memory.
        self.table_mr: MemoryRegion = self.pd.register(
            table_alloc, access=AccessFlags.REMOTE_READ
            | AccessFlags.LOCAL_WRITE)
        self.slab_mr: MemoryRegion = self.pd.register(
            slab_alloc, access=AccessFlags.REMOTE_READ
            | AccessFlags.LOCAL_WRITE)
        self.slab = SlabStore(host.memory, slab_alloc)
        self.table = HopscotchTable(host.memory, table_alloc,
                                    num_buckets, self.slab,
                                    neighborhood=neighborhood)

    def set(self, key: int, value: bytes) -> None:
        self.table.insert(key, value)

    def connect(self, client_nic: RNIC,
                client_pd: ProtectionDomain) -> "OneSidedKvClient":
        server_qp = self.process.create_qp(
            self.pd, name=f"{self.name}-s")
        client_qp = client_nic.create_qp(client_pd,
                                         name=f"{self.name}-c")
        server_qp.connect(client_qp)
        return OneSidedKvClient(self, client_nic, client_qp)


class OneSidedKvClient:
    """Client side: neighborhood READ + value READ, all one-sided."""

    #: Local CPU time to scan a fetched neighborhood for the key.
    SCAN_NS = 250

    #: FaRM-KV client-side cost per one-sided operation beyond the raw
    #: verb: object-version validation over each cache line of the
    #: fetched region, lock-free-read consistency checks (re-read on
    #: version mismatch), address translation and completion dispatch.
    #: FaRM reports multi-microsecond per-op client costs for exactly
    #: these reasons; this constant reproduces Fig 10's observation
    #: that each of the two dependent RTTs costs about as much as
    #: RedN's entire offloaded get.
    PER_OP_OVERHEAD_NS = 2_500

    def __init__(self, server: OneSidedKvServer, client_nic: RNIC,
                 qp: QueuePair, max_value: int = 256 * 1024):
        self.server = server
        self.nic = client_nic
        self.qp = qp
        self.sim = client_nic.sim
        self.verbs = VerbsContext(self.sim, name="farm-client")
        table = server.table
        from ..datastructs.records import BUCKET_SIZE
        neigh_size = table.neighborhood * BUCKET_SIZE
        self.neigh_buf = client_nic.memory.alloc(
            neigh_size, owner="client", label="farm-neigh").addr
        self.value_buf = client_nic.memory.alloc(
            max_value, owner="client", label="farm-value").addr
        self.reads_issued = 0

    def get(self, key: int) -> Generator:
        """One-sided get; returns (value | None, latency_ns, rtts)."""
        sim = self.sim
        table = self.server.table
        start = sim.now

        # RTT 1: fetch the neighborhood (client computes the address —
        # it shares the table geometry, as FaRM clients do).
        addr, length = table.neighborhood_read_args(key)
        yield from self.verbs.execute_sync_checked(
            self.qp, wr_read(self.neigh_buf, length, addr,
                             self.server.table_mr.rkey))
        self.reads_issued += 1
        yield sim.timeout(self.PER_OP_OVERHEAD_NS)
        yield sim.timeout(self.SCAN_NS)
        blob = self.nic.memory.read(self.neigh_buf, length)
        hit = table.scan_neighborhood(blob, key)
        if hit is None:
            return None, sim.now - start, 1
        valptr, vlen = hit

        # RTT 2: fetch the value by pointer.
        yield from self.verbs.execute_sync_checked(
            self.qp, wr_read(self.value_buf, vlen, valptr,
                             self.server.slab_mr.rkey))
        self.reads_issued += 1
        yield sim.timeout(self.PER_OP_OVERHEAD_NS)
        value = self.nic.memory.read(self.value_buf, vlen)
        return value, sim.now - start, 2
