"""Two-sided RPC-over-RDMA baselines (paper §5.2.2, §5.4, §5.5).

The classical design RedN is compared against: the client SENDs a
request, the server's **CPU** parses it, walks the hash table, and
SENDs the value back. Two completion-consumption modes:

* ``polling`` — a worker pins a core and busy-polls the request CQ:
  competitive latency, one burned core per worker;
* ``event`` — the worker sleeps on the completion channel and pays
  scheduler wake-up latency per request (3.8× slower than RedN even on
  an idle box, Fig 10).

Cost profiles (:class:`RpcCosts`) let one implementation cover both
"raw verbs RPC" and the **libvma** kernel-bypass sockets baseline of
Fig 14 — VMA adds TCP/UDP stack processing and, to honour the sockets
API, send- and receive-side memcpys whose cost grows with value size
("which is why it performs comparatively worse at higher value
sizes").

Under writer load (Fig 15) requests queue at the workers and service
times inherit scheduler jitter, which is where the two-sided tail
latencies come from; the NIC-served path never touches any of this.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from ..ibv.api import VerbsContext
from ..ibv.wr import wr_recv, wr_send
from ..memory.region import ProtectionDomain
from ..nic.qp import QueuePair
from ..nic.queue import CompletionQueue
from ..nic.rnic import RNIC
from ..sim.core import Simulator
from .memcached import MemcachedServer
from .protocol import (
    HEADER_SIZE,
    OP_DELETE,
    OP_GET,
    OP_SET,
    STATUS_ERROR,
    STATUS_MISS,
    STATUS_OK,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    max_frame_size,
)

__all__ = ["RpcCosts", "VERBS_RPC_COSTS", "VMA_COSTS", "RpcServer",
           "RpcClient"]


@dataclass(frozen=True)
class RpcCosts:
    """CPU-time model of one request on the server (and client copies).

    ``*_per_byte_ns`` terms model sockets-API memcpys; raw verbs RPC
    reads/writes registered buffers in place and sets them to ~0.
    """

    parse_ns: int = 600              # header decode + dispatch
    lookup_ns: int = 1200            # hash walk for a get
    store_ns: int = 1800             # insert/update for a set
    respond_ns: int = 600            # building + posting the response
    stack_rx_ns: int = 0             # network-stack receive processing
    stack_tx_ns: int = 0             # network-stack transmit processing
    copy_rx_per_byte_ns: float = 0.0   # recv-buffer -> app memcpy
    copy_tx_per_byte_ns: float = 0.0   # app -> send-buffer memcpy
    service_jitter: float = 0.0      # lognormal-ish multiplier spread

    def rx_cost(self, nbytes: int) -> int:
        return int(self.stack_rx_ns + self.copy_rx_per_byte_ns * nbytes)

    def tx_cost(self, nbytes: int) -> int:
        return int(self.stack_tx_ns + self.copy_tx_per_byte_ns * nbytes)


#: Plain two-sided RPC over verbs: zero-copy buffers.
VERBS_RPC_COSTS = RpcCosts()

#: libvma kernel-bypass sockets under Memcached (Fig 14): VMA stack
#: processing (socket-call interception, UDP framing, flow steering)
#: plus Memcached's own sockets-facing machinery (libevent dispatch,
#: protocol parsing) and the memcpys the sockets API forces on both
#: sides (~8 GB/s effective copy bandwidth). "VMA incurs extra overhead
#: since it relies on a network stack to process packets ... VMA has to
#: memcpy data from send and receive buffers" (§5.4).
VMA_COSTS = RpcCosts(
    parse_ns=1200, lookup_ns=1200, store_ns=1800, respond_ns=1000,
    stack_rx_ns=4300, stack_tx_ns=3200,
    copy_rx_per_byte_ns=0.125, copy_tx_per_byte_ns=0.125,
)


class _Connection:
    """Server-side state for one RPC client."""

    _ids = itertools.count()

    def __init__(self, server_qp: QueuePair, max_value: int):
        self.conn_id = next(self._ids)
        self.server_qp = server_qp
        self.max_value = max_value
        self.recv_bufs: List[int] = []
        self.send_buf: Optional[int] = None


class RpcServer:
    """CPU-served KV RPC endpoint in front of a MemcachedServer."""

    def __init__(self, store: MemcachedServer, mode: str = "polling",
                 workers: int = 2, costs: RpcCosts = VERBS_RPC_COSTS,
                 max_value: int = 256 * 1024, recv_pool: int = 16,
                 name: str = "rpc"):
        if mode not in ("polling", "event"):
            raise ValueError(f"unknown mode {mode!r}")
        self.store = store
        self.host = store.host
        self.mode = mode
        self.costs = costs
        self.max_value = max_value
        self.recv_pool = recv_pool
        self.name = name
        self.num_workers = workers
        process = store.process
        self.process = process
        # All client QPs share one request CQ; workers drain it.
        self.request_cq: CompletionQueue = self.host.nic.create_cq(
            name=f"{name}-reqcq")
        self.connections: Dict[int, _Connection] = {}
        self.verbs = VerbsContext(self.host.sim, cpu=self.host.cpu,
                                  name=f"{name}-verbs")
        self.requests_served = 0
        self._jitter = self.host.streams.stream(f"{name}-jitter")
        self._workers_started = False

    # -- connection management ----------------------------------------------

    def connect(self, client_nic: RNIC,
                client_pd: ProtectionDomain) -> "RpcClient":
        frame = max_frame_size(self.max_value)
        server_qp = self.process.create_qp(
            self.store.pd, recv_cq=self.request_cq,
            recv_slots=4 * self.recv_pool,
            name=f"{self.name}-s{len(self.connections)}")
        client_qp = client_nic.create_qp(
            client_pd, name=f"{self.name}-c{len(self.connections)}")
        server_qp.connect(client_qp)

        conn = _Connection(server_qp, self.max_value)
        for _ in range(self.recv_pool):
            buf = self.process.alloc(frame, label=f"{self.name}-rxbuf")
            conn.recv_bufs.append(buf.addr)
            # wr_id carries the buffer address so the CQE identifies
            # which ring buffer holds this request.
            server_qp.post_recv(wr_recv(buf.addr, frame,
                                        wr_id=buf.addr))
        conn.send_buf = self.process.alloc(
            frame, label=f"{self.name}-txbuf").addr
        self.connections[server_qp.recv_wq.wq_num] = conn
        return RpcClient(self, client_nic, client_qp)

    # -- worker threads -----------------------------------------------------------

    def start(self) -> None:
        if self._workers_started:
            return
        self._workers_started = True
        for index in range(self.num_workers):
            self.process.start_thread(
                self._worker(index), name=f"{self.name}-w{index}")

    def _worker(self, index: int) -> Generator:
        sim = self.host.sim
        cpu = self.host.cpu
        core_grant = None
        if self.mode == "polling":
            # Dedicate a core to busy-polling (§5.2.2).
            core_grant = yield cpu.acquire_core()
        try:
            while self.process.alive and self.host.os_alive:
                if self.mode == "polling":
                    cqe = yield from self.verbs.poll(self.request_cq)
                else:
                    cqe = yield from self.verbs.poll_blocking(
                        self.request_cq)
                if cqe is None:
                    continue
                yield from self._serve(cqe, pinned=core_grant is not None)
        finally:
            if core_grant is not None:
                cpu.release_core(core_grant)

    def _charge(self, duration: int, pinned: bool) -> Generator:
        """CPU time: on the pinned core, or through the scheduler."""
        if duration <= 0:
            return
        if self.costs.service_jitter:
            factor = 1.0 + self._jitter.expovariate(
                1.0 / self.costs.service_jitter)
            duration = int(duration * factor)
        if pinned:
            yield self.host.sim.timeout(duration)
        else:
            yield from self.host.cpu.run(duration)

    def _serve(self, cqe, pinned: bool) -> Generator:
        conn = self.connections.get(cqe.wq_num)
        if conn is None:
            return
        costs = self.costs
        memory = self.host.memory
        buf_addr = cqe.wr_id   # posted as the ring buffer's address
        yield from self._charge(costs.parse_ns, pinned)
        op, key, _value_head, request_id = decode_request(
            memory.read(buf_addr, HEADER_SIZE))
        payload_len = cqe.byte_len
        yield from self._charge(costs.rx_cost(payload_len), pinned)

        if op == OP_GET:
            yield from self._charge(costs.lookup_ns, pinned)
            value = self.store.get(key)
            if value is None:
                response = encode_response(STATUS_MISS,
                                           request_id=request_id)
            else:
                response = encode_response(STATUS_OK, value,
                                           request_id=request_id)
        elif op == OP_SET:
            full = memory.read(buf_addr, payload_len)
            _op, key, value, request_id = decode_request(full)
            yield from self._charge(costs.store_ns, pinned)
            self.store.set(key, value)
            response = encode_response(STATUS_OK, request_id=request_id)
        elif op == OP_DELETE:
            yield from self._charge(costs.lookup_ns, pinned)
            found = self.store.delete(key)
            response = encode_response(
                STATUS_OK if found else STATUS_MISS,
                request_id=request_id)
        else:
            response = encode_response(STATUS_ERROR,
                                       request_id=request_id)

        yield from self._charge(costs.tx_cost(len(response)), pinned)
        yield from self._charge(costs.respond_ns, pinned)
        memory.write(conn.send_buf, response)
        conn.server_qp.post_send(
            wr_send(conn.send_buf, len(response), signaled=False))
        # Re-arm the consumed RECV with the same ring buffer.
        conn.server_qp.post_recv(
            wr_recv(buf_addr, max_frame_size(self.max_value),
                    wr_id=buf_addr))
        self.requests_served += 1


class RpcClient:
    """Client endpoint: request buffer + synchronous call helper."""

    def __init__(self, server: RpcServer, client_nic: RNIC,
                 client_qp: QueuePair):
        self.server = server
        self.nic = client_nic
        self.qp = client_qp
        self.sim: Simulator = client_nic.sim
        frame = max_frame_size(server.max_value)
        self.request_buf = client_nic.memory.alloc(
            frame, owner="client", label="rpc-req").addr
        self.response_buf = client_nic.memory.alloc(
            frame, owner="client", label="rpc-resp").addr
        self.verbs = VerbsContext(self.sim, name="rpc-client")
        self._recvs = 0
        self._request_ids = itertools.count(1)

    def _ensure_recvs(self, target: int = 8) -> None:
        recv_wq = self.qp.recv_wq
        frame = max_frame_size(self.server.max_value)
        while recv_wq.posted_count - recv_wq.fetched_count < target:
            self.qp.post_recv(wr_recv(self.response_buf, frame))

    def call(self, op: int, key: int, value: bytes = b"",
             timeout_ns: Optional[int] = None) -> Generator:
        """Issue one RPC; returns (status, value, latency_ns).

        With ``timeout_ns`` set, a dead server (crashed process, no
        response) yields (None, b"", elapsed) instead of hanging —
        what a real client's request timer does.
        """
        self._ensure_recvs()
        sim = self.sim
        start = sim.now
        request_id = next(self._request_ids)
        frame = encode_request(op, key, value, request_id=request_id)
        self.nic.memory.write(self.request_buf, frame)
        yield from self.verbs.post_send(
            self.qp, wr_send(self.request_buf, len(frame),
                             signaled=False))
        cq = self.qp.recv_wq.cq
        deadline = sim.timeout(timeout_ns) if timeout_ns else None
        while True:
            cqe = cq.poll()
            if cqe is not None:
                status, data, rid = decode_response(
                    self.nic.memory.read(self.response_buf,
                                         cqe.byte_len))
                if rid == request_id:
                    if self.verbs.poll_detect_ns:
                        yield sim.timeout(self.verbs.poll_detect_ns)
                    return status, data, sim.now - start
                continue
            if deadline is not None and deadline.triggered:
                return None, b"", sim.now - start
            waitables = [cq.wait_for_event()]
            if deadline is not None:
                waitables.append(deadline)
            yield sim.any_of(waitables)

    def get(self, key: int,
            timeout_ns: Optional[int] = None) -> Generator:
        return (yield from self.call(OP_GET, key, timeout_ns=timeout_ns))

    def set(self, key: int, value: bytes,
            timeout_ns: Optional[int] = None) -> Generator:
        return (yield from self.call(OP_SET, key, value,
                                     timeout_ns=timeout_ns))
