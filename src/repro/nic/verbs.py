"""Executable semantics of RDMA verbs.

:class:`VerbExecutor` implements the *data path* of each verb: payload
gather/scatter DMAs, wire traversal, responder-side processing, and the
memory effect itself. Timing follows the decomposition documented in
:mod:`repro.nic.timing`; the memory effects are ordinary byte reads and
writes on simulated host DRAM — which is precisely why aiming a CAS or
READ at work-queue memory rewrites the program the NIC will execute.

Conventions:

* A verb runs on an RC QP; ``qp.peer`` is the responder end. Loopback
  QPs (both ends on one NIC) skip the wire and RX processing but pay
  all PCIe costs — the cost profile of RedN's self-modifying chains.
* Remote access is validated against the *responder's* protection
  domain using the WQE's rkey. Two-sided SEND/RECV needs no rkey,
  which is the paper's security argument for RedN triggers (§3.5).
* Atomics serialize on the responder port's atomic unit (Table 3's
  8.4 M CAS/s); Mellanox calc verbs (MAX/MIN) do not (63 M/s).
* READ responses scatter to an SGE list when present — the mechanism
  Fig 12's list traversal uses to steer one READ's bytes into several
  later WQEs.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple, TYPE_CHECKING

from .. import obs as _obs
from ..memory.region import AccessFlags, ProtectionError
from .opcodes import Opcode
from .qp import QueuePair
from .queue import Cqe, QueueError
from .wqe import Sge, Wqe

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .rnic import RNIC

__all__ = ["VerbExecutor"]

# Approximate wire size of a request/ack header, for serialization cost.
_HEADER_BYTES = 32


class VerbExecutor:
    """Data-path implementations for every verb opcode."""

    def __init__(self, nic: "RNIC"):
        self.nic = nic

    # -- dispatch -----------------------------------------------------------

    def perform(self, qp: Optional[QueuePair],
                wqe: Wqe) -> Generator:
        """Run a verb's data path; returns (byte_len, immediate)."""
        opcode = wqe.opcode
        if opcode == Opcode.NOOP:
            return (yield from self._noop(qp, wqe))
        if qp is None or not qp.connected:
            raise QueueError(f"{wqe!r} needs a connected QP")
        if opcode in (Opcode.WRITE, Opcode.WRITE_IMM):
            return (yield from self._write(qp, wqe))
        if opcode == Opcode.READ:
            return (yield from self._read(qp, wqe))
        if opcode == Opcode.SEND:
            return (yield from self._send(qp, wqe))
        if opcode in (Opcode.CAS, Opcode.FETCH_ADD):
            return (yield from self._atomic(qp, wqe))
        if opcode in (Opcode.MAX, Opcode.MIN):
            return (yield from self._calc(qp, wqe))
        raise QueueError(f"opcode {opcode:#x} is not executable here")

    # -- helpers --------------------------------------------------------------

    def _timing(self, nic: "RNIC"):
        return nic.timing

    def _traverse(self, src_qp: QueuePair, nbytes: int) -> Generator:
        """Move a message from ``src_qp``'s NIC to its peer's NIC."""
        if src_qp.is_loopback:
            return
        nic = src_qp.nic
        timing = nic.timing
        port = nic.ports[src_qp.port_index]
        start = nic.sim.now
        serialization = timing.payload_wire_ns(nbytes + _HEADER_BYTES)
        if serialization > 0:
            yield from port.wire.use(serialization)
        latency = nic.link_latency_to(src_qp.peer.nic)
        if latency > 0:
            yield latency
        if _obs.enabled:
            tracer = nic.sim.tracer
            if tracer is not None:
                tracer.wire_span(nic, src_qp.peer.nic, nbytes, start)

    def _dma_txn(self, nic: "RNIC", kind: str, ns: int) -> Generator:
        """One posted/non-posted DMA transaction latency (a dma span)."""
        if ns <= 0:
            return
        start = nic.sim.now
        yield ns
        if _obs.enabled:
            tracer = nic.sim.tracer
            if tracer is not None:
                tracer.dma_txn(nic, kind, start)

    def _dma_in(self, nic: "RNIC", nbytes: int) -> Generator:
        """Initiator/responder DMA of a payload across PCIe (gather)."""
        cost = nic.timing.payload_pcie_ns(nbytes)
        if cost > 0:
            start = nic.sim.now
            yield from nic.pcie.use(cost)
            if _obs.enabled:
                tracer = nic.sim.tracer
                if tracer is not None:
                    tracer.dma_span(nic, nbytes, start)
                telemetry = nic.sim.telemetry
                if telemetry is not None:
                    telemetry.on_dma(nic, nbytes)

    def _scatter_bytes(self, nic: "RNIC", data: bytes,
                       sges: List[Sge], laddr: int, length: int) -> int:
        """Write ``data`` into an SGE list (or the single laddr sink)."""
        if not sges:
            if length and len(data) > length:
                raise QueueError(
                    f"{len(data)}-byte message exceeds {length}-byte sink")
            if laddr:
                nic.memory.write(laddr, data)
            return len(data)
        written = 0
        total = len(data)
        view = memoryview(data)
        for sge in sges:
            if written >= total:
                break
            # Slice the view, not the bytes: each chunk is zero-copy
            # until the bytearray slice-assign inside memory.write.
            chunk = view[written:written + sge.length]
            nic.memory.write(sge.addr, chunk)
            written += len(chunk)
        if written < total:
            raise QueueError(
                f"scatter list too small: {len(data)} bytes into "
                f"{sum(s.length for s in sges)}")
        return written

    # -- verb implementations ----------------------------------------------------

    def _noop(self, qp: Optional[QueuePair], wqe: Wqe) -> Generator:
        """NOOP: no memory effect; remote QPs still pay a wire round trip
        (the paper's remote-vs-loopback NOOP difference, Fig 7)."""
        if qp is not None and qp.connected and not qp.is_loopback:
            yield from self._traverse(qp, 0)
            yield from self._traverse(qp.peer, 0)
        return (0, 0)

    def _write(self, qp: QueuePair, wqe: Wqe) -> Generator:
        nic = qp.nic
        peer = qp.peer
        rnic = peer.nic
        timing = rnic.timing
        # Gather payload from initiator memory.
        yield from self._dma_in(nic, wqe.length)
        data = nic.memory.read(wqe.laddr, wqe.length) if wqe.length else b""
        yield from self._traverse(qp, wqe.length)
        if not qp.is_loopback:
            yield timing.rx_process_ns
        peer.pd.validate_remote(wqe.rkey, wqe.raddr, max(1, wqe.length),
                                AccessFlags.REMOTE_WRITE)
        # Posted DMA write of the payload into responder memory.
        yield from self._dma_txn(rnic, "posted", timing.dma_posted_ns)
        yield from self._dma_in(rnic, wqe.length)
        if wqe.length:
            rnic.memory.write(wqe.raddr, data)
        immediate = 0
        if wqe.opcode == Opcode.WRITE_IMM:
            immediate = wqe.operand0
            yield from self._consume_recv(peer, payload=None,
                                          byte_len=wqe.length,
                                          immediate=immediate)
        yield from self._traverse(peer, 0)  # ack
        return (wqe.length, immediate)

    def _read(self, qp: QueuePair, wqe: Wqe) -> Generator:
        nic = qp.nic
        peer = qp.peer
        rnic = peer.nic
        timing = rnic.timing
        yield from self._traverse(qp, 0)  # request
        if not qp.is_loopback:
            yield timing.rx_process_ns
        peer.pd.validate_remote(wqe.rkey, wqe.raddr, max(1, wqe.length),
                                AccessFlags.REMOTE_READ)
        # Non-posted DMA read on the responder.
        yield from self._dma_txn(rnic, "nonposted",
                                 timing.dma_nonposted_ns)
        yield from self._dma_in(rnic, wqe.length)
        data = rnic.memory.read(wqe.raddr, wqe.length) if wqe.length else b""
        yield from self._traverse(peer, wqe.length)  # response
        # Scatter into initiator memory (possibly across several WQEs).
        # The scatter is a posted write whose latency overlaps with CQE
        # delivery, so only its PCIe bandwidth share is charged here.
        yield from self._dma_in(nic, wqe.length)
        written = self._scatter_bytes(nic, data, wqe.sges, wqe.laddr,
                                      wqe.length)
        return (written, 0)

    def _send(self, qp: QueuePair, wqe: Wqe) -> Generator:
        nic = qp.nic
        peer = qp.peer
        yield from self._dma_in(nic, wqe.length)
        data = nic.memory.read(wqe.laddr, wqe.length) if wqe.length else b""
        yield from self._traverse(qp, wqe.length)
        if not qp.is_loopback:
            yield peer.nic.timing.rx_process_ns
        byte_len = yield from self._consume_recv(
            peer, payload=data, byte_len=len(data), immediate=0)
        yield from self._traverse(peer, 0)  # ack
        return (byte_len, 0)

    def _consume_recv(self, peer: QueuePair, payload: Optional[bytes],
                      byte_len: int, immediate: int) -> Generator:
        """Consume the next RECV WQE at the responder.

        For SEND the payload is scattered into the RECV's SGE list —
        when those SGEs aim into work-queue memory, this is the
        argument-injection step of a RedN trigger (Fig 3/Fig 9). For
        WRITE_IMM the RECV is consumed for notification only.

        Blocks (like an RNR-retried requester) until a consumable RECV
        exists, which a managed+recycled recv ring can provide forever
        without CPU help.
        """
        rnic = peer.nic
        timing = rnic.timing
        recv_wq = peer.recv_wq
        grant = yield recv_wq.consume_lock.acquire()
        try:
            while recv_wq.consumable_recvs == 0 and not recv_wq.destroyed:
                yield recv_wq.recv_available()
            if recv_wq.destroyed:
                raise QueueError(f"{recv_wq!r} destroyed mid-receive")
            engine = rnic.ports[peer.port_index].fetch_engine
            fetch_grant = yield engine.acquire()
            yield timing.wqe_fetch_ns
            recv_wqe, slots = recv_wq.read_wqe_at_cursor()
            recv_wq.advance_fetch(slots)
            engine.release(fetch_grant)
            if _obs.enabled:
                telemetry = rnic.sim.telemetry
                if telemetry is not None:
                    telemetry.on_fetch(recv_wq, 1)
        finally:
            recv_wq.consume_lock.release(grant)
        written = byte_len
        if payload is not None:
            yield from self._dma_txn(rnic, "posted",
                                     timing.dma_posted_ns)
            yield from self._dma_in(rnic, len(payload))
            written = self._scatter_bytes(
                rnic, payload, recv_wqe.sges, recv_wqe.laddr,
                recv_wqe.length)
        cqe = Cqe(wr_id=recv_wqe.wr_id, opcode=Opcode.RECV, status="OK",
                  wq_num=recv_wq.wq_num, byte_len=written,
                  immediate=immediate, timestamp=rnic.sim.now)
        recv_wq.cq.post_completion(cqe, host_delay_ns=timing.cqe_dma_ns)
        return written

    def _atomic(self, qp: QueuePair, wqe: Wqe) -> Generator:
        nic = qp.nic
        peer = qp.peer
        rnic = peer.nic
        timing = rnic.timing
        yield from self._traverse(qp, 16)  # operands travel in the request
        if not qp.is_loopback:
            yield timing.rx_process_ns
        peer.pd.validate_remote(wqe.rkey, wqe.raddr, 8,
                                AccessFlags.REMOTE_ATOMIC)
        port = rnic.ports[peer.port_index]
        grant = yield port.atomic_unit.acquire()
        txn_start = nic.sim.now
        yield timing.atomic_unit_ns
        if wqe.opcode == Opcode.CAS:
            original = rnic.memory.compare_and_swap_u64(
                wqe.raddr, wqe.operand0, wqe.operand1)
        else:
            original = rnic.memory.fetch_add_u64(wqe.raddr, wqe.operand0)
        if _obs.enabled:
            tracer = nic.sim.tracer
            if tracer is not None:
                tracer.atomic(rnic, wqe, original)
            recorder = nic.sim.recorder
            if recorder is not None:
                recorder.on_atomic(rnic, qp.send_wq.name, wqe, original)
        port.atomic_unit.release(grant)
        # Remaining PCIe-atomic transaction latency happens off-unit.
        remaining = timing.atomic_pcie_ns - timing.atomic_unit_ns
        if remaining > 0:
            yield remaining
        if _obs.enabled:
            tracer = nic.sim.tracer
            if tracer is not None:
                tracer.dma_txn(rnic, "atomic", txn_start)
        yield from self._traverse(peer, 8)  # original value returns
        if wqe.laddr:
            nic.memory.write_u64(wqe.laddr, original)
        return (8, 0)

    def _calc(self, qp: QueuePair, wqe: Wqe) -> Generator:
        """Mellanox vendor calc verbs (MAX/MIN, §3.5 inequality support)."""
        nic = qp.nic
        peer = qp.peer
        rnic = peer.nic
        timing = rnic.timing
        if not rnic.model.supports_calc_verbs:
            raise QueueError(
                f"{rnic.model.name} does not support calc verbs")
        yield from self._traverse(qp, 16)
        if not qp.is_loopback:
            yield timing.rx_process_ns
        peer.pd.validate_remote(wqe.rkey, wqe.raddr, 8,
                                AccessFlags.REMOTE_WRITE
                                | AccessFlags.REMOTE_READ)
        yield from self._dma_txn(
            rnic, "calc", timing.dma_nonposted_ns + timing.calc_alu_ns)
        original = rnic.memory.read_u64(wqe.raddr)
        if wqe.opcode == Opcode.MAX:
            result = max(original, wqe.operand0)
        else:
            result = min(original, wqe.operand0)
        rnic.memory.write_u64(wqe.raddr, result)
        yield from self._traverse(peer, 8)
        if wqe.laddr:
            nic.memory.write_u64(wqe.laddr, original)
        return (8, 0)
