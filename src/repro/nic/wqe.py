"""Work-queue entry (WQE) byte format.

This layout is the load-bearing wall of the whole reproduction: RedN
programs *are* writes to these bytes. The design follows the two tricks
the paper's programs rely on (Fig 4, Fig 9):

1. **ctrl word**: byte offset 0 holds a big-endian u64 packing
   ``opcode`` (high 16 bits) and ``id`` (low 48 bits). A single 64-bit
   CAS on this word both tests a 48-bit operand stored in ``id`` *and*
   rewrites the opcode — this is exactly the conditional of Fig 4 and
   the source of the 48-bit operand limit in Table 2.

2. **field adjacency**: ``laddr`` (source address) and ``length``
   directly follow the ctrl word. A contiguous RDMA READ of an
   18-byte record ``[key:6 | ptr:8 | len:4]`` aimed at ``base+2``
   therefore lands the key in ``id``, the value pointer in ``laddr``
   and the value length in ``length`` — one READ fully prepares a
   response WRITE (Fig 9). Data structures in :mod:`repro.datastructs`
   use this record layout, which is why their pointers are big-endian
   (the paper's §5.4 Memcached patch).

WQEs occupy one or more 64-byte slots. Slot 0 is the header below;
scatter/gather entries (for RECV sinks and READ response scatter) live
in follow-on slots, four 16-byte SGEs per slot, at most 16 SGEs — the
"RECVs can only perform 16 scatters" limit of §5.3.
"""

from __future__ import annotations

import struct as _struct
from typing import List, Optional, Tuple

from ..memory.layout import Struct, mask
from .opcodes import OPCODE_NAMES, Opcode, WrFlags

__all__ = [
    "WQE_SLOT_SIZE",
    "MAX_SGE",
    "WQE_HEADER",
    "SGE_STRUCT",
    "Sge",
    "Wqe",
    "ctrl_word",
    "field_location",
    "split_ctrl",
    "wqe_slots_needed",
    "FIELD_CTRL",
    "FIELD_ID",
    "FIELD_LADDR",
    "FIELD_LENGTH",
    "FIELD_RADDR",
    "FIELD_FLAGS",
    "FIELD_OPERAND0",
    "FIELD_OPERAND1",
    "FIELD_WQE_COUNT",
]

WQE_SLOT_SIZE = 64
MAX_SGE = 16
SGES_PER_SLOT = 4

ID_BITS = 48
OPCODE_SHIFT = ID_BITS
ID_MASK = mask(ID_BITS)

WQE_HEADER = Struct("wqe", WQE_SLOT_SIZE, [
    ("ctrl", 0, 8),         # opcode:16 | id:48 (see ctrl_word)
    ("laddr", 8, 8),        # local/source address
    ("length", 16, 4),      # payload byte count
    ("raddr", 20, 8),       # remote/target address
    ("flags", 28, 4),       # WrFlags bits
    ("operand0", 32, 8),    # CAS compare / ADD delta / MAX-MIN operand / imm
    ("operand1", 40, 8),    # CAS swap value
    ("wqe_count", 48, 4),   # WAIT/ENABLE: completion count / enable index
    ("target", 52, 2),      # WAIT: CQ number; ENABLE: WQ number
    ("num_slots", 54, 1),   # total 64B slots of this WQE (>=1)
    ("num_sge", 55, 1),     # scatter entries in follow-on slots
    ("lkey", 56, 4),        # local memory key
    ("rkey", 60, 4),        # remote memory key
])

SGE_STRUCT = Struct("sge", 16, [
    ("addr", 0, 8),
    ("length", 8, 4),
    ("lkey", 12, 4),
])

# Compiled codecs mirroring WQE_HEADER / SGE_STRUCT exactly: one C call
# replaces a dozen per-field to_bytes/from_bytes round-trips on the
# fetch and post paths. Field order and widths must match the Struct
# declarations above (checked by the differential codec tests).
_HEADER_CODEC = _struct.Struct(">QQIQIQQIHBBII")
_SGE_CODEC = _struct.Struct(">QII")
assert _HEADER_CODEC.size == WQE_SLOT_SIZE
assert _SGE_CODEC.size == SGE_STRUCT.size
_pack_header = _HEADER_CODEC.pack_into
_unpack_header = _HEADER_CODEC.unpack_from
_pack_sge = _SGE_CODEC.pack_into
_unpack_sge = _SGE_CODEC.unpack_from

# Batch SGE codecs, one per possible count: ">QIIQII..." decodes (and
# encodes) a whole SGE list in a single C call instead of one call per
# entry. An Sge is exactly 16 packed bytes (8+4+4), so ``n`` repeats
# tile the follow-on slots with no padding.
_BATCH_SGE_CODECS = [None] + [
    _struct.Struct(">" + "QII" * n) for n in range(1, MAX_SGE + 1)]
assert all(codec.size == 16 * n
           for n, codec in enumerate(_BATCH_SGE_CODECS) if codec)

# Canonical field names used by self-modifying programs to aim at WQE
# bytes. FIELD_ID addresses only the low 48 bits of the ctrl word
# (offset 2, width 6), which is how a READ deposits a key without
# clobbering the opcode.
FIELD_CTRL = "ctrl"
FIELD_ID = "id"
FIELD_LADDR = "laddr"
FIELD_LENGTH = "length"
FIELD_RADDR = "raddr"
FIELD_FLAGS = "flags"
FIELD_OPERAND0 = "operand0"
FIELD_OPERAND1 = "operand1"
FIELD_WQE_COUNT = "wqe_count"

# (offset, width) for names not directly in the header struct.
_VIRTUAL_FIELDS = {
    FIELD_ID: (2, 6),
}


def field_location(name: str) -> Tuple[int, int]:
    """(offset, width) of a WQE field, including virtual ``id``."""
    if name in _VIRTUAL_FIELDS:
        return _VIRTUAL_FIELDS[name]
    field = WQE_HEADER.fields[name]
    return field.offset, field.width


def ctrl_word(opcode: int, wr_id: int = 0) -> int:
    """Pack opcode and 48-bit id into the ctrl-word u64."""
    if not 0 <= opcode < (1 << 16):
        raise ValueError(f"opcode {opcode:#x} out of range")
    if not 0 <= wr_id <= ID_MASK:
        raise ValueError(f"wr_id {wr_id:#x} exceeds 48 bits")
    return (opcode << OPCODE_SHIFT) | wr_id


def split_ctrl(word: int) -> Tuple[int, int]:
    """Unpack a ctrl-word u64 into (opcode, id)."""
    return word >> OPCODE_SHIFT, word & ID_MASK


def wqe_slots_needed(num_sge: int) -> int:
    """Slots for a WQE carrying ``num_sge`` scatter entries."""
    if not 0 <= num_sge <= MAX_SGE:
        raise ValueError(
            f"num_sge {num_sge} out of range (max {MAX_SGE}, §5.3)")
    extra = (num_sge + SGES_PER_SLOT - 1) // SGES_PER_SLOT
    return 1 + extra


class Sge:
    """A scatter/gather element: a (addr, length, lkey) triple."""

    __slots__ = ("addr", "length", "lkey")

    def __init__(self, addr: int, length: int, lkey: int = 0):
        self.addr = addr
        self.length = length
        self.lkey = lkey

    def __repr__(self) -> str:
        return f"<Sge {self.addr:#x}+{self.length}>"

    def __eq__(self, other) -> bool:
        return (isinstance(other, Sge) and self.addr == other.addr
                and self.length == other.length and self.lkey == other.lkey)


class Wqe:
    """Decoded (or to-be-encoded) view of one work-queue entry.

    This object is a host-side convenience only: the NIC model always
    round-trips through bytes, so anything a self-modifying verb wrote
    into queue memory is faithfully picked up on the next fetch.
    """

    __slots__ = ("opcode", "wr_id", "laddr", "length", "raddr", "flags",
                 "operand0", "operand1", "wqe_count", "target", "lkey",
                 "rkey", "sges")

    def __init__(self, opcode: int = Opcode.NOOP, wr_id: int = 0,
                 laddr: int = 0, length: int = 0, raddr: int = 0,
                 flags: int = WrFlags.NONE, operand0: int = 0,
                 operand1: int = 0, wqe_count: int = 0, target: int = 0,
                 lkey: int = 0, rkey: int = 0,
                 sges: Optional[List[Sge]] = None):
        self.opcode = opcode
        self.wr_id = wr_id
        self.laddr = laddr
        self.length = length
        self.raddr = raddr
        self.flags = flags
        self.operand0 = operand0
        self.operand1 = operand1
        self.wqe_count = wqe_count
        self.target = target
        self.lkey = lkey
        self.rkey = rkey
        self.sges: List[Sge] = list(sges or [])
        if len(self.sges) > MAX_SGE:
            raise ValueError(f"too many SGEs: {len(self.sges)} > {MAX_SGE}")

    def __repr__(self) -> str:
        name = OPCODE_NAMES.get(self.opcode, f"OP{self.opcode:#x}")
        return (f"<Wqe {name} id={self.wr_id:#x} laddr={self.laddr:#x} "
                f"len={self.length} raddr={self.raddr:#x} "
                f"flags={self.flags:#x}>")

    @property
    def num_slots(self) -> int:
        return wqe_slots_needed(len(self.sges))

    @property
    def signaled(self) -> bool:
        return bool(self.flags & WrFlags.SIGNALED)

    # -- byte codec ------------------------------------------------------

    def encode(self) -> bytearray:
        """Serialize to ``num_slots * 64`` bytes."""
        try:
            return self._encode_fast()
        except (OverflowError, _struct.error):
            # A field is negative or too wide; re-run the checked
            # per-field path to raise the descriptive ValueError.
            return self._encode_checked()

    def _encode_fast(self) -> bytearray:
        sges = self.sges
        num_sge = len(sges)
        num_slots = wqe_slots_needed(num_sge)
        buf = bytearray(num_slots * WQE_SLOT_SIZE)
        _pack_header(buf, 0, ctrl_word(self.opcode, self.wr_id),
                     self.laddr, self.length, self.raddr, self.flags,
                     self.operand0, self.operand1, self.wqe_count,
                     self.target, num_slots, num_sge, self.lkey, self.rkey)
        if num_sge:
            flat = []
            for sge in sges:
                flat.append(sge.addr)
                flat.append(sge.length)
                flat.append(sge.lkey)
            _BATCH_SGE_CODECS[num_sge].pack_into(
                buf, WQE_SLOT_SIZE, *flat)
        return buf

    def _encode_checked(self) -> bytearray:
        buf = bytearray(self.num_slots * WQE_SLOT_SIZE)
        header = WQE_HEADER.pack(
            ctrl=ctrl_word(self.opcode, self.wr_id),
            laddr=self.laddr,
            length=self.length,
            raddr=self.raddr,
            flags=self.flags,
            operand0=self.operand0,
            operand1=self.operand1,
            wqe_count=self.wqe_count,
            target=self.target,
            num_slots=self.num_slots,
            num_sge=len(self.sges),
            lkey=self.lkey,
            rkey=self.rkey,
        )
        buf[:WQE_SLOT_SIZE] = header
        for index, sge in enumerate(self.sges):
            base = WQE_SLOT_SIZE + index * SGE_STRUCT.size
            SGE_STRUCT.pack_into(buf, base, "addr", sge.addr)
            SGE_STRUCT.pack_into(buf, base, "length", sge.length)
            SGE_STRUCT.pack_into(buf, base, "lkey", sge.lkey)
        return buf

    @classmethod
    def decode(cls, buf) -> "Wqe":
        """Parse a WQE from bytes or a memoryview (header + SGE slots).

        One pass over precomputed slices, no intermediate dict or byte
        copies — this sits on the NIC fetch path of every simulated WR.
        """
        if not Struct.use_compiled:
            return cls._decode_legacy(buf)
        if len(buf) < WQE_SLOT_SIZE:
            raise ValueError("buffer too short for wqe at offset 0")
        self = cls.__new__(cls)
        (ctrl, self.laddr, self.length, self.raddr, self.flags,
         self.operand0, self.operand1, self.wqe_count, self.target,
         _num_slots, num_sge, self.lkey,
         self.rkey) = _unpack_header(buf, 0)
        self.opcode = ctrl >> OPCODE_SHIFT
        self.wr_id = ctrl & ID_MASK
        sges: List[Sge] = []
        self.sges = sges
        if num_sge:
            if num_sge > MAX_SGE:
                raise ValueError(f"too many SGEs: {num_sge} > {MAX_SGE}")
            base = WQE_SLOT_SIZE
            if len(buf) >= base + 16 * num_sge:
                flat = _BATCH_SGE_CODECS[num_sge].unpack_from(buf, base)
                for index in range(0, 3 * num_sge, 3):
                    sges.append(Sge(flat[index], flat[index + 1],
                                    flat[index + 2]))
            else:
                # Truncated buffer: slices read past the end as zeros,
                # matching how a short DMA leaves SGE slots unwritten.
                from_bytes = int.from_bytes
                for _ in range(num_sge):
                    sges.append(Sge(
                        from_bytes(buf[base:base + 8], "big"),
                        from_bytes(buf[base + 8:base + 12], "big"),
                        from_bytes(buf[base + 12:base + 16], "big")))
                    base += 16
        return self

    @classmethod
    def _decode_legacy(cls, buf: bytes) -> "Wqe":
        """Original dict-building decode (differential-test reference)."""
        fields = WQE_HEADER.unpack(buf, 0)
        opcode, wr_id = split_ctrl(fields["ctrl"])
        num_sge = fields["num_sge"]
        sges = []
        for index in range(num_sge):
            base = WQE_SLOT_SIZE + index * SGE_STRUCT.size
            sges.append(Sge(
                addr=SGE_STRUCT.unpack_field(buf, base, "addr"),
                length=SGE_STRUCT.unpack_field(buf, base, "length"),
                lkey=SGE_STRUCT.unpack_field(buf, base, "lkey"),
            ))
        return cls(
            opcode=opcode, wr_id=wr_id, laddr=fields["laddr"],
            length=fields["length"], raddr=fields["raddr"],
            flags=fields["flags"], operand0=fields["operand0"],
            operand1=fields["operand1"], wqe_count=fields["wqe_count"],
            target=fields["target"], lkey=fields["lkey"],
            rkey=fields["rkey"], sges=sges,
        )
