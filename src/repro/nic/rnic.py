"""The RNIC device model.

An :class:`RNIC` owns:

* **ports** — each with its own wire (serialization), WQE-fetch engine,
  atomic/concurrency-control unit, and a set of processing units (PUs).
  ConnectX assigns compute per port (§5.1.3): Table 3's single-port
  throughput and Table 4's single-vs-dual-port scaling both come from
  this structure.
* a **PCIe attachment** shared by all ports — the reason dual-port
  64 KB lookups cap at ~190 K ops/s (Table 4: "Dual-port configs are
  limited by ConnectX-5's 16× PCIe 3.0 lanes").
* registries of CQs/WQs/QPs, addressable by number — WAIT and ENABLE
  WQEs name their targets by these numbers.

Every send queue gets a :class:`~repro.nic.processing.SendQueueDriver`
process: the PU-context that fetches WQE bytes from host memory and
executes them. Work queues are statically assigned to PUs round-robin
("each WQ is allocated a single RNIC PU", §3.5) — RedN-Parallel's
speedup comes from spreading chains across WQs, hence PUs.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from .. import obs as _obs
from ..memory.dram import HostMemory
from ..memory.region import ProtectionDomain
from ..sim.core import Simulator
from ..sim.resources import Resource
from .models import CONNECTX5, DeviceModel
from .processing import SendQueueDriver
from .qp import QueuePair
from .queue import CompletionQueue, QueueError, WorkQueue
from .timing import TimingModel
from .verbs import VerbExecutor

__all__ = ["RNIC", "Port"]


class Port:
    """One NIC port: wire + fetch engine + atomic unit + PUs."""

    def __init__(self, sim: Simulator, nic: "RNIC", index: int,
                 num_pus: int):
        self.nic = nic
        self.index = index
        self.wire = Resource(sim, 1, name=f"{nic.name}-p{index}-wire")
        self.fetch_engine = Resource(
            sim, 1, name=f"{nic.name}-p{index}-fetch")
        self.atomic_unit = Resource(
            sim, 1, name=f"{nic.name}-p{index}-atomic")
        self.pus = [Resource(sim, 1, name=f"{nic.name}-p{index}-pu{i}")
                    for i in range(num_pus)]
        self._next_pu = itertools.cycle(range(num_pus))

    def assign_pu(self) -> int:
        """Round-robin WQ-to-PU assignment (§3.5, Parallelism)."""
        return next(self._next_pu)


class RNIC:
    """A simulated RDMA NIC attached to one host's memory."""

    _instances = itertools.count()

    def __init__(self, sim: Simulator, memory: HostMemory,
                 model: DeviceModel = CONNECTX5, name: str = "",
                 active_ports: Optional[int] = None):
        self.sim = sim
        self.memory = memory
        self.model = model
        self.timing: TimingModel = model.scaled_timing()
        self.name = name or f"rnic{next(self._instances)}"
        ports = active_ports if active_ports is not None else 1
        if not 1 <= ports <= model.num_ports:
            raise ValueError(
                f"{model.name} has {model.num_ports} ports, asked {ports}")
        self.ports: List[Port] = [
            Port(sim, self, i, model.pus_per_port) for i in range(ports)]
        # Host PCIe attachment, shared by every port.
        self.pcie = Resource(sim, 1, name=f"{self.name}-pcie")

        self.cqs: Dict[int, CompletionQueue] = {}
        self.wqs: Dict[int, WorkQueue] = {}
        self.qps: List[QueuePair] = []
        self._cq_nums = itertools.count(1)
        self._wq_nums = itertools.count(1)
        self._drivers: Dict[int, SendQueueDriver] = {}
        self.executor = VerbExecutor(self)
        # A hook the fabric layer installs: (other_nic) -> one-way ns.
        self.link_latency_fn: Optional[Callable[["RNIC"], int]] = None
        #: WR execution counters (by opcode + "total_wrs"). Registered
        #: in the simulator's MetricsRegistry so a metrics snapshot is
        #: the one canonical place these counts appear; still a plain
        #: Counter, so hot-path bumps cost what they always did.
        self.stats = sim.metrics.counter(f"nic.{self.name}.wrs")
        self.alive = True

    def __repr__(self) -> str:
        return (f"<RNIC {self.name} {self.model.name} "
                f"ports={len(self.ports)}>")

    # -- object creation ---------------------------------------------------

    def create_cq(self, name: str = "") -> CompletionQueue:
        cq = CompletionQueue(self.sim, next(self._cq_nums), name=name)
        self.cqs[cq.cq_num] = cq
        if _obs.enabled:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.cq_created(self, cq)
            recorder = self.sim.recorder
            if recorder is not None:
                recorder.cq_created(self, cq)
        return cq

    def create_wq(self, kind: str, num_slots: int, cq: CompletionQueue,
                  managed: bool = False, owner: str = "kernel",
                  port_index: int = 0, name: str = "") -> WorkQueue:
        if cq.cq_num not in self.cqs:
            raise QueueError(f"{cq!r} does not belong to {self!r}")
        wq = WorkQueue(self.sim, self.memory, next(self._wq_nums), kind,
                       num_slots, cq, managed=managed, owner=owner,
                       name=name)
        wq.port_index = port_index
        # Only send queues consume a PU context ("each WQ is allocated
        # a single RNIC PU", §3.5); inbound processing is charged on
        # the RX path instead.
        wq.pu_index = (self.ports[port_index].assign_pu()
                       if kind == "send" else 0)
        wq.doorbell_delay_ns = self.timing.doorbell_ns
        wq.doorbell_batch_entry_ns = self.timing.doorbell_batch_entry_ns
        self.wqs[wq.wq_num] = wq
        if _obs.enabled:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.wq_created(self, wq)
            recorder = self.sim.recorder
            if recorder is not None:
                recorder.wq_created(self, wq)
        if kind == "send":
            driver = SendQueueDriver(self, wq)
            self._drivers[wq.wq_num] = driver
            driver.start()
        return wq

    def create_qp(self, pd: ProtectionDomain, send_slots: int = 128,
                  recv_slots: int = 128, managed_send: bool = False,
                  managed_recv: bool = False,
                  send_cq: Optional[CompletionQueue] = None,
                  recv_cq: Optional[CompletionQueue] = None,
                  port_index: int = 0, owner: str = "kernel",
                  name: str = "") -> QueuePair:
        """Create an RC QP (and its CQs, unless supplied)."""
        send_cq = send_cq or self.create_cq(name=f"{name}-scq")
        recv_cq = recv_cq or self.create_cq(name=f"{name}-rcq")
        send_wq = self.create_wq(
            "send", send_slots, send_cq, managed=managed_send,
            owner=owner, port_index=port_index, name=f"{name}-sq")
        recv_wq = self.create_wq(
            "recv", recv_slots, recv_cq, managed=managed_recv,
            owner=owner, port_index=port_index, name=f"{name}-rq")
        qp = QueuePair(self, pd, send_wq, recv_wq, port_index=port_index,
                       name=name)
        self.qps.append(qp)
        return qp

    def create_loopback_pair(self, pd: ProtectionDomain, **kwargs):
        """A connected pair of QPs on this NIC (self-modification path)."""
        name = kwargs.pop("name", "lo")
        qp_a = self.create_qp(pd, name=f"{name}-a", **kwargs)
        qp_b = self.create_qp(pd, name=f"{name}-b", **kwargs)
        qp_a.connect(qp_b)
        return qp_a, qp_b

    # -- topology ------------------------------------------------------------

    def link_latency_to(self, other: "RNIC") -> int:
        """One-way latency to another NIC, in nanoseconds."""
        if other is self:
            return 0
        if self.link_latency_fn is not None:
            return self.link_latency_fn(other)
        return self.timing.network_one_way_ns

    def port_of(self, wq: WorkQueue) -> Port:
        return self.ports[wq.port_index]

    # -- lifecycle -------------------------------------------------------------

    def destroy_qp(self, qp: QueuePair) -> None:
        qp.destroy()

    def shutdown(self) -> None:
        """Stop the device (used only by tests; NICs outlive OS crashes)."""
        self.alive = False
        for wq in self.wqs.values():
            wq.destroy()
