"""Queue pairs: reliable-connection (RC) endpoints.

The evaluation uses RC transport exclusively because it is the service
level that supports WAIT/ENABLE and atomics (§5, "NIC setup"). A QP
bundles a send queue and a receive queue; ``connect`` wires two QPs
together. Both ends may live on the *same* NIC — loopback QPs are how a
RedN program manipulates its own host's memory (code regions and data
regions) without any network hop.
"""

from __future__ import annotations

import itertools
from typing import Optional, TYPE_CHECKING

from ..memory.region import ProtectionDomain
from .queue import QueueError, WorkQueue
from .wqe import Wqe

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .rnic import RNIC

__all__ = ["QueuePair"]


class QueuePair:
    """An RC queue pair: (send WQ, recv WQ) + a peer."""

    _qp_nums = itertools.count(0x20)

    def __init__(self, nic: "RNIC", pd: ProtectionDomain,
                 send_wq: WorkQueue, recv_wq: WorkQueue,
                 port_index: int = 0, name: str = ""):
        self.nic = nic
        self.pd = pd
        self.send_wq = send_wq
        self.recv_wq = recv_wq
        self.port_index = port_index
        self.qp_num = next(self._qp_nums)
        self.name = name or f"qp{self.qp_num}"
        self.peer: Optional["QueuePair"] = None
        send_wq.qp = self
        recv_wq.qp = self

    def __repr__(self) -> str:
        peer = self.peer.name if self.peer else "unconnected"
        return f"<QP {self.name} peer={peer}>"

    # -- connection management -------------------------------------------

    def connect(self, peer: "QueuePair") -> None:
        """Bidirectionally wire two QPs (RC connection establishment)."""
        if self.peer is not None or peer.peer is not None:
            raise QueueError("QP already connected")
        self.peer = peer
        peer.peer = self

    @property
    def connected(self) -> bool:
        return self.peer is not None

    @property
    def is_loopback(self) -> bool:
        """True when both ends live on the same NIC (no wire hop)."""
        return self.peer is not None and self.peer.nic is self.nic

    # -- host posting API ---------------------------------------------------

    def post_send(self, wqe: Wqe,
                  ring_doorbell: Optional[bool] = None) -> int:
        """Post to the send queue; returns the WR index.

        ``ring_doorbell`` resolves against the queue's managed flag —
        ``None`` is not "no doorbell", it is "the WQ's policy":

        ========================  ==================================
        ``ring_doorbell``         effect on the send WQ
        ========================  ==================================
        ``None`` + normal WQ      doorbell rung (driver default)
        ``None`` + managed WQ     **no** doorbell — the paper's
                                  managed flag "disables the driver
                                  from issuing doorbells after a WR
                                  is posted" (§5); only an explicit
                                  doorbell or an ENABLE verb releases
                                  the WQE
        ``True``                  doorbell rung regardless
        ``False``                 suppressed regardless (batched
                                  posting — see
                                  :class:`~repro.nic.queue.DoorbellBatcher`)
        ========================  ==================================

        The same table applies to :meth:`post_recv` on the recv WQ.
        """
        return self.send_wq.post(wqe, ring_doorbell=ring_doorbell)

    def post_recv(self, wqe: Wqe,
                  ring_doorbell: Optional[bool] = None) -> int:
        """Post to the receive queue; returns the WR index.

        ``ring_doorbell`` follows the :meth:`post_send` table: ``None``
        falls through to the WQ policy (ring unless managed), ``True``/
        ``False`` force it.
        """
        return self.recv_wq.post(wqe, ring_doorbell=ring_doorbell)

    def destroy(self) -> None:
        self.send_wq.destroy()
        self.recv_wq.destroy()
