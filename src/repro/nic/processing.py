"""Send-queue drivers: the PU contexts that fetch and execute WQEs.

One :class:`SendQueueDriver` process runs per send queue. Its loop is
the behavioural core of the reproduction:

* **fetch** — WQE *bytes* are read from host memory. Normal queues
  prefetch a batch per DMA; what executes is the snapshot taken at
  fetch time, so modifying a WQE after it was prefetched has no effect
  (the incoherence hazard of §3.1). Managed queues never fetch past
  their ``enabled_count`` and fetch strictly one-by-one — doorbell
  ordering, the mode self-modifying code requires.
* **WAIT** — blocks the queue until a target CQ's completion count
  reaches the WQE's ``wqe_count`` (completion ordering, Fig 2a).
* **ENABLE** — raises a target WQ's fetch limit (Fig 2b); with the
  ENABLE_RELATIVE flag it advances the limit by a delta, which is what
  lets a recycled ring re-arm itself past the producer index (§3.4).
* **data verbs** — occupy the queue's PU for the verb's processing
  time, then run their (possibly remote) data path asynchronously so
  that WQ-ordered chains pipeline; completions are delivered strictly
  in WR order per queue.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

from .. import obs as _obs
from ..memory.dram import MemoryError_
from ..memory.region import ProtectionError
from ..sim.core import Event
from .opcodes import OPCODE_NAMES, Opcode, WrFlags
from .queue import Cqe, QueueError, WorkQueue
from .wqe import Wqe

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .rnic import RNIC

__all__ = ["SendQueueDriver"]


class SendQueueDriver:
    """The execution loop bound to one send queue."""

    def __init__(self, nic: "RNIC", wq: WorkQueue):
        self.nic = nic
        self.wq = wq
        # Fetch-path counters live in the simulator's MetricsRegistry so
        # one snapshot covers every driver (satellite of the obs PR);
        # the returned object is a plain Counter — hot-path cost is
        # identical to the old private Counter.
        self.stats = nic.sim.metrics.counter(
            f"nic.{nic.name}.wq.{wq.name}.fetch")
        self._prev_completion: Event = nic.sim.event()
        self._prev_completion.trigger(None)
        self.process = None
        # Port-derived lookups are fixed once the RNIC adopts the queue;
        # resolved lazily on first use and cached for the hot loop.
        self._pu = None
        self._engine = None

    def start(self) -> None:
        self.process = self.nic.sim.process(
            self._run(), name=f"driver:{self.wq.name}")

    # -- main loop ---------------------------------------------------------

    def _run(self):
        wq = self.wq
        while self.nic.alive and not wq.destroyed:
            if wq.fetchable == 0:
                yield wq.work_available()
                continue
            batch = yield from self._fetch()
            for wqe, wr_index in batch:
                if wq.destroyed or not self.nic.alive:
                    return
                yield from self._execute(wqe, wr_index)

    # -- fetch path ----------------------------------------------------------

    def _fetch(self) -> List[Tuple[Wqe, int]]:
        timing = self.nic.timing
        wq = self.wq
        engine = self._engine
        if engine is None:
            engine = self._engine = self.nic.port_of(wq).fetch_engine
        sim = self.nic.sim
        if wq.managed:
            # Doorbell ordering: one dependent DMA per WQE. Data verbs
            # hold the engine past the fetch latency (their completion
            # writeback shares the context); WAIT/ENABLE are recognized
            # at fetch time and release immediately — that asymmetry is
            # what separates if-chain and recycled-while throughput.
            grant = engine.try_acquire()
            if grant is None:
                grant = yield engine.acquire()
            fetch_start = sim.now
            yield timing.wqe_fetch_ns
            if wq.destroyed:
                engine.release(grant)
                return []
            cursor = wq._fetch_slot_cursor
            wqe, slots = wq.read_wqe_at_cursor()
            wr_index = wq.fetched_count
            wq.advance_fetch(slots)
            extra_hold = timing.managed_fetch_hold_ns - timing.wqe_fetch_ns
            if extra_hold > 0 and wqe.opcode not in (Opcode.WAIT,
                                                     Opcode.ENABLE):
                # Plain callback, not a process: nothing observes the
                # release other than the engine's FIFO wait queue.
                sim.schedule_at(sim.now + extra_hold, engine.release, grant)
            else:
                engine.release(grant)
            self.stats["fetch_managed"] += 1
            if _obs.enabled:
                tracer = sim.tracer
                if tracer is not None:
                    tracer.fetch_span(self.nic, wq, fetch_start, 1, True)
                    tracer.wqe_fetched(wq, wr_index, cursor, slots, wqe,
                                       wq._last_decode_cached)
                recorder = sim.recorder
                if recorder is not None:
                    recorder.on_fetch(wq, wr_index, cursor, slots, wqe,
                                      wq._last_decode_cached)
                telemetry = sim.telemetry
                if telemetry is not None:
                    telemetry.on_fetch(wq, 1)
            return [(wqe, wr_index)]

        count = min(wq.fetchable, timing.prefetch_batch)
        grant = engine.try_acquire()
        if grant is None:
            grant = yield engine.acquire()
        fetch_start = sim.now
        hold = timing.batch_fetch_hold_per_wqe_ns * count
        if hold:
            yield hold
        engine.release(grant)
        remaining = timing.wqe_fetch_ns - hold
        if remaining > 0:
            yield remaining
        if wq.destroyed:
            return []
        tracer = sim.tracer if _obs.enabled else None
        recorder = sim.recorder if _obs.enabled else None
        telemetry = sim.telemetry if _obs.enabled else None
        fetch_meta = ([] if (tracer is not None or recorder is not None)
                      else None)
        batch = []
        for _ in range(count):
            if wq.fetchable == 0:
                break
            cursor = wq._fetch_slot_cursor
            wqe, slots = wq.read_wqe_at_cursor()
            wr_index = wq.fetched_count
            wq.advance_fetch(slots)
            batch.append((wqe, wr_index))
            if fetch_meta is not None:
                fetch_meta.append((cursor, slots, wq._last_decode_cached))
        self.stats["fetch_batches"] += 1
        self.stats["fetch_prefetched"] += len(batch)
        if tracer is not None:
            tracer.fetch_span(self.nic, wq, fetch_start, len(batch), False)
            for (wqe, wr_index), (cursor, slots, cached) in zip(
                    batch, fetch_meta):
                tracer.wqe_fetched(wq, wr_index, cursor, slots, wqe, cached)
        if recorder is not None:
            for (wqe, wr_index), (cursor, slots, cached) in zip(
                    batch, fetch_meta):
                recorder.on_fetch(wq, wr_index, cursor, slots, wqe, cached)
        if telemetry is not None and batch:
            telemetry.on_fetch(wq, len(batch))
        return batch

    # -- execute path -----------------------------------------------------------

    def _execute(self, wqe: Wqe, wr_index: int):
        sim = self.nic.sim
        timing = self.nic.timing
        wq = self.wq
        opcode = wqe.opcode
        exec_start = sim.now
        # Stats are keyed by opcode *name* so Counter dumps read like
        # "WRITE: 512" rather than mixing raw ints with string keys.
        # Only the NIC-level counter bumps: it is the one canonical
        # per-opcode count in the metrics snapshot (the driver used to
        # keep a duplicate that could silently drift).
        op_name = OPCODE_NAMES.get(opcode, f"OP{opcode:#x}")
        nic_stats = self.nic.stats
        nic_stats[op_name] += 1
        nic_stats["total_wrs"] += 1
        if _obs.enabled:
            tracer = sim.tracer
            if tracer is not None:
                tracer.execute_begin(wq, wr_index, wqe)
            recorder = sim.recorder
            if recorder is not None:
                recorder.on_exec(wq, wr_index, wqe)
            telemetry = sim.telemetry
            if telemetry is not None:
                telemetry.on_exec(wq)

        if wq.rate_limiter is not None:
            yield from wq.rate_limiter.throttle(1.0)

        if opcode == Opcode.WAIT:
            cq = self.nic.cqs.get(wqe.target)
            if cq is None:
                self._signal(wqe, wr_index, status="BAD_WAIT_TARGET")
                return
            yield cq.wait_for_count(wqe.wqe_count)
            yield timing.wait_check_ns
            if _obs.enabled:
                tracer = sim.tracer
                if tracer is not None:
                    tracer.wait_span(wq, wqe, exec_start)
                recorder = sim.recorder
                if recorder is not None:
                    recorder.on_wait(wq, wr_index, wqe, cq)
            self._signal_if_requested(wqe, wr_index)
            return

        if opcode == Opcode.ENABLE:
            target = self.nic.wqs.get(wqe.target)
            yield timing.enable_ns
            if target is None or target.destroyed:
                self._signal(wqe, wr_index, status="BAD_ENABLE_TARGET")
                return
            relative = bool(wqe.flags & WrFlags.ENABLE_RELATIVE)
            target.enable(wqe.wqe_count, relative=relative)
            if _obs.enabled:
                tracer = sim.tracer
                if tracer is not None:
                    tracer.enable_event(wq, wqe, relative, target)
                recorder = sim.recorder
                if recorder is not None:
                    recorder.on_enable(wq, wr_index, wqe, relative, target)
            self._signal_if_requested(wqe, wr_index)
            return

        if wqe.flags & WrFlags.FENCE:
            yield self._prev_completion

        pu = self._pu
        if pu is None:
            pu = self._pu = self.nic.port_of(wq).pus[wq.pu_index]
        pu_start = sim.now
        yield from pu.use(timing.occupancy(opcode))
        if _obs.enabled:
            tracer = sim.tracer
            if tracer is not None:
                tracer.pu_span(self.nic, wq, opcode, pu_start)
            telemetry = sim.telemetry
            if telemetry is not None:
                telemetry.on_pu(wq, sim.now - pu_start)

        prev = self._prev_completion
        done = sim.event()
        self._prev_completion = done
        if wq.managed:
            # Doorbell ordering executes run-to-completion: the fetch
            # context is held until the WR finishes, so the next WQE is
            # neither fetched nor executed before this one completes —
            # exactly the consistency self-modifying chains need (§3.1)
            # and why "no latency-hiding is possible" in Fig 8.
            yield from self._complete(wqe, wr_index, prev, done, exec_start)
        else:
            # WQ ordering pipelines: the data path runs asynchronously
            # and completions chain on ``prev`` so CQEs are delivered
            # strictly in WR order.
            sim.process(self._complete(wqe, wr_index, prev, done,
                                       exec_start),
                        name=f"op:{self.wq.name}:{wr_index}")

    def _complete(self, wqe: Wqe, wr_index: int, prev: Event, done: Event,
                  exec_start: int):
        status, byte_len, immediate = "OK", 0, 0
        try:
            byte_len, immediate = yield from self.nic.executor.perform(
                self.wq.qp, wqe)
        except ProtectionError:
            status = "PROTECTION_ERROR"
        except MemoryError_:
            status = "MEMORY_ERROR"
        except QueueError:
            status = "QUEUE_ERROR"
        if not prev.triggered:
            yield prev
        if _obs.enabled:
            tracer = self.nic.sim.tracer
            if tracer is not None:
                tracer.wqe_executed(self.wq, wr_index, wqe, status,
                                    exec_start)
            recorder = self.nic.sim.recorder
            if recorder is not None:
                recorder.on_done(self.wq, wr_index, wqe, status, byte_len)
        if wqe.signaled or status != "OK":
            self._signal(wqe, wr_index, status=status, byte_len=byte_len,
                         immediate=immediate)
        done.trigger(None)

    # -- completion helpers ---------------------------------------------------

    def _signal_if_requested(self, wqe: Wqe, wr_index: int) -> None:
        if wqe.signaled:
            self._signal(wqe, wr_index, status="OK")

    def _signal(self, wqe: Wqe, wr_index: int, status: str,
                byte_len: int = 0, immediate: int = 0) -> None:
        cqe = Cqe(wr_id=wqe.wr_id, opcode=wqe.opcode, status=status,
                  wq_num=self.wq.wq_num, byte_len=byte_len,
                  immediate=immediate, timestamp=self.nic.sim.now)
        self.wq.cq.post_completion(
            cqe, host_delay_ns=self.nic.timing.cqe_dma_ns)
