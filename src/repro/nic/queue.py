"""Work queues and completion queues.

A :class:`WorkQueue` is a circular buffer of WQE slots living in
*simulated host memory* — not a Python list of WR objects. This is what
makes self-modifying RDMA programs real in this reproduction: a CAS or
WRITE that lands on queue memory changes what the NIC will execute,
subject to the same fetch/prefetch hazards as on hardware.

Counter discipline (all counters are WR-granular and **monotonic**,
they never reset when the ring wraps — the ConnectX behaviour that
forces WQ recycling to patch wqe_count fields with ADD verbs, §3.4):

* ``posted_count``   — WRs written into the ring by the host.
* ``enabled_count``  — fetch limit. For a normal queue the host's
  doorbell keeps it equal to ``posted_count``; for a *managed* queue it
  only advances via explicit doorbells or ENABLE verbs, and may exceed
  ``posted_count`` — that is WQ recycling: the NIC wraps around and
  re-executes ring contents without the CPU re-posting anything.
* ``fetched_count`` / ``executed_count`` — consumer progress.

A :class:`CompletionQueue` keeps a monotonic completion *count* (what
WAIT verbs compare against) plus a FIFO of CQEs for host polling and an
event channel for blocking consumers.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, List, Optional, TYPE_CHECKING, Tuple

from .. import obs as _obs
from ..memory.dram import Allocation, HostMemory
from ..sim.core import Event, Simulator
from ..sim.resources import Resource, TokenBucket
from .opcodes import OPCODE_NAMES
from .wqe import WQE_SLOT_SIZE, Wqe

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .qp import QueuePair

__all__ = ["WorkQueue", "CompletionQueue", "Cqe", "DoorbellBatcher",
           "QueueError"]


class QueueError(Exception):
    """Work-queue misuse (overflow, posting to a destroyed queue...)."""


class Cqe:
    """A completion-queue entry as seen by the host."""

    __slots__ = ("wr_id", "opcode", "status", "wq_num", "byte_len",
                 "immediate", "timestamp")

    def __init__(self, wr_id: int, opcode: int, status: str, wq_num: int,
                 byte_len: int = 0, immediate: int = 0, timestamp: int = 0):
        self.wr_id = wr_id
        self.opcode = opcode
        self.status = status
        self.wq_num = wq_num
        self.byte_len = byte_len
        self.immediate = immediate
        self.timestamp = timestamp

    def __repr__(self) -> str:
        name = OPCODE_NAMES.get(self.opcode, f"OP{self.opcode:#x}")
        return (f"<Cqe {name} wr_id={self.wr_id:#x} status={self.status}"
                f" t={self.timestamp}>")

    @property
    def ok(self) -> bool:
        return self.status == "OK"


class CompletionQueue:
    """Monotonic completion counter + pollable CQE FIFO."""

    def __init__(self, sim: Simulator, cq_num: int, name: str = ""):
        self.sim = sim
        self.cq_num = cq_num
        self.name = name or f"cq{cq_num}"
        self.count = 0                      # monotonic, for WAIT verbs
        self._wait_event_name = f"{self.name}-wait"
        self._entries: Deque[Cqe] = deque()  # host-visible CQEs
        self._watchers: List[Tuple[int, Event]] = []
        self._channel_waiters: Deque[Event] = deque()
        # Optional host-side demux (repro.net.conn.CompletionRouter):
        # when attached, host-visible CQEs are handed to the router
        # instead of the FIFO, so one shared CQ fans out to many
        # logical connections. None (the default) leaves the delivery
        # path byte-identical to the unrouted one.
        self._router = None
        self.destroyed = False

    def __repr__(self) -> str:
        return f"<CQ {self.name} count={self.count}>"

    def post_completion(self, cqe: Cqe, host_delay_ns: int = 0) -> None:
        """Record a completion.

        The monotonic counter (what WAIT verbs snoop, inside the NIC)
        bumps immediately; the host-visible CQE appears ``host_delay_ns``
        later, modelling the posted DMA write of the CQE to host memory.
        This split is why completion-ordered chains only pay ~20 ns per
        WAIT (Fig 8) while host pollers see the full CQE DMA latency
        (Fig 7).
        """
        if self.destroyed:
            return
        self.count += 1
        if _obs.enabled:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.cqe(self, cqe, host_delay_ns)
            recorder = self.sim.recorder
            if recorder is not None:
                recorder.on_cqe(self, cqe)
            telemetry = self.sim.telemetry
            if telemetry is not None:
                telemetry.on_cqe(self)
        if self._watchers:
            ready = [(n, ev) for n, ev in self._watchers if self.count >= n]
            if ready:
                self._watchers = [(n, ev) for n, ev in self._watchers
                                  if self.count < n]
                for _n, event in ready:
                    event.trigger(self.count)
        if host_delay_ns > 0:
            self.sim.schedule_at(self.sim.now + host_delay_ns,
                                 self._deliver_to_host, cqe)
        else:
            self._deliver_to_host(cqe)

    def _deliver_to_host(self, cqe: Cqe) -> None:
        if self.destroyed:
            return
        if self._router is not None:
            self._router.route(cqe, self)
            return
        self._entries.append(cqe)
        if self._channel_waiters:
            self._channel_waiters.popleft().trigger(None)

    def attach_router(self, router) -> None:
        """Divert host-visible CQEs to a demux router.

        With a router attached, :meth:`poll`/:meth:`wait_for_event`
        never see CQEs — the router owns consumption and fans entries
        out to per-connection inboxes (see
        :class:`repro.net.conn.CompletionRouter`). WAIT-verb watchers
        are unaffected: they key on the monotonic ``count``, which
        bumps before delivery either way. One CQ may only feed one
        router at a time.
        """
        if self._router is not None and self._router is not router:
            raise QueueError(f"{self!r} already has a router attached")
        self._router = router

    def detach_router(self) -> None:
        self._router = None

    def wait_for_count(self, threshold: int) -> Event:
        """Event triggering once ``count >= threshold`` (WAIT verb hook)."""
        event = Event(self.sim, self._wait_event_name)
        if self.count >= threshold:
            event.trigger(self.count)
        else:
            self._watchers.append((threshold, event))
        return event

    def poll(self) -> Optional[Cqe]:
        """Non-blocking poll: pop the oldest unconsumed CQE, if any."""
        if self._entries:
            return self._entries.popleft()
        return None

    def wait_for_event(self) -> Event:
        """Blocking notification channel (event-based completion, §5.2.2).

        Triggers when a CQE is available (immediately if one is already
        queued). The caller still consumes CQEs via :meth:`poll`.
        """
        event = self.sim.event(name=f"{self.name}-channel")
        if self._entries:
            event.trigger(None)
        else:
            self._channel_waiters.append(event)
        return event

    def destroy(self) -> None:
        self.destroyed = True


class WorkQueue:
    """A send or receive queue: a WQE ring in simulated host memory."""

    _KINDS = ("send", "recv")

    def __init__(self, sim: Simulator, memory: HostMemory, wq_num: int,
                 kind: str, num_slots: int, cq: CompletionQueue,
                 managed: bool = False, owner: str = "kernel",
                 name: str = ""):
        if kind not in self._KINDS:
            raise QueueError(f"bad queue kind {kind!r}")
        if num_slots < 1:
            raise QueueError("queue needs at least one slot")
        self.sim = sim
        self.memory = memory
        self.wq_num = wq_num
        self.kind = kind
        self.num_slots = num_slots
        self.cq = cq
        self.managed = managed
        self.name = name or f"wq{wq_num}"
        self.ring: Allocation = memory.alloc(
            num_slots * WQE_SLOT_SIZE, owner=owner,
            label=f"{self.name}-ring", align=WQE_SLOT_SIZE)
        self.qp: Optional["QueuePair"] = None

        # Decoded-WQE cache. Each fetch decodes the slot bytes the NIC
        # snapshots over PCIe; since most slots are written once and
        # fetched many times (recycled queues re-execute ring contents
        # verbatim), the decode is cached keyed on the slots' write
        # generations. A generation bump — any DRAM store into the slot,
        # from host or verb — invalidates exactly like a real store
        # racing the NIC's fetch engine would produce fresh bytes.
        self._ring_gens = memory.register_generation_range(
            self.ring.addr, self.ring.size, granularity=WQE_SLOT_SIZE)
        self._decode_cache: Dict[int, Tuple[Tuple[int, ...], Wqe, int]] = {}

        # Producer side (WR granularity, monotonic).
        self.posted_count = 0
        self._post_slot_cursor = 0           # slot-granular producer cursor
        # Fetch limit (monotonic). Normal queues: kept equal to
        # posted_count by post-time doorbells.
        self.enabled_count = 0
        # Consumer side.
        self.fetched_count = 0
        self._fetch_slot_cursor = 0
        self.executed_count = 0

        self.rate_limiter: Optional[TokenBucket] = None
        self.destroyed = False
        self._work_event_name = f"{self.name}-work"
        self._recv_event_name = f"{self.name}-recv-avail"
        self._work_events: List[Event] = []
        # Serializes inbound SEND consumption for recv queues.
        self.consume_lock = Resource(sim, 1, name=f"{self.name}-consume")
        self._recv_waiters: Deque[Event] = deque()

        # Observability only: whether the last read_wqe_at_cursor was
        # served from the decode cache (read by the tracer's fetch hook).
        self._last_decode_cached = False

        # PU assignment happens when the owning RNIC adopts the queue.
        self.pu_index: Optional[int] = None
        self.port_index: int = 0
        # Host doorbells are MMIO writes and take this long to reach
        # the device; set by the adopting RNIC from its timing model.
        self.doorbell_delay_ns: int = 0
        # Per-entry cost of a coalesced multi-WQE doorbell (also set by
        # the adopting RNIC); only a DoorbellBatcher flush charges it.
        self.doorbell_batch_entry_ns: int = 0

    def __repr__(self) -> str:
        return (f"<WQ {self.name} {self.kind} posted={self.posted_count} "
                f"enabled={self.enabled_count} exec={self.executed_count}"
                f"{' managed' if self.managed else ''}>")

    # -- geometry ---------------------------------------------------------

    def slot_addr(self, slot_cursor: int) -> int:
        """Host address of a (monotonic) slot cursor, ring-wrapped."""
        return self.ring.addr + (slot_cursor % self.num_slots) * WQE_SLOT_SIZE

    @property
    def ring_addr(self) -> int:
        return self.ring.addr

    @property
    def free_slots(self) -> int:
        consumed_slots = self._fetch_slot_cursor
        return self.num_slots - (self._post_slot_cursor - consumed_slots)

    def slot_gens(self, slot_cursor: int, slots: int) -> Tuple[int, ...]:
        """Write-generation snapshot of ``slots`` slots at ``slot_cursor``.

        Observability helper (repro.obs race inspector): reads counters
        only, never touches simulated state or time.
        """
        gens = self._ring_gens.gens
        ring_slots = self.num_slots
        return tuple(gens[(slot_cursor + offset) % ring_slots]
                     for offset in range(slots))

    def slot_state(self, slot_cursor: int,
                   slots: int) -> Tuple[Tuple[int, ...], bytes]:
        """(generations, raw bytes) of a WQE's slots — same helper."""
        tail = min(slots, self.num_slots - slot_cursor % self.num_slots)
        data = self.memory.read(self.slot_addr(slot_cursor),
                                tail * WQE_SLOT_SIZE)
        if tail < slots:
            data += self.memory.read(self.ring.addr,
                                     (slots - tail) * WQE_SLOT_SIZE)
        return self.slot_gens(slot_cursor, slots), data

    # -- producer (host) API ----------------------------------------------

    def post(self, wqe: Wqe, ring_doorbell: Optional[bool] = None) -> int:
        """Write a WQE into the ring; returns its WR index.

        ``ring_doorbell`` defaults to True for normal queues and False
        for managed queues (the paper's "managed flag [...] disables the
        driver from issuing doorbells after a WR is posted", §5).
        """
        if self.destroyed:
            raise QueueError(f"post to destroyed {self!r}")
        data = wqe.encode()
        slots = len(data) // WQE_SLOT_SIZE
        if slots > self.num_slots:
            raise QueueError(f"WQE of {slots} slots exceeds ring size")
        cursor = self._post_slot_cursor
        if slots > self.num_slots - (cursor - self._fetch_slot_cursor):
            raise QueueError(
                f"{self!r} overflow: {slots}-slot WQE but only "
                f"{self.free_slots} slots free")
        slot_index = cursor % self.num_slots
        tail = min(slots, self.num_slots - slot_index)
        view = memoryview(data)
        self.memory.write(self.ring.addr + slot_index * WQE_SLOT_SIZE,
                          view[:tail * WQE_SLOT_SIZE])
        if tail < slots:
            # The WQE wraps the ring edge: one more write for the head.
            self.memory.write(self.ring.addr, view[tail * WQE_SLOT_SIZE:])
        self._post_slot_cursor = cursor + slots
        wr_index = self.posted_count
        self.posted_count += 1
        if _obs.enabled:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.wqe_posted(self, wr_index, cursor, slots, wqe)
            recorder = self.sim.recorder
            if recorder is not None:
                recorder.on_post(self, wr_index, cursor, slots, wqe)
            telemetry = self.sim.telemetry
            if telemetry is not None:
                telemetry.on_post(self)
        if ring_doorbell is None:
            ring_doorbell = not self.managed
        if ring_doorbell:
            self.doorbell()
        return wr_index

    def doorbell(self, up_to: Optional[int] = None,
                 extra_delay_ns: int = 0) -> None:
        """Host doorbell: raise the fetch limit (default: all posted).

        The raise lands after the doorbell MMIO propagation delay —
        part of every verb's base latency in Fig 7. ``extra_delay_ns``
        adds on top of it; a :class:`DoorbellBatcher` uses it to price
        the per-entry cost of a coalesced multi-WQE ring write
        (:meth:`repro.nic.timing.TimingModel.doorbell_batch_ns`). The
        default of 0 keeps the unbatched path timing-identical.
        """
        target = self.posted_count if up_to is None else up_to
        if _obs.enabled:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.doorbell(self, target)
            recorder = self.sim.recorder
            if recorder is not None:
                recorder.on_doorbell(self, target)
            telemetry = self.sim.telemetry
            if telemetry is not None:
                telemetry.on_doorbell(self)
        delay = self.doorbell_delay_ns + extra_delay_ns
        if delay > 0:
            self.sim.schedule_at(self.sim.now + delay,
                                 self._raise_enabled, target)
        else:
            self._raise_enabled(target)

    def enable(self, value: int, relative: bool = False) -> None:
        """ENABLE verb entry point: raise the fetch limit from the NIC."""
        target = self.enabled_count + value if relative else value
        self._raise_enabled(target)

    def _raise_enabled(self, target: int) -> None:
        if target > self.enabled_count:
            self.enabled_count = target
            self._wake()
            self._wake_recv_waiters()

    # -- consumer (NIC) API -------------------------------------------------

    @property
    def fetchable(self) -> int:
        """WRs the NIC may fetch right now."""
        limit = self.enabled_count
        if not self.managed:
            limit = min(limit, self.posted_count)
        return max(0, limit - self.fetched_count)

    def work_available(self) -> Event:
        """Event that triggers when at least one WR becomes fetchable."""
        event = Event(self.sim, self._work_event_name)
        if self.fetchable > 0 or self.destroyed:
            event.trigger(None)
        else:
            self._work_events.append(event)
        return event

    def _wake(self) -> None:
        events, self._work_events = self._work_events, []
        for event in events:
            event.trigger(None)

    def read_wqe_at_cursor(self) -> Tuple[Wqe, int]:
        """Read the WQE at the fetch cursor from host memory.

        Returns (wqe, slots). Does not advance the cursor — the caller
        advances after modelling the DMA delay so that racing writes to
        queue memory behave like they do on hardware.

        Decodes are cached per ring slot, keyed on the involved slots'
        write generations: the cache only ever returns a decode of byte
        content identical to what a fresh fetch would DMA, so §3.1
        fetch/prefetch incoherence semantics are untouched (any store
        into the slots produces a fresh decode).
        """
        ring_slots = self.num_slots
        slot_index = self._fetch_slot_cursor % ring_slots
        gens = self._ring_gens.gens
        cached = self._decode_cache.get(slot_index)
        if cached is not None:
            snapshot, wqe, wqe_slots = cached
            # Single-slot WQEs (the overwhelming majority) key on a bare
            # generation int; multi-slot WQEs carry a tuple.
            if wqe_slots == 1:
                if gens[slot_index] == snapshot:
                    if _obs.enabled:
                        self._last_decode_cached = True
                    return wqe, 1
            else:
                index = slot_index
                for gen in snapshot:
                    if gens[index] != gen:
                        break
                    index += 1
                    if index == ring_slots:
                        index = 0
                else:
                    if _obs.enabled:
                        self._last_decode_cached = True
                    return wqe, wqe_slots
        if _obs.enabled:
            self._last_decode_cached = False
        memory = self.memory
        header_addr = self.ring.addr + slot_index * WQE_SLOT_SIZE
        header = memory.view(header_addr, WQE_SLOT_SIZE)
        wqe_slots = max(1, header[54])  # num_slots field, pre-decode peek
        if wqe_slots == 1:
            wqe = Wqe.decode(header)
            self._decode_cache[slot_index] = (gens[slot_index], wqe, 1)
            return wqe, 1
        if slot_index + wqe_slots <= ring_slots:
            # Contiguous in the ring: decode straight off DRAM.
            wqe = Wqe.decode(
                memory.view(header_addr, wqe_slots * WQE_SLOT_SIZE))
            snapshot = tuple(
                gens[slot_index:slot_index + wqe_slots])
        else:
            # Wraps the ring edge (at most once: a WQE never exceeds the
            # ring): two coalesced region reads replace the per-slot
            # loop — tail of the ring, then the wrapped head.
            tail_slots = ring_slots - slot_index
            head_slots = wqe_slots - tail_slots
            buf = bytearray(
                memory.view(header_addr, tail_slots * WQE_SLOT_SIZE))
            buf += memory.view(self.ring.addr,
                               head_slots * WQE_SLOT_SIZE)
            wqe = Wqe.decode(buf)
            snapshot = tuple(
                gens[(slot_index + offset) % ring_slots]
                for offset in range(wqe_slots))
        self._decode_cache[slot_index] = (snapshot, wqe, wqe_slots)
        return wqe, wqe_slots

    def advance_fetch(self, slots: int) -> None:
        self._fetch_slot_cursor += slots
        self.fetched_count += 1

    # -- recv-queue consumption (inbound SEND path) -------------------------

    @property
    def consumable_recvs(self) -> int:
        limit = self.enabled_count
        if not self.managed:
            limit = min(limit, self.posted_count)
        return max(0, limit - self.fetched_count)

    def recv_available(self) -> Event:
        """Event for an inbound SEND waiting for a consumable RECV."""
        event = Event(self.sim, self._recv_event_name)
        if self.consumable_recvs > 0 or self.destroyed:
            event.trigger(None)
        else:
            self._recv_waiters.append(event)
        return event

    def _wake_recv_waiters(self) -> None:
        while self._recv_waiters and self.consumable_recvs > 0:
            self._recv_waiters.popleft().trigger(None)

    # -- lifecycle ----------------------------------------------------------

    def set_rate_limit(self, ops_per_sec: float, burst: float = 32) -> None:
        """Attach a WQ rate limiter (paper §3.5, isolation)."""
        self.rate_limiter = TokenBucket(
            self.sim, ops_per_sec, burst, name=f"{self.name}-rl")

    def destroy(self) -> None:
        """Tear the queue down (process death without a hull parent)."""
        self.destroyed = True
        self._wake()
        self._wake_recv_waiters()


class DoorbellBatcher:
    """Coalesce N posted WQEs into one doorbell ring write.

    On real hardware every doorbell is an MMIO write that crosses the
    host bridge; drivers amortize it by writing several WQEs and
    ringing once (the multi-WQE doorbell / BlueFlame idiom, and the
    ring-buffer controller pattern in blue-rdma). This class is that
    driver-side accumulator for one :class:`WorkQueue`:

    * :meth:`post` writes the WQE into the ring with the doorbell
      suppressed (``ring_doorbell=False``) and counts it pending.
    * A flush rings **one** doorbell covering every pending WQE, priced
      at ``doorbell_ns + (N-1) * doorbell_batch_entry_ns`` (see
      :meth:`repro.nic.timing.TimingModel.doorbell_batch_ns`).

    Flush boundaries, any of:

    * **explicit** — the caller invokes :meth:`flush` (e.g. at the end
      of a request's WR burst);
    * **batch-size cap** — ``max_batch`` pending WQEs force a flush
      from inside :meth:`post`;
    * **simulated-time deadline** — when ``deadline_ns`` is given, the
      first post of a batch schedules a flush ``deadline_ns`` later, so
      a lone WQE is never stranded unrung. A flush that happens first
      invalidates the pending deadline (stale-token discipline); the
      scheduled callback still fires and no-ops.

    The batcher never reorders: WQEs execute in ring order exactly as
    posted, and a flush enables everything posted so far. A dormant
    batcher (never constructed) leaves the post/doorbell path
    byte- and timing-identical — all batching state lives here, not in
    the queue.
    """

    __slots__ = ("wq", "max_batch", "deadline_ns", "pending", "flushes",
                 "coalesced", "blame", "_hold_since", "_deadline_token")

    def __init__(self, wq: WorkQueue, max_batch: int = 16,
                 deadline_ns: Optional[int] = None):
        if max_batch < 1:
            raise QueueError("max_batch must be at least 1")
        if deadline_ns is not None and deadline_ns <= 0:
            raise QueueError("deadline_ns must be positive when given")
        self.wq = wq
        self.max_batch = max_batch
        self.deadline_ns = deadline_ns
        self.pending = 0          # WQEs posted but not yet rung
        self.flushes = 0          # doorbells actually rung
        self.coalesced = 0        # WQEs covered by those doorbells
        #: Optional blame context (repro.obs.blame.RequestBlame) the
        #: next flush charges its hold window + batch surcharge to.
        self.blame = None
        self._hold_since = 0      # first suppressed post of the batch
        self._deadline_token: Optional[object] = None

    def __repr__(self) -> str:
        return (f"<DoorbellBatcher {self.wq.name} pending={self.pending} "
                f"flushes={self.flushes} coalesced={self.coalesced}>")

    def post(self, wqe: Wqe) -> int:
        """Post with the doorbell suppressed; returns the WR index."""
        wr_index = self.wq.post(wqe, ring_doorbell=False)
        self.pending += 1
        if _obs.enabled and self.pending == 1:
            self._hold_since = self.wq.sim.now
        if self.pending >= self.max_batch:
            self.flush()
        elif self.pending == 1 and self.deadline_ns is not None:
            token = object()
            self._deadline_token = token
            self.wq.sim.schedule_at(self.wq.sim.now + self.deadline_ns,
                                    self._deadline_flush, token)
        return wr_index

    def _deadline_flush(self, token: object) -> None:
        if token is self._deadline_token:
            self.flush()

    def flush(self) -> int:
        """Ring one doorbell for everything pending; returns the count."""
        self._deadline_token = None
        count = self.pending
        if count == 0:
            return 0
        self.pending = 0
        self.flushes += 1
        self.coalesced += count
        extra_delay_ns = (count - 1) * self.wq.doorbell_batch_entry_ns
        if _obs.enabled:
            sim = self.wq.sim
            hold_since = self._hold_since or sim.now
            tracer = sim.tracer
            if tracer is not None:
                tracer.doorbell_batch(self.wq, count, hold_since,
                                      extra_delay_ns)
            blame = self.blame
            if blame is not None:
                # Hold window (first suppressed post -> this flush)
                # plus the per-entry surcharge the coalesced ring pays.
                blame.span(hold_since, sim.now + extra_delay_ns,
                           "doorbell_batch", self.wq.name)
        self._hold_since = 0
        self.wq.doorbell(extra_delay_ns=extra_delay_ns)
        return count
