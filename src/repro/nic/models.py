"""RNIC device profiles (paper Table 1).

The paper measures verb-processing bandwidth doubling with each
ConnectX generation, tracking the number of processing units (PUs):

    ConnectX-3 (2014):  2 PUs/port,  15 M verbs/s
    ConnectX-5 (2016):  8 PUs/port,  63 M verbs/s
    ConnectX-6 (2017): 16 PUs/port, 112 M verbs/s

Profiles below scale per-PU occupancy so the aggregate rates match.
ConnectX-4 is included because the paper calls out two of its quirks:
atomics implemented with a proprietary concurrency-control scheme
(higher latency, Fig 7 footnote) and the deprecation of work-request
ownership that broke Hyperloop (§2.2). All profiles since ConnectX-3
support WAIT/ENABLE cross-channel verbs (§4).
"""

from __future__ import annotations

from dataclasses import dataclass

from .timing import CONNECTX5_TIMING, TimingModel

__all__ = [
    "DeviceModel",
    "CONNECTX3",
    "CONNECTX4",
    "CONNECTX5",
    "CONNECTX6",
    "ALL_MODELS",
]


@dataclass(frozen=True)
class DeviceModel:
    """Static description of one RNIC product generation."""

    name: str
    year: int
    pus_per_port: int
    num_ports: int
    timing: TimingModel
    supports_wait_enable: bool = True
    supports_calc_verbs: bool = True     # Mellanox-only MAX/MIN (§3.5)
    atomics_via_pcie: bool = True        # False: proprietary scheme (CX-4)

    def scaled_timing(self) -> TimingModel:
        return self.timing


def _gen_timing(write_occ_ns: int, base: TimingModel,
                pus_per_port: int = 8,
                atomic_extra_ns: int = 0) -> TimingModel:
    """Scale per-verb PU occupancy relative to the ConnectX-5 baseline.

    The WQE-fetch engine grows with the PU array (otherwise it would
    cap ConnectX-6 below its measured 112 M verbs/s).
    """
    factor = write_occ_ns / base.pu_occupancy_ns[3]  # WRITE opcode == 3
    occupancy = {op: max(1, int(ns * factor))
                 for op, ns in base.pu_occupancy_ns.items()}
    return base.with_overrides(
        pu_occupancy_ns=occupancy,
        atomic_pcie_ns=base.atomic_pcie_ns + atomic_extra_ns,
        batch_fetch_hold_per_wqe_ns=max(
            2, base.batch_fetch_hold_per_wqe_ns * 8 // pus_per_port),
    )


# 2 PUs at ~133 ns/verb -> 15 M verbs/s.
CONNECTX3 = DeviceModel(
    name="ConnectX-3", year=2014, pus_per_port=2, num_ports=2,
    timing=_gen_timing(133, CONNECTX5_TIMING, pus_per_port=2),
    supports_calc_verbs=False, atomics_via_pcie=False,
)

# Paper footnote 2: CX-4 atomics use a proprietary concurrency-control
# mechanism with noticeably higher latency than PCIe atomics.
CONNECTX4 = DeviceModel(
    name="ConnectX-4", year=2015, pus_per_port=4, num_ports=2,
    timing=_gen_timing(127, CONNECTX5_TIMING, pus_per_port=4,
                       atomic_extra_ns=400),
    atomics_via_pcie=False,
)

# The evaluation platform: 8 PUs at ~127 ns/verb -> 63 M verbs/s.
CONNECTX5 = DeviceModel(
    name="ConnectX-5", year=2016, pus_per_port=8, num_ports=2,
    timing=CONNECTX5_TIMING,
)

# 16 PUs at ~143 ns/verb -> 112 M verbs/s.
CONNECTX6 = DeviceModel(
    name="ConnectX-6", year=2017, pus_per_port=16, num_ports=2,
    timing=_gen_timing(143, CONNECTX5_TIMING, pus_per_port=16),
)

# The paper's §6 discussion: next-generation Intel RNICs (E810 class)
# are expected to support atomics — enough for conditionals — and a
# per-WQE validity bit can emulate ENABLE, but there is no WAIT
# equivalent, so client-triggered pre-posted chains need an external
# doorbell workaround. RedN therefore cannot deploy on them as-is;
# the repro enforces this at program-construction time.
INTEL_E810 = DeviceModel(
    name="Intel-E810", year=2021, pus_per_port=8, num_ports=2,
    timing=CONNECTX5_TIMING,
    supports_wait_enable=False, supports_calc_verbs=False,
)

ALL_MODELS = (CONNECTX3, CONNECTX4, CONNECTX5, CONNECTX6, INTEL_E810)
