"""RDMA verb opcodes and work-request flags.

Opcode numbering is project-internal (the simulator defines its own
"wire format"), but the *set* of verbs mirrors what the paper uses on
ConnectX NICs:

* data movement — SEND/RECV (two-sided), WRITE/WRITE_IMM/READ (one-sided),
* atomics — CAS (compare-and-swap) and FETCH_ADD ("ADD" in the paper),
* vendor calc verbs — MAX/MIN (§3.5: inequality predicates),
* cross-channel ordering — WAIT and ENABLE (§3.1),
* NOOP — the placeholder that self-modifying CAS verbs rewrite into real
  verbs (Fig 4). NOOP is deliberately opcode 0 so that zero-filled queue
  memory decodes as a harmless no-op.
"""

from __future__ import annotations

__all__ = ["Opcode", "WrFlags", "OPCODE_NAMES", "is_copy_verb",
           "is_atomic_verb", "is_ordering_verb"]


class Opcode:
    """Verb opcodes as they appear in the 16-bit ctrl-word field."""

    NOOP = 0x0000
    SEND = 0x0001
    RECV = 0x0002
    WRITE = 0x0003
    WRITE_IMM = 0x0004
    READ = 0x0005
    CAS = 0x0006
    FETCH_ADD = 0x0007
    MAX = 0x0008
    MIN = 0x0009
    WAIT = 0x000A
    ENABLE = 0x000B


OPCODE_NAMES = {
    Opcode.NOOP: "NOOP",
    Opcode.SEND: "SEND",
    Opcode.RECV: "RECV",
    Opcode.WRITE: "WRITE",
    Opcode.WRITE_IMM: "WRITE_IMM",
    Opcode.READ: "READ",
    Opcode.CAS: "CAS",
    Opcode.FETCH_ADD: "FETCH_ADD",
    Opcode.MAX: "MAX",
    Opcode.MIN: "MIN",
    Opcode.WAIT: "WAIT",
    Opcode.ENABLE: "ENABLE",
}

_COPY_VERBS = {Opcode.SEND, Opcode.RECV, Opcode.WRITE, Opcode.WRITE_IMM,
               Opcode.READ}
_ATOMIC_VERBS = {Opcode.CAS, Opcode.FETCH_ADD, Opcode.MAX, Opcode.MIN}
_ORDERING_VERBS = {Opcode.WAIT, Opcode.ENABLE}


def is_copy_verb(opcode: int) -> bool:
    """Copy verbs: the "C" category in the paper's Table 2."""
    return opcode in _COPY_VERBS


def is_atomic_verb(opcode: int) -> bool:
    """Atomic/calc verbs: the "A" category in the paper's Table 2."""
    return opcode in _ATOMIC_VERBS


def is_ordering_verb(opcode: int) -> bool:
    """WAIT/ENABLE: the "E" category in the paper's Table 2."""
    return opcode in _ORDERING_VERBS


class WrFlags:
    """Work-request flag bits (the ``flags`` WQE field).

    SIGNALED
        Generate a CQE on completion. RedN's ``break`` works by a
        self-modifying WRITE *clearing* this bit on the last WR of a
        loop iteration, so the next iteration's WAIT never fires (§3.4).
    FENCE
        Do not start this WR until all previous WRs on the queue have
        completed (data barrier).
    ENABLE_RELATIVE
        For ENABLE only: interpret ``wqe_count`` as an increment to the
        target queue's enabled counter instead of an absolute index.
        Absolute WAIT counters are the reason WQ recycling needs ADD
        verbs (§3.4); relative ENABLEs are what lets a recycled ring
        re-arm itself with a single tail verb.
    """

    NONE = 0x0
    SIGNALED = 0x1
    FENCE = 0x2
    ENABLE_RELATIVE = 0x4
