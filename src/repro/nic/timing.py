"""Calibrated timing model for the simulated RNIC.

Every constant below is derived from the paper's own microbenchmarks on
ConnectX-5 (NSDI '22, §5.1), so higher-level results reproduce the same
cost *structure* the authors measured rather than numbers we invented:

* Fig 7 — single-verb latencies at 64B IO: NOOP 1.21 µs remote /
  ~0.96 µs loopback (network ≈ 0.25 µs RTT), WRITE 1.6 µs (posted PCIe),
  READ/CAS/ADD ≈ 1.8 µs (non-posted PCIe round trip), MAX ≈ 1.85 µs.
* Fig 8 — chain overheads per extra verb: +0.17 µs (WQ order, amortized
  prefetch), +0.19 µs (completion order), +0.54 µs (doorbell order:
  one-by-one WQE fetches, no latency hiding).
* Table 3 — single-port throughput: WRITE 63 M/s, READ 65 M/s across
  8 PUs (≈ 125 ns PU occupancy per verb), CAS 8.4 M/s (serialized on a
  per-port atomic/concurrency-control unit, "memory synchronization
  across PCIe"), MAX 63 M/s.
* Table 4 — hash-lookup bottlenecks: 500 K/s per port at small IO (the
  doorbell-order fetch path saturates the port's WQE-fetch DMA engine),
  92 Gb/s InfiniBand wire limit at 64 KB, and a PCIe 3.0 x16 ceiling
  (~12.6 GB/s) shared by both ports.

Decomposition used to fit Fig 7 (remote NOOP):

    doorbell MMIO (250) + WQE fetch (350) + PU processing (170)
      + CQE DMA write (190) = 960 ns loopback; + network RTT (250)
      = 1210 ns remote.

WRITE adds responder-side RX processing + a posted DMA write
(≈ +390 ns → 1.6 µs); READ and atomics add a non-posted PCIe round trip
on the responder (≈ +590/600 ns → 1.8 µs); calc verbs add a small ALU
term on top.

Large payloads: the paper's "ideal" 64 KB READ is ≈ 15.5 µs, which
matches a *store-and-forward* accumulation of responder PCIe DMA, wire
serialization and initiator PCIe DMA (≈ 5.2 µs each) rather than a
cut-through pipeline; we model it the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from .opcodes import Opcode

__all__ = ["TimingModel", "CONNECTX5_TIMING"]

NS_PER_SEC = 1_000_000_000


@dataclass(frozen=True)
class TimingModel:
    """All latency/occupancy constants, in nanoseconds (or bytes/ns)."""

    # -- host <-> NIC control path ---------------------------------------
    # The doorbell constant is calibrated together with the host's CQE
    # poll-detect time (~100 ns in repro.ibv): their sum is the ~250 ns
    # host-side overhead in Fig 7's decomposition.
    doorbell_ns: int = 150          # MMIO doorbell write reaching the NIC
    # A batched doorbell (repro.nic.queue.DoorbellBatcher) rings once
    # for N posted WQEs. The single MMIO write still costs
    # ``doorbell_ns``; each WQE beyond the first adds the cost of the
    # device parsing one more producer-index increment out of the
    # coalesced write (the BlueFlame/multi-WQE doorbell idiom). Batched
    # and unbatched drives are therefore timing-visibly different —
    # N*doorbell_ns vs doorbell_ns + (N-1)*entry — while both stay
    # fingerprint-deterministic.
    doorbell_batch_entry_ns: int = 12
    wqe_fetch_ns: int = 350         # non-posted DMA read of WQE bytes
    prefetch_batch: int = 32        # WQEs fetched per DMA in normal mode
                                    # (ConnectX prefetch depth is
                                    # proprietary; 32 reproduces Fig 8's
                                    # WQ/completion-order slopes)
    cqe_dma_ns: int = 190           # posted DMA write of a CQE to host
    wait_check_ns: int = 20         # WAIT bookkeeping when re-armed
    enable_ns: int = 20             # ENABLE bookkeeping

    # -- PU occupancy per verb (drives Table 3 throughput) ---------------
    pu_occupancy_ns: Dict[int, int] = field(default_factory=lambda: {
        Opcode.NOOP: 170,
        Opcode.SEND: 127,
        Opcode.RECV: 127,
        Opcode.WRITE: 127,
        Opcode.WRITE_IMM: 127,
        Opcode.READ: 123,
        Opcode.CAS: 100,
        Opcode.FETCH_ADD: 100,
        Opcode.MAX: 127,
        Opcode.MIN: 127,
        Opcode.WAIT: 20,
        Opcode.ENABLE: 20,
    })

    # -- responder-side costs (fit Fig 7 absolute latencies) -------------
    rx_process_ns: int = 190        # inbound packet processing
    dma_posted_ns: int = 200        # posted PCIe write (WRITE payload)
    dma_nonposted_ns: int = 430     # non-posted PCIe round trip (READ)
    atomic_unit_ns: int = 119       # per-port atomic serialization
                                    # (1/119ns = 8.4 M CAS/s, Table 3)
    atomic_pcie_ns: int = 460       # PCIe atomic transaction round trip
    calc_alu_ns: int = 50           # extra ALU time for MAX/MIN

    # -- fabric -----------------------------------------------------------
    network_one_way_ns: int = 125   # back-to-back IB link (0.25 µs RTT)
    wire_bytes_per_ns: float = 11.5   # ~92 Gb/s effective IB goodput
    pcie_bytes_per_ns: float = 12.6   # PCIe 3.0 x16, shared by both ports
    wire_mtu_overhead_ns: int = 0   # per-packet overhead beyond base

    # -- WQE fetch engine (drives Table 3/4 throughput ceilings) ----------
    # A managed (doorbell-ordered) fetch is a small *dependent* DMA: the
    # NIC holds a fetch context for the full transaction plus the CQE
    # write-back it forces, so concurrent doorbell-ordered chains
    # serialize on the port engine for ``managed_fetch_hold_ns`` each.
    # Batched prefetches pipeline deeply and only charge a per-WQE issue
    # cost. These two constants reproduce the paper's construct
    # throughputs (if 0.7 M/s, recycled while 0.3 M/s, hash lookups
    # 500 K/s per port) while leaving plain verb floods PU-bound.
    # Fig 8's 0.54 µs/verb doorbell-order overhead emerges as
    # max(hold, fetch latency + occupancy + completion) per step. Data
    # verbs hold the engine past the fetch for their completion
    # writeback; WAIT/ENABLE WQEs are recognized at fetch time and
    # release immediately. These two values reproduce the paper's
    # construct throughputs simultaneously: triggered if-chains at
    # ~0.7 M/s, recycled while rings at ~0.3 M/s, and hash lookups at
    # ~500 K/s per port (Tables 3 and 4).
    managed_fetch_hold_ns: int = 550     # engine serialization per
                                         # data-verb WQE fetch + writeback
    batch_fetch_hold_per_wqe_ns: int = 12  # per-WQE share of a batched fetch

    def payload_wire_ns(self, length: int) -> int:
        """Serialization time of ``length`` bytes on the IB wire."""
        if length <= 0:
            return 0
        return int(length / self.wire_bytes_per_ns)

    def payload_pcie_ns(self, length: int) -> int:
        """DMA time of ``length`` bytes across PCIe."""
        if length <= 0:
            return 0
        return int(length / self.pcie_bytes_per_ns)

    def doorbell_batch_ns(self, count: int) -> int:
        """Latency of one doorbell ring covering ``count`` WQEs.

        ``count <= 1`` degenerates to the plain ``doorbell_ns`` — a
        batcher flushing a single WQE is byte- and timing-identical to
        an unbatched post.
        """
        if count <= 1:
            return self.doorbell_ns
        return self.doorbell_ns + (count - 1) * self.doorbell_batch_entry_ns

    def occupancy(self, opcode: int) -> int:
        """PU processing occupancy for a verb."""
        return self.pu_occupancy_ns.get(opcode, 170)

    def with_overrides(self, **kwargs) -> "TimingModel":
        """A copy with some constants replaced (for ablation studies)."""
        return replace(self, **kwargs)


#: The default, paper-calibrated ConnectX-5 model.
CONNECTX5_TIMING = TimingModel()
