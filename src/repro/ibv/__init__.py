"""libibverbs-flavoured host API: WR builders + a verbs context."""

from .api import VerbsContext, VerbsError
from .wr import (
    wr_calc,
    wr_cas,
    wr_enable,
    wr_fetch_add,
    wr_noop,
    wr_read,
    wr_recv,
    wr_send,
    wr_wait,
    wr_write,
    wr_write_imm,
)

__all__ = [
    "VerbsContext",
    "VerbsError",
    "wr_calc",
    "wr_cas",
    "wr_enable",
    "wr_fetch_add",
    "wr_noop",
    "wr_read",
    "wr_recv",
    "wr_send",
    "wr_wait",
    "wr_write",
    "wr_write_imm",
]
