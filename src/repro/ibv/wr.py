"""Work-request builder helpers.

Thin constructors that turn "I want an RDMA WRITE of these bytes" into
a correctly-populated :class:`~repro.nic.wqe.Wqe`. They keep benchmark
and application code close to how libibverbs consumers read, and they
are the only place where default flags (SIGNALED on host-issued verbs)
are decided.
"""

from __future__ import annotations

from typing import List, Optional

from ..memory.region import MemoryRegion
from ..nic.opcodes import Opcode, WrFlags
from ..nic.wqe import Sge, Wqe

__all__ = [
    "wr_write",
    "wr_write_imm",
    "wr_read",
    "wr_send",
    "wr_recv",
    "wr_cas",
    "wr_fetch_add",
    "wr_calc",
    "wr_noop",
    "wr_wait",
    "wr_enable",
]


def _flags(signaled: bool, extra: int = 0) -> int:
    return (WrFlags.SIGNALED if signaled else 0) | extra


def _addr(value) -> int:
    """Accept raw integers or symbolic addresses (anything with an
    ``addr`` attribute, e.g. an Allocation or a redn IR FieldRef)."""
    return value if isinstance(value, int) else value.addr


def wr_write(laddr: int, length: int, raddr: int, rkey: int,
             wr_id: int = 0, signaled: bool = True) -> Wqe:
    """One-sided RDMA WRITE: local [laddr, laddr+length) -> remote raddr."""
    return Wqe(opcode=Opcode.WRITE, wr_id=wr_id, laddr=_addr(laddr),
               length=length, raddr=_addr(raddr), rkey=rkey,
               flags=_flags(signaled))


def wr_write_imm(laddr: int, length: int, raddr: int, rkey: int,
                 immediate: int, wr_id: int = 0,
                 signaled: bool = True) -> Wqe:
    """WRITE_IMM: like WRITE but consumes a remote RECV to deliver imm."""
    return Wqe(opcode=Opcode.WRITE_IMM, wr_id=wr_id, laddr=laddr,
               length=length, raddr=raddr, rkey=rkey,
               operand0=immediate, flags=_flags(signaled))


def wr_read(laddr: int, length: int, raddr: int, rkey: int,
            wr_id: int = 0, signaled: bool = True,
            sges: Optional[List[Sge]] = None) -> Wqe:
    """One-sided RDMA READ; response scatters to ``sges`` if given."""
    return Wqe(opcode=Opcode.READ, wr_id=wr_id, laddr=_addr(laddr),
               length=length, raddr=_addr(raddr), rkey=rkey,
               flags=_flags(signaled), sges=sges)


def wr_send(laddr: int, length: int, wr_id: int = 0,
            signaled: bool = True) -> Wqe:
    """Two-sided SEND of local bytes; lands in the peer's next RECV."""
    return Wqe(opcode=Opcode.SEND, wr_id=wr_id, laddr=laddr,
               length=length, flags=_flags(signaled))


def wr_recv(laddr: int = 0, length: int = 0, wr_id: int = 0,
            sges: Optional[List[Sge]] = None) -> Wqe:
    """A RECV sink: a single buffer or a scatter list (max 16 SGEs)."""
    return Wqe(opcode=Opcode.RECV, wr_id=wr_id, laddr=laddr,
               length=length, sges=sges)


def wr_cas(raddr: int, rkey: int, compare: int, swap: int,
           result_laddr: int = 0, wr_id: int = 0,
           signaled: bool = True) -> Wqe:
    """64-bit compare-and-swap on remote memory; original -> laddr."""
    return Wqe(opcode=Opcode.CAS, wr_id=wr_id, laddr=_addr(result_laddr),
               raddr=_addr(raddr), rkey=rkey, operand0=compare,
               operand1=swap, length=8, flags=_flags(signaled))


def wr_fetch_add(raddr: int, rkey: int, delta: int,
                 result_laddr: int = 0, wr_id: int = 0,
                 signaled: bool = True) -> Wqe:
    """64-bit fetch-and-add (the paper's "ADD" verb)."""
    return Wqe(opcode=Opcode.FETCH_ADD, wr_id=wr_id,
               laddr=_addr(result_laddr), raddr=_addr(raddr), rkey=rkey,
               operand0=delta, length=8, flags=_flags(signaled))


def wr_calc(opcode: int, raddr: int, rkey: int, operand: int,
            result_laddr: int = 0, wr_id: int = 0,
            signaled: bool = True) -> Wqe:
    """Mellanox calc verb (MAX/MIN) on a remote u64 (§3.5)."""
    if opcode not in (Opcode.MAX, Opcode.MIN):
        raise ValueError(f"not a calc opcode: {opcode:#x}")
    return Wqe(opcode=opcode, wr_id=wr_id, laddr=result_laddr,
               raddr=raddr, rkey=rkey, operand0=operand, length=8,
               flags=_flags(signaled))


def wr_noop(wr_id: int = 0, signaled: bool = False) -> Wqe:
    """NOOP placeholder — the raw material of self-modifying chains."""
    return Wqe(opcode=Opcode.NOOP, wr_id=wr_id, flags=_flags(signaled))


def wr_wait(cq_num: int, count: int, wr_id: int = 0,
            signaled: bool = False) -> Wqe:
    """WAIT until CQ ``cq_num`` has seen ``count`` total completions."""
    return Wqe(opcode=Opcode.WAIT, wr_id=wr_id, target=cq_num,
               wqe_count=count, flags=_flags(signaled))


def wr_enable(wq_num: int, count: int, relative: bool = False,
              wr_id: int = 0, signaled: bool = False) -> Wqe:
    """ENABLE WQ ``wq_num`` up to index ``count`` (or by +count)."""
    extra = WrFlags.ENABLE_RELATIVE if relative else 0
    return Wqe(opcode=Opcode.ENABLE, wr_id=wr_id, target=wq_num,
               wqe_count=count, flags=_flags(signaled, extra))
