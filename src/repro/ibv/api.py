"""Host-software verbs interface.

:class:`VerbsContext` is what host code (clients, RPC servers, the
benchmark harness) uses to talk to the NIC. Besides forwarding posts to
the queues, it charges the *software* costs that separate the baselines
in the paper's figures:

* ``post_overhead_ns`` — building a WQE, writing it to the ring and
  ringing the doorbell costs CPU time on every verb issued by software.
  RedN pays it once at setup; one-sided clients pay it per READ — part
  of why a 2-RTT one-sided *get* is ~2× a 1-RTT offloaded one (§5.2).
* ``poll_detect_ns`` — a busy-polling consumer sees a CQE shortly after
  its DMA lands (cheap, but burns a core).
* event-mode completions go through the CPU scheduler's blocking
  wake-up path, whose cost makes event-based RPC the slowest baseline
  in Fig 10.

All methods that consume simulated time are generators to be driven
inside simulation processes.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..nic.qp import QueuePair
from ..nic.queue import CompletionQueue, Cqe
from ..nic.wqe import Wqe
from ..sim.core import Simulator
from ..net.cpu import CpuScheduler

__all__ = ["VerbsContext", "VerbsError"]


class VerbsError(Exception):
    """Host-level verbs failure (error CQE on a synchronous op)."""


class VerbsContext:
    """Per-consumer verbs handle with calibrated software costs."""

    def __init__(self, sim: Simulator, cpu: Optional[CpuScheduler] = None,
                 post_overhead_ns: int = 300, poll_detect_ns: int = 100,
                 name: str = "verbs"):
        self.sim = sim
        self.cpu = cpu
        self.post_overhead_ns = post_overhead_ns
        self.poll_detect_ns = poll_detect_ns
        self.name = name

    # -- posting ------------------------------------------------------------

    def post_send(self, qp: QueuePair, wqe: Wqe,
                  ring_doorbell: Optional[bool] = None) -> Generator:
        """Post a send WR, paying the software posting cost."""
        if self.post_overhead_ns:
            yield self.sim.timeout(self.post_overhead_ns)
        qp.post_send(wqe, ring_doorbell=ring_doorbell)

    def post_recv(self, qp: QueuePair, wqe: Wqe) -> Generator:
        if self.post_overhead_ns:
            yield self.sim.timeout(self.post_overhead_ns)
        qp.post_recv(wqe)

    # -- completion consumption ------------------------------------------------

    def poll(self, cq: CompletionQueue) -> Generator:
        """Busy-poll until a CQE is available; returns it.

        Models a dedicated polling loop: the CQE is noticed
        ``poll_detect_ns`` after its DMA reaches host memory.
        """
        while True:
            cqe = cq.poll()
            if cqe is not None:
                if self.poll_detect_ns:
                    yield self.sim.timeout(self.poll_detect_ns)
                return cqe
            yield cq.wait_for_event()

    def poll_blocking(self, cq: CompletionQueue) -> Generator:
        """Event-channel completion: sleep, pay wake-up, then reap."""
        if self.cpu is None:
            raise VerbsError("blocking poll needs a CPU scheduler")
        while True:
            cqe = cq.poll()
            if cqe is not None:
                return cqe
            yield from self.cpu.block_on(cq.wait_for_event())

    # -- synchronous convenience ---------------------------------------------

    def execute_sync(self, qp: QueuePair, wqe: Wqe) -> Generator:
        """Post one signaled WR and busy-poll its completion."""
        yield from self.post_send(qp, wqe)
        cqe = yield from self.poll(qp.send_wq.cq)
        return cqe

    def execute_sync_checked(self, qp: QueuePair, wqe: Wqe) -> Generator:
        cqe = yield from self.execute_sync(qp, wqe)
        if not cqe.ok:
            raise VerbsError(f"verb failed: {cqe!r}")
        return cqe
