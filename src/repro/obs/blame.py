"""Tail-blame attribution: cross-shard causal paths for the fleet.

The critical-path profiler (:mod:`repro.obs.critpath`) attributes every
nanosecond of a request — but only within one bed. The fleet's p99
lives exactly where that view ends: QP-pool lease queues, doorbell
batch hold windows, synchronizer link hops, and the shared-CQ demux.
This module closes the gap with a **live causal context**
(:class:`RequestBlame`) that a fleet request carries across shards:

* the client creates one context per request (behind the zero-cost
  ``repro.obs.enabled`` flag, only when exemplar capture is on);
* the connection plane records typed spans into it — ``pool_wait``
  from :meth:`repro.net.conn.QpPool.acquire`, ``doorbell_batch`` from
  :class:`repro.nic.queue.DoorbellBatcher`, ``cqe_demux`` from
  :class:`repro.net.conn.CompletionRouter` — and cross-shard hops ride
  the :class:`~repro.sim.sharded.ShardFabric` payload itself, so one
  remote get yields **one** causal path spanning beds (``link_wire``
  both ways plus the owner gateway's ``gw_wait`` dequeue delay);
* at completion the context runs the same priority sweep the critical
  path profiler uses (:func:`repro.obs.critpath.attribute_spans`), so
  per-phase durations **sum exactly** to the end-to-end latency.

Every timestamp is simulated time, which both
:meth:`~repro.sim.sharded.ShardedSimulation.run` drives agree on
bit-for-bit, so blame output — like the telemetry stream it rides in —
is byte-identical between the sharded and serial drives.

Why causal edges and not CQE order: completion order is not causal
order ("The Semantic Arrow of Time" in PAPERS.md) — a CQE that
surfaces late because it sat in a doorbell batch or behind a lease
queue would blame the *completion*, not the *cause*. The context
records the enabling edge (the wait, the hold, the hop) at the site
that created it, which is what makes the per-(shard, queue, phase)
rollup actionable for the adaptive router (ROADMAP item 5).

On top of the per-request records sit the aggregation helpers the
``tools/tail_blame.py`` CLI renders: :func:`blame_table` (the
per-(shard, queue, phase) decomposition), :func:`summarize_blame`
(per-phase means over the tail exemplars), :func:`folded_blame`
(flamegraph folded stacks), :func:`diff_blame` (regression
attribution between two summaries) and :func:`blame_registries`
(labeled OpenMetrics counters).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .critpath import attribute_spans

__all__ = [
    "BLAME_PHASES",
    "RequestBlame",
    "blame_table",
    "summarize_blame",
    "folded_blame",
    "diff_blame",
    "blame_registries",
    "exemplar_order",
    "exemplars_of",
]

#: The blame taxonomy, in attribution-priority order (highest first).
#: A nanosecond inside both a ``pool_wait`` and the enclosing
#: ``service`` span counts as ``pool_wait`` — the queue, not the
#: server, is the bottleneck there. ``queueing`` is the gap filler.
BLAME_PHASES = ("pool_wait", "doorbell_batch", "cqe_demux", "link_wire",
                "gw_wait", "offload_exec", "service", "queueing")

_PRIORITY = {phase: len(BLAME_PHASES) - index
             for index, phase in enumerate(BLAME_PHASES)}

_PHASE_INDEX = {phase: index for index, phase in enumerate(BLAME_PHASES)}


class RequestBlame:
    """One fleet request's causal context, carried across shards.

    Created at request start on the home shard; travels inside the
    fabric payload for remote gets (the receiving gateway appends its
    spans into the *same* object — host-side shared memory, which is
    legal because the appends are causally ordered by the simulated
    message exchange itself). ``locus`` is the shard currently doing
    the work, so connection-plane sites can record spans without
    knowing which shard they serve.
    """

    __slots__ = ("shard", "seq", "key", "start", "locus", "mark",
                 "spans")

    def __init__(self, shard: int, seq: int, key: int, start: int):
        self.shard = shard        # home shard (where latency is felt)
        self.seq = seq            # globally unique request sequence id
        self.key = key
        self.start = start
        self.locus = shard        # shard currently executing
        self.mark = start         # last causal hand-off timestamp
        #: Typed spans: (start_ns, end_ns, phase, shard, queue).
        self.spans: List[Tuple[int, int, str, int, str]] = []

    def __repr__(self) -> str:
        return (f"<RequestBlame shard={self.shard} seq={self.seq} "
                f"spans={len(self.spans)}>")

    def span(self, start: int, end: int, phase: str, queue: str,
             shard: Optional[int] = None) -> None:
        """Record one causal span; zero-length spans are dropped."""
        if end <= start:
            return
        self.spans.append(
            (start, end, phase,
             self.locus if shard is None else shard, queue))

    def hop_sent(self, start: int, end: int, dst: int,
                 queue: str) -> None:
        """A fabric hop: wire time from the send to the arrival stamp."""
        self.span(start, end, "link_wire", queue, shard=dst)
        self.mark = end

    def hop_received(self, now: int, shard: int, queue: str) -> None:
        """Dequeue on the receiving shard: arrival -> service start."""
        self.span(self.mark, now, "gw_wait", queue, shard=shard)
        self.locus = shard
        self.mark = now

    def finish(self, end: int) -> Dict[str, Any]:
        """Attribute [start, end) and return the exemplar record.

        The sweep partitions the window, so ``sum(phases.values())``
        equals ``end - start`` exactly; gap nanoseconds fall to
        ``queueing`` on the home shard.
        """
        clamped = []
        for start, stop, phase, shard, queue in self.spans:
            start = max(start, self.start)
            stop = min(stop, end)
            if stop > start:
                clamped.append((start, stop, phase, (shard, queue)))
        phases, details = attribute_spans(
            clamped, self.start, end, BLAME_PHASES, _PRIORITY,
            gap_detail=(self.shard, ""))
        slices = [[phase, shard, queue, ns]
                  for (phase, (shard, queue)), ns in details.items()
                  if ns]
        slices.sort(key=lambda row: (_PHASE_INDEX[row[0]], row[1],
                                     row[2]))
        return {
            "key": self.key,
            "latency_ns": end - self.start,
            "phases": {phase: phases[phase] for phase in BLAME_PHASES},
            "seq": self.seq,
            "shard": self.shard,
            "slices": slices,
            "start_ns": self.start,
        }


def exemplar_order(exemplar: Dict[str, Any]) -> Tuple[int, int, int]:
    """Canonical exemplar ranking: slowest first, ties by (shard, seq)."""
    return (-exemplar["latency_ns"], exemplar["shard"], exemplar["seq"])


def exemplars_of(records: List[dict]) -> List[dict]:
    """All tail exemplars embedded in a telemetry window stream."""
    out: List[dict] = []
    for record in records:
        out.extend(record.get("exemplars", ()))
    return out


# -- rollups ---------------------------------------------------------------


def blame_table(records: List[dict]) -> List[Dict[str, Any]]:
    """Per-(shard, queue, phase) blame rows over a stream's exemplars.

    Each row carries the total nanoseconds the (shard, queue) pair
    contributed under that phase across every exemplar, plus how many
    exemplars it appeared in — the "which shard/queue/phase caused the
    tail" answer, sorted by descending ns then canonical key.
    """
    totals: Dict[Tuple[int, str, str], List[int]] = {}
    for exemplar in exemplars_of(records):
        for phase, shard, queue, ns in exemplar["slices"]:
            entry = totals.setdefault((shard, queue, phase), [0, 0])
            entry[0] += ns
            entry[1] += 1
    rows = [{"shard": shard, "queue": queue, "phase": phase,
             "ns": ns, "requests": count}
            for (shard, queue, phase), (ns, count) in totals.items()]
    rows.sort(key=lambda row: (-row["ns"], row["shard"], row["queue"],
                               row["phase"]))
    return rows


def summarize_blame(records: List[dict]) -> Dict[str, Any]:
    """The ``tail_blame --json`` document: phase means over the tail.

    ``phases[phase]`` carries total/mean ns and the share of all
    exemplar latency; ``shards[str(shard)]`` the per-shard blame total.
    ``p99_ns`` comes from the stream's merged latency histograms, so a
    ``--diff`` between two summaries can attribute the p99 delta to
    the phase/shard means that moved.
    """
    from .metrics import Histogram

    exemplars = exemplars_of(records)
    latency = Histogram()
    requests = 0
    for record in records:
        requests += record.get("requests", 0)
        snap = record.get("latency")
        if snap:
            latency.merge(Histogram.from_snapshot(snap))
    phase_totals = {phase: 0 for phase in BLAME_PHASES}
    shard_totals: Dict[str, int] = {}
    for exemplar in exemplars:
        for phase, ns in exemplar["phases"].items():
            phase_totals[phase] += ns
        for _phase, shard, _queue, ns in exemplar["slices"]:
            key = str(shard)
            shard_totals[key] = shard_totals.get(key, 0) + ns
    count = len(exemplars)
    total = sum(phase_totals.values())
    return {
        "requests": requests,
        "exemplars": count,
        "p99_ns": latency.quantile(0.99) if latency.count else None,
        "exemplar_latency_sum_ns": total,
        "phases": {
            phase: {
                "total_ns": ns,
                "mean_ns": round(ns / count, 1) if count else 0.0,
                "share": round(ns / total, 6) if total else 0.0,
            }
            for phase, ns in phase_totals.items()},
        "shards": {
            shard: {
                "total_ns": ns,
                "mean_ns": round(ns / count, 1) if count else 0.0,
            }
            for shard, ns in sorted(shard_totals.items())},
        "table": blame_table(records),
    }


def folded_blame(records: List[dict]) -> List[str]:
    """Flamegraph folded stacks: ``shard<N>;queue;phase ns``."""
    rows = blame_table(records)
    lines = [(f"shard{row['shard']};{row['queue'] or '-'};"
              f"{row['phase']}", row["ns"]) for row in rows]
    return [f"{stack} {ns}" for stack, ns in sorted(lines)]


def diff_blame(current: Dict[str, Any],
               baseline: Dict[str, Any]) -> Dict[str, Any]:
    """Attribute a p99 regression between two summaries.

    Returns the p99 delta plus per-phase and per-shard mean-ns deltas
    ranked by absolute movement — "the p99 grew 12 us and pool_wait on
    shard 3 grew 11 us of it" — the ``tail_blame --diff`` payload.
    """
    cur_p99 = current.get("p99_ns")
    base_p99 = baseline.get("p99_ns")
    phases = []
    for phase in BLAME_PHASES:
        cur = current["phases"].get(phase, {}).get("mean_ns", 0.0)
        base = baseline["phases"].get(phase, {}).get("mean_ns", 0.0)
        delta = round(cur - base, 1)
        if cur or base:
            phases.append({"phase": phase, "mean_ns": cur,
                           "baseline_mean_ns": base, "delta_ns": delta})
    phases.sort(key=lambda row: (-abs(row["delta_ns"]), row["phase"]))
    shards = []
    names = set(current.get("shards", {})) | set(baseline.get("shards", {}))
    for shard in sorted(names, key=lambda s: (len(s), s)):
        cur = current.get("shards", {}).get(shard, {}).get("mean_ns", 0.0)
        base = baseline.get("shards", {}).get(shard, {}).get("mean_ns", 0.0)
        shards.append({"shard": shard, "mean_ns": cur,
                       "baseline_mean_ns": base,
                       "delta_ns": round(cur - base, 1)})
    shards.sort(key=lambda row: (-abs(row["delta_ns"]),
                                 (len(row["shard"]), row["shard"])))
    return {
        "p99_ns": cur_p99,
        "baseline_p99_ns": base_p99,
        "p99_delta_ns": (cur_p99 - base_p99
                         if cur_p99 is not None and base_p99 is not None
                         else None),
        "phases": phases,
        "shards": shards,
    }


def blame_registries(records: List[dict]) -> Dict[str, Any]:
    """Per-shard MetricsRegistry objects carrying the blame counters.

    Each shard's registry holds one ``blame.phase_ns`` counter family
    keyed by phase, so :func:`repro.obs.metrics.to_openmetrics_multi`
    with ``label="shard"`` emits ``blame_phase_ns_total{shard="shard3",
    key="pool_wait"}`` — blame as (phase, shard)-labeled counters that
    :func:`repro.obs.metrics.parse_openmetrics` round-trips exactly.
    """
    from .metrics import MetricsRegistry

    registries: Dict[str, Any] = {}
    for row in blame_table(records):
        name = f"shard{row['shard']}"
        registry = registries.get(name)
        if registry is None:
            registry = registries[name] = MetricsRegistry()
        registry.counter("blame.phase_ns")[row["phase"]] += row["ns"]
        registry.counter("blame.requests")[row["phase"]] \
            += row["requests"]
    return registries
