"""The tracer: typed NIC-level events + the self-modification inspector.

Events are recorded keyed on **simulated** time and exported as Chrome
trace-event JSON (https://ui.perfetto.dev loads it directly). Track
layout:

* one *process* (pid) per RNIC, named after the NIC, with threads for
  each PU (``port0/pu3`` — execute occupancy spans), each port's fetch
  engine (``port0/fetch`` — WQE fetch DMA spans), the PCIe attachment
  (``pcie`` — payload DMA spans), the atomic units (``atomics`` — CAS /
  FETCH_ADD applies), every work queue (``wq:name`` — post, doorbell,
  fetch snapshots, op spans, WAIT/ENABLE, race flags) and every
  completion queue (``cq:name`` — CQE instants plus a completion
  counter track);
* one process per host DRAM for stores into *annotated* regions (WQE
  rings and RedN code regions) — everything else is ignored so traces
  stay proportional to program activity, not payload volume.

Race inspection happens online, because only the tracer sees both
sides of the join: at **post** time it snapshots each WQE's slot bytes
and write generations; at **fetch** time a generation mismatch plus a
byte diff emits a ``self_mod`` event naming the rewritten fields (a
generation bump whose bytes match the previous image — e.g. a
RecycledLoop restore READ rewriting a template — is *not* flagged); at
**execute** time the fetch-time snapshot is re-checked and any
divergence emits ``stale_wqe``: the NIC is about to execute bytes that
no longer match DRAM — exactly the §3.1 prefetch incoherence hazard.

The tracer never schedules simulation events and never mutates
simulated state, so attaching it cannot change a run's schedule — the
``test_obs_determinism`` suite holds it to that.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from ..nic.opcodes import OPCODE_NAMES, Opcode
from . import _activate, _deactivate
from .events import format_field_diff, wqe_field_diff

__all__ = ["Tracer", "export_merged_chrome", "diff_wqe_bytes"]


def _op_name(opcode: int) -> str:
    return OPCODE_NAMES.get(opcode, f"OP{opcode:#x}")


def diff_wqe_bytes(old: bytes, new: bytes) -> List[str]:
    """Human-readable field diff between two WQE byte images.

    Slot 0 is diffed per header field; follow-on (SGE) slots are
    reported coarsely. Used for ``self_mod`` / ``stale_wqe`` args.
    The field resolution itself lives in ``obs.events.wqe_field_diff``
    (shared with the trace-diff engine); this wrapper only renders.
    """
    return [format_field_diff(diff)
            for diff in wqe_field_diff(old, new)]


class Tracer:
    """Records one simulation's events; one tracer per Simulator."""

    def __init__(self, sim, name: str = "trace"):
        if getattr(sim, "tracer", None) is not None:
            raise ValueError(f"{sim!r} already has a tracer attached")
        self.sim = sim
        self.name = name
        #: Recorded events, in emission (= simulated time) order. Each
        #: is (ph, cat, name, pid, tid, ts_ns, dur_ns, args).
        self.events: List[Tuple] = []
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[int, str], int] = {}
        self._nics_seen: set = set()
        self._memories: List = []
        # pid cache per queue object (id() keys are process-local only).
        self._wq_pids: Dict[int, int] = {}
        self._cq_pids: Dict[int, int] = {}
        # Annotated DRAM regions, per memory: sorted [(start, end, label)].
        self._regions: Dict[int, List[Tuple[int, int, str]]] = {}
        # Inspector state: last-seen slot image per (wq, slot_index) and
        # fetch-time snapshot per in-flight (wq, wr_index).
        self._slot_images: Dict[Tuple[int, int], Tuple[Tuple, bytes]] = {}
        self._fetch_snaps: Dict[Tuple[int, int], Tuple] = {}
        self.self_mod_count = 0
        self.stale_count = 0
        sim.tracer = self
        _activate()
        self._exec_hist = sim.metrics.histogram("obs.execute_ns")

    def __repr__(self) -> str:
        return f"<Tracer {self.name} events={len(self.events)}>"

    def close(self) -> None:
        """Detach from the simulator and its memories."""
        if self.sim.tracer is self:
            self.sim.tracer = None
            for memory, hook in self._memories:
                memory.remove_store_hook(hook)
            self._memories.clear()
            _deactivate()

    # -- track bookkeeping -----------------------------------------------

    def _pid(self, label: str) -> int:
        pid = self._pids.get(label)
        if pid is None:
            pid = self._pids[label] = len(self._pids) + 1
        return pid

    def _tid(self, pid: int, label: str) -> int:
        key = (pid, label)
        tid = self._tids.get(key)
        if tid is None:
            tid = self._tids[key] = \
                sum(1 for p, _ in self._tids if p == pid) + 1
        return tid

    # -- attachment --------------------------------------------------------

    def attach_nic(self, nic) -> int:
        """Register a NIC's tracks, queues and DRAM write hook.

        Idempotent; also invoked lazily by every NIC-side event, so an
        explicit call is only needed to pre-register empty tracks.
        """
        pid = self._pid(nic.name)
        if id(nic) in self._nics_seen:
            return pid
        self._nics_seen.add(id(nic))
        for port in nic.ports:
            self._tid(pid, f"port{port.index}/fetch")
            for pu_index in range(len(port.pus)):
                self._tid(pid, f"port{port.index}/pu{pu_index}")
        self._tid(pid, "pcie")
        self._tid(pid, "wire")
        self._tid(pid, "atomics")
        self.attach_memory(nic.memory)
        for cq in nic.cqs.values():
            self.cq_created(nic, cq)
        for wq in nic.wqs.values():
            self.wq_created(nic, wq)
        return pid

    def attach_memory(self, memory) -> None:
        """Install the DRAM store hook (stores into annotated regions)."""
        if id(memory) in self._regions:
            return
        self._regions[id(memory)] = []

        def hook(addr: int, length: int, _memory=memory) -> None:
            self._dram_store(_memory, addr, length)

        memory.add_store_hook(hook)
        self._memories.append((memory, hook))

    def annotate_region(self, memory, addr: int, size: int,
                        label: str) -> None:
        """Mark [addr, addr+size) as interesting: stores get traced."""
        self.attach_memory(memory)
        regions = self._regions[id(memory)]
        for start, end, _ in regions:
            if start == addr and end == addr + size:
                return
        regions.append((addr, addr + size, label))
        regions.sort()

    # -- NIC object lifecycle (called by RNIC factories) --------------------

    def wq_created(self, nic, wq) -> None:
        pid = self.attach_nic(nic)
        self._wq_pids[id(wq)] = pid
        self._tid(pid, f"wq:{wq.name}")
        self.annotate_region(wq.memory, wq.ring.addr, wq.ring.size,
                             f"ring:{wq.name}")

    def cq_created(self, nic, cq) -> None:
        pid = self.attach_nic(nic)
        self._cq_pids[id(cq)] = pid
        self._tid(pid, f"cq:{cq.name}")

    # -- low-level event append --------------------------------------------

    def _append(self, ph: str, cat: str, name: str, pid: int, tid: int,
                ts: int, dur: Optional[int] = None,
                args: Optional[Dict[str, Any]] = None) -> None:
        self.events.append((ph, cat, name, pid, tid, ts, dur, args))

    def _wq_track(self, wq) -> Tuple[int, int]:
        pid = self._wq_pids.get(id(wq))
        if pid is None:
            qp = wq.qp
            if qp is not None:
                self.wq_created(qp.nic, wq)
                pid = self._wq_pids[id(wq)]
            else:
                pid = self._pid("orphan-queues")
        return pid, self._tid(pid, f"wq:{wq.name}")

    # -- queue-side events ----------------------------------------------------

    def wqe_posted(self, wq, wr_index: int, slot_cursor: int, slots: int,
                   wqe) -> None:
        """Host posted a WQE: record its image for the race inspector."""
        pid, tid = self._wq_track(wq)
        gens, data = wq.slot_state(slot_cursor, slots)
        ring_slots = wq.num_slots
        self._slot_images[(id(wq), slot_cursor % ring_slots)] = (gens, data)
        self._append("i", "queue", f"post:{_op_name(wqe.opcode)}", pid,
                     tid, self.sim.now,
                     args={"wr_index": wr_index,
                           "slot": slot_cursor % ring_slots,
                           "slots": slots})

    def doorbell(self, wq, up_to: int) -> None:
        pid, tid = self._wq_track(wq)
        self._append("i", "queue", "doorbell", pid, tid, self.sim.now,
                     args={"up_to": up_to})

    def fetch_span(self, nic, wq, start_ns: int, count: int,
                   managed: bool) -> None:
        """One fetch DMA (managed: 1 WQE; normal: a prefetch batch)."""
        pid = self.attach_nic(nic)
        tid = self._tid(pid, f"port{wq.port_index}/fetch")
        name = "fetch" if managed else f"prefetch[{count}]"
        self._append("X", "fetch", name, pid, tid, start_ns,
                     dur=self.sim.now - start_ns,
                     args={"wq": wq.name, "count": count,
                           "managed": managed})

    def wqe_fetched(self, wq, wr_index: int, slot_cursor: int, slots: int,
                    wqe, cache_hit: bool) -> None:
        """One WQE's bytes were snapshotted by the NIC.

        Runs the post-vs-fetch half of the race join and arms the
        fetch-vs-execute half.
        """
        pid, tid = self._wq_track(wq)
        now = self.sim.now
        gens, data = wq.slot_state(slot_cursor, slots)
        slot_index = slot_cursor % wq.num_slots
        image = self._slot_images.get((id(wq), slot_index))
        if image is not None and image[0] != gens and image[1] != data:
            changes = diff_wqe_bytes(image[1], data)
            self.self_mod_count += 1
            self._append("i", "race", "self_mod", pid, tid, now,
                         args={"wq": wq.name, "wr_index": wr_index,
                               "slot": slot_index, "changed": changes})
        self._slot_images[(id(wq), slot_index)] = (gens, data)
        self._fetch_snaps[(id(wq), wr_index)] = (gens, data, now,
                                                 slot_cursor, slots)
        self._append("i", "fetch",
                     f"wqe:{_op_name(wqe.opcode)}", pid, tid, now,
                     args={"wr_index": wr_index, "slot": slot_index,
                           "cache": "hit" if cache_hit else "miss"})

    # -- execute-side events ----------------------------------------------------

    def execute_begin(self, wq, wr_index: int, wqe) -> None:
        """WQE entered execution: close the fetch-vs-execute window."""
        snap = self._fetch_snaps.pop((id(wq), wr_index), None)
        if snap is None:
            return
        gens, data, fetch_ts, slot_cursor, slots = snap
        if wq.slot_gens(slot_cursor, slots) == gens:
            return
        _, current = wq.slot_state(slot_cursor, slots)
        if current == data:
            return
        pid, tid = self._wq_track(wq)
        changes = diff_wqe_bytes(data, current)
        self.stale_count += 1
        self._append("i", "race", "stale_wqe", pid, tid, self.sim.now,
                     args={"wq": wq.name, "wr_index": wr_index,
                           "fetched_at": fetch_ts,
                           "window_ns": self.sim.now - fetch_ts,
                           "changed": changes})

    def pu_span(self, nic, wq, opcode: int, start_ns: int) -> None:
        pid = self.attach_nic(nic)
        tid = self._tid(pid, f"port{wq.port_index}/pu{wq.pu_index}")
        self._append("X", "exec", _op_name(opcode), pid, tid, start_ns,
                     dur=self.sim.now - start_ns, args={"wq": wq.name})

    def wait_span(self, wq, wqe, start_ns: int) -> None:
        pid, tid = self._wq_track(wq)
        now = self.sim.now
        self._append("X", "sync", "WAIT", pid, tid, start_ns,
                     dur=now - start_ns,
                     args={"cq_num": wqe.target, "count": wqe.wqe_count})
        self._append("i", "sync", "WAIT.wake", pid, tid, now,
                     args={"cq_num": wqe.target})

    def enable_event(self, wq, wqe, relative: bool, target=None) -> None:
        args = {"target_wq": wqe.target,
                "count": wqe.wqe_count, "relative": relative}
        if target is not None:
            args["target_name"] = target.name
        pid, tid = self._wq_track(wq)
        self._append("i", "sync", "ENABLE", pid, tid, self.sim.now,
                     args=args)

    def wqe_executed(self, wq, wr_index: int, wqe, status: str,
                     start_ns: int) -> None:
        pid, tid = self._wq_track(wq)
        dur = self.sim.now - start_ns
        self._exec_hist.observe(dur)
        self._append("X", "exec", f"op:{_op_name(wqe.opcode)}", pid, tid,
                     start_ns, dur=dur,
                     args={"wr_index": wr_index, "status": status})

    # -- completion / data-path events ---------------------------------------

    def cqe(self, cq, cqe, host_delay_ns: int = 0) -> None:
        pid = self._cq_pids.get(id(cq))
        if pid is None:
            pid = self._pid("orphan-queues")
        tid = self._tid(pid, f"cq:{cq.name}")
        now = self.sim.now
        self._append("i", "cqe", f"cqe:{_op_name(cqe.opcode)}", pid, tid,
                     now, args={"wr_id": cqe.wr_id, "status": cqe.status,
                                "wq_num": cqe.wq_num,
                                "cq_num": cq.cq_num, "count": cq.count})
        if host_delay_ns > 0:
            # The posted DMA that carries the CQE to host memory: the
            # monotonic counter (WAIT verbs) bumped at span start, the
            # host poller sees the entry at span end.
            self._append("X", "cqe", "cqe_dma", pid, tid, now,
                         dur=host_delay_ns,
                         args={"wr_id": cqe.wr_id, "cq_num": cq.cq_num})
        self._append("C", "cqe", f"cq:{cq.name}", pid, tid, now,
                     args={"completions": cq.count})

    def atomic(self, nic, wqe, original: int) -> None:
        pid = self.attach_nic(nic)
        tid = self._tid(pid, "atomics")
        if wqe.opcode == Opcode.CAS:
            args = {"raddr": wqe.raddr, "expected": wqe.operand0,
                    "desired": wqe.operand1, "original": original,
                    "swapped": original == wqe.operand0}
        else:
            args = {"raddr": wqe.raddr, "delta": wqe.operand0,
                    "original": original}
        self._append("i", "atomic", _op_name(wqe.opcode), pid, tid,
                     self.sim.now, args=args)

    def dma_span(self, nic, nbytes: int, start_ns: int) -> None:
        pid = self.attach_nic(nic)
        tid = self._tid(pid, "pcie")
        self._append("X", "dma", f"dma[{nbytes}B]", pid, tid, start_ns,
                     dur=self.sim.now - start_ns, args={"bytes": nbytes})

    def dma_txn(self, nic, kind: str, start_ns: int) -> None:
        """A posted/non-posted PCIe transaction latency window."""
        pid = self.attach_nic(nic)
        tid = self._tid(pid, "pcie")
        self._append("X", "dma", f"dma:{kind}", pid, tid, start_ns,
                     dur=self.sim.now - start_ns, args={"kind": kind})

    def wire_span(self, nic, dst_nic, nbytes: int, start_ns: int) -> None:
        """One message's serialization + link traversal (never loopback)."""
        pid = self.attach_nic(nic)
        tid = self._tid(pid, "wire")
        self._append("X", "wire", f"wire[{nbytes}B]", pid, tid, start_ns,
                     dur=self.sim.now - start_ns,
                     args={"bytes": nbytes, "dst": dst_nic.name})

    # -- connection-plane / cross-shard events -------------------------------

    def pool_wait(self, pool, start_ns: int, tag: str = "") -> None:
        """One lease's FIFO wait in a QpPool's acquire queue."""
        pid = self._pid(pool.name)
        tid = self._tid(pid, "lease-wait")
        self._append("X", "conn", "pool_wait", pid, tid, start_ns,
                     dur=self.sim.now - start_ns,
                     args={"pool": pool.name, "tag": tag})

    def doorbell_batch(self, wq, count: int, start_ns: int,
                       extra_delay_ns: int) -> None:
        """One coalesced doorbell flush: hold window + batch surcharge."""
        pid, tid = self._wq_track(wq)
        self._append("X", "conn", f"batch[{count}]", pid, tid, start_ns,
                     dur=(self.sim.now - start_ns) + extra_delay_ns,
                     args={"wq": wq.name, "count": count,
                           "extra_delay_ns": extra_delay_ns})

    def cqe_demux(self, cq, cqe, stale: bool) -> None:
        """CompletionRouter verdict for one shared-CQ entry."""
        pid = self._cq_pids.get(id(cq))
        if pid is None:
            pid = self._pid("orphan-queues")
        tid = self._tid(pid, f"cq:{cq.name}")
        name = "demux:stale" if stale else "demux"
        self._append("i", "conn", name, pid, tid, self.sim.now,
                     args={"cq_num": cq.cq_num, "wq_num": cqe.wq_num,
                           "wr_id": cqe.wr_id})

    def link_send(self, src_index: int, dst_index: int, mailbox: str,
                  arrival_ns: int) -> None:
        """One ShardFabric message's wire traversal to the peer shard."""
        pid = self._pid("fabric")
        tid = self._tid(pid, f"link:{src_index}->{dst_index}")
        now = self.sim.now
        self._append("X", "link", f"link:{mailbox}", pid, tid, now,
                     dur=arrival_ns - now,
                     args={"src": src_index, "dst": dst_index,
                           "mailbox": mailbox, "arrival_ns": arrival_ns})

    def offload_call(self, conn, start_ns: int, ok: bool,
                     byte_len: int) -> None:
        pid = self.attach_nic(conn.client_nic)
        tid = self._tid(pid, "offload")
        self._append("X", "offload", f"call:{conn.name}", pid, tid,
                     start_ns, dur=self.sim.now - start_ns,
                     args={"ok": ok, "bytes": byte_len})

    def request_span(self, label: str, start_ns: int,
                     args: Optional[Dict[str, Any]] = None) -> None:
        """An application-defined request window (benchmark samples).

        The critical-path profiler treats each such span — like each
        offload ``call:`` span — as one request to attribute.
        """
        pid = self._pid(self.name)
        tid = self._tid(pid, "requests")
        self._append("X", "request", label, pid, tid, start_ns,
                     dur=self.sim.now - start_ns, args=args)

    def _dram_store(self, memory, addr: int, length: int) -> None:
        regions = self._regions.get(id(memory))
        if not regions:
            return
        end = addr + length
        for start, stop, label in regions:
            if start >= end:
                break
            if stop > addr:
                pid = self._pid(memory.name)
                tid = self._tid(pid, "stores")
                self._append("i", "mem", f"store:{label}", pid, tid,
                             self.sim.now,
                             args={"addr": addr, "len": length,
                                   "region": label})
                return

    # -- export ------------------------------------------------------------

    def chrome_events(self, pid_offset: int = 0) -> List[Dict[str, Any]]:
        """All events as Chrome trace-event dicts (ts/dur in us)."""
        out: List[Dict[str, Any]] = []
        for label, pid in self._pids.items():
            out.append({"ph": "M", "name": "process_name",
                        "pid": pid + pid_offset, "tid": 0,
                        "args": {"name": label}})
        for (pid, label), tid in self._tids.items():
            out.append({"ph": "M", "name": "thread_name",
                        "pid": pid + pid_offset, "tid": tid,
                        "args": {"name": label}})
        for ph, cat, name, pid, tid, ts, dur, args in self.events:
            event: Dict[str, Any] = {
                "ph": ph, "cat": cat, "name": name,
                "pid": pid + pid_offset, "tid": tid, "ts": ts / 1000,
            }
            if ph == "X":
                event["dur"] = (dur or 0) / 1000
            elif ph == "i":
                event["s"] = "t"
            if args is not None:
                event["args"] = args
            out.append(event)
        return out

    @property
    def pid_count(self) -> int:
        return len(self._pids)

    def to_json(self) -> str:
        payload = {"traceEvents": self.chrome_events(),
                   "displayTimeUnit": "ns"}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def export_chrome(self, path) -> int:
        """Write Chrome trace-event JSON; returns the event count."""
        with open(path, "w") as handle:
            handle.write(self.to_json())
        return len(self.events)


def export_merged_chrome(tracers, path) -> int:
    """Merge several tracers (distinct pid spaces) into one trace file."""
    events: List[Dict[str, Any]] = []
    offset = 0
    for tracer in tracers:
        events.extend(tracer.chrome_events(pid_offset=offset))
        offset += tracer.pid_count
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    with open(path, "w") as handle:
        handle.write(json.dumps(payload, sort_keys=True,
                                separators=(",", ":")))
    return len(events)
