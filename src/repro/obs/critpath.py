"""Causal critical-path profiler: per-request phase attribution.

Consumes tracer events (live :class:`~repro.obs.tracer.Tracer` objects
or exported Chrome trace JSON) and answers *why* a request took as long
as it did:

* **Requests** are the tracer's ``call:`` offload spans and ``request``
  spans (:meth:`Tracer.request_span`); with neither present the whole
  trace is treated as one request.

* **Phase attribution** assigns every nanosecond of a request window to
  exactly one typed phase via a priority sweep over the activity spans
  inside the window::

      pu_exec > dma > wire > fetch > cqe > wait_blocked > queueing

  A nanosecond where a PU executes *and* a WAIT is blocked counts as
  ``pu_exec`` (the WAIT is not the bottleneck there); a nanosecond
  where nothing recorded is happening is ``queueing``. Because the
  sweep partitions the window, per-phase durations **sum exactly** to
  the end-to-end latency — no double counting, no unattributed gaps.
  All times are integer nanoseconds end to end (Chrome traces store
  microsecond floats, but ``round(ts_us * 1000)`` recovers the exact
  integer for any plausible simulated timestamp).

* **Critical path**: a causal DAG is reconstructed over the window's
  events — post -> doorbell -> fetch (incl. prefetch cache hits) ->
  WAIT blocks woken by CQE counter bumps -> PU execute -> DMA/wire ->
  CQE delivery — and walked backwards from the request's completion,
  always to the predecessor that *enabled* the current event (falling
  back to the latest finisher when no typed edge matches). Each hop
  reports how much latency it contributed.

Nothing here runs during simulation: profiling is a post-processing
pass over already-recorded events, so the zero-cost guarantee of
``repro.obs`` (tracing off => untouched schedule) is unaffected.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, Iterable, List, Optional, Tuple

# Event normalization is shared with the trace inspector and the
# trace-diff engine; re-exported here for backwards compatibility.
from .events import (
    NormalizedEvent,
    events_from_trace,
    events_from_tracer,
)

__all__ = [
    "PHASES",
    "NormalizedEvent",
    "RequestProfile",
    "CritPathProfile",
    "attribute_spans",
    "events_from_tracer",
    "events_from_trace",
    "profile_events",
    "profile_tracer",
    "profile_trace",
    "sync_counts",
]

#: The phase taxonomy, in attribution-priority order (highest first;
#: ``queueing`` is the gap filler and has no spans of its own).
PHASES = ("pu_exec", "dma", "wire", "fetch", "cqe", "wait_blocked",
          "queueing")

_PRIORITY = {phase: len(PHASES) - index
             for index, phase in enumerate(PHASES)}


# -- phase classification ------------------------------------------------


def _phase_of(event: NormalizedEvent) -> Optional[Tuple[str, str]]:
    """(phase, detail) for activity spans; None for everything else."""
    if event.ph != "X":
        return None
    cat = event.cat
    if cat == "fetch":
        return ("fetch", event.name)
    if cat == "exec":
        # PU occupancy spans live on port tracks and are named after
        # the bare opcode; "op:" spans (exec_start -> completion, on wq
        # tracks) span the whole data path and would double-cover it.
        if event.name.startswith("op:"):
            return None
        return ("pu_exec", event.name)
    if cat == "dma":
        return ("dma", event.name)
    if cat == "wire":
        return ("wire", event.name)
    if cat == "cqe":
        return ("cqe", event.name)
    if cat == "sync" and event.name == "WAIT":
        cq_num = event.args.get("cq_num")
        detail = f"WAIT(cq{cq_num})" if cq_num is not None else "WAIT"
        return ("wait_blocked", detail)
    if cat == "link":
        # Cross-shard synchronizer hops (ShardFabric messages) are wire
        # time from the critical-path taxonomy's point of view.
        return ("wire", event.name)
    return None


def attribute_spans(spans: List[Tuple[int, int, str, Any]],
                    t0: int, t1: int,
                    phases: Tuple[str, ...] = PHASES,
                    priority: Optional[Dict[str, int]] = None,
                    gap_phase: str = "queueing",
                    gap_detail: Any = "idle",
                    ) -> Tuple[Dict[str, int], Counter]:
    """Partition [t0, t1) over ``spans`` by phase priority.

    The exact-sum sweep shared by the critical-path profiler and the
    tail-blame plane (``repro.obs.blame``): ``spans`` are (start, end,
    phase, detail) tuples already clamped to the window; ``phases`` is
    the taxonomy in priority order (highest first) with ``gap_phase``
    as the filler for uncovered nanoseconds. Returns ({phase: ns},
    Counter[(phase, detail)] -> ns); the phase dict always carries
    every phase and sums **exactly** to ``t1 - t0`` — the sweep
    partitions the window, so nothing is double counted or dropped.
    """
    if priority is None:
        priority = {phase: len(phases) - index
                    for index, phase in enumerate(phases)}
    totals = {phase: 0 for phase in phases}
    details: Counter = Counter()
    if t1 <= t0:
        return totals, details
    bounds = {t0, t1}
    for start, end, _, _ in spans:
        bounds.add(start)
        bounds.add(end)
    cuts = sorted(bounds)
    ordered = sorted(spans, key=lambda s: (s[0], s[1], s[2], str(s[3])))
    active: List[Tuple[int, int, str, Any]] = []
    index = 0
    for a, b in zip(cuts, cuts[1:]):
        while index < len(ordered) and ordered[index][0] <= a:
            active.append(ordered[index])
            index += 1
        if active:
            active = [span for span in active if span[1] > a]
        if active:
            # Highest priority wins; ties break on the latest-started,
            # then lexicographically — fully deterministic.
            _, end, phase, detail = max(
                active, key=lambda s: (priority[s[2]], s[0], str(s[3])))
        else:
            phase, detail = gap_phase, gap_detail
        totals[phase] += b - a
        details[(phase, detail)] += b - a
    return totals, details


def _attribute(spans: List[Tuple[int, int, str, str]],
               t0: int, t1: int) -> Tuple[Dict[str, int], Counter]:
    """The critical-path taxonomy's instantiation of the sweep."""
    return attribute_spans(spans, t0, t1, PHASES, _PRIORITY)


# -- causal DAG / critical path ------------------------------------------


def _predecessor(node: NormalizedEvent,
                 events: List[NormalizedEvent]) -> Optional[NormalizedEvent]:
    """The event that causally enabled ``node``, by typed edge.

    Falls back to the latest event finishing at or before the node's
    start (strictly before its own finish, so the walk terminates).
    """
    args = node.args
    candidates: List[NormalizedEvent] = []

    if node.cat == "sync" and node.name == "WAIT" and node.ph == "X":
        # A WAIT span ends wait_check_ns after the CQE counter bump
        # that satisfied it: cqe instant with matching cq/threshold.
        for event in events:
            if (event.cat == "cqe" and event.ph == "i"
                    and event.args.get("cq_num") == args.get("cq_num")
                    and event.args.get("count") == args.get("count")
                    and event.ts <= node.end):
                candidates.append(event)
    elif node.cat == "cqe":
        # CQE (instant or cqe_dma span) at the moment an op completed.
        for event in events:
            if (event.cat == "exec" and event.name.startswith("op:")
                    and event.end == node.ts):
                candidates.append(event)
    elif node.cat == "exec" and node.name.startswith("op:"):
        # op span starts at execute-begin: enabled by its WQE fetch.
        wr_index = args.get("wr_index")
        for event in events:
            if (event.cat == "fetch" and event.ph == "i"
                    and event.track == node.track
                    and event.args.get("wr_index") == wr_index
                    and event.ts <= node.ts):
                candidates.append(event)
    elif node.cat == "fetch" and node.ph == "i":
        # A fetched WQE snapshot lands at its fetch DMA's end.
        wq_name = node.track.rsplit("wq:", 1)[-1]
        for event in events:
            if (event.cat == "fetch" and event.ph == "X"
                    and event.args.get("wq") == wq_name
                    and event.end == node.ts):
                candidates.append(event)
    elif node.cat == "fetch" and node.ph == "X":
        # A fetch starts once the queue was enabled: the latest
        # doorbell on the queue or ENABLE verb targeting it.
        wq_name = args.get("wq")
        for event in events:
            if event.ts > node.ts:
                continue
            if (event.name == "doorbell"
                    and event.track.endswith(f"wq:{wq_name}")):
                candidates.append(event)
            elif (event.name == "ENABLE"
                    and event.args.get("target_name") == wq_name):
                candidates.append(event)
    elif node.name == "doorbell":
        for event in events:
            if (event.track == node.track and event.ph == "i"
                    and event.name.startswith("post:")
                    and event.ts <= node.ts):
                candidates.append(event)

    if candidates:
        best = max(candidates, key=lambda e: (e.end, e.ts))
        if (best.end, best.ts) < (node.end, node.ts):
            return best

    # Fallback: the latest finisher at or before this node began.
    best = None
    for event in events:
        if event is node or (event.end, event.ts) >= (node.end, node.ts):
            continue
        if event.end <= node.ts or event.ts < node.ts:
            if best is None or (event.end, event.ts) > (best.end, best.ts):
                best = event
    return best


def _critical_path(events: List[NormalizedEvent], t0: int,
                   t1: int) -> List[Dict[str, Any]]:
    """Backward walk from the request's completion to its trigger.

    Returns hops oldest-first; each hop's ``contrib_ns`` is the latency
    it added past its predecessor's finish (the first hop counts from
    the window start), so contributions sum to the last hop's end —
    anything left to the window end is host-side completion-observation
    time with no traced event.
    """
    pool = [event for event in events
            if event.ph in ("X", "i") and event.cat not in ("race", "mem",
                                                            "offload",
                                                            "request")
            and t0 <= event.ts and event.end <= t1]
    if not pool:
        return []
    node = max(pool, key=lambda e: (e.end, e.cat == "cqe", e.ts))
    chain = [node]
    for _ in range(len(pool)):
        pred = _predecessor(node, pool)
        if pred is None:
            break
        chain.append(pred)
        node = pred
    chain.reverse()
    hops = []
    prev_end = t0
    for event in chain:
        hops.append({
            "name": event.name,
            "track": event.track,
            "start_ns": event.ts,
            "end_ns": event.end,
            "contrib_ns": max(0, event.end - prev_end),
        })
        prev_end = max(prev_end, event.end)
    return hops


# -- profiles ------------------------------------------------------------


class RequestProfile:
    """One request's window, phase breakdown and critical path."""

    __slots__ = ("label", "start", "end", "phases", "details", "path",
                 "args")

    def __init__(self, label: str, start: int, end: int,
                 phases: Dict[str, int], details: Counter,
                 path: List[Dict[str, Any]],
                 args: Optional[Dict[str, Any]] = None):
        self.label = label
        self.start = start
        self.end = end
        self.phases = phases
        self.details = details
        self.path = path
        self.args = args or {}

    @property
    def total_ns(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:
        return f"<RequestProfile {self.label} {self.total_ns}ns>"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "start_ns": self.start,
            "total_ns": self.total_ns,
            "phases": {phase: self.phases[phase] for phase in PHASES},
            "critical_path": self.path,
        }


class CritPathProfile:
    """All requests of one trace, plus aggregate and export helpers."""

    def __init__(self, requests: List[RequestProfile],
                 counts: Dict[str, Any]):
        self.requests = requests
        #: Executed-verb tallies over the whole trace (``sync_counts``).
        self.counts = counts

    def __repr__(self) -> str:
        return f"<CritPathProfile requests={len(self.requests)}>"

    def aggregate(self) -> Dict[str, int]:
        """Total ns per phase, summed over every request."""
        totals = {phase: 0 for phase in PHASES}
        for request in self.requests:
            for phase in PHASES:
                totals[phase] += request.phases[phase]
        return totals

    @property
    def total_ns(self) -> int:
        return sum(request.total_ns for request in self.requests)

    def folded_lines(self) -> List[str]:
        """Flamegraph folded stacks: ``label;phase;detail ns``."""
        stacks: Counter = Counter()
        for request in self.requests:
            for (phase, detail), ns in request.details.items():
                if ns:
                    stacks[(request.label, phase, detail)] += ns
        return [f"{label};{phase};{detail} {ns}"
                for (label, phase, detail), ns in sorted(stacks.items())]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": [request.to_dict() for request in self.requests],
            "aggregate": {
                "total_ns": self.total_ns,
                "phases": self.aggregate(),
            },
            "counts": self.counts,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def record_metrics(self, registry) -> None:
        """Observe per-request phase durations into a MetricsRegistry."""
        for request in self.requests:
            registry.histogram("obs.critpath.request_ns").observe(
                request.total_ns)
            for phase in PHASES:
                registry.histogram(f"obs.critpath.{phase}_ns").observe(
                    request.phases[phase])

    def render(self, top: Optional[int] = None,
               show_path: bool = False) -> str:
        """Text breakdown table (the CLI's default output)."""
        requests = sorted(self.requests, key=lambda r: -r.total_ns)
        if top is not None:
            requests = requests[:top]
        header = f"{'request':28s} {'total_ns':>10s}"
        for phase in PHASES:
            header += f" {phase:>12s}"
        lines = [header]
        for request in requests:
            line = f"{request.label:28s} {request.total_ns:>10d}"
            for phase in PHASES:
                line += f" {request.phases[phase]:>12d}"
            lines.append(line)
        if len(self.requests) > 1:
            totals = self.aggregate()
            line = f"{'TOTAL':28s} {self.total_ns:>10d}"
            for phase in PHASES:
                line += f" {totals[phase]:>12d}"
            lines.append(line)
        if show_path:
            for request in requests:
                lines.append("")
                lines.append(f"critical path of {request.label} "
                             f"({request.total_ns}ns):")
                for hop in request.path:
                    lines.append(
                        f"  +{hop['contrib_ns']:>8d}ns  "
                        f"{hop['name']:24s} {hop['track']}")
        return "\n".join(lines)


def sync_counts(events: Iterable[NormalizedEvent]) -> Dict[str, Any]:
    """Executed-verb tallies: measured counterpart of ``chain_cost``.

    ``E`` counts completed WAIT spans plus ENABLE instants — the
    dynamic analogue of the static E term (a WAIT still blocked when
    the trace ends has not *executed* and is not counted).
    """
    ops: Counter = Counter()
    waits = enables = 0
    for event in events:
        if event.cat == "sync":
            if event.name == "WAIT" and event.ph == "X":
                waits += 1
            elif event.name == "ENABLE":
                enables += 1
        elif (event.cat == "exec" and event.ph == "X"
                and event.name.startswith("op:")):
            ops[event.name[3:]] += 1
    return {"E": waits + enables, "WAIT": waits, "ENABLE": enables,
            "ops": dict(sorted(ops.items()))}


# -- entry points --------------------------------------------------------


def _windows(events: List[NormalizedEvent]) -> List[NormalizedEvent]:
    wins = [event for event in events
            if event.ph == "X" and event.cat in ("offload", "request")]
    wins.sort(key=lambda e: (e.ts, e.end, e.name))
    return wins


def profile_events(events: List[NormalizedEvent]) -> CritPathProfile:
    """Profile normalized events: one RequestProfile per window."""
    windows = _windows(events)
    synthetic = False
    if not windows:
        timed = [event for event in events if event.ph in ("X", "i")]
        if not timed:
            return CritPathProfile([], sync_counts(events))
        start = min(event.ts for event in timed)
        end = max(event.end for event in timed)
        windows = [NormalizedEvent("X", "request", "trace", "synthetic",
                                   start, end - start, None)]
        synthetic = True

    requests: List[RequestProfile] = []
    for window in windows:
        t0, t1 = window.ts, window.end
        spans = []
        for event in events:
            phase_detail = _phase_of(event)
            if phase_detail is None:
                continue
            start = max(t0, event.ts)
            end = min(t1, event.end)
            if end > start:
                spans.append((start, end, *phase_detail))
        phases, details = _attribute(spans, t0, t1)
        in_window = events if synthetic else [
            event for event in events
            if event.ts >= t0 and event.end <= t1]
        path = _critical_path(in_window, t0, t1)
        requests.append(RequestProfile(window.name, t0, t1, phases,
                                       details, path, window.args))
    return CritPathProfile(requests, sync_counts(events))


def profile_tracer(tracer) -> CritPathProfile:
    """Profile a live tracer (exact integer-ns path)."""
    return profile_events(events_from_tracer(tracer))


def profile_trace(source) -> CritPathProfile:
    """Profile a Chrome trace (path, file object, JSON text or dict)."""
    from .inspect import TraceData, load_trace
    data = source if isinstance(source, TraceData) else load_trace(source)
    return profile_events(events_from_trace(data))
