"""repro.obs — tracing and metrics for the RedN simulator.

Two pieces, both zero-cost when disabled:

* :class:`Tracer` (``repro.obs.tracer``) — typed span/instant events
  keyed on *simulated* time (WQE fetch, prefetch-cache hit/stale,
  execute, CAS apply, WAIT wakeup, ENABLE, doorbell, DMA, CQE),
  exported as Chrome trace-event JSON loadable in Perfetto with PUs,
  WQs, CQs and ports as tracks. The tracer also runs the
  **self-modification race inspector** online: it joins DRAM
  write-generation bumps against WQE fetch snapshots and flags every
  WQE whose ring bytes changed between post and fetch (``self_mod``)
  or between fetch and execute (``stale_wqe`` — the §3.1 prefetch
  incoherence window).

* :class:`MetricsRegistry` (``repro.obs.metrics``) — named counters,
  gauges and sim-time histograms behind one ``snapshot()`` API. Every
  :class:`~repro.sim.core.Simulator` owns one lazily
  (``sim.metrics``); the RNIC and its send-queue drivers register
  their counters there, so one snapshot covers kernel, device and
  driver state. Exportable as OpenMetrics/Prometheus text via
  :meth:`MetricsRegistry.to_openmetrics`.

* :class:`FlightRecorder` (``repro.obs.recorder``) — a bounded causal
  journal of every post/doorbell/fetch/execute/WAIT/ENABLE/CQE/atomic/
  ring-store event plus periodic checkpoints of sim-visible state,
  dumpable to JSONL, replayable deterministically with event-by-event
  verification, and watched online by invariant monitors. The
  trace-diff engine (``repro.obs.tracediff``) aligns two journals on
  causal keys and reports the *first* divergence with a typed
  explanation and an upstream causal slice — see
  ``tools/trace_diff.py``.

A third piece, ``repro.obs.critpath``, is pure post-processing: it
rebuilds the causal DAG over a recorded trace's events per request,
computes the critical path, and attributes every nanosecond of a
request to exactly one typed phase (``queueing``/``fetch``/
``wait_blocked``/``pu_exec``/``dma``/``wire``/``cqe``) — see
``tools/latency_profile.py``. ``repro.obs.blame`` extends that
attribution *across shards*: a live :class:`RequestBlame` context
rides the fleet's fabric payloads while the connection plane records
typed spans into it (``pool_wait``, ``doorbell_batch``, ``cqe_demux``,
``link_wire``, ``gw_wait``), so per-phase blame for a cross-shard get
sums exactly to its end-to-end latency — see ``tools/tail_blame.py``.

``repro.obs.sentry`` closes the loop: a :class:`FleetSentry` folds
over the sealed telemetry window stream with deterministic anomaly
detectors (tail step-changes, queue growth, PU saturation, pool
pressure, stale-CQE quarantines, request-skew shifts, flatlines,
throughput collapse), groups time-correlated anomalies into incidents
with targeted capture (boosted blame-exemplar retention, bounded
flight-recorder slices, pre/post baselines), and emits a causal
root-cause report ranking implicated (shard, queue, phase) — see
``tools/incident_report.py`` and the fault scenarios in
``repro.bench.faults``.

Fast path
---------

Instrumentation sites across the simulator are guarded by the
module-level :data:`enabled` flag::

    from .. import obs as _obs
    ...
    if _obs.enabled:
        tracer = sim.tracer
        if tracer is not None:
            tracer.wqe_fetched(...)

When no tracer exists anywhere in the process the entire cost of the
instrumentation is one module-attribute load and a branch — the
BENCH_simspeed perf gate runs with tracing off and is unaffected.
Attaching a :class:`Tracer` flips the flag; detaching the last one
clears it.
"""

from __future__ import annotations

__all__ = [
    "enabled",
    "Tracer",
    "export_merged_chrome",
    "MetricsRegistry",
    "Histogram",
    "HistogramLayoutError",
    "parse_openmetrics",
    "to_openmetrics_multi",
    "SENTRY_SCHEMA",
    "DETECTORS",
    "Anomaly",
    "Incident",
    "FleetSentry",
    "triage_verdict",
    "DEFAULT_WINDOW_NS",
    "TelemetryCollector",
    "FleetTelemetry",
    "SloRule",
    "BurnAlert",
    "load_slo_rules",
    "evaluate_slo",
    "summarize_records",
    "TraceData",
    "load_trace",
    "summarize_trace",
    "race_report",
    "wq_timeline",
    "track_summary",
    "PHASES",
    "CritPathProfile",
    "RequestProfile",
    "profile_tracer",
    "profile_trace",
    "sync_counts",
    "attribute_spans",
    "BLAME_PHASES",
    "RequestBlame",
    "blame_table",
    "summarize_blame",
    "folded_blame",
    "diff_blame",
    "blame_registries",
    "exemplar_order",
    "exemplars_of",
    "NormalizedEvent",
    "events_from_tracer",
    "events_from_trace",
    "events_from_journal",
    "wqe_field_diff",
    "format_field_diff",
    "FlightRecorder",
    "InvariantMonitor",
    "Journal",
    "JournalError",
    "JournalCorruptError",
    "JournalTruncatedError",
    "ReplayDivergence",
    "ReplayResult",
    "load_journal",
    "replay_journal",
    "export_merged_journal",
    "Divergence",
    "DiffReport",
    "diff_journals",
    "causal_slice",
    "records_from_trace",
]

#: Module-level fast-path flag: False means every instrumentation site
#: in the simulator reduces to one attribute load and a branch.
enabled = False

_active_tracers = 0


def _activate() -> None:
    """Register one live tracer (flips :data:`enabled` on)."""
    global enabled, _active_tracers
    _active_tracers += 1
    enabled = True


def _deactivate() -> None:
    """Unregister one tracer; the flag clears with the last one."""
    global enabled, _active_tracers
    _active_tracers = max(0, _active_tracers - 1)
    enabled = _active_tracers > 0


# Submodules are imported lazily so that the hot-path guard above can
# be imported from anywhere in the package (including modules the
# tracer itself depends on) without import cycles.
_LAZY = {
    "Tracer": "tracer",
    "export_merged_chrome": "tracer",
    "MetricsRegistry": "metrics",
    "Histogram": "metrics",
    "HistogramLayoutError": "metrics",
    "parse_openmetrics": "metrics",
    "to_openmetrics_multi": "metrics",
    "SENTRY_SCHEMA": "sentry",
    "DETECTORS": "sentry",
    "Anomaly": "sentry",
    "Incident": "sentry",
    "FleetSentry": "sentry",
    "triage_verdict": "sentry",
    "DEFAULT_WINDOW_NS": "telemetry",
    "TelemetryCollector": "telemetry",
    "FleetTelemetry": "telemetry",
    "SloRule": "telemetry",
    "BurnAlert": "telemetry",
    "load_slo_rules": "telemetry",
    "evaluate_slo": "telemetry",
    "summarize_records": "telemetry",
    "TraceData": "inspect",
    "load_trace": "inspect",
    "summarize_trace": "inspect",
    "race_report": "inspect",
    "wq_timeline": "inspect",
    "track_summary": "inspect",
    "PHASES": "critpath",
    "CritPathProfile": "critpath",
    "RequestProfile": "critpath",
    "profile_tracer": "critpath",
    "profile_trace": "critpath",
    "sync_counts": "critpath",
    "attribute_spans": "critpath",
    "BLAME_PHASES": "blame",
    "RequestBlame": "blame",
    "blame_table": "blame",
    "summarize_blame": "blame",
    "folded_blame": "blame",
    "diff_blame": "blame",
    "blame_registries": "blame",
    "exemplar_order": "blame",
    "exemplars_of": "blame",
    "NormalizedEvent": "events",
    "events_from_tracer": "events",
    "events_from_trace": "events",
    "events_from_journal": "events",
    "wqe_field_diff": "events",
    "format_field_diff": "events",
    "FlightRecorder": "recorder",
    "InvariantMonitor": "recorder",
    "Journal": "recorder",
    "JournalError": "recorder",
    "JournalCorruptError": "recorder",
    "JournalTruncatedError": "recorder",
    "ReplayDivergence": "recorder",
    "ReplayResult": "recorder",
    "load_journal": "recorder",
    "replay_journal": "recorder",
    "export_merged_journal": "recorder",
    "Divergence": "tracediff",
    "DiffReport": "tracediff",
    "diff_journals": "tracediff",
    "causal_slice": "tracediff",
    "records_from_trace": "tracediff",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module
    value = getattr(import_module(f".{module_name}", __name__), name)
    globals()[name] = value
    return value
