"""Incident triage: streaming anomaly detection over sealed telemetry.

The closing layer of the observability stack. SLO burn alerts (PR 7)
say *that* the fleet degraded and tail blame (PR 9) says *where the
nanoseconds went*; the sentry connects the two: it watches the sealed
telemetry window stream, detects anomalies with deterministic
detectors, arms targeted capture for the implicated (shard, queue),
and emits a causal incident report ranking root causes against the
pre-incident baseline.

Determinism contract
--------------------

The sentry subscribes to :meth:`repro.obs.telemetry.FleetTelemetry.
flush` and folds over the **sealed record stream only**. That stream
is globally sorted by ``(window, shard)`` and byte-identical between
:meth:`~repro.sim.sharded.ShardedSimulation.run` and ``run_serial``
drives; batch *boundaries* follow the drive mode's flush cadence, so
the fold is strictly record-at-a-time and never keys a decision on
where a batch starts or ends. Detectors compare each window against a
trailing per-shard baseline of previously sealed windows; every
anomaly fires at the violating window's simulated end timestamp
(``(window + 1) * window_ns``) — a pure function of the stream, hence
of the simulated system. Targeted capture follows the same rule:

* **exemplar retention boost** — while an incident is open, every
  sealed record of an implicated shard contributes its tail exemplars
  to the incident's retained pool (bounded, canonical
  :func:`~repro.obs.blame.exemplar_order`), alongside the pre-incident
  baseline windows already held in the trailing history;
* **flight-recorder slice** — the incident pins a simulated-time range
  ``[open - pre, close]``; the bounded slice itself is cut from the
  implicated bed's :class:`~repro.obs.recorder.FlightRecorder` ring at
  report time, after the run, when per-bed journals are identical
  across drive modes by the recorder's own determinism contract;
* **pre/post baselines** — the trailing windows at open time and the
  first windows sealed after close, recorded per implicated shard.

With ``repro.obs.enabled`` off no telemetry exists, nothing is ever
flushed, and the sentry costs nothing — it has no hook sites of its
own inside the simulator.

Detectors
---------

===================  ====  ==========  ====================================
name                 tier  phase       fires when (vs trailing baselines)
===================  ====  ==========  ====================================
flatline               0   flatline    a previously-active shard stops
                                       emitting windows for
                                       ``flatline_gap`` while the fleet
                                       stays busy
queue_growth           1   queueing    SQ net growth over a window exceeds
                                       ``growth_threshold`` (or RQ peak
                                       doubles)
pu_saturation          1   pu_exec     PU busy (incl. PU queueing)
                                       utilization steps past
                                       ``util_factor`` x baseline
pool_pressure          1   pool_wait   QP-pool lease-wait p99 spikes past
                                       ``pool_wait_factor`` x baseline
stale_cqe              1   cqe_demux   the shared-CQ demux quarantines
                                       more stale CQEs than the baseline
skew_shift             1   skew        a shard's share of fleet requests
                                       (over a ``skew_span`` rolling
                                       window) drops by ``skew_drop``
throughput_collapse    2   throughput  fleet-wide requests/window fall
                                       under ``collapse_frac`` x the
                                       trailing mean
tail_step              2   tail        p99/p999 steps past
                                       ``tail_factor`` x the trailing max
===================  ====  ==========  ====================================

Tier orders cause ranking inside an incident: a shard going dark
(tier 0) outranks resource-pressure causes (tier 1), which outrank the
symptoms (tier 2 — the tail itself, the throughput collapse); within a
tier, larger severity (value / baseline) wins, with deterministic
``(shard, detector, queue)`` tie-breaks. Anomalies within
``merge_gap`` windows of each other merge into one incident, so a
single fault surfacing through several detectors — including its own
recovery transient, bridged by ``throughput_collapse`` while a
closed-loop fleet stalls — yields exactly one incident. The first
``warmup_windows`` global windows are exempt: a fleet ramping up has
no meaningful baseline yet (the trailing histories still accumulate).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .blame import exemplar_order, summarize_blame, diff_blame

__all__ = ["SENTRY_SCHEMA", "DETECTORS", "Anomaly", "Incident",
           "FleetSentry", "triage_verdict"]

SENTRY_SCHEMA = 1

#: detector name -> (ranking tier, implicated blame phase).
DETECTORS = {
    "flatline": (0, "flatline"),
    "queue_growth": (1, "queueing"),
    "pu_saturation": (1, "pu_exec"),
    "pool_pressure": (1, "pool_wait"),
    "stale_cqe": (1, "cqe_demux"),
    "skew_shift": (1, "skew"),
    "throughput_collapse": (2, "throughput"),
    "tail_step": (2, "tail"),
}


class Anomaly:
    """One detector firing for one sealed window."""

    __slots__ = ("detector", "shard", "bed", "window", "at_ns", "metric",
                 "value", "baseline", "severity", "queue", "detail")

    def __init__(self, detector: str, shard: int, bed: str, window: int,
                 at_ns: int, metric: str, value, baseline, severity: float,
                 queue: Optional[str] = None, detail: str = ""):
        self.detector = detector
        self.shard = shard
        self.bed = bed
        self.window = window
        #: The violating window's simulated end timestamp.
        self.at_ns = at_ns
        self.metric = metric
        self.value = value
        self.baseline = baseline
        self.severity = severity
        self.queue = queue
        self.detail = detail

    def __repr__(self) -> str:
        return (f"<Anomaly {self.detector} shard={self.shard} "
                f"w={self.window} {self.metric}={self.value} "
                f"base={self.baseline}>")

    @property
    def tier(self) -> int:
        return DETECTORS[self.detector][0]

    @property
    def phase(self) -> str:
        return DETECTORS[self.detector][1]

    def to_dict(self) -> dict:
        return {
            "detector": self.detector, "phase": self.phase,
            "shard": self.shard, "bed": self.bed, "window": self.window,
            "at_ns": self.at_ns, "metric": self.metric,
            "value": self.value, "baseline": self.baseline,
            "severity": self.severity, "queue": self.queue,
            "detail": self.detail,
        }


class Incident:
    """A group of time-correlated anomalies with targeted capture."""

    __slots__ = ("id", "anomalies", "shards", "first_window",
                 "last_window", "exemplars", "baseline_records",
                 "incident_records", "post_records", "closed",
                 "_post_budget", "_max_exemplars")

    def __init__(self, incident_id: int, max_exemplars: int):
        self.id = incident_id
        self.anomalies: List[Anomaly] = []
        self.shards: List[int] = []        # insertion order, deduped
        self.first_window: Optional[int] = None
        self.last_window: Optional[int] = None
        #: Boosted-retention tail exemplars (pre + during), bounded.
        self.exemplars: List[dict] = []
        #: Pre-incident trailing windows per implicated shard.
        self.baseline_records: List[dict] = []
        #: Implicated shards' windows sealed while the incident ran.
        self.incident_records: List[dict] = []
        #: First windows per implicated shard sealed after close.
        self.post_records: List[dict] = []
        self.closed = False
        self._post_budget: Dict[int, int] = {}
        self._max_exemplars = max_exemplars

    def __repr__(self) -> str:
        return (f"<Incident #{self.id} shards={self.shards} "
                f"windows=[{self.first_window},{self.last_window}] "
                f"anomalies={len(self.anomalies)}>")

    @property
    def open_at_ns(self) -> int:
        return min(a.at_ns for a in self.anomalies)

    def add(self, anomaly: Anomaly) -> None:
        self.anomalies.append(anomaly)
        if anomaly.shard not in self.shards:
            self.shards.append(anomaly.shard)
        if self.first_window is None or anomaly.window < self.first_window:
            self.first_window = anomaly.window
        if self.last_window is None or anomaly.window > self.last_window:
            self.last_window = anomaly.window

    def keep_exemplars(self, record: dict) -> None:
        exemplars = record.get("exemplars")
        if not exemplars:
            return
        self.exemplars.extend(exemplars)
        if len(self.exemplars) > self._max_exemplars:
            self.exemplars.sort(key=exemplar_order)
            del self.exemplars[self._max_exemplars:]

    def causes(self) -> List[dict]:
        """Ranked root-cause rows: (shard, queue, phase) by tier/severity."""
        ranked = sorted(
            self.anomalies,
            key=lambda a: (a.tier, -a.severity, a.shard, a.detector,
                           a.queue or ""))
        rows = []
        seen = set()
        for anomaly in ranked:
            key = (anomaly.shard, anomaly.queue, anomaly.phase)
            if key in seen:
                continue
            seen.add(key)
            rows.append({
                "rank": len(rows) + 1,
                "shard": anomaly.shard,
                "bed": anomaly.bed,
                "queue": anomaly.queue,
                "phase": anomaly.phase,
                "detector": anomaly.detector,
                "metric": anomaly.metric,
                "value": anomaly.value,
                "baseline": anomaly.baseline,
                "severity": anomaly.severity,
                "at_ns": anomaly.at_ns,
            })
        return rows


class FleetSentry:
    """Streaming anomaly engine over a sealed telemetry window stream.

    Construct with the stream's ``window_ns``, call
    :meth:`subscribe` with the :class:`~repro.obs.telemetry.
    FleetTelemetry` before the run (or feed records directly through
    :meth:`observe`), then :meth:`finalize` after the run and render
    :meth:`report`.
    """

    def __init__(self, window_ns: int, *,
                 baseline_windows: int = 8,
                 min_baseline: int = 3,
                 warmup_windows: int = 6,
                 merge_gap: int = 3,
                 tail_factor: float = 3.0,
                 tail_floor_ns: int = 20_000,
                 tail_min_requests: int = 6,
                 growth_threshold: int = 32,
                 util_factor: float = 2.5,
                 util_floor: float = 0.6,
                 pool_wait_factor: float = 3.0,
                 pool_wait_floor_ns: int = 3000,
                 stale_threshold: int = 1,
                 skew_drop: float = 0.8,
                 skew_span: int = 4,
                 skew_min_total: int = 12,
                 skew_floor_share: float = 0.05,
                 collapse_frac: float = 0.2,
                 flatline_gap: int = 3,
                 max_exemplars: int = 32,
                 post_windows: int = 2,
                 capture_pre_ns: Optional[int] = None,
                 capture_slice: int = 64,
                 recorders: Optional[Dict[int, Any]] = None):
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        if min_baseline < 1 or baseline_windows < min_baseline:
            raise ValueError("need 1 <= min_baseline <= baseline_windows")
        if skew_span < 1:
            raise ValueError(f"skew_span must be positive, got {skew_span}")
        self.window_ns = window_ns
        self.baseline_windows = baseline_windows
        self.min_baseline = min_baseline
        self.warmup_windows = warmup_windows
        self.merge_gap = merge_gap
        self.tail_factor = tail_factor
        self.tail_floor_ns = tail_floor_ns
        self.tail_min_requests = tail_min_requests
        self.growth_threshold = growth_threshold
        self.util_factor = util_factor
        self.util_floor = util_floor
        self.pool_wait_factor = pool_wait_factor
        self.pool_wait_floor_ns = pool_wait_floor_ns
        self.stale_threshold = stale_threshold
        self.skew_drop = skew_drop
        self.skew_span = skew_span
        self.skew_min_total = skew_min_total
        self.skew_floor_share = skew_floor_share
        self.collapse_frac = collapse_frac
        self.flatline_gap = flatline_gap
        self.max_exemplars = max_exemplars
        self.post_windows = post_windows
        self.capture_pre_ns = (2 * window_ns if capture_pre_ns is None
                               else capture_pre_ns)
        self.capture_slice = capture_slice
        #: Optional shard -> FlightRecorder map for slice capture.
        self.recorders = recorders or {}

        self.records_seen = 0
        self.anomalies: List[Anomaly] = []
        self.incidents: List[Incident] = []
        self._open: Optional[Incident] = None
        self._finalized = False
        # Trailing per-shard sealed-window history (the baseline).
        self._history: Dict[int, List[dict]] = {}
        self._beds: Dict[int, str] = {}
        self._last_seen: Dict[int, int] = {}
        self._active: Dict[int, bool] = {}
        self._flatlined: set = set()
        # Fleet-level rollover state: the global window currently
        # accumulating, the rolling span of completed windows' per-
        # shard request counts, the trailing per-shard span-share
        # history, and the trailing healthy fleet-total history.
        self._skew_window: Optional[int] = None
        self._skew_counts: Dict[int, int] = {}
        self._span: List[Dict[int, int]] = []
        self._share_hist: Dict[int, List[float]] = {}
        self._total_hist: List[int] = []
        # Closed incidents still owed post-baseline windows.
        self._post_pending: List[Incident] = []

    def __repr__(self) -> str:
        return (f"<FleetSentry records={self.records_seen} "
                f"anomalies={len(self.anomalies)} "
                f"incidents={len(self.incidents)}>")

    # -- wiring ------------------------------------------------------------

    def subscribe(self, fleet) -> "FleetSentry":
        """Subscribe to a FleetTelemetry's sealed-batch emissions."""
        fleet.subscribe(self._observe_batch)
        return self

    def _observe_batch(self, batch: List[dict]) -> None:
        for record in batch:
            self.observe(record)

    # -- the fold ----------------------------------------------------------

    def observe(self, record: dict) -> List[Anomaly]:
        """Fold one sealed window record; returns anomalies it raised."""
        if self._finalized:
            raise RuntimeError("sentry already finalized")
        self.records_seen += 1
        window = record["window"]
        shard = record["shard"]
        self._beds.setdefault(shard, record["bed"])

        fired: List[Anomaly] = []
        # Global windows complete when the sorted stream moves past
        # them; that is where the fleet-wide detectors (skew, flatline,
        # throughput collapse) evaluate — a pure function of the
        # stream, not of batching.
        if self._skew_window is None:
            self._skew_window = window
        while window > self._skew_window:
            fired.extend(self._rollover(self._skew_window))
            self._skew_window += 1
            self._skew_counts = {}
        self._skew_counts[shard] = (self._skew_counts.get(shard, 0)
                                    + record["requests"])

        # Per-record detectors against the shard's trailing baseline.
        history = self._history.setdefault(shard, [])
        if window >= self.warmup_windows:
            fired.extend(self._detect(record, history))

        for anomaly in fired:
            self._admit(anomaly)
        if (self._open is not None
                and window > self._open.last_window + self.merge_gap):
            self._close_open()

        # Targeted capture for open/just-closed incidents.
        if self._open is not None and shard in self._open.shards:
            self._open.incident_records.append(record)
            self._open.keep_exemplars(record)
        for incident in list(self._post_pending):
            budget = incident._post_budget.get(shard, 0)
            if budget > 0:
                incident.post_records.append(record)
                incident._post_budget[shard] = budget - 1
                if not any(incident._post_budget.values()):
                    self._post_pending.remove(incident)

        # Trailing-history bookkeeping.
        history.append(record)
        if len(history) > self.baseline_windows:
            del history[:len(history) - self.baseline_windows]
        self._last_seen[shard] = window
        if record["requests"]:
            self._active[shard] = True
        return fired

    def finalize(self) -> None:
        """End of stream: close any open incident.

        The last accumulating global window is *not* evaluated — the
        stream ends mid-window by construction, and a partial window
        reads as a throughput collapse or a skew that is not there.
        """
        if self._finalized:
            return
        self._finalized = True
        if self._open is not None:
            self._close_open()

    # -- detectors ---------------------------------------------------------

    def _end_ns(self, window: int) -> int:
        return (window + 1) * self.window_ns

    def _fire(self, detector: str, shard: int, window: int, metric: str,
              value, baseline, severity: float, queue=None,
              detail: str = "") -> Anomaly:
        anomaly = Anomaly(
            detector, shard, self._beds.get(shard, f"shard{shard}"),
            window, self._end_ns(window), metric, value, baseline,
            round(severity, 3), queue=queue, detail=detail)
        self.anomalies.append(anomaly)
        return anomaly

    def _detect(self, record: dict, history: List[dict]) -> List[Anomaly]:
        fired: List[Anomaly] = []
        shard = record["shard"]
        window = record["window"]
        queues = record["queues"]
        sq_hot = queues.get("sq_hot")
        if len(history) < self.min_baseline:
            return fired

        # queue_growth — SQ net growth / RQ peak step.
        growth = queues.get("sq_growth", 0)
        base_growth = max([h["queues"].get("sq_growth", 0)
                           for h in history] + [0])
        if growth >= self.growth_threshold and growth >= 2 * max(
                base_growth, 1):
            fired.append(self._fire(
                "queue_growth", shard, window, "sq_growth", growth,
                base_growth, growth / max(base_growth, 1), queue=sq_hot,
                detail=f"send-queue backlog grew {growth} WRs in one "
                       f"window (trailing max {base_growth})"))
        else:
            rq_max = queues.get("rq_depth_max", 0)
            base_rq = max(h["queues"].get("rq_depth_max", 0)
                          for h in history)
            if rq_max >= self.growth_threshold and rq_max >= 2 * max(
                    base_rq, 1):
                fired.append(self._fire(
                    "queue_growth", shard, window, "rq_depth_max",
                    rq_max, base_rq, rq_max / max(base_rq, 1),
                    queue=sq_hot,
                    detail=f"recv-queue peak depth {rq_max} vs trailing "
                           f"max {base_rq}"))

        # pu_saturation — utilization (busy incl. PU queueing) step.
        util = record.get("util", 0.0)
        base_util = max(h.get("util", 0.0) for h in history)
        if (util >= self.util_floor
                and util >= self.util_factor * max(base_util, 0.01)):
            fired.append(self._fire(
                "pu_saturation", shard, window, "util", util,
                round(base_util, 6), util / max(base_util, 0.01),
                queue=sq_hot,
                detail=f"PU busy+queue time {util:.2f} windows vs "
                       f"trailing max {base_util:.2f}"))

        # pool_pressure — QP-pool lease-wait p99 spike.
        wait = _pool_wait_p99(record)
        base_wait = max(_pool_wait_p99(h) for h in history)
        if (wait >= self.pool_wait_floor_ns
                and wait >= self.pool_wait_factor * max(base_wait, 1)):
            fired.append(self._fire(
                "pool_pressure", shard, window, "pool_wait_p99_ns",
                wait, base_wait, wait / max(base_wait, 1), queue=sq_hot,
                detail=f"lease wait p99 {wait}ns vs trailing max "
                       f"{base_wait}ns"))

        # stale_cqe — quarantine-rate step.
        stale = record.get("stale_cqes", 0)
        base_stale = max(h.get("stale_cqes", 0) for h in history)
        if stale >= self.stale_threshold and stale > base_stale:
            fired.append(self._fire(
                "stale_cqe", shard, window, "stale_cqes", stale,
                base_stale, stale / max(base_stale, 1),
                queue=queues.get("cq_hot"),
                detail=f"{stale} stale CQEs quarantined (trailing max "
                       f"{base_stale})"))

        # tail_step — p99 (falling back to p999) step-change. Gated on
        # a minimum sample count: a near-empty window's p99 is one
        # unlucky request, not a tail.
        if record["requests"] >= self.tail_min_requests:
            for metric in ("p99_ns", "p999_ns"):
                cur = _latency_metric(record, metric)
                if cur is None:
                    continue
                base_values = [
                    v for v in
                    (_latency_metric(h, metric) for h in history)
                    if v is not None]
                if len(base_values) < self.min_baseline:
                    continue
                base = max(base_values)
                if (cur >= base + self.tail_floor_ns
                        and cur >= self.tail_factor * max(base, 1)):
                    fired.append(self._fire(
                        "tail_step", shard, window, metric, cur, base,
                        cur / max(base, 1), queue=sq_hot,
                        detail=f"{metric} stepped to {cur}ns vs "
                               f"trailing max {base}ns"))
                    break
        return fired

    def _rollover(self, window: int) -> List[Anomaly]:
        """Fleet-level detectors, run when global ``window`` completes.

        All three are activity-gated: the run's ramp-up and drain
        phases — where the fleet legitimately idles and shares swing —
        must not read as anomalies, while a real fault degrades the
        fleet exactly when it is otherwise busy.
        """
        counts = dict(self._skew_counts)
        total = sum(counts.values())
        fired: List[Anomaly] = []
        warm = window >= self.warmup_windows

        # throughput_collapse — fleet-wide requests/window fall off a
        # cliff vs the trailing *healthy* mean (collapsed windows do
        # not enter the baseline: a closed-loop fleet stalled behind
        # one saturated shard keeps reading as collapsed, which is
        # what bridges a fault and its backlog-drain transient into
        # one incident).
        collapsed = False
        if len(self._total_hist) >= self.min_baseline:
            mean = sum(self._total_hist) / len(self._total_hist)
            if (warm and mean >= self.skew_min_total
                    and total <= self.collapse_frac * mean):
                collapsed = True
                fired.append(self._fire(
                    "throughput_collapse", self._busiest_shard(), window,
                    "fleet_requests", total, round(mean, 3),
                    mean / max(total, 1),
                    detail=f"fleet served {total} requests in the "
                           f"window vs a trailing mean of {mean:.1f}"))
        if not collapsed:
            self._total_hist.append(total)
            if len(self._total_hist) > self.baseline_windows:
                del self._total_hist[:len(self._total_hist)
                                     - self.baseline_windows]

        # flatline — a previously-active shard stopped emitting windows
        # entirely while the rest of the fleet stayed busy.
        if warm and total >= self.skew_min_total:
            for shard in sorted(self._last_seen):
                if (shard in self._flatlined
                        or not self._active.get(shard)):
                    continue
                last = self._last_seen[shard]
                if window - last >= self.flatline_gap:
                    history = self._history.get(shard, [])
                    base_requests = (
                        round(sum(h["requests"] for h in history)
                              / len(history), 3) if history else 0.0)
                    self._flatlined.add(shard)
                    fired.append(self._fire(
                        "flatline", shard, window, "requests", 0,
                        base_requests, base_requests,
                        detail=f"shard emitted no windows after "
                               f"{self._end_ns(last)}ns while the "
                               f"fleet served {total} requests/window "
                               f"(trailing {base_requests} "
                               f"requests/window)"))

        # skew_shift — per-shard share of fleet requests over a rolling
        # ``skew_span`` of windows (single fleet windows are too small
        # to make shares meaningful; the span smooths scheduling noise
        # while a re-homed or starved shard still collapses to ~0).
        self._span.append(counts)
        if len(self._span) > self.skew_span:
            del self._span[:len(self._span) - self.skew_span]
        if len(self._span) == self.skew_span:
            span_counts: Dict[int, int] = {}
            for window_counts in self._span:
                for shard, n in window_counts.items():
                    span_counts[shard] = span_counts.get(shard, 0) + n
            span_total = sum(span_counts.values())
            if span_total >= self.skew_min_total * self.skew_span:
                shards = sorted(set(self._share_hist) | set(span_counts))
                for shard in shards:
                    share = span_counts.get(shard, 0) / span_total
                    hist = self._share_hist.setdefault(shard, [])
                    if (warm and len(hist) >= self.min_baseline
                            and shard not in self._flatlined):
                        base = sum(hist) / len(hist)
                        if (base >= self.skew_floor_share
                                and share <= base
                                * (1.0 - self.skew_drop)):
                            fired.append(self._fire(
                                "skew_shift", shard, window,
                                "request_share", round(share, 6),
                                round(base, 6),
                                (base - share) / max(base, 1e-9),
                                detail=f"share of fleet requests fell "
                                       f"to {share:.3f} from trailing "
                                       f"mean {base:.3f} (over "
                                       f"{self.skew_span}-window "
                                       f"spans)"))
                    hist.append(share)
                    if len(hist) > self.baseline_windows:
                        del hist[:len(hist) - self.baseline_windows]
        return fired

    def _busiest_shard(self) -> int:
        """The shard the fleet most depends on: max trailing share.

        Deterministic attribution target for fleet-level anomalies;
        ties break toward the smaller shard index.
        """
        best_shard, best_share = 0, -1.0
        for shard in sorted(self._share_hist):
            hist = self._share_hist[shard]
            if not hist:
                continue
            share = sum(hist) / len(hist)
            if share > best_share:
                best_shard, best_share = shard, share
        return best_shard

    # -- incident lifecycle ------------------------------------------------

    def _admit(self, anomaly: Anomaly) -> None:
        if (self._open is not None
                and anomaly.window <= self._open.last_window
                + self.merge_gap):
            incident = self._open
        else:
            if self._open is not None:
                self._close_open()
            incident = Incident(len(self.incidents) + 1,
                                self.max_exemplars)
            self.incidents.append(incident)
            self._open = incident
        new_shard = anomaly.shard not in incident.shards
        incident.add(anomaly)
        if new_shard:
            # Pre-incident baseline: the shard's trailing windows as
            # they stood when it was implicated (pre-boost retention).
            history = self._history.get(anomaly.shard, [])
            incident.baseline_records.extend(history)
            for record in history:
                incident.keep_exemplars(record)

    def _close_open(self) -> None:
        incident = self._open
        self._open = None
        incident.closed = True
        incident.exemplars.sort(key=exemplar_order)
        del incident.exemplars[self.max_exemplars:]
        if self.post_windows > 0:
            incident._post_budget = {
                shard: self.post_windows for shard in incident.shards}
            self._post_pending.append(incident)

    # -- reporting ---------------------------------------------------------

    def _capture_slice(self, incident: Incident, shard: int) -> Optional[dict]:
        recorder = self.recorders.get(shard)
        if recorder is None:
            return None
        from_ns = max(0, incident.open_at_ns - self.capture_pre_ns)
        to_ns = self._end_ns(incident.last_window)
        kept: List[dict] = []
        truncated = False
        for rec in recorder.records:
            ts = rec.get("ts", 0)
            if ts < from_ns or ts > to_ns:
                continue
            if len(kept) >= self.capture_slice:
                truncated = True
                break
            kept.append(rec)
        kinds: Dict[str, int] = {}
        for rec in kept:
            kind = rec.get("kind", "?")
            kinds[kind] = kinds.get(kind, 0) + 1
        if recorder.evicted:
            oldest = recorder.records[0]["ts"] if recorder.records else None
            if oldest is None or oldest > from_ns:
                truncated = True
        return {
            "bed": self._beds.get(shard, f"shard{shard}"),
            "shard": shard,
            "from_ns": from_ns,
            "to_ns": to_ns,
            "records": len(kept),
            "kinds": dict(sorted(kinds.items())),
            "truncated": truncated,
            "slice": kept,
        }

    def _blame_diff(self, incident: Incident) -> Optional[dict]:
        if not any(r.get("exemplars") for r in incident.incident_records):
            return None
        if not any(r.get("exemplars") for r in incident.baseline_records):
            return None
        return diff_blame(summarize_blame(incident.incident_records),
                          summarize_blame(incident.baseline_records))

    def _baseline_summary(self, records: List[dict]) -> Optional[dict]:
        if not records:
            return None
        from .metrics import Histogram
        latency = Histogram()
        requests = 0
        windows = sorted({(r["window"], r["shard"]) for r in records})
        for record in records:
            requests += record["requests"]
            if record.get("latency"):
                latency.merge(Histogram.from_snapshot(record["latency"]))
        return {
            "windows": len(windows),
            "first_window": windows[0][0],
            "last_window": windows[-1][0],
            "requests": requests,
            "p99_ns": latency.quantile(0.99) if latency.count else None,
        }

    def incident_dict(self, incident: Incident,
                      faults: Optional[List[dict]] = None) -> dict:
        causes = incident.causes()
        top = causes[0] if causes else None
        timeline = []
        for fault in faults or ():
            if _fault_matches(fault, incident, self.window_ns):
                timeline.append({
                    "at_ns": fault["t_inject_ns"], "event": "fault",
                    "detail": f"{fault['kind']} injected on shard "
                              f"{fault['shard']}"})
        for anomaly in incident.anomalies:
            timeline.append({
                "at_ns": anomaly.at_ns, "event": "anomaly",
                "detail": f"{anomaly.detector} on shard "
                          f"{anomaly.shard}: {anomaly.detail}"})
        timeline.append({
            "at_ns": incident.open_at_ns, "event": "opened",
            "detail": f"incident #{incident.id} opened"})
        timeline.append({
            "at_ns": self._end_ns(incident.last_window), "event": "closed",
            "detail": f"incident #{incident.id} closed after window "
                      f"{incident.last_window}"})
        timeline.sort(key=lambda e: (e["at_ns"], e["event"], e["detail"]))
        return {
            "id": incident.id,
            "shards": list(incident.shards),
            "beds": [self._beds.get(s, f"shard{s}")
                     for s in incident.shards],
            "first_window": incident.first_window,
            "last_window": incident.last_window,
            "open_at_ns": incident.open_at_ns,
            "close_at_ns": self._end_ns(incident.last_window),
            "anomalies": [a.to_dict() for a in incident.anomalies],
            "causes": causes,
            "top_cause": top,
            "timeline": timeline,
            "baseline": self._baseline_summary(incident.baseline_records),
            "post": self._baseline_summary(incident.post_records),
            "blame_diff": self._blame_diff(incident),
            "exemplars": incident.exemplars[:self.max_exemplars],
            "capture": (self._capture_slice(incident, top["shard"])
                        if top else None),
        }

    def report(self, faults: Optional[List[dict]] = None,
               context: Optional[dict] = None) -> dict:
        """The full deterministic triage report (finalizes first)."""
        self.finalize()
        report = {
            "schema": SENTRY_SCHEMA,
            "window_ns": self.window_ns,
            "records_seen": self.records_seen,
            "beds": {str(s): self._beds[s] for s in sorted(self._beds)},
            "anomalies_total": len(self.anomalies),
            "faults": list(faults or ()),
            "incidents": [self.incident_dict(i, faults)
                          for i in self.incidents],
        }
        if context:
            report["context"] = context
        return report

    def report_json(self, faults: Optional[List[dict]] = None,
                    context: Optional[dict] = None) -> str:
        """Canonical JSON text — the byte-identity surface."""
        return json.dumps(self.report(faults, context), sort_keys=True,
                          indent=2) + "\n"


# -- fault matching (shared with repro.bench.faults / the CLI) -------------


def _fault_matches(fault: dict, incident, window_ns: int) -> bool:
    """Time-overlap + shard check between a fault and an incident."""
    slack = 4 * window_ns
    start = fault["t_inject_ns"] - slack
    end = (fault.get("t_clear_ns") or fault["t_inject_ns"]) + 4 * slack
    open_ns = (incident["open_at_ns"] if isinstance(incident, dict)
               else incident.open_at_ns)
    shards = (incident["shards"] if isinstance(incident, dict)
              else incident.shards)
    return start <= open_ns <= end and fault["shard"] in shards


def triage_verdict(report: dict) -> dict:
    """Match incidents to injected faults; classify the leftovers.

    A fault is **explained** when some incident overlaps its injection
    range, implicates its shard, and (when the fault declares
    ``expect_phases``) the incident's top-ranked cause carries one of
    the expected phases on that shard. An incident matching no fault is
    a **false positive**; a fault matching no incident is **missed**.
    Detection latency is simulated ns from injection to the matching
    incident's open timestamp.
    """
    window_ns = report["window_ns"]
    faults = report.get("faults", [])
    incidents = report.get("incidents", [])
    explained = []
    missed = []
    matched_ids = set()
    for fault in faults:
        match = None
        for incident in incidents:
            if not _fault_matches(fault, incident, window_ns):
                continue
            expect = fault.get("expect_phases")
            top = incident.get("top_cause")
            if expect and (top is None or top["phase"] not in expect
                           or top["shard"] != fault["shard"]):
                continue
            match = incident
            break
        if match is None:
            missed.append(fault)
        else:
            matched_ids.add(match["id"])
            explained.append({
                "fault": fault,
                "incident": match["id"],
                "detection_latency_ns": (match["open_at_ns"]
                                         - fault["t_inject_ns"]),
                "top_cause": match["top_cause"],
            })
    false_positives = [i["id"] for i in incidents
                       if i["id"] not in matched_ids]
    return {
        "explained": explained,
        "missed": missed,
        "false_positives": false_positives,
        "incidents": len(incidents),
        "mean_detection_ns": (
            round(sum(e["detection_latency_ns"] for e in explained)
                  / len(explained), 1) if explained else None),
    }


# -- small record accessors ------------------------------------------------


def _latency_metric(record: dict, metric: str):
    latency = record.get("latency")
    if not latency:
        return None
    return latency.get(metric[:-3])


def _pool_wait_p99(record: dict) -> int:
    pool_wait = record.get("pool_wait")
    if not pool_wait:
        return 0
    return pool_wait.get("p99") or 0
