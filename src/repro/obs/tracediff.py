"""First-divergence diffing of flight-recorder journals.

Two runs of a deterministic simulator should produce identical
journals; when they do not, the interesting question is never "how many
lines differ" but **which causally-identified event diverged first**,
and why. Diffing journals line-by-line answers the wrong question: a
single early perturbation shifts every later timestamp and sequence
number, burying the root cause under thousands of knock-on diffs.

This module aligns two journals on **causal keys** instead of wall
(sequence) order. A causal key names an event by *what* it is in the
program's dataflow — queue + monotonic WR index for a WQE's lifecycle
events, CQ + monotonic completion count for CQEs, per-queue doorbell
ordinal, per-NIC atomic ordinal, per-region store ordinal — never by
*when* it happened. Matched pairs are then compared field-by-field and
every difference is typed:

``wqe_bytes``
    The same WR's slot image differs: resolved to chain-IR field names
    via :func:`repro.obs.events.wqe_field_diff` ("``operand1: 0x42 ->
    0x43``"), the signature of a perturbed or mis-armed chain.
``field``
    Any other payload mismatch (status, store digest, CAS original...).
``timing``
    Identical content at a different simulated time; reported with the
    signed delta.
``missing`` / ``extra``
    The causal key exists in only one journal.
``cqe_count``
    Both runs completed on a CQ but reached different final counts —
    summarized per-CQ instead of drowning in per-CQE missing/extra.

The **first divergence** is the surviving divergence with the smallest
(ts, seq) — the earliest causal point where the runs disagree. Its
:func:`causal_slice` walks the journal backwards collecting the N
events that plausibly *fed* it: same-queue lifecycle events, stores
and atomics overlapping its slot address span, the ENABLE that released
its queue, the CQE its WAIT woke on. For a flipped CAS arm the slice
names the arming op.

Like the rest of ``repro.obs`` post-processing, nothing here runs
during a simulation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .events import format_field_diff, wqe_field_diff
from .recorder import Journal

__all__ = [
    "Divergence",
    "DiffReport",
    "causal_key",
    "causal_slice",
    "diff_journals",
    "records_from_trace",
    "render_report",
]

#: Fields that never take part in content comparison: wall/sequence
#: identity (the whole point of causal alignment) and bed stamps.
_IGNORED_FIELDS = ("seq", "ts", "bed")

#: Record kinds whose causal identity is (queue, WR index).
_WR_KINDS = ("post", "fetch", "exec", "done", "wait", "enable")


def causal_key(record: Dict[str, Any],
               ordinals: Dict[Tuple, int]) -> Tuple:
    """The causal identity of a journal record.

    ``ordinals`` tracks per-stream occurrence counts for streams whose
    records carry no intrinsic monotonic identity (doorbells, atomics,
    stores); pass the same dict for every record of one journal. Every
    key gets a trailing occurrence ordinal so accidental key collisions
    degrade to positional matching within the colliding stream instead
    of mispairing.
    """
    bed = record.get("bed", 0)
    kind = record["kind"]
    if kind in _WR_KINDS:
        base = (bed, "wq", record["wq"], kind, record["wr"])
    elif kind == "doorbell":
        base = (bed, "wq", record["wq"], "doorbell")
    elif kind == "cqe":
        base = (bed, "cq", record["cq"], "cqe", record["count"])
    elif kind == "atomic":
        base = (bed, "atomic", record["nic"])
    elif kind == "store":
        base = (bed, "store", record["mem"], record["region"])
    else:
        base = (bed, kind)
    ordinal = ordinals.get(base, 0)
    ordinals[base] = ordinal + 1
    return base + (ordinal,)


class Divergence:
    """One typed difference between aligned journals."""

    __slots__ = ("kind", "key", "a", "b", "detail", "fields")

    def __init__(self, kind: str, key: Tuple,
                 a: Optional[Dict[str, Any]],
                 b: Optional[Dict[str, Any]],
                 detail: str,
                 fields: Optional[List[Dict[str, Any]]] = None):
        self.kind = kind        # wqe_bytes|field|timing|missing|extra|cqe_count
        self.key = key
        self.a = a
        self.b = b
        self.detail = detail
        self.fields = fields or []

    @property
    def ts(self) -> int:
        record = self.a or self.b
        return record.get("ts", 0) if record else 0

    @property
    def seq(self) -> int:
        record = self.a or self.b
        return record.get("seq", 0) if record else 0

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "key": list(self.key),
                "detail": self.detail, "a": self.a, "b": self.b,
                "fields": self.fields}

    def __repr__(self) -> str:
        return f"<Divergence {self.kind} @{self.ts} {self.detail!r}>"


class DiffReport:
    """All divergences between two journals, first one resolved."""

    def __init__(self, divergences: List[Divergence],
                 total_a: int, total_b: int, aligned: int):
        self.divergences = divergences
        self.total_a = total_a
        self.total_b = total_b
        self.aligned = aligned

    @property
    def identical(self) -> bool:
        return not self.divergences

    @property
    def first(self) -> Optional[Divergence]:
        """The earliest divergence in causal order.

        Ordered by (ts, kind priority, seq): among divergences at the
        same simulated instant — a ring store and the WQE post it
        belongs to land on identical timestamps — the field-resolved
        ``wqe_bytes`` one is the explanatory one and wins.
        """
        if not self.divergences:
            return None
        return min(self.divergences,
                   key=lambda d: (d.ts, d.kind != "wqe_bytes", d.seq))

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for divergence in self.divergences:
            counts[divergence.kind] = counts.get(divergence.kind, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        first = self.first
        return {"identical": self.identical,
                "aligned": self.aligned,
                "total_a": self.total_a, "total_b": self.total_b,
                "by_kind": self.by_kind(),
                "first": first.to_dict() if first else None,
                "divergences": [d.to_dict() for d in self.divergences]}

    def __repr__(self) -> str:
        return (f"<DiffReport {'identical' if self.identical else ''}"
                f" divergences={len(self.divergences)}"
                f" aligned={self.aligned}>")


def _content(record: Dict[str, Any]) -> Dict[str, Any]:
    return {key: value for key, value in record.items()
            if key not in _IGNORED_FIELDS}


def _compare_pair(key: Tuple, a: Dict[str, Any],
                  b: Dict[str, Any]) -> Optional[Divergence]:
    content_a = _content(a)
    content_b = _content(b)
    if content_a == content_b:
        if a.get("ts") != b.get("ts"):
            delta = b.get("ts", 0) - a.get("ts", 0)
            return Divergence(
                "timing", key, a, b,
                f"{a['kind']} happened at {a.get('ts')} ns in A but "
                f"{b.get('ts')} ns in B ({delta:+d} ns)")
        return None
    # WQE byte images get the field-resolved treatment.
    if "wqe" in content_a and "wqe" in content_b \
            and content_a["wqe"] != content_b["wqe"]:
        fields = wqe_field_diff(bytes.fromhex(content_a["wqe"]),
                                bytes.fromhex(content_b["wqe"]))
        named = ", ".join(format_field_diff(f) for f in fields)
        return Divergence(
            "wqe_bytes", key, a, b,
            f"{a['kind']} of wr {a.get('wr')} on wq {a.get('wq')}: "
            f"WQE bytes differ — {named}", fields=fields)
    differing = sorted(key for key in set(content_a) | set(content_b)
                       if content_a.get(key) != content_b.get(key))
    fields = [{"field": name, "a": content_a.get(name),
               "b": content_b.get(name)} for name in differing]
    detail = ", ".join(f"{f['field']}: {f['a']!r} -> {f['b']!r}"
                       for f in fields)
    return Divergence(
        "field", key, a, b,
        f"{a['kind']} differs in {detail}", fields=fields)


def _fold_cqe_counts(divergences: List[Divergence]) -> List[Divergence]:
    """Collapse trailing missing/extra CQE runs into cqe_count.

    When one run simply completed more WRs on a CQ, every surplus CQE
    shows up as missing/extra; summarizing them as one per-CQ count
    mismatch keeps the report about causes, not symptoms.
    """
    per_cq: Dict[Tuple, List[Divergence]] = {}
    kept: List[Divergence] = []
    for divergence in divergences:
        record = divergence.a or divergence.b
        if (divergence.kind in ("missing", "extra")
                and record and record.get("kind") == "cqe"):
            per_cq.setdefault(
                (record.get("bed", 0), record["cq"]), []).append(divergence)
        else:
            kept.append(divergence)
    for (bed, cq), group in sorted(per_cq.items(),
                                   key=lambda item: str(item[0])):
        if len(group) == 1:
            kept.extend(group)
            continue
        counts = [(d.a or d.b)["count"] for d in group]
        direction = "A" if group[0].kind == "missing" else "B"
        earliest = min(group, key=lambda d: (d.ts, d.seq))
        record = earliest.a or earliest.b
        kept.append(Divergence(
            "cqe_count", earliest.key, earliest.a, earliest.b,
            f"cq {cq} delivered {len(group)} more CQEs in run "
            f"{'B' if direction == 'A' else 'A'} (counts "
            f"{min(counts)}..{max(counts)} unmatched)"))
    return kept


def diff_journals(journal_a: Journal, journal_b: Journal,
                  fold_cqe_counts: bool = True) -> DiffReport:
    """Align two journals on causal keys and type every difference."""
    ordinals_a: Dict[Tuple, int] = {}
    ordinals_b: Dict[Tuple, int] = {}
    keyed_a = [(causal_key(record, ordinals_a), record)
               for record in journal_a.records]
    keyed_b = [(causal_key(record, ordinals_b), record)
               for record in journal_b.records]
    index_b = {key: record for key, record in keyed_b}
    divergences: List[Divergence] = []
    aligned = 0
    for key, record_a in keyed_a:
        record_b = index_b.pop(key, None)
        if record_b is None:
            divergences.append(Divergence(
                "missing", key, record_a, None,
                f"{record_a['kind']} at ts {record_a.get('ts')} "
                f"(seq {record_a.get('seq')}) has no match in B"))
            continue
        aligned += 1
        divergence = _compare_pair(key, record_a, record_b)
        if divergence is not None:
            divergences.append(divergence)
    for key, record_b in keyed_b:
        if key in index_b:
            divergences.append(Divergence(
                "extra", key, None, record_b,
                f"{record_b['kind']} at ts {record_b.get('ts')} "
                f"(seq {record_b.get('seq')}) appears only in B"))
    if fold_cqe_counts:
        divergences = _fold_cqe_counts(divergences)
    return DiffReport(divergences, len(journal_a.records),
                      len(journal_b.records), aligned)


# -- causal slicing -------------------------------------------------------


def _addr_span(record: Dict[str, Any]) -> Optional[Tuple[int, int]]:
    if record["kind"] in ("post", "fetch") and "addr" in record:
        return (record["addr"], record["addr"] + record["slots"] * 64)
    if record["kind"] == "store":
        return (record["addr"], record["addr"] + record["len"])
    if record["kind"] == "atomic":
        return (record["raddr"], record["raddr"] + 8)
    return None


def _overlaps(span: Optional[Tuple[int, int]],
              spans: List[Tuple[int, int]]) -> bool:
    if span is None:
        return False
    lo, hi = span
    return any(lo < end and start < hi for start, end in spans)


def causal_slice(journal: Journal, record: Dict[str, Any],
                 depth: int = 8) -> List[Dict[str, Any]]:
    """The ≤``depth`` most recent events plausibly feeding ``record``.

    Walks the journal backwards from the record, growing a focus set of
    queues, CQ numbers and address spans: an event joins the slice when
    it shares a queue with the focus, targets a focused queue with an
    ENABLE, stores into / atomically updates a focused address span
    (this is what names the arming CAS for a divergent branch WQE), or
    completes on a CQ a focused WAIT was blocked on. Joining events
    widen the focus with their own upstream identities. Oldest first.
    """
    bed = record.get("bed", 0)
    focus_wqs = set()
    focus_cqs = set()
    focus_spans: List[Tuple[int, int]] = []
    if "wq" in record:
        focus_wqs.add(record["wq"])
    if record["kind"] == "cqe":
        focus_cqs.add(record.get("cq_num"))
    if record["kind"] == "wait":
        focus_cqs.add(record.get("cq"))
    span = _addr_span(record)
    if span is not None:
        focus_spans.append(span)
    seq = record.get("seq")
    slice_reversed: List[Dict[str, Any]] = []
    for candidate in reversed(journal.records):
        if len(slice_reversed) >= depth:
            break
        if candidate.get("bed", 0) != bed:
            continue
        if seq is not None and candidate.get("seq", -1) >= seq:
            continue
        kind = candidate["kind"]
        include = False
        if candidate.get("wq") in focus_wqs:
            include = True
        elif kind == "enable" and candidate.get("target_name") in focus_wqs:
            include = True
            focus_wqs.add(candidate["wq"])
        elif kind in ("store", "atomic", "post", "fetch") \
                and _overlaps(_addr_span(candidate), focus_spans):
            include = True
            if kind == "atomic":
                focus_wqs.add(candidate.get("src"))
        elif kind == "cqe" and candidate.get("cq_num") in focus_cqs:
            include = True
        elif kind == "wait" and candidate.get("wq") in focus_wqs:
            include = True
            focus_cqs.add(candidate.get("cq"))
        if include:
            if candidate.get("wq"):
                focus_wqs.add(candidate["wq"])
            candidate_span = _addr_span(candidate)
            if candidate_span is not None and kind in ("post", "fetch"):
                focus_spans.append(candidate_span)
            slice_reversed.append(candidate)
    return list(reversed(slice_reversed))


# -- Chrome-trace adapter -------------------------------------------------


def records_from_trace(data) -> List[Dict[str, Any]]:
    """Journal-shaped records from an exported Chrome trace.

    Only events carrying causal identity in their args survive (WQE
    lifecycle instants, CQEs, atomics); spans and counters are dropped.
    No slot byte images exist in a Chrome trace, so diffs over these
    records type as ``field``, never ``wqe_bytes``.
    """
    from .events import events_from_trace
    records: List[Dict[str, Any]] = []
    for event in events_from_trace(data):
        args = event.args or {}
        record: Optional[Dict[str, Any]] = None
        if event.cat == "queue" and event.name.startswith("post:"):
            record = {"kind": "post",
                      "wq": event.track.split("wq:", 1)[-1],
                      "wr": args["wr_index"],
                      "op": event.name.split(":", 1)[1]}
        elif event.cat == "queue" and event.name == "doorbell":
            record = {"kind": "doorbell",
                      "wq": event.track.split("wq:", 1)[-1],
                      "up_to": args.get("up_to")}
        elif event.cat == "fetch" and event.name.startswith("wqe:"):
            record = {"kind": "fetch",
                      "wq": event.track.split("wq:", 1)[-1],
                      "wr": args["wr_index"],
                      "op": event.name.split(":", 1)[1]}
        elif (event.cat == "exec" and event.name.startswith("op:")
                and "wr_index" in args):
            record = {"kind": "done",
                      "wq": event.track.split("wq:", 1)[-1],
                      "wr": args["wr_index"],
                      "op": event.name.split(":", 1)[1]}
            if "status" in args:
                record["status"] = args["status"]
        elif (event.cat == "cqe" and event.name.startswith("cqe:")
                and "count" in args):
            record = {"kind": "cqe",
                      "cq": event.track.split("cq:", 1)[-1],
                      "count": args["count"],
                      "op": event.name.split(":", 1)[1]}
            for field in ("status", "wr_id"):
                if field in args:
                    record[field] = args[field]
        elif event.cat == "atomic":
            record = {"kind": "atomic",
                      "nic": event.track.split("/")[0],
                      "op": event.name}
            for field in ("raddr", "expected", "desired",
                          "original", "delta", "swapped"):
                if field in args:
                    record[field] = args[field]
        if record is not None:
            record["ts"] = event.ts
            record["seq"] = len(records)
            records.append(record)
    return records


# -- rendering ------------------------------------------------------------


def _render_record(record: Optional[Dict[str, Any]]) -> str:
    if record is None:
        return "(absent)"
    keys = [key for key in ("kind", "wq", "cq", "wr", "count", "op",
                            "status", "region", "src", "ts")
            if key in record]
    body = " ".join(f"{key}={record[key]}" for key in keys)
    return f"seq {record.get('seq', '?')}: {body}"


def render_report(report: DiffReport,
                  journal_a: Optional[Journal] = None,
                  slice_depth: int = 8) -> str:
    """Human-readable first-divergence report."""
    lines: List[str] = []
    if report.identical:
        lines.append(f"journals are causally identical "
                     f"({report.aligned} events aligned)")
        return "\n".join(lines)
    counts = ", ".join(f"{kind}: {count}"
                       for kind, count in sorted(report.by_kind().items()))
    lines.append(f"{len(report.divergences)} divergence(s) "
                 f"[{counts}] over {report.aligned} aligned events "
                 f"(A: {report.total_a}, B: {report.total_b})")
    first = report.first
    lines.append("")
    lines.append(f"first divergence ({first.kind}) at ts {first.ts}:")
    lines.append(f"  {first.detail}")
    lines.append(f"  A: {_render_record(first.a)}")
    lines.append(f"  B: {_render_record(first.b)}")
    if journal_a is not None and first.a is not None and slice_depth > 0:
        lines.append("")
        lines.append(f"causal slice (last {slice_depth} feeding events,"
                     " oldest first):")
        feeding = causal_slice(journal_a, first.a, depth=slice_depth)
        if not feeding:
            lines.append("  (none recorded)")
        for record in feeding:
            lines.append(f"  {_render_record(record)}")
    return "\n".join(lines)
