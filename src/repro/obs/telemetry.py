"""Fleet telemetry: windowed per-bed time-series over simulated time.

Every existing obs layer (tracer, critpath, recorder) is per-request or
per-run; this module watches a *fleet* the way real remote-memory
fabrics are watched — fixed simulated-time windows of counters, queue
depths, PU occupancy and mergeable tail-latency histograms, one record
per (window, bed) — deterministically, with zero cost when detached.

Determinism contract
--------------------

A window record is a **pure function of the bed's simulated event
stream**: hooks fire from instrumentation sites the simulated schedule
already visits, never schedule events, and never read wall-clock state.
Window boundaries are ``sim.now // window_ns`` — no timers. The sharded
synchronizer's per-round flush (:meth:`FleetTelemetry.flush`) only
controls *when* finalized records are emitted, never what they contain:
a window ``W`` is finalized either by the bed's own first event past it
or by a flush at global time ``t_min`` with ``(W+1)*window_ns <=
t_min`` — and since every future event anywhere is at ``>= t_min``, no
event can land in ``W`` afterwards. Emission batches partition the
stream by ascending window ranges and each batch is sorted in the
canonical ``(window, shard)`` order, so the concatenated JSONL stream
is globally sorted — **byte-identical** between
:meth:`~repro.sim.sharded.ShardedSimulation.run` and
:meth:`~repro.sim.sharded.ShardedSimulation.run_serial` drives of the
same scenario (tested on the 16-bed cluster).

One subtlety: a PU busy span can straddle a window boundary. The hook
fires once, when the span *ends*, and the whole span is attributed to
the window containing its end — spans are tens of nanoseconds against
>=10 us windows, and end-attribution is mode-independent where
proportional splitting against the flush schedule would not be.

On top of the stream sit derived signals (utilization, queue growth,
per-window p50/p99/p999), declarative SLO rules with multi-window
burn-rate alerts (:func:`evaluate_slo`) that fire at a deterministic
simulated timestamp and name the violating bed and queue, and hot-key
skew attribution. ``tools/fleet_top.py`` renders all of it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from . import _activate, _deactivate
from .metrics import Histogram

__all__ = ["DEFAULT_WINDOW_NS", "TelemetryCollector", "FleetTelemetry",
           "SloRule", "BurnAlert", "load_slo_rules", "evaluate_slo",
           "summarize_records"]

#: Default telemetry window width. 20 us spans hundreds of NIC events
#: per busy bed yet gives the ~265 us cluster run a dozen-point series.
DEFAULT_WINDOW_NS = 20_000

_QUANTILES = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))


def _hot(depth_max: Dict[str, int]):
    """(peak depth, queue name) with deterministic name tie-breaking."""
    best_name, best = None, 0
    for name in sorted(depth_max):
        depth = depth_max[name]
        if depth > best:
            best, best_name = depth, name
    return best, best_name


class TelemetryCollector:
    """Per-bed windowed sampler, attached as ``sim.telemetry``.

    Hook methods are called from instrumentation sites behind the
    ``repro.obs.enabled`` flag; each rolls the window first (finalizing
    the previous one with its pre-update state) and then applies its
    update, so end-of-window gauges are consistent.
    """

    __slots__ = ("fleet", "sim", "bed", "shard", "window_ns", "finalized",
                 "_window", "_seq", "_posts", "_doorbells", "_fetches",
                 "_wrs", "_cqes", "_dma_bytes", "_requests", "_serviced",
                 "_pu_busy", "_latency", "_keys", "_depth", "_depth_wmax",
                 "_cq_wmax", "_sq_open_depth", "_run_hist", "exemplar_k",
                 "_exemplars", "_pool_wait", "_stale_cqes")

    def __init__(self, fleet: "FleetTelemetry", sim, bed: str, shard: int):
        self.fleet = fleet
        self.sim = sim
        self.bed = bed
        self.shard = shard
        self.window_ns = fleet.window_ns
        #: Tail exemplars retained per window (0 disables capture).
        self.exemplar_k = fleet.exemplars
        #: Finalized records awaiting emission, in window order.
        self.finalized: List[dict] = []
        self._window: Optional[int] = None
        self._seq = 0
        # Persistent queue depths (survive window rolls): kind ->
        # queue name -> outstanding WRs, clamped at zero because
        # recycled managed rings legitimately fetch past posted_count.
        self._depth = {"send": {}, "recv": {}}
        self._run_hist = sim.metrics.histogram("telemetry.request_ns")
        self._reset_window_state()
        self._sq_open_depth = 0

    def __repr__(self) -> str:
        return f"<TelemetryCollector {self.bed} window={self._window}>"

    def _reset_window_state(self) -> None:
        self._posts = 0
        self._doorbells = 0
        self._fetches = 0
        self._wrs = 0
        self._cqes = 0
        self._dma_bytes = 0
        self._requests = 0
        self._serviced = 0
        self._pu_busy = 0
        self._stale_cqes = 0
        self._latency = Histogram()
        self._pool_wait = Histogram()
        self._exemplars: List[dict] = []
        self._keys: Dict[str, int] = {}
        # Per-window peak depth per queue, seeded from the carried-over
        # depths so an idle-but-backlogged queue still reports its level.
        self._depth_wmax = {
            kind: dict(depths) for kind, depths in self._depth.items()}
        self._cq_wmax: Dict[str, int] = {}

    # -- windowing --------------------------------------------------------

    def _touch(self) -> None:
        window = self.sim.now // self.window_ns
        if window != self._window:
            if self._window is not None:
                self._finalize_window()
            self._window = window
            self._sq_open_depth = sum(self._depth["send"].values())

    def roll_before(self, floor: Optional[int]) -> None:
        """Finalize the open window if it ends at or before ``floor``.

        Called by :meth:`FleetTelemetry.flush` with ``floor = t_min //
        window_ns``: every future event is at ``>= t_min``, so a window
        strictly before ``floor`` can never receive another sample.
        ``None`` finalizes unconditionally (end of run).
        """
        if self._window is not None and (floor is None
                                         or self._window < floor):
            self._finalize_window()
            self._window = None

    def _finalize_window(self) -> None:
        window = self._window
        window_ns = self.window_ns
        latency = None
        if self._latency.count:
            latency = self._latency.snapshot()
            for label, fraction in _QUANTILES:
                latency[label] = self._latency.quantile(fraction)
        sq_max, sq_hot = _hot(self._depth_wmax["send"])
        rq_max, _rq_hot = _hot(self._depth_wmax["recv"])
        cq_max, cq_hot = _hot(self._cq_wmax)
        sq_end = sum(self._depth["send"].values())
        record = {
            "window": window,
            "start_ns": window * window_ns,
            "end_ns": (window + 1) * window_ns,
            "bed": self.bed,
            "shard": self.shard,
            "seq": self._seq,
            "posts": self._posts,
            "doorbells": self._doorbells,
            "fetches": self._fetches,
            "wrs": self._wrs,
            "cqes": self._cqes,
            "dma_bytes": self._dma_bytes,
            "requests": self._requests,
            "serviced": self._serviced,
            "latency": latency,
            "queues": {
                "sq_depth_max": sq_max,
                "sq_hot": sq_hot,
                "sq_depth_end": sq_end,
                "sq_growth": sq_end - self._sq_open_depth,
                "rq_depth_max": rq_max,
                "cq_depth_max": cq_max,
                "cq_hot": cq_hot,
            },
            "pu_busy_ns": self._pu_busy,
            "util": round(self._pu_busy / window_ns, 6),
        }
        if self._stale_cqes:
            # Conditional field: a healthy fleet quarantines nothing,
            # and omitting the zero keeps pre-existing streams (and
            # their byte-identity baselines) unchanged.
            record["stale_cqes"] = self._stale_cqes
        if self._keys:
            record["keys"] = dict(sorted(self._keys.items()))
        if self._pool_wait.count:
            pool_wait = self._pool_wait.snapshot()
            for label, fraction in _QUANTILES:
                pool_wait[label] = self._pool_wait.quantile(fraction)
            record["pool_wait"] = pool_wait
        if self._exemplars:
            # Top-k slowest requests of the window, deterministically:
            # larger latency first, ties by smaller (shard, seq).
            from .blame import exemplar_order
            self._exemplars.sort(key=exemplar_order)
            record["exemplars"] = self._exemplars[:self.exemplar_k]
        self._seq += 1
        self.finalized.append(record)
        self._reset_window_state()

    # -- hooks (instrumentation sites) ------------------------------------

    def _bump_depth(self, kind: str, name: str, delta: int) -> None:
        depths = self._depth[kind]
        depth = max(0, depths.get(name, 0) + delta)
        depths[name] = depth
        wmax = self._depth_wmax[kind]
        if depth > wmax.get(name, 0):
            wmax[name] = depth

    def on_post(self, wq) -> None:
        self._touch()
        self._posts += 1
        self._bump_depth(wq.kind, wq.name, 1)

    def on_doorbell(self, wq) -> None:
        self._touch()
        self._doorbells += 1

    def on_fetch(self, wq, count: int) -> None:
        self._touch()
        self._fetches += count
        self._bump_depth(wq.kind, wq.name, -count)

    def on_exec(self, wq) -> None:
        self._touch()
        self._wrs += 1

    def on_pu(self, wq, busy_ns: int) -> None:
        self._touch()
        self._pu_busy += busy_ns

    def on_cqe(self, cq) -> None:
        self._touch()
        self._cqes += 1
        depth = len(cq._entries) + 1  # the CQE being delivered included
        if depth > self._cq_wmax.get(cq.name, 0):
            self._cq_wmax[cq.name] = depth

    def on_dma(self, nic, nbytes: int) -> None:
        self._touch()
        self._dma_bytes += nbytes

    def on_pool_wait(self, pool, wait_ns: int) -> None:
        """One QP-pool lease acquisition waited ``wait_ns`` (0 = free)."""
        self._touch()
        self._pool_wait.observe(wait_ns)
        self.sim.metrics.histogram("telemetry.pool_wait_ns").observe(
            wait_ns)

    def request_complete(self, latency_ns: int, key=None,
                         blame=None) -> None:
        """A client-visible request finished with the given latency.

        ``blame`` is the request's :class:`repro.obs.blame.RequestBlame`
        context (or ``None``): with exemplar capture on, its finished
        per-phase breakdown joins the window's tail-exemplar pool —
        bounded at 4k candidates between prunes, top-k at finalize.
        """
        self._touch()
        self._requests += 1
        self._latency.observe(latency_ns)
        self._run_hist.observe(latency_ns)
        if key is not None:
            key = str(key)
            self._keys[key] = self._keys.get(key, 0) + 1
        if blame is not None and self.exemplar_k:
            self._exemplars.append(blame.finish(self.sim.now))
            if len(self._exemplars) >= 4 * self.exemplar_k:
                from .blame import exemplar_order
                self._exemplars.sort(key=exemplar_order)
                del self._exemplars[self.exemplar_k:]

    def on_stale_cqe(self, cq) -> None:
        """The shared-CQ demux quarantined one stale CQE."""
        self._touch()
        self._stale_cqes += 1

    def serviced(self) -> None:
        """A frontend finished servicing one inbound request."""
        self._touch()
        self._serviced += 1


class FleetTelemetry:
    """Cross-bed collector registry, merger and emitter.

    Attach one collector per bed, point ``ShardedSimulation.telemetry``
    at this object (the synchronizer calls :meth:`flush` with every
    round's ``t_min``), and call :meth:`finalize` after the run. The
    merged stream lands in :attr:`records` and, line by line as windows
    seal, in the optional ``sink`` (a writable file-like, JSONL).
    """

    def __init__(self, window_ns: int = DEFAULT_WINDOW_NS, sink=None,
                 exemplars: int = 0):
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        if exemplars < 0:
            raise ValueError(f"exemplars must be >= 0, got {exemplars}")
        self.window_ns = window_ns
        #: Tail exemplars per (window, bed): the k slowest requests'
        #: full per-phase blame breakdowns ride each window record
        #: (see ``repro.obs.blame``); 0 keeps the stream unchanged.
        self.exemplars = exemplars
        self.records: List[dict] = []
        self.sink = sink
        self.collectors: List[TelemetryCollector] = []
        self._observers: List = []
        self._closed = False

    def __repr__(self) -> str:
        return (f"<FleetTelemetry beds={len(self.collectors)} "
                f"window={self.window_ns}ns records={len(self.records)}>")

    def attach(self, sim, bed: str = "", shard: Optional[int] = None
               ) -> TelemetryCollector:
        """Admit one bed's simulator; flips the obs fast-path flag on."""
        if sim.telemetry is not None:
            raise RuntimeError(f"simulator already has a telemetry "
                               f"collector ({sim.telemetry!r})")
        index = len(self.collectors)
        collector = TelemetryCollector(
            self, sim, bed or f"bed{index}",
            shard if shard is not None else index)
        sim.telemetry = collector
        self.collectors.append(collector)
        _activate()
        return collector

    def subscribe(self, observer) -> None:
        """Register a callable invoked with every sealed record batch.

        Observers see exactly the emitted stream: batches partition it,
        each batch is sorted in the canonical ``(window, shard)`` order,
        and the concatenation is byte-identical between drive modes.
        Batch *boundaries* are drive-mode dependent (they follow the
        synchronizer's flush cadence), so a deterministic observer must
        fold over records one at a time and never key decisions on
        where a batch starts or ends — the contract
        :class:`repro.obs.sentry.FleetSentry` is built on.
        """
        self._observers.append(observer)

    # -- emission ---------------------------------------------------------

    def flush(self, t_min: Optional[int] = None) -> List[dict]:
        """Seal and emit every window that can no longer change.

        ``t_min`` is the synchronizer's global lower bound on all
        future event times; ``None`` means end-of-run (emit all).
        Returns the newly emitted records.
        """
        floor = None if t_min is None else t_min // self.window_ns
        batch: List[dict] = []
        for collector in self.collectors:
            collector.roll_before(floor)
            pending = collector.finalized
            take = len(pending)
            if floor is not None:
                take = 0
                while take < len(pending) and pending[take]["window"] < floor:
                    take += 1
            if take:
                batch.extend(pending[:take])
                del pending[:take]
        batch.sort(key=lambda record: (record["window"], record["shard"]))
        self.records.extend(batch)
        if self.sink is not None and batch:
            self.sink.write("".join(
                json.dumps(record, sort_keys=True) + "\n"
                for record in batch))
        if batch:
            for observer in self._observers:
                observer(batch)
        return batch

    def finalize(self) -> List[dict]:
        """Seal everything (end of run); returns all emitted records."""
        self.flush(None)
        return self.records

    def close(self) -> None:
        """Detach every collector (clears the obs flag with the last)."""
        if self._closed:
            return
        self._closed = True
        for collector in self.collectors:
            if collector.sim.telemetry is collector:
                collector.sim.telemetry = None
            _deactivate()

    def to_jsonl(self) -> str:
        return "".join(json.dumps(record, sort_keys=True) + "\n"
                       for record in self.records)


# -- stream post-processing -----------------------------------------------


def metric_value(record: dict, metric: str):
    """Extract a named derived signal from one window record.

    Latency metrics (``p50_ns``/``p99_ns``/``p999_ns``/
    ``latency_max_ns``) are ``None`` for windows without requests;
    queue metrics come from the ``queues`` sub-dict; everything else
    is a top-level counter or gauge.
    """
    if metric in ("p50_ns", "p99_ns", "p999_ns", "latency_max_ns"):
        latency = record.get("latency")
        if not latency:
            return None
        if metric == "latency_max_ns":
            return latency.get("max")
        return latency.get(metric[:-3])
    if metric in ("pool_wait_p50_ns", "pool_wait_p99_ns",
                  "pool_wait_p999_ns", "pool_wait_max_ns"):
        pool_wait = record.get("pool_wait")
        if not pool_wait:
            return None
        if metric == "pool_wait_max_ns":
            return pool_wait.get("max")
        return pool_wait.get(metric[len("pool_wait_"):-3])
    queues = record.get("queues", {})
    if metric in queues:
        return queues[metric]
    return record.get(metric)


def summarize_records(records: List[dict]) -> Dict[str, dict]:
    """Whole-run per-bed rollup: the data behind the ``fleet_top`` table.

    Latency histograms merge across windows (the associativity the
    log-bucketed representation guarantees); counters sum; depths max;
    utilization averages over the bed's active window span.
    """
    beds: Dict[str, dict] = {}
    hists: Dict[str, Histogram] = {}
    pool_hists: Dict[str, Histogram] = {}
    for record in records:
        bed = record["bed"]
        summary = beds.get(bed)
        if summary is None:
            summary = beds[bed] = {
                "bed": bed, "shard": record["shard"], "windows": 0,
                "posts": 0, "doorbells": 0, "fetches": 0, "wrs": 0,
                "cqes": 0, "dma_bytes": 0, "requests": 0, "serviced": 0,
                "pu_busy_ns": 0, "sq_depth_max": 0, "cq_depth_max": 0,
                "sq_hot": None, "keys": {}, "exemplars": 0,
                "first_window": record["window"],
                "last_window": record["window"],
            }
            hists[bed] = Histogram()
            pool_hists[bed] = Histogram()
        summary["windows"] += 1
        summary["last_window"] = record["window"]
        for field in ("posts", "doorbells", "fetches", "wrs", "cqes",
                      "dma_bytes", "requests", "serviced", "pu_busy_ns"):
            summary[field] += record[field]
        queues = record["queues"]
        if queues["sq_depth_max"] > summary["sq_depth_max"]:
            summary["sq_depth_max"] = queues["sq_depth_max"]
            summary["sq_hot"] = queues["sq_hot"]
        if queues["cq_depth_max"] > summary["cq_depth_max"]:
            summary["cq_depth_max"] = queues["cq_depth_max"]
        for key, count in record.get("keys", {}).items():
            summary["keys"][key] = summary["keys"].get(key, 0) + count
        summary["exemplars"] += len(record.get("exemplars", ()))
        if record["latency"]:
            hists[bed].merge(Histogram.from_snapshot(record["latency"]))
        if record.get("pool_wait"):
            pool_hists[bed].merge(
                Histogram.from_snapshot(record["pool_wait"]))
    for bed, summary in beds.items():
        histogram = hists[bed]
        span = summary["last_window"] - summary["first_window"] + 1
        window_ns = records[0]["end_ns"] - records[0]["start_ns"]
        summary["util"] = round(
            summary["pu_busy_ns"] / (span * window_ns), 6)
        summary["latency"] = None
        if histogram.count:
            latency = histogram.snapshot()
            for label, fraction in _QUANTILES:
                latency[label] = histogram.quantile(fraction)
            summary["latency"] = latency
        summary["pool_wait"] = None
        pool_hist = pool_hists[bed]
        if pool_hist.count:
            pool_wait = pool_hist.snapshot()
            for label, fraction in _QUANTILES:
                pool_wait[label] = pool_hist.quantile(fraction)
            summary["pool_wait"] = pool_wait
        summary["keys"] = dict(sorted(
            summary["keys"].items(),
            key=lambda item: (-item[1], item[0])))
    return beds


# -- SLO rules and burn-rate alerts ---------------------------------------


class SloRule:
    """One declarative objective over the window stream.

    A window is **bad** for a bed when the rule's metric violates its
    bound (``max``: value above it; ``min``: value below it); windows
    with no record, or where the metric is ``None`` (e.g. p99 with no
    requests), are good. The error ``budget`` is the tolerated bad
    fraction; the rule fires when the burn rate — bad fraction divided
    by budget — is at or above ``burn_threshold`` over *both* the
    trailing long and short window spans (the SRE multi-window pattern:
    the long window proves sustained damage, the short one proves it is
    still happening).
    """

    __slots__ = ("name", "metric", "max", "min", "budget", "long_windows",
                 "short_windows", "burn_threshold", "beds")

    def __init__(self, name: str, metric: str, max: Optional[float] = None,
                 min: Optional[float] = None, budget: float = 0.1,
                 long_windows: int = 6, short_windows: int = 2,
                 burn_threshold: float = 1.0,
                 beds: Optional[List[str]] = None):
        if (max is None) == (min is None):
            raise ValueError(
                f"SLO rule {name!r}: exactly one of max/min required")
        if not 0 < budget <= 1:
            raise ValueError(f"SLO rule {name!r}: budget {budget} "
                             f"outside (0, 1]")
        if short_windows < 1 or long_windows < short_windows:
            raise ValueError(f"SLO rule {name!r}: need 1 <= short "
                             f"<= long window spans")
        self.name = name
        self.metric = metric
        self.max = max
        self.min = min
        self.budget = budget
        self.long_windows = long_windows
        self.short_windows = short_windows
        self.burn_threshold = burn_threshold
        self.beds = list(beds) if beds else None

    def __repr__(self) -> str:
        bound = (f"<={self.max}" if self.max is not None
                 else f">={self.min}")
        return f"<SloRule {self.name} {self.metric}{bound}>"

    def is_bad(self, value) -> bool:
        if value is None:
            return False
        if self.max is not None:
            return value > self.max
        return value < self.min

    def to_dict(self) -> dict:
        spec: Dict[str, Any] = {
            "name": self.name, "metric": self.metric,
            "budget": self.budget, "long_windows": self.long_windows,
            "short_windows": self.short_windows,
            "burn_threshold": self.burn_threshold}
        if self.max is not None:
            spec["max"] = self.max
        if self.min is not None:
            spec["min"] = self.min
        if self.beds:
            spec["beds"] = self.beds
        return spec


class BurnAlert:
    """A fired burn-rate alert, pinned to a simulated timestamp."""

    __slots__ = ("rule", "bed", "window", "at_ns", "burn_long",
                 "burn_short", "value", "queue")

    def __init__(self, rule: SloRule, bed: str, window: int, at_ns: int,
                 burn_long: float, burn_short: float, value, queue):
        self.rule = rule
        self.bed = bed
        self.window = window
        self.at_ns = at_ns
        self.burn_long = burn_long
        self.burn_short = burn_short
        self.value = value
        self.queue = queue

    def __repr__(self) -> str:
        return (f"<BurnAlert {self.rule.name} bed={self.bed} "
                f"t={self.at_ns}ns burn={self.burn_long:g}/"
                f"{self.burn_short:g}>")

    def to_dict(self) -> dict:
        return {
            "rule": self.rule.name, "metric": self.rule.metric,
            "bed": self.bed, "window": self.window, "at_ns": self.at_ns,
            "burn_long": self.burn_long, "burn_short": self.burn_short,
            "value": self.value, "queue": self.queue,
        }

    def describe(self) -> str:
        bound = (f"> {self.rule.max:g}" if self.rule.max is not None
                 else f"< {self.rule.min:g}")
        queue = f" queue={self.queue}" if self.queue else ""
        return (f"SLO burn: rule {self.rule.name!r} "
                f"({self.rule.metric} {bound}) on {self.bed}{queue} "
                f"at t={self.at_ns}ns (window {self.window}, "
                f"burn {self.burn_long:g}x long / "
                f"{self.burn_short:g}x short, "
                f"value={self.value})")


def load_slo_rules(source) -> List[SloRule]:
    """Rules from a JSON file path, JSON text, or parsed list/dict.

    Accepts either a bare list of rule specs or ``{"rules": [...]}``.
    """
    if isinstance(source, str):
        text = source.lstrip()
        if not (text.startswith("[") or text.startswith("{")):
            with open(source) as handle:
                source = json.load(handle)
        else:
            source = json.loads(source)
    if isinstance(source, dict):
        source = source.get("rules", [])
    return [spec if isinstance(spec, SloRule) else SloRule(**spec)
            for spec in source]


def evaluate_slo(records: List[dict], rules: List[SloRule],
                 first_only: bool = True) -> List[BurnAlert]:
    """Run the burn-rate alerting policy over an emitted stream.

    Deterministic: windows are scanned in order per (rule, bed); gap
    windows count as good; the alert timestamp is the end of the
    firing window (the first simulated instant the measurement exists).
    ``first_only`` keeps only each (rule, bed)'s earliest alert.
    """
    if not records or not rules:
        return []
    first = min(record["window"] for record in records)
    last = max(record["window"] for record in records)
    window_ns = records[0]["end_ns"] - records[0]["start_ns"]
    by_bed: Dict[str, Dict[int, dict]] = {}
    for record in records:
        by_bed.setdefault(record["bed"], {})[record["window"]] = record
    alerts: List[BurnAlert] = []
    for rule in rules:
        beds = rule.beds if rule.beds else sorted(by_bed)
        for bed in beds:
            windows = by_bed.get(bed, {})
            bad_flags: List[bool] = []
            for window in range(first, last + 1):
                record = windows.get(window)
                value = (metric_value(record, rule.metric)
                         if record is not None else None)
                bad_flags.append(rule.is_bad(value))
                elapsed = len(bad_flags)
                long_span = min(rule.long_windows, elapsed)
                short_span = min(rule.short_windows, elapsed)
                burn_long = (sum(bad_flags[-long_span:]) / long_span
                             / rule.budget)
                burn_short = (sum(bad_flags[-short_span:]) / short_span
                              / rule.budget)
                if (burn_long >= rule.burn_threshold
                        and burn_short >= rule.burn_threshold):
                    queue = (record["queues"]["sq_hot"]
                             if record is not None else None)
                    alerts.append(BurnAlert(
                        rule, bed, window, (window + 1) * window_ns,
                        round(burn_long, 6), round(burn_short, 6),
                        value, queue))
                    if first_only:
                        break
    alerts.sort(key=lambda alert: (alert.at_ns, alert.rule.name,
                                   alert.bed))
    return alerts
